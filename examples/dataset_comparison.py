"""Dataset comparison: how the estimators behave across the paper's four
workloads (a compact, runnable slice of Section 6).

For each dataset (sp_skew, sz_skew, adl, ca_road) this script prints the
Section 6.1.1 shape statistics and the average relative error of
S-EulerApprox, EulerApprox and M-EulerApprox on two query sets -- showing
with live numbers why the paper needs all three algorithms:

- small-object datasets: S-EulerApprox is already (near-)exact;
- mixed/large-object datasets: S-EulerApprox's contains counts blow up,
  EulerApprox recovers most of it, M-EulerApprox nearly all.

Run:  python examples/dataset_comparison.py           (~40k objects each)
      REPRO_N=200000 python examples/dataset_comparison.py
"""

import os

from repro import (
    EulerApprox,
    EulerHistogram,
    Grid,
    MEulerApprox,
    SEulerApprox,
    by_name,
    DATASET_NAMES,
)
from repro.exact import exact_tiling_counts
from repro.experiments.report import format_table
from repro.experiments.runner import estimate_tiling, tiling_errors


def pct(value: float) -> str:
    return "inf" if value == float("inf") else f"{100 * value:.2f}%"


def main() -> None:
    grid = Grid.world_1deg()
    num_objects = int(os.environ.get("REPRO_N", "40000"))
    query_sizes = (10, 5)

    for name in DATASET_NAMES:
        data = by_name(name, num_objects, seed=42)
        stats = data.describe()
        print(
            f"\n=== {name}: {stats['count']:,} objects | "
            f"mean area {stats['area_mean']:.2f} cells | "
            f"p99 area {stats['area_p99']:.1f} | "
            f"{100 * stats['degenerate_fraction']:.0f}% points/segments ==="
        )

        histogram = EulerHistogram.from_dataset(data, grid)
        estimators = [
            SEulerApprox(histogram),
            EulerApprox(histogram),
            MEulerApprox(data, grid, [1.0, 9.0, 100.0]),
        ]

        rows = []
        for n in query_sizes:
            truth = exact_tiling_counts(data, grid, n, n)
            for estimator in estimators:
                errors = tiling_errors(truth, estimate_tiling(estimator, grid, n))
                rows.append(
                    [
                        f"Q_{n}",
                        estimator.name,
                        pct(errors["n_o"]),
                        pct(errors["n_cs"]),
                        pct(errors["n_cd"]),
                    ]
                )
        print(format_table(["query set", "algorithm", "N_o ARE", "N_cs ARE", "N_cd ARE"], rows))

    print(
        "\nReading guide: N_o is accurate for every algorithm (the shared "
        "Euler intersect machinery); the N_cs/N_cd columns separate the "
        "algorithms exactly as the paper's Figures 14-18 do."
    )


if __name__ == "__main__":
    main()
