"""Telemetry round-trip check: degrade a browse, export the snapshot both
ways, assert the two wire formats agree.

This is the observability layer's acceptance scenario, run as a script so
CI can execute it under ``-W error::RuntimeWarning``:

1. serve a raster through :class:`ResilientBrowsingService` with an
   injected-fault primary (errors, then a breaker trip), a slow fallback
   and a deadline that expires mid-raster -- all on a fake clock, so the
   run is deterministic;
2. export the resulting :class:`MetricsRegistry` as Prometheus text and
   as strict JSON;
3. parse both back and assert they flatten to the *same* sample map, and
   that the degradation actually showed up (fallback counts, a breaker
   transition, NaN tiles, per-stage latency mass).

Run:  python examples/metrics_snapshot_roundtrip.py
"""

import json

import numpy as np

from repro import EulerHistogram, Grid, SEulerApprox, by_name
from repro.browse.resilience import ResilientBrowsingService, RetryPolicy
from repro.exact.evaluator import ExactEvaluator
from repro.grid.tiles_math import TileQuery
from repro.obs import (
    BrowseInstrumentation,
    MetricsRegistry,
    parse_prometheus_text,
    samples_from_json,
    to_json,
    to_prometheus_text,
)
from repro.testing.faults import FaultSchedule, FaultyBatchEstimator


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def main() -> None:
    data = by_name("sp_skew", 2000, seed=7)
    grid = Grid(data.extent, 12, 8)
    exact = ExactEvaluator(data, grid)
    hist = EulerHistogram.from_dataset(data, grid)

    clock = FakeClock()
    instruments = BrowseInstrumentation(MetricsRegistry(clock=clock), clock=clock)
    primary = FaultyBatchEstimator(exact, FaultSchedule(script=("error",) * 4))
    fallback = FaultyBatchEstimator(
        SEulerApprox(hist),
        FaultSchedule(script=("latency",), cycle=True, latency=0.3),
        sleep=clock.advance,
    )
    service = ResilientBrowsingService(
        [primary, fallback], grid, chunk_rows=1,
        failure_threshold=2, cooldown=60.0,
        retry=RetryPolicy(attempts=1), clock=clock, sleep=lambda s: None,
        instruments=instruments,
    )
    result = service.browse(TileQuery(0, 12, 0, 8), rows=8, cols=6, deadline=1.5)

    assert not result.is_complete, "the deadline was supposed to expire"
    assert np.isnan(result.counts[~result.valid]).all()
    assert result.telemetry is not None and len(result.telemetry.spans) > 5

    registry = instruments.registry
    prom_text = to_prometheus_text(registry)
    json_text = to_json(registry)
    json.loads(json_text)  # strict: would reject NaN/Infinity literals

    prom_samples = parse_prometheus_text(prom_text)
    json_samples = samples_from_json(json_text)
    assert prom_samples == json_samples, "wire formats disagree"
    assert len(prom_samples) > 50

    def sample(key):
        assert key in prom_samples, f"missing sample {key}"
        return prom_samples[key]

    # The degradation left real fingerprints in the snapshot.
    assert sample('repro_tier_failures_total{reason="error",tier="Faulty(Exact)"}') == 2
    assert (
        sample(
            'repro_breaker_transitions_total{from_state="closed",'
            'tier="Faulty(Exact)",to_state="open"}'
        )
        == 1
    )
    assert sample('repro_browse_deadline_expirations_total{service="resilient"}') == 1
    answered = sample('repro_browse_tiles_total{outcome="answered",service="resilient"}')
    nan_tiles = sample('repro_browse_tiles_total{outcome="nan",service="resilient"}')
    assert answered + nan_tiles == 48 and nan_tiles > 0
    assert sample('repro_browse_stage_seconds_sum{service="resilient",stage="chunk"}') > 0

    fallback_chunks = sample('repro_tier_successes_total{tier="Faulty(S-EulerApprox)"}')
    print(f"round-trip OK: {len(prom_samples)} samples agree across both formats")
    print(
        f"degraded browse: {int(answered)}/48 tiles answered, "
        f"{int(nan_tiles)} NaN, fallback answered {int(fallback_chunks)} chunks"
    )


if __name__ == "__main__":
    main()
