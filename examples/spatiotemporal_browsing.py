"""Spatio-temporal browsing with the d-dimensional Euler histogram.

The paper's model is stated for d dimensions and evaluated at d=2; the
obvious next axis for a GeoBrowsing-style archive is *time* ("queries
based on various data attributes such as region, date...").  This example
builds a 3-d (x, y, year) Euler histogram over a simulated archive of
dated map records and answers region x time-window browsing queries:

- "how many records overlap this region in this decade?"
- "how many are entirely within the region and the window?"

The 3-d intersect counts are exact (the Euler machinery generalises);
the example verifies them against a brute-force scan on the fly.

Run:  python examples/spatiotemporal_browsing.py
"""

import numpy as np

from repro import GridND, BoxQuery
from repro.euler.histogram_nd import EulerHistogramND, SEulerApproxND

# Data space: 360 x 180 world, 64 years of acquisitions (1950-2014),
# gridded at 4-degree / 1-year resolution.
CELLS = (90, 45, 64)
YEAR0 = 1950


def simulate_archive(num_records: int, seed: int = 0):
    """Dated map footprints: spatially clustered, small extents, short
    dated validity intervals with a growth trend over the years."""
    rng = np.random.default_rng(seed)
    lows = np.empty((num_records, 3))
    highs = np.empty((num_records, 3))

    # Space: a few acquisition programs (clusters).
    centers = rng.uniform([5, 5], [85, 40], size=(12, 2))
    pick = rng.integers(0, 12, size=num_records)
    xy = centers[pick] + rng.normal(0, 3.0, size=(num_records, 2))
    w = rng.gamma(2.0, 0.4, size=num_records)
    h = rng.gamma(2.0, 0.4, size=num_records)
    lows[:, 0] = np.clip(xy[:, 0] - w / 2, 0, CELLS[0])
    highs[:, 0] = np.clip(xy[:, 0] + w / 2, lows[:, 0], CELLS[0])
    lows[:, 1] = np.clip(xy[:, 1] - h / 2, 0, CELLS[1])
    highs[:, 1] = np.clip(xy[:, 1] + h / 2, lows[:, 1], CELLS[1])

    # Time: acquisition years skewed toward the present, validity 1-8y.
    start = CELLS[2] * np.sqrt(rng.random(num_records))
    length = rng.uniform(1.0, 8.0, size=num_records)
    lows[:, 2] = np.clip(start, 0, CELLS[2])
    highs[:, 2] = np.clip(start + length, lows[:, 2], CELLS[2])
    return lows, highs


def brute_intersect(lows, highs, query: BoxQuery) -> int:
    ok = np.ones(lows.shape[0], dtype=bool)
    for k in range(3):
        c_lo = np.minimum(np.floor(lows[:, k]), query.hi[k] * 0 + CELLS[k] - 1)
        c_hi = np.maximum(np.ceil(highs[:, k]) - 1, np.floor(lows[:, k]))
        ok &= (np.floor(lows[:, k]) <= query.hi[k] - 1) & (c_hi >= query.lo[k])
    return int(ok.sum())


def main() -> None:
    grid = GridND.unit_cells(CELLS)
    lows, highs = simulate_archive(150_000, seed=11)
    print(f"archive: {lows.shape[0]:,} dated footprints over {CELLS[2]} years")

    histogram = EulerHistogramND.from_boxes(grid, lows, highs)
    estimator = SEulerApproxND(histogram)
    print(
        f"3-d Euler histogram: {histogram.num_buckets:,} buckets "
        f"({np.prod(grid.lattice_shape):,} = "
        f"{'x'.join(str(2 * n - 1) for n in CELLS)})\n"
    )

    region = ((20, 40), (10, 30))  # a 20x20-degree-cell region
    print(f"region: x{region[0]} y{region[1]} -- per-decade record counts:")
    print(f"{'decade':>12} | {'intersect':>9} | {'contained':>9} | {'overlap':>8}")
    for decade_start in range(0, CELLS[2], 10):
        window = (decade_start, min(decade_start + 10, CELLS[2]))
        query = BoxQuery(
            lo=(region[0][0], region[1][0], window[0]),
            hi=(region[0][1], region[1][1], window[1]),
        )
        counts = estimator.estimate(query)
        exact = brute_intersect(lows, highs, query)
        assert histogram.intersect_count(query) == exact, "3-d intersect must be exact"
        label = f"{YEAR0 + window[0]}-{YEAR0 + window[1] - 1}"
        print(
            f"{label:>12} | {int(counts.n_intersect):>9} | "
            f"{int(counts.n_cs):>9} | {int(counts.n_o):>8}"
        )

    print(
        "\n(intersect counts verified exact against a brute-force scan; "
        "contained counts use the d-dimensional S-EulerApprox)"
    )


if __name__ == "__main__":
    main()
