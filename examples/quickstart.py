"""Quickstart: build an Euler histogram, browse a dataset, compare against
exact answers.

Walks through the paper's pipeline on a small synthetic dataset:

1. grid the 360x180 world at 1-degree resolution;
2. summarise a dataset into the (2n1-1)(2n2-1)-bucket Euler histogram;
3. answer Level-2 relation queries (contains / contained / overlap /
   disjoint) with the three approximation algorithms;
4. check them against the exact evaluator;
5. peek under the hood: the loophole effect that makes `contained`
   queries hard (Section 5.3).

Run:  python examples/quickstart.py
"""

from repro import (
    EulerApprox,
    EulerHistogram,
    ExactEvaluator,
    Grid,
    MEulerApprox,
    Rect,
    SEulerApprox,
    TileQuery,
    sz_skew,
)


def show(label, counts):
    print(
        f"  {label:<22} disjoint={counts.n_d:>8.1f}  contains={counts.n_cs:>7.1f}"
        f"  contained={counts.n_cd:>6.1f}  overlap={counts.n_o:>6.1f}"
    )


def main() -> None:
    # 1. The paper's evaluation grid: 360x180 space at 1x1 resolution.
    grid = Grid.world_1deg()

    # 2. A size-skewed dataset (squares with Zipf side lengths) -- the
    #    hardest of the paper's four datasets because objects can be much
    #    bigger than a query tile.
    data = sz_skew(50_000, seed=7)
    print(f"dataset: {data.name}, {len(data):,} objects")

    histogram = EulerHistogram.from_dataset(data, grid)
    print(
        f"histogram: {histogram.num_buckets:,} buckets "
        f"({histogram.nbytes / 1e6:.1f} MB incl. prefix-sum cube) "
        f"for {histogram.num_objects:,} objects\n"
    )

    # 3. One browsing tile: a 10x10-degree query over the Mediterranean.
    query = TileQuery(190, 200, 120, 130)
    print(f"query: cells x[{query.qx_lo},{query.qx_hi}) y[{query.qy_lo},{query.qy_hi})")

    estimators = [
        SEulerApprox(histogram),
        EulerApprox(histogram),
        MEulerApprox(data, grid, [1.0, 9.0, 100.0]),
    ]
    exact = ExactEvaluator(data, grid)

    show("exact", exact.estimate(query))
    for estimator in estimators:
        show(estimator.name, estimator.estimate(query))

    # 4. Why `contained` is hard: the loophole effect.  An object that
    #    contains the query leaves the outside-the-query bucket sum
    #    unchanged (its exterior footprint is a region with a hole, whose
    #    Euler characteristic is 2 - k = 0), so the simple algorithm
    #    cannot see it.
    print("\nloophole effect demo (Section 5.3):")
    demo_grid = Grid(Rect(0.0, 6.0, 0.0, 6.0), 6, 6)
    container = Rect(0.5, 5.5, 0.5, 5.5)
    demo_hist = EulerHistogram.from_dataset(
        type(data).from_rects([container], demo_grid.extent), demo_grid
    )
    inner = TileQuery(2, 4, 2, 4)
    print(f"  one object {container.as_tuple()} containing query {inner}")
    print(f"  buckets inside query sum to  {demo_hist.intersect_count(inner)} (n_ii: sees it)")
    print(f"  buckets outside query sum to {demo_hist.outside_sum(inner)} (n'_ei: loophole!)")
    print(
        "  EulerApprox recovers it via the Region A/B split: "
        f"N_cd = {EulerApprox(demo_hist).contained_in_query_estimate(inner):.0f}"
    )


if __name__ == "__main__":
    main()
