"""Theorem 3.1 in practice: why exact `contains` counting is infeasible
and what the Euler histogram trades for it.

1. prints the storage lower bound across grid resolutions, ending at the
   paper's headline "~4 GB for the world at 1 degree";
2. actually *builds* the exact Theorem 3.1 store at a resolution where it
   still fits, verifies it against the exact evaluator, and shows the
   measured bucket counts matching the formula;
3. contrasts query latency: the O(1) Euler histogram versus an O(M) scan
   of the objects -- the speed/accuracy trade-off of Section 1.

Run:  python examples/storage_lower_bound.py
"""

import time

import numpy as np

from repro import (
    EulerHistogram,
    ExactEvaluator,
    ExactLevel2Store2D,
    Grid,
    Rect,
    SEulerApprox,
    TileQuery,
    exact_contains_bucket_count,
    sz_skew,
)
from repro.experiments.figures import storage_bound_table
from repro.experiments.report import render_storage_table


def main() -> None:
    # 1. The bound across resolutions.
    print(render_storage_table(storage_bound_table()))
    print(
        "\nThe last row is the paper's Section 3 example: answering "
        "`contains` exactly at 1-degree resolution takes ~4 GB, versus "
        "~1 MB for the Euler histogram that answers it approximately.\n"
    )

    # 2. Build the exact store where it is still feasible: 36x18 cells
    #    (10-degree resolution).
    grid = Grid(Rect(0.0, 360.0, 0.0, 180.0), 36, 18)
    data = sz_skew(100_000, seed=1)

    t0 = time.perf_counter()
    store = ExactLevel2Store2D(data, grid)
    build = time.perf_counter() - t0
    formula = exact_contains_bucket_count([36, 18])
    print(
        f"exact store @ 36x18: {store.effective_bucket_count:,} effective "
        f"buckets (formula: {formula:,}), built in {build:.2f}s"
    )

    evaluator = ExactEvaluator(data, grid)
    rng = np.random.default_rng(0)
    for _ in range(200):
        x = np.sort(rng.choice(37, size=2, replace=False))
        y = np.sort(rng.choice(19, size=2, replace=False))
        q = TileQuery(int(x[0]), int(x[1]), int(y[0]), int(y[1]))
        assert store.estimate(q) == evaluator.estimate(q)
    print("verified: 200 random queries agree with the exact evaluator\n")

    # 3. Latency contrast at full resolution.
    world = Grid.world_1deg()
    big_data = sz_skew(500_000, seed=2)
    estimator = SEulerApprox(EulerHistogram.from_dataset(big_data, world))
    scan = ExactEvaluator(big_data, world)
    query = TileQuery(100, 110, 80, 90)

    def clock(fn, repeats=200):
        start = time.perf_counter()
        for _ in range(repeats):
            fn(query)
        return (time.perf_counter() - start) / repeats

    t_hist = clock(estimator.estimate)
    t_scan = clock(scan.estimate, repeats=20)
    print(f"per-query latency over {len(big_data):,} objects:")
    print(f"  Euler histogram (O(1) lookups): {1e6 * t_hist:9.1f} us")
    print(f"  exact object scan (O(M)):       {1e6 * t_scan:9.1f} us")
    print(f"  speedup: {t_scan / t_hist:,.0f}x  -- and it grows with |S|")


if __name__ == "__main__":
    main()
