"""Query optimization with Level-2 selectivity estimates.

The paper's closing remark: "we believe that our approach can be very
useful in query optimization for spatial database systems."  This example
is that loop running end to end:

1. build a grid-bucket spatial index (the exact access path) and an Euler
   histogram (the selectivity oracle) over an ADL-like dataset;
2. issue relation-predicate queries of very different selectivities;
3. watch the cost-based planner pick INDEX_SCAN for selective windows and
   FULL_SCAN for broad ones, with EXPLAIN-style reports;
4. audit the decisions: estimated vs. actual result sizes, candidates
   examined vs. dataset size.

Run:  python examples/query_optimizer.py
"""

from repro import (
    GridBucketIndex,
    Grid,
    MEulerApprox,
    SelectivityEstimator,
    SpatialQueryPlanner,
    TileQuery,
    adl_like,
)


def main() -> None:
    grid = Grid.world_1deg()
    data = adl_like(200_000, seed=5)
    print(f"dataset: {len(data):,} ADL-like records\n")

    index = GridBucketIndex(data, grid)
    print(
        f"index: {index.nbytes / 1e6:.1f} MB, {index.num_oversize:,} oversize "
        f"objects on the linear list"
    )

    # M-EulerApprox: the only summary that estimates *contained* ("maps
    # covering this window") usefully, which the workload below needs.
    estimator = MEulerApprox(data, grid, [1.0, 9.0, 100.0])
    selectivity = SelectivityEstimator(estimator, len(data))
    planner = SpatialQueryPlanner(index, selectivity)
    print(f"selectivity oracle: {selectivity.name}\n")

    workload = [
        ("tiny window, overlap", TileQuery(100, 102, 60, 62), "overlap"),
        ("city-scale, contains", TileQuery(250, 260, 100, 110), "contains"),
        ("continent-scale, intersect", TileQuery(60, 180, 30, 150), "intersect"),
        ("hemisphere, contains", TileQuery(0, 180, 0, 180), "contains"),
        ("tiny window, contained", TileQuery(200, 201, 90, 91), "contained"),
    ]

    for label, query, relation in workload:
        estimate = selectivity.estimate(query, relation)
        print(f"### {label}")
        print(
            f"    estimated selectivity: {100 * estimate.selectivity:.3f}% "
            f"(~{estimate.cardinality:.0f} records)"
        )
        ids, report = planner.execute(query, relation)
        print("    " + report.explain().replace("\n", "\n    "))
        savings = 1.0 - report.actual_candidates / len(data)
        print(f"    candidates avoided: {100 * savings:.1f}% of the dataset\n")

    print(
        "Summary: the planner's decisions come straight from the Euler\n"
        "histogram's Level-2 selectivity estimates -- no data access is\n"
        "needed to choose a plan, and the index is only probed when the\n"
        "estimate says the result set is small."
    )


if __name__ == "__main__":
    main()
