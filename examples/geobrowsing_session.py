"""A GeoBrowsing session: the paper's motivating application (Section 1).

Recreates the Figure 1 interaction pattern against an ADL-like dataset:

1. the user looks at the whole world, gridded coarsely, colored by how
   many records *overlap* each tile;
2. they zoom into a data-rich region and re-tile it finer -- hundreds of
   trial queries in one click;
3. they switch the spatial relation to *contains* ("records entirely
   within a tile") and *contained* ("maps covering the whole tile"), the
   queries Level-1 systems cannot answer;
4. every raster is estimated from the multi-resolution Euler histogram
   (never touching the objects) and compared against exact evaluation.

Run:  python examples/geobrowsing_session.py
"""

import time

from repro import (
    ExactEvaluator,
    GeoBrowsingService,
    Grid,
    MEulerApprox,
    TileQuery,
    adl_like,
)


def show_raster(title, result, exact_result):
    print(f"\n--- {title} ({result.relation}) ---")
    print(result.render_ascii(width=6))
    diff = abs(result.counts - exact_result.counts).sum()
    total = max(exact_result.counts.sum(), 1.0)
    print(f"    [estimate vs exact: total deviation {diff:.0f} of {total:.0f} objects]")


def main() -> None:
    grid = Grid.world_1deg()
    data = adl_like(300_000, seed=42)
    print(f"dataset: {len(data):,} ADL-like records (points, maps, atlases)")

    build_start = time.perf_counter()
    estimator = MEulerApprox(data, grid, [1.0, 9.0, 100.0])
    print(
        f"summary built in {time.perf_counter() - build_start:.2f}s "
        f"({estimator.nbytes / 1e6:.1f} MB, {estimator.num_histograms} histograms)"
    )

    service = GeoBrowsingService(estimator, grid)
    oracle = GeoBrowsingService(ExactEvaluator(data, grid), grid)

    # 1. World overview: 6 x 12 tiles of 30x30 degrees.
    world = TileQuery(0, 360, 0, 180)
    t0 = time.perf_counter()
    overview = service.browse(world, rows=6, cols=12, relation="overlap")
    t1 = time.perf_counter()
    show_raster("world overview, 30x30-degree tiles", overview, oracle.browse(world, 6, 12, "overlap"))
    print(f"    [72 tile queries estimated in {1000 * (t1 - t0):.1f} ms]")

    # 2. Zoom into the densest tile and re-grid it finer.
    dense = overview.counts.argmax()
    r, c = divmod(int(dense), overview.cols)
    tile = overview.tiles[r][c]
    region = TileQuery(tile.qx_lo, tile.qx_hi, tile.qy_lo, tile.qy_hi)
    print(f"\nzooming into the densest tile: x[{region.qx_lo},{region.qx_hi}) "
          f"y[{region.qy_lo},{region.qy_hi})")

    detail = service.browse(region, rows=6, cols=6, relation="overlap")
    show_raster("zoomed region, 5x5-degree tiles", detail, oracle.browse(region, 6, 6, "overlap"))

    # 3. Level-2 relations on the zoomed region: what Level-1 histograms
    #    cannot answer.
    contains = service.browse(region, rows=6, cols=6, relation="contains")
    show_raster("records entirely inside each tile", contains, oracle.browse(region, 6, 6, "contains"))

    contained = service.browse(region, rows=6, cols=6, relation="contained")
    show_raster("maps covering each whole tile", contained, oracle.browse(region, 6, 6, "contained"))

    print(
        "\nNote the three rasters differ: dense overlap counts include "
        "through-running large maps, `contains` isolates local records, "
        "and `contained` shows wide-area coverage -- the reason the paper "
        "pushes past the Level-1 intersect-only model."
    )


if __name__ == "__main__":
    main()
