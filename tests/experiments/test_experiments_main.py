"""End-to-end tests of the ``python -m repro.experiments`` entry point."""

import pytest

from repro.experiments.__main__ import main


@pytest.fixture(autouse=True)
def tiny_scale(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.001")


def test_storage_figure_runs(capsys):
    assert main(["--figures", "storage"]) == 0
    out = capsys.readouterr().out
    assert "Theorem 3.1" in out
    assert "360x180" in out


def test_fig12_profiles_run(capsys):
    assert main(["--figures", "12"]) == 0
    out = capsys.readouterr().out
    assert "Figure 12" in out
    assert "sz_skew" in out


def test_fig13_runs(capsys):
    assert main(["--figures", "13"]) == 0
    out = capsys.readouterr().out
    assert "Figure 13" in out
    assert "S-EulerApprox" in out


def test_header_reports_scale(capsys):
    main(["--figures", "storage"])
    out = capsys.readouterr().out
    assert "scale=0.001" in out
    assert "grid=360x180" in out


def test_unknown_figure_rejected():
    with pytest.raises(SystemExit):
        main(["--figures", "99"])
