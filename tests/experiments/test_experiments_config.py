"""Tests for the experiment configuration and workbench."""

import pytest

from repro.experiments.config import (
    MULTI_THRESHOLD_SCHEDULES,
    PAPER_DATASET_SIZES,
    ExperimentConfig,
    Workbench,
)


@pytest.fixture
def tiny_bench(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.002")
    return Workbench(ExperimentConfig())


class TestConfig:
    def test_paper_sizes(self):
        assert PAPER_DATASET_SIZES["adl"] == 2_335_840
        assert PAPER_DATASET_SIZES["ca_road"] == 2_665_088

    def test_scale_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert ExperimentConfig().scale == 0.5

    def test_default_scale(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert ExperimentConfig().scale == 0.1

    def test_invalid_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "zero")
        with pytest.raises(ValueError):
            ExperimentConfig()
        monkeypatch.setenv("REPRO_SCALE", "-1")
        with pytest.raises(ValueError):
            ExperimentConfig()

    def test_dataset_size_floor(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.0000001")
        config = ExperimentConfig()
        assert config.dataset_size("sp_skew") == 1000

    def test_threshold_schedules_match_figure_18(self):
        # 1x1, 3x3, 5x5, 10x10, 15x15 as areas.
        assert MULTI_THRESHOLD_SCHEDULES[5] == (1.0, 9.0, 25.0, 100.0, 225.0)
        assert MULTI_THRESHOLD_SCHEDULES[3] == (1.0, 9.0, 100.0)


class TestWorkbench:
    def test_datasets_are_memoised(self, tiny_bench):
        assert tiny_bench.dataset("sp_skew") is tiny_bench.dataset("sp_skew")

    def test_histograms_are_memoised(self, tiny_bench):
        assert tiny_bench.histogram("sp_skew") is tiny_bench.histogram("sp_skew")

    def test_truth_is_memoised(self, tiny_bench):
        assert tiny_bench.truth("sp_skew", 20) is tiny_bench.truth("sp_skew", 20)

    def test_estimators_share_histogram(self, tiny_bench):
        s = tiny_bench.s_euler("sp_skew")
        e = tiny_bench.euler("sp_skew")
        assert s.histogram is e.histogram

    def test_multi_euler_by_count(self, tiny_bench):
        multi = tiny_bench.multi_euler("sz_skew", 3)
        assert multi.num_histograms == 3
        assert multi.area_thresholds == (1.0, 9.0, 100.0)

    def test_dataset_scaling(self, tiny_bench):
        assert len(tiny_bench.dataset("sp_skew")) == 2000
