"""Tests for the shared experiment runner."""

import numpy as np
import pytest

from repro.exact.evaluator import ExactEvaluator
from repro.exact.tiling import exact_tiling_counts
from repro.experiments.runner import estimate_tiling, tiling_errors
from repro.geometry.rect import Rect
from repro.grid.grid import Grid

from tests.conftest import random_dataset


@pytest.fixture
def grid():
    return Grid(Rect(0.0, 12.0, 0.0, 8.0), 12, 8)


def test_estimate_tiling_with_exact_estimator_matches_truth(grid, rng):
    """Closing the loop: running the exact evaluator through the tiling
    runner must reproduce the O(M) tiling counts bit for bit."""
    data = random_dataset(rng, grid, 200)
    truth = exact_tiling_counts(data, grid, 4, 4)
    estimated = estimate_tiling(ExactEvaluator(data, grid), grid, 4)
    np.testing.assert_array_equal(estimated.n_d, truth.n_d)
    np.testing.assert_array_equal(estimated.n_cs, truth.n_cs)
    np.testing.assert_array_equal(estimated.n_cd, truth.n_cd)
    np.testing.assert_array_equal(estimated.n_o, truth.n_o)


def test_tiling_errors_zero_for_exact(grid, rng):
    data = random_dataset(rng, grid, 150)
    truth = exact_tiling_counts(data, grid, 2, 2)
    estimated = estimate_tiling(ExactEvaluator(data, grid), grid, 2)
    errors = tiling_errors(truth, estimated)
    assert errors == {"n_d": 0.0, "n_cs": 0.0, "n_cd": 0.0, "n_o": 0.0}


def test_tiling_errors_shape_mismatch(grid, rng):
    data = random_dataset(rng, grid, 50)
    truth = exact_tiling_counts(data, grid, 2, 2)
    estimated = estimate_tiling(ExactEvaluator(data, grid), grid, 4)
    with pytest.raises(ValueError, match="different tilings"):
        tiling_errors(truth, estimated)


def test_estimate_tiling_rejects_non_divisor(grid, rng):
    data = random_dataset(rng, grid, 10)
    with pytest.raises(ValueError):
        estimate_tiling(ExactEvaluator(data, grid), grid, 5)


def test_estimate_tiling_shape(grid, rng):
    data = random_dataset(rng, grid, 10)
    estimated = estimate_tiling(ExactEvaluator(data, grid), grid, 4)
    assert estimated.n_cs.shape == (3, 2)
    assert estimated.tile_size == 4


def test_zero_truth_tiling_flows_through_report_and_csv(grid, tmp_path):
    """Regression: an empty dataset (zero truth everywhere) with a
    nonzero estimate yields an infinite ARE that must survive the whole
    reporting path -- tiling_errors, the text table, and the CSV writer
    -- without crashing or degrading to NaN."""
    import csv
    import math

    from repro.datasets.base import RectDataset
    from repro.experiments.export import write_error_curves_csv
    from repro.experiments.figures import ErrorCurves
    from repro.experiments.runner import EstimatedTiling
    from repro.experiments.report import render_error_curves

    empty = RectDataset.empty(grid.extent)
    truth = exact_tiling_counts(empty, grid, 4, 4)
    shape = truth.shape
    # A (buggy or degraded) estimator that answers 1.0 everywhere.
    estimated = EstimatedTiling(
        tile_size=4,
        n_d=np.ones(shape),
        n_cs=np.ones(shape),
        n_cd=np.ones(shape),
        n_o=np.ones(shape),
    )
    errors = tiling_errors(truth, estimated)
    assert all(e == float("inf") for e in errors.values())
    assert not any(math.isnan(e) for e in errors.values())

    curves = ErrorCurves(
        figure="FX",
        algorithm="Ones",
        tile_sizes=(4,),
        curves={"empty": {rel: {4: are} for rel, are in errors.items()}},
    )
    text = render_error_curves(curves)
    assert "inf" in text and "nan" not in text

    path = tmp_path / "curves.csv"
    write_error_curves_csv(curves, path)
    with path.open() as handle:
        rows = list(csv.DictReader(handle))
    assert len(rows) == 4
    for row in rows:
        assert float(row["are"]) == float("inf")
