"""Smoke and structure tests for the per-figure generators at tiny scale."""

import pytest

from repro.experiments.config import ExperimentConfig, Workbench
from repro.experiments.figures import (
    fig13_s_euler_scatter,
    fig14_s_euler_errors,
    fig15_euler_scatter,
    fig16_euler_errors,
    fig17_multi2_errors,
    fig18_multi_m_errors,
    fig19_query_times,
    storage_bound_table,
)


@pytest.fixture(scope="module")
def bench():
    # Tiny but non-trivial: ~2k-5k objects per dataset, 3 query sizes.
    config = ExperimentConfig(scale=0.002, seed=7, query_sizes=(20, 10, 5))
    return Workbench(config)


class TestFig13:
    def test_structure(self, bench):
        result = fig13_s_euler_scatter(bench)
        assert set(result.points) == {"sp_skew", "sz_skew", "adl", "ca_road"}
        assert set(result.points["adl"]) == {"n_o", "n_cs"}
        assert result.tile_size == 10
        # 648 tiles in Q_10.
        assert len(result.points["adl"]["n_o"]) == 36 * 18

    def test_paper_shape_n_o_accurate_everywhere(self, bench):
        result = fig13_s_euler_scatter(bench)
        for name in result.are:
            assert result.are[name]["n_o"] < 0.10, name

    def test_paper_shape_sz_skew_contains_blows_up(self, bench):
        result = fig13_s_euler_scatter(bench)
        assert result.are["sz_skew"]["n_cs"] > 1.0
        assert result.are["sp_skew"]["n_cs"] < 0.02
        assert result.are["ca_road"]["n_cs"] < 0.02


class TestFig14:
    def test_structure_and_shapes(self, bench):
        result = fig14_s_euler_errors(bench)
        assert result.tile_sizes == (20, 10, 5)
        assert set(result.curves) == {"sp_skew", "sz_skew", "adl", "ca_road"}
        # sz_skew: squares cannot cross squares -> N_o error ~0 everywhere.
        for n in result.tile_sizes:
            assert result.curves["sz_skew"]["n_o"][n] < 0.01
        # sp_skew objects are 3.6x1.8: no crossover at tile sizes >= 4.
        for n in result.tile_sizes:
            assert result.curves["sp_skew"]["n_o"][n] < 0.01
        # adl contains error grows as tiles shrink (Figure 14(b)).
        adl_cs = result.curves["adl"]["n_cs"]
        assert adl_cs[5] > adl_cs[20]


class TestFig15And16:
    def test_fig15_structure(self, bench):
        result = fig15_euler_scatter(bench)
        assert set(result.points) == {"adl", "sz_skew"}
        assert set(result.points["adl"]) == {"n_cd", "n_cs"}

    def test_fig16_improves_on_fig14(self, bench):
        s_euler = fig14_s_euler_errors(bench)
        euler = fig16_euler_errors(bench)
        # EulerApprox's worst N_cs error is far below S-EulerApprox's on
        # both large-object datasets (the Section 6.3 claim).
        for name in ("adl", "sz_skew"):
            worst_s = max(s_euler.curves[name]["n_cs"].values())
            worst_e = max(euler.curves[name]["n_cs"].values())
            assert worst_e < worst_s


class TestFig17And18:
    def test_fig17_improves_on_fig16(self, bench):
        euler = fig16_euler_errors(bench)
        multi = fig17_multi2_errors(bench)
        for name in ("adl", "sz_skew"):
            worst_e = max(euler.curves[name]["n_cs"].values())
            worst_m = max(multi.curves[name]["n_cs"].values())
            assert worst_m <= worst_e * 1.05

    def test_fig18_more_histograms_help(self, bench):
        result = fig18_multi_m_errors(bench)
        assert set(result.curves) == {"m=3", "m=4", "m=5"}
        worst3 = max(result.curves["m=3"]["n_cs"].values())
        worst5 = max(result.curves["m=5"]["n_cs"].values())
        assert worst5 <= worst3 * 1.05


class TestFig19:
    def test_structure(self, bench):
        result = fig19_query_times(bench, repeats=1, multi_histogram_counts=(2, 3))
        assert "S-EulerApprox" in result.seconds
        assert "EulerApprox" in result.seconds
        assert "M-EulerApprox(m=2)" in result.seconds
        for label, times in result.seconds.items():
            for n, seconds in times.items():
                assert seconds >= 0.0
        assert result.num_queries[20] == 18 * 9

    def test_roughly_constant_per_query_time(self, bench):
        """Query cost must not grow with query area: the per-query time of
        the largest tiles is within an order of magnitude of the
        smallest (wall-clock noise allowed)."""
        result = fig19_query_times(bench, repeats=3, multi_histogram_counts=())
        times = result.seconds["S-EulerApprox"]
        per_query = {n: times[n] / result.num_queries[n] for n in times}
        assert max(per_query.values()) < 20 * min(per_query.values())


class TestFig12:
    def test_profiles_structure(self, bench):
        from repro.experiments.figures import fig12_dataset_profiles
        from repro.experiments.report import render_dataset_profiles

        profiles = fig12_dataset_profiles(bench)
        assert set(profiles) == {"sp_skew", "sz_skew", "adl", "ca_road"}
        for name, p in profiles.items():
            assert p["count"] > 0
            assert sum(p["width_hist"]) == p["count"]
            assert 0.0 <= p["empty_block_fraction"] <= 1.0
        # sp_skew: all widths exactly 3.6 -> one populated bin.
        assert sum(1 for v in profiles["sp_skew"]["width_hist"] if v) == 1
        # sz_skew widths decay across doubling bins (Figure 12(b)).
        hist = profiles["sz_skew"]["width_hist"]
        assert hist[2] > hist[5]

        text = render_dataset_profiles(profiles)
        assert "Figure 12" in text and "ca_road" in text


class TestStorageTable:
    def test_rows(self):
        rows = storage_bound_table()
        assert rows[-1]["grid"] == "360x180"
        assert 3.9e9 < rows[-1]["exact_bytes"] < 4.3e9
        assert all(r["ratio"] >= 1.0 for r in rows)
