"""Tests for the text-table rendering of experiment results."""

from repro.experiments.figures import (
    ErrorCurves,
    ScatterResult,
    TimingResult,
    storage_bound_table,
)
from repro.experiments.report import (
    format_table,
    render_error_curves,
    render_scatter,
    render_storage_table,
    render_timing,
)


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["a", "long"], [[1, 2], [333, 4]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].endswith("long")
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_separator_row(self):
        table = format_table(["x"], [[1]])
        assert "-" in table.splitlines()[1]


class TestRenderers:
    def test_error_curves(self):
        result = ErrorCurves(
            figure="Figure 14",
            algorithm="S-EulerApprox",
            tile_sizes=(10, 5),
            curves={"adl": {"n_cs": {10: 0.5, 5: 1.2}, "n_o": {10: 0.01, 5: 0.02}}},
        )
        text = render_error_curves(result)
        assert "Figure 14" in text
        assert "[N_cs]" in text and "[N_o]" in text
        assert "50.00%" in text and "120.00%" in text
        assert "Q_10" in text and "Q_5" in text

    def test_error_curves_handles_inf(self):
        result = ErrorCurves(
            figure="F",
            algorithm="A",
            tile_sizes=(2,),
            curves={"d": {"n_cs": {2: float("inf")}}},
        )
        assert "inf" in render_error_curves(result)

    def test_scatter(self):
        result = ScatterResult(
            figure="Figure 13",
            algorithm="S-EulerApprox",
            tile_size=10,
            points={"adl": {"n_cs": [(10.0, 12.0), (0.0, 0.0)]}},
            are={"adl": {"n_cs": 0.2}},
        )
        text = render_scatter(result)
        assert "Figure 13" in text
        assert "10->12" in text
        assert "20.00%" in text

    def test_timing(self):
        result = TimingResult(
            figure="Figure 19",
            seconds={"S-EulerApprox": {10: 0.002, 2: 0.05}},
            num_queries={10: 648, 2: 16200},
        )
        text = render_timing(result)
        assert "Q_2" in text and "Q_10" in text
        assert "16200" in text

    def test_storage_table(self):
        text = render_storage_table(storage_bound_table())
        assert "360x180" in text
        assert "GB" in text
