"""Tests for the CSV export of experiment results."""

import csv

from repro.experiments.export import (
    write_error_curves_csv,
    write_scatter_csv,
    write_timing_csv,
)
from repro.experiments.figures import ErrorCurves, ScatterResult, TimingResult


def _read(path):
    with open(path, newline="") as handle:
        return list(csv.reader(handle))


def test_error_curves_csv(tmp_path):
    result = ErrorCurves(
        figure="Figure 14",
        algorithm="S-EulerApprox",
        tile_sizes=(10, 5),
        curves={"adl": {"n_cs": {10: 0.5, 5: 1.25}}},
    )
    path = tmp_path / "curves.csv"
    write_error_curves_csv(result, path)
    rows = _read(path)
    assert rows[0] == ["figure", "algorithm", "label", "relation", "tile_size", "are"]
    assert rows[1] == ["Figure 14", "S-EulerApprox", "adl", "n_cs", "10", "0.5"]
    assert len(rows) == 3


def test_scatter_csv(tmp_path):
    result = ScatterResult(
        figure="Figure 13",
        algorithm="S-EulerApprox",
        tile_size=10,
        points={"adl": {"n_o": [(1.0, 1.5), (2.0, 2.0)]}},
        are={"adl": {"n_o": 0.1}},
    )
    path = tmp_path / "scatter.csv"
    write_scatter_csv(result, path)
    rows = _read(path)
    assert len(rows) == 3
    assert rows[2] == ["Figure 13", "S-EulerApprox", "adl", "n_o", "2.0", "2.0"]


def test_timing_csv(tmp_path):
    result = TimingResult(
        figure="Figure 19",
        seconds={"S-EulerApprox": {10: 0.004}},
        num_queries={10: 648},
    )
    path = tmp_path / "timing.csv"
    write_timing_csv(result, path)
    rows = _read(path)
    assert rows[1] == ["Figure 19", "S-EulerApprox", "10", "648", "0.004"]


def test_creates_parent_directories(tmp_path):
    result = TimingResult(figure="F", seconds={"a": {2: 1.0}}, num_queries={2: 4})
    path = tmp_path / "nested" / "dir" / "timing.csv"
    write_timing_csv(result, path)
    assert path.exists()
