"""Accuracy evaluation: exact-sketch ground truth, ARE wiring, and the
mass-vs-count bias diagnostic."""

import numpy as np
import pytest

from repro.geometry.rect import Rect
from repro.grid.grid import Grid
from repro.joins import (
    JoinSketch,
    dataset_score_are,
    exact_catalog,
    region_mass_vs_count,
    region_score_are,
)
from repro.workloads import (
    build_catalog,
    generate_catalog_sources,
    generate_query_regions,
)

GRID = Grid(Rect(0.0, 360.0, 0.0, 180.0), 16, 8)


@pytest.fixture(scope="module")
def sources():
    return generate_catalog_sources(GRID, 6, 250, seed=11)


@pytest.fixture(scope="module")
def truth(sources):
    return exact_catalog(sources, GRID, names=[s.name for s in sources])


@pytest.fixture(scope="module")
def queries():
    held_out = generate_catalog_sources(GRID, 3, 200, seed=12, name_prefix="q")
    return [JoinSketch.from_dataset(d, GRID, name=d.name) for d in held_out]


def test_exact_catalog_mirrors_sources(sources, truth):
    assert len(truth) == len(sources)
    assert truth.names == tuple(s.name for s in sources)


def test_exact_families_have_zero_are(sources, truth, queries):
    catalog = build_catalog(sources, GRID, family="exact")
    assert dataset_score_are(catalog, truth, queries) == 0.0
    regions = generate_query_regions(GRID, 5, seed=13)
    assert region_score_are(catalog, truth, regions) == 0.0


def test_overlap_is_exact_for_every_family(sources, truth, queries):
    """n_ii is exact in Euler histograms, so the overlap metric carries
    no estimator error for any family -- a property the benchmark leans
    on (containment is the error-bearing metric)."""
    summary_grid = Grid(GRID.extent, 64, 32)
    for family in ("seuler", "euler", "meuler"):
        catalog = build_catalog(
            sources, GRID, family=family, summary_grid=summary_grid
        )
        assert dataset_score_are(catalog, truth, queries, metric="overlap") == 0.0


def test_containment_are_is_finite_and_small(sources, truth, queries):
    summary_grid = Grid(GRID.extent, 64, 32)
    catalog = build_catalog(sources, GRID, family="seuler", summary_grid=summary_grid)
    are = dataset_score_are(catalog, truth, queries, metric="containment")
    assert np.isfinite(are)
    assert 0.0 <= are < 1.0


def test_size_mismatch_rejected(sources, truth, queries):
    smaller = exact_catalog(sources[:3], GRID)
    with pytest.raises(ValueError, match="disagree on size"):
        dataset_score_are(smaller, truth, queries)
    with pytest.raises(ValueError, match="unknown dataset metric"):
        dataset_score_are(truth, truth, queries, metric="nope")


def test_region_mass_vs_count_ratio_at_least_one(sources, truth):
    """Mass counts object-cell incidences, so over populated pairs it can
    only exceed the true pair count."""
    regions = generate_query_regions(GRID, 8, seed=14)
    report = region_mass_vs_count(truth, sources, regions)
    assert report["mean_mass_count_ratio"] >= 1.0
    assert report["mass_as_count_are"] >= 0.0


def test_region_mass_vs_count_empty_inputs(truth, sources):
    report = region_mass_vs_count(truth, sources, [])
    assert report == {"mean_mass_count_ratio": 1.0, "mass_as_count_are": 0.0}
