"""JoinSearchEngine: ranking correctness, pruning accounting, sharding,
caching and instrumentation."""

import numpy as np
import pytest

from repro.cache import JoinScoreCache
from repro.errors import CatalogAlignmentError
from repro.exact.evaluator import ExactEvaluator
from repro.geometry.rect import Rect
from repro.grid.grid import Grid
from repro.grid.tiles_math import TileQuery
from repro.joins import (
    DATASET_METRICS,
    REGION_METRICS,
    JoinSearchEngine,
    JoinSketch,
    SummaryCatalog,
    score_dataset_batch,
)
from repro.obs import JoinInstrumentation

from tests.conftest import random_dataset

GRID = Grid(Rect(0.0, 24.0, 0.0, 16.0), 24, 16)


@pytest.fixture(scope="module")
def catalog():
    rng = np.random.default_rng(77)
    cat = SummaryCatalog(GRID)
    for i in range(48):
        data = random_dataset(rng, GRID, 30 + 5 * (i % 7), name=f"d{i:02d}")
        cat.register(f"d{i:02d}", ExactEvaluator(data, GRID))
    return cat


@pytest.fixture(scope="module")
def query():
    rng = np.random.default_rng(99)
    return JoinSketch.from_dataset(
        random_dataset(rng, GRID, 60, name="q"), GRID, name="q"
    )


def brute_force_topk(catalog, query, metric, k):
    values = score_dataset_batch(catalog.stacked(), query).metric(metric)
    order = np.lexsort((np.arange(len(values)), -values))[:k]
    return order, values[order]


@pytest.mark.parametrize("metric", DATASET_METRICS)
def test_exhaustive_matches_brute_force(catalog, query, metric):
    engine = JoinSearchEngine(catalog)
    result = engine.search_dataset(query, metric=metric, k=7, prune=False)
    idx, vals = brute_force_topk(catalog, query, metric, 7)
    assert np.array_equal(result.indices, idx)
    assert np.array_equal(result.scores, vals)
    assert result.names == tuple(catalog.names[i] for i in idx)
    assert result.candidates == len(catalog)
    assert result.fully_scored == len(catalog)
    assert result.pruned == 0
    assert result.levels == ()


@pytest.mark.parametrize("metric", DATASET_METRICS)
@pytest.mark.parametrize("k", [1, 5, 48])
@pytest.mark.parametrize("seed_pool", [None, 2, 8])
def test_pruned_equals_exhaustive(catalog, query, metric, k, seed_pool):
    engine = JoinSearchEngine(catalog, seed_pool=seed_pool)
    pruned = engine.search_dataset(query, metric=metric, k=k, prune=True)
    exhaustive = engine.search_dataset(query, metric=metric, k=k, prune=False)
    assert np.array_equal(pruned.indices, exhaustive.indices)
    assert np.array_equal(pruned.scores, exhaustive.scores)


def test_pruning_accounting_is_exhaustive(catalog, query):
    # a tight seed pool forces real pruning on this 48-summary catalog
    result = JoinSearchEngine(catalog, seed_pool=5).search_dataset(
        query, k=5, prune=True
    )
    # every candidate is either fully scored or pruned -- no silent caps
    assert result.fully_scored + result.pruned == result.candidates == len(catalog)
    assert result.pruned == sum(s.pruned for s in result.levels)
    assert result.levels[0].level == len(catalog.stacked().levels) - 1
    assert result.levels[0].evaluated == len(catalog)
    assert result.pruned > 0
    assert result.fully_scored < len(catalog)


def test_default_seed_pool_covers_small_catalogs(catalog, query):
    """With the default pool (>= 64) a 48-summary catalog is fully
    seeded: nothing pruned, ranking identical."""
    result = JoinSearchEngine(catalog).search_dataset(query, k=5, prune=True)
    assert result.pruned == 0
    assert result.fully_scored == len(catalog)


def test_region_search_matches_manual_ranking(catalog):
    region = TileQuery(4, 18, 2, 12)
    engine = JoinSearchEngine(catalog)
    for metric in REGION_METRICS:
        result = engine.search_region(region, metric=metric, k=6)
        from repro.joins import score_region_batch

        values = score_region_batch(catalog.stacked(), region).metric(metric)
        order = np.lexsort((np.arange(len(values)), -values))[:6]
        assert np.array_equal(result.indices, order)
        assert np.array_equal(result.scores, values[order])
        assert result.mode == "region"
        assert result.pruned == 0


def test_sharded_scan_is_bit_identical(catalog, query):
    mono = JoinSearchEngine(catalog).search_dataset(query, k=48, prune=False)
    with JoinSearchEngine(catalog, num_shards=4) as engine:
        sharded = engine.search_dataset(query, k=48, prune=False)
    assert np.array_equal(mono.indices, sharded.indices)
    assert np.array_equal(mono.scores, sharded.scores)


def test_cache_hit_and_generation_invalidation(catalog, query):
    cache = JoinScoreCache()
    engine = JoinSearchEngine(catalog, cache=cache)
    first = engine.search_dataset(query, k=5)
    assert not first.cache_hit
    second = engine.search_dataset(query, k=5)
    assert second.cache_hit
    assert np.array_equal(first.indices, second.indices)
    assert cache.stats()["hits"] == 1

    # a registration bumps the generation: the old entry no longer matches
    rng = np.random.default_rng(3)
    catalog.register(
        "late", ExactEvaluator(random_dataset(rng, GRID, 10, name="late"), GRID)
    )
    third = engine.search_dataset(query, k=5)
    assert not third.cache_hit
    assert third.generation == catalog.generation


def test_cache_distinguishes_parameters(catalog, query):
    cache = JoinScoreCache()
    engine = JoinSearchEngine(catalog, cache=cache)
    engine.search_dataset(query, k=5)
    miss_variants = [
        lambda: engine.search_dataset(query, k=6),
        lambda: engine.search_dataset(query, metric="containment", k=5),
        lambda: engine.search_dataset(query, k=5, prune=False),
    ]
    for run in miss_variants:
        assert not run().cache_hit


def test_instrumentation_records_search(catalog, query):
    instr = JoinInstrumentation()
    engine = JoinSearchEngine(catalog, instrumentation=instr)
    result = engine.search_dataset(query, k=5)
    assert instr.searches.labels(mode="dataset", metric="overlap").value == 1.0
    scored = instr.candidates.labels(mode="dataset", outcome="scored").value
    pruned = instr.candidates.labels(mode="dataset", outcome="pruned").value
    assert scored == result.fully_scored
    assert pruned == result.pruned
    assert scored + pruned == len(catalog)
    assert instr.catalog_summaries.value == len(catalog)

    engine.search_region(TileQuery(0, 4, 0, 4), k=3)
    assert instr.searches.labels(mode="region", metric="intersect_mass").value == 1.0


def test_empty_catalog_returns_empty_ranking(query):
    engine = JoinSearchEngine(SummaryCatalog(GRID))
    result = engine.search_dataset(query, k=5)
    assert result.indices.size == 0
    assert result.candidates == 0


def test_k_larger_than_catalog(catalog, query):
    result = JoinSearchEngine(catalog).search_dataset(query, k=1000)
    assert result.indices.size == len(catalog)
    # full ranking is sorted best-first
    assert (np.diff(result.scores) <= 0.0).all()


def test_validation_errors(catalog, query):
    engine = JoinSearchEngine(catalog)
    with pytest.raises(ValueError, match="unknown dataset metric"):
        engine.search_dataset(query, metric="bogus")
    with pytest.raises(ValueError, match="unknown region metric"):
        engine.search_region(TileQuery(0, 1, 0, 1), metric="overlap")
    with pytest.raises(ValueError, match="k must be"):
        engine.search_dataset(query, k=0)
    with pytest.raises(ValueError, match="num_shards"):
        JoinSearchEngine(catalog, num_shards=0)

    other_grid = Grid(GRID.extent, 12, 8)
    rng = np.random.default_rng(5)
    foreign = JoinSketch.from_dataset(random_dataset(rng, other_grid, 5), other_grid)
    with pytest.raises(CatalogAlignmentError):
        engine.search_dataset(foreign)
