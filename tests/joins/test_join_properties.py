"""Property suite for the join-search kernels (deliverable: batch kernels
bit-identical to the scalar reference across all four estimator families,
and pyramid-pruned top-k equal to the exhaustive top-k)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datasets.base import RectDataset
from repro.euler import EulerApprox, EulerHistogram, MEulerApprox, SEulerApprox
from repro.exact.evaluator import ExactEvaluator
from repro.geometry.rect import Rect
from repro.grid.grid import Grid
from repro.grid.tiles_math import TileQuery
from repro.joins import (
    DATASET_METRICS,
    JoinSearchEngine,
    JoinSketch,
    SummaryCatalog,
    coarsen_ladder,
    score_dataset_batch,
    score_dataset_scalar,
    score_region_batch,
    score_region_scalar,
)

GRID = Grid(Rect(0.0, 16.0, 0.0, 8.0), 16, 8)
FAMILIES = ("seuler", "euler", "meuler", "exact")

COMMON = dict(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def make_dataset(draw, n, name):
    cx = draw_array(draw, n, 0.0, 16.0)
    cy = draw_array(draw, n, 0.0, 8.0)
    w = draw_array(draw, n, 0.0, 6.0)
    h = draw_array(draw, n, 0.0, 4.0)
    x_lo = np.clip(cx - w / 2, 0.0, 16.0)
    x_hi = np.clip(cx + w / 2, 0.0, 16.0)
    y_lo = np.clip(cy - h / 2, 0.0, 8.0)
    y_hi = np.clip(cy + h / 2, 0.0, 8.0)
    return RectDataset(x_lo, x_hi, y_lo, y_hi, GRID.extent, name=name)


def draw_array(draw, n, lo, hi):
    return np.array(
        draw(
            st.lists(
                st.floats(lo, hi, allow_nan=False, allow_infinity=False),
                min_size=n,
                max_size=n,
            )
        )
    )


def build_estimator(dataset, family):
    if family == "exact":
        return ExactEvaluator(dataset, GRID)
    if family == "meuler":
        return MEulerApprox(dataset, GRID, [1.0, 9.0])
    hist = EulerHistogram.from_dataset(dataset, GRID)
    return SEulerApprox(hist) if family == "seuler" else EulerApprox(hist)


@st.composite
def catalog_and_query(draw, family):
    n_summaries = draw(st.integers(min_value=1, max_value=5))
    catalog = SummaryCatalog(GRID)
    for i in range(n_summaries):
        n = draw(st.integers(min_value=0, max_value=12))
        dataset = make_dataset(draw, n, f"d{i}")
        catalog.register(f"d{i}", build_estimator(dataset, family))
    query = JoinSketch.from_estimator(
        build_estimator(make_dataset(draw, draw(st.integers(1, 12)), "q"), family),
        GRID,
        name="q",
    )
    return catalog, query


@pytest.mark.parametrize("family", FAMILIES)
@settings(**COMMON)
@given(data=st.data())
def test_dataset_batch_bit_identical_to_scalar(family, data):
    catalog, query = data.draw(catalog_and_query(family))
    stacked = catalog.stacked()
    batch = score_dataset_batch(stacked, query)
    for i in range(len(stacked)):
        overlap, containment, coverage = score_dataset_scalar(stacked, query, i)
        assert batch.overlap[i] == overlap
        assert batch.containment[i] == containment
        assert batch.coverage[i] == coverage


@pytest.mark.parametrize("family", FAMILIES)
@settings(**COMMON)
@given(data=st.data())
def test_region_batch_bit_identical_to_scalar(family, data):
    catalog, _ = data.draw(catalog_and_query(family))
    stacked = catalog.stacked()
    x_lo = data.draw(st.integers(0, GRID.n1 - 1))
    x_hi = data.draw(st.integers(x_lo + 1, GRID.n1))
    y_lo = data.draw(st.integers(0, GRID.n2 - 1))
    y_hi = data.draw(st.integers(y_lo + 1, GRID.n2))
    region = TileQuery(x_lo, x_hi, y_lo, y_hi)
    batch = score_region_batch(stacked, region)
    for i in range(len(stacked)):
        mass, contained, containing, coverage = score_region_scalar(stacked, region, i)
        assert batch.intersect_mass[i] == mass
        assert batch.contained_mass[i] == contained
        assert batch.containing_mass[i] == containing
        assert batch.coverage[i] == coverage


@settings(**COMMON)
@given(data=st.data())
def test_pruned_topk_equals_exhaustive_topk(data):
    family = data.draw(st.sampled_from(FAMILIES))
    metric = data.draw(st.sampled_from(DATASET_METRICS))
    k = data.draw(st.integers(1, 8))
    catalog = SummaryCatalog(GRID)
    n_summaries = data.draw(st.integers(2, 10))
    for i in range(n_summaries):
        n = data.draw(st.integers(0, 10))
        catalog.register(f"d{i}", build_estimator(make_dataset(data.draw, n, f"d{i}"), family))
    query = JoinSketch.from_estimator(
        build_estimator(make_dataset(data.draw, data.draw(st.integers(1, 10)), "q"), family),
        GRID,
        name="q",
    )
    # seed_pool=k keeps the planner's seed set minimal so pruning paths
    # are genuinely exercised on these small catalogs
    engine = JoinSearchEngine(catalog, seed_pool=k)
    pruned = engine.search_dataset(query, metric=metric, k=k, prune=True)
    exhaustive = engine.search_dataset(query, metric=metric, k=k, prune=False)
    assert np.array_equal(pruned.indices, exhaustive.indices)
    assert np.array_equal(pruned.scores, exhaustive.scores)
    assert pruned.fully_scored + pruned.pruned == pruned.candidates


@settings(**COMMON)
@given(data=st.data())
def test_coarse_bound_dominates_exact_score(data):
    """Every pyramid level's bound is >= the exact level-0 score."""
    family = data.draw(st.sampled_from(FAMILIES))
    metric = data.draw(st.sampled_from(DATASET_METRICS))
    catalog, query = data.draw(catalog_and_query(family))
    stacked = catalog.stacked()
    if len(stacked) == 0:
        return
    exact = score_dataset_batch(stacked, query).metric(metric)
    q_levels = coarsen_ladder(query.channels, len(stacked.levels))
    from repro.joins.scoring import _coverage_denominator

    denom = _coverage_denominator(query)
    for level, q_level in zip(stacked.levels, q_levels):
        bound = JoinSearchEngine._bound(level, q_level, metric, denom, None)
        assert (bound >= exact - 1e-9).all()
