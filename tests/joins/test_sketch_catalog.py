"""Sketch extraction and catalog stacking: shapes, dtypes, alignment,
generations and the coarsening ladder."""

import numpy as np
import pytest

from repro.errors import BrowseError, CatalogAlignmentError
from repro.euler.histogram import EulerHistogram
from repro.euler.simple import SEulerApprox
from repro.exact.evaluator import ExactEvaluator
from repro.geometry.rect import Rect
from repro.grid.grid import Grid
from repro.grid.tiles_math import TileQuery
from repro.joins import (
    CHANNELS,
    JoinSketch,
    SummaryCatalog,
    coarsen_channel,
    level_shapes,
)

from tests.conftest import random_dataset


@pytest.fixture
def reference() -> Grid:
    return Grid(Rect(0.0, 12.0, 0.0, 8.0), 12, 8)


def test_exact_sketch_matches_per_cell_counts(reference, rng):
    data = random_dataset(rng, reference, 60)
    evaluator = ExactEvaluator(data, reference)
    sketch = JoinSketch.from_dataset(data, reference)
    for i in (0, 3, 11):
        for j in (0, 2, 7):
            counts = evaluator.estimate(TileQuery(i, i + 1, j, j + 1))
            assert sketch.n_ii[i, j] == counts.n_intersect
            assert sketch.n_cs[i, j] == counts.n_cs
            assert sketch.n_cd[i, j] == counts.n_cd
            assert sketch.occupancy[i, j] == (1.0 if counts.n_intersect > 0 else 0.0)
    assert sketch.num_objects == len(data)


def test_sketch_from_finer_summary_grid(reference, rng):
    """A summary at 4x the reference resolution sketches onto the same
    reference cells with identical intersect counts (exact channel)."""
    fine = Grid(reference.extent, 48, 32)
    data = random_dataset(rng, reference, 40)
    coarse = JoinSketch.from_estimator(ExactEvaluator(data, reference), reference)
    from_fine = JoinSketch.from_estimator(ExactEvaluator(data, fine), reference)
    # n_ii at reference-cell granularity is resolution-independent: both
    # grids snap object interiors against the same reference-cell spans.
    assert np.array_equal(coarse.n_ii, from_fine.n_ii)


def test_channels_are_clamped_nonnegative(reference, rng):
    data = random_dataset(rng, reference, 200, degenerate_fraction=0.3)
    sketch = JoinSketch.from_estimator(
        SEulerApprox(EulerHistogram.from_dataset(data, reference)), reference
    )
    for channel in CHANNELS:
        arr = getattr(sketch, channel)
        assert arr.dtype == np.float64
        assert arr.flags["C_CONTIGUOUS"]
        assert (arr >= 0.0).all()


def test_misaligned_extent_raises_structured_error(reference, rng):
    other = Grid(Rect(0.0, 10.0, 0.0, 8.0), 12, 8)
    data = random_dataset(rng, other, 10)
    est = ExactEvaluator(data, other)
    with pytest.raises(CatalogAlignmentError) as excinfo:
        SummaryCatalog(reference).register("bad", est)
    assert isinstance(excinfo.value, BrowseError)
    assert isinstance(excinfo.value, ValueError)
    assert excinfo.value.summary_name == "bad"
    assert excinfo.value.reference_cells == (12, 8)


def test_non_integer_refinement_raises(reference, rng):
    odd = Grid(reference.extent, 18, 8)  # 18 % 12 != 0
    data = random_dataset(rng, odd, 10)
    with pytest.raises(CatalogAlignmentError) as excinfo:
        SummaryCatalog(reference).register("odd", ExactEvaluator(data, odd))
    assert excinfo.value.summary_cells == (18, 8)


def test_duplicate_name_rejected(reference, rng):
    catalog = SummaryCatalog(reference)
    data = random_dataset(rng, reference, 10)
    catalog.register("a", ExactEvaluator(data, reference))
    with pytest.raises(ValueError, match="already registered"):
        catalog.register("a", ExactEvaluator(data, reference))


def test_register_bumps_generation_and_rebuilds_stacking(reference, rng):
    catalog = SummaryCatalog(reference)
    assert catalog.generation == 0
    for i in range(3):
        data = random_dataset(rng, reference, 20, name=f"d{i}")
        catalog.register(f"d{i}", ExactEvaluator(data, reference))
    assert catalog.generation == 3
    first = catalog.stacked()
    assert first is catalog.stacked()  # cached
    catalog.register("d3", ExactEvaluator(random_dataset(rng, reference, 5), reference))
    second = catalog.stacked()
    assert second is not first
    assert second.generation == 4
    assert len(second) == 4


def test_stacked_layout_and_cubes(reference, rng):
    catalog = SummaryCatalog(reference)
    datasets = [random_dataset(rng, reference, 30, name=f"d{i}") for i in range(5)]
    for i, data in enumerate(datasets):
        catalog.register(f"d{i}", ExactEvaluator(data, reference))
    stacked = catalog.stacked()
    for channel in CHANNELS:
        block = stacked.blocks[channel]
        assert block.shape == (5, 12, 8)
        assert block.dtype == np.float64
        assert block.flags["C_CONTIGUOUS"]
        # each row is exactly the per-summary sketch
        for i in range(5):
            assert np.array_equal(block[i], getattr(catalog[i], channel))
        # the cube answers any aligned region with four gathers
        cube = stacked.cubes[channel]
        assert cube.shape == (5, 13, 9)
        region_sum = cube[:, 9, 6] - cube[:, 2, 6] - cube[:, 9, 1] + cube[:, 2, 1]
        direct = block[:, 2:9, 1:6].sum(axis=(1, 2))
        np.testing.assert_allclose(region_sum, direct)


def test_level_shapes_and_coarsening_sums(reference, rng):
    assert level_shapes(12, 8, min_cells=4) == [(12, 8), (6, 4), (3, 2)]
    assert level_shapes(32, 16) == [(32, 16), (16, 8), (8, 4), (4, 2)]
    assert level_shapes(5, 3, min_cells=1) == [(5, 3), (3, 2), (2, 1), (1, 1)]

    block = rng.random((4, 12, 8))
    coarse = coarsen_channel(block)
    assert coarse.shape == (4, 6, 4)
    # every coarse cell is the exact sum of its 2x2 descendants
    np.testing.assert_allclose(
        coarse, block.reshape(4, 6, 2, 4, 2).sum(axis=(2, 4))
    )


def test_catalog_levels_preserve_total_mass(reference, rng):
    catalog = SummaryCatalog(reference)
    for i in range(3):
        catalog.register(
            f"d{i}", ExactEvaluator(random_dataset(rng, reference, 25), reference)
        )
    stacked = catalog.stacked()
    for channel in CHANNELS:
        totals = [level[channel].sum(axis=(1, 2)) for level in stacked.levels]
        for level_totals in totals[1:]:
            np.testing.assert_allclose(level_totals, totals[0])


def test_empty_catalog_stacks(reference):
    stacked = SummaryCatalog(reference).stacked()
    assert len(stacked) == 0
    assert stacked.blocks["n_ii"].shape == (0, 12, 8)
