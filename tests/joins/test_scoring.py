"""Batch scoring kernels: hand-computed values and scalar-reference parity."""

import numpy as np
import pytest

from repro.exact.evaluator import ExactEvaluator
from repro.geometry.rect import Rect
from repro.grid.grid import Grid
from repro.grid.tiles_math import TileQuery
from repro.joins import (
    DATASET_METRICS,
    JoinSketch,
    SummaryCatalog,
    score_dataset_batch,
    score_dataset_scalar,
    score_region_batch,
    score_region_scalar,
)

from tests.conftest import random_dataset


@pytest.fixture
def reference() -> Grid:
    return Grid(Rect(0.0, 12.0, 0.0, 8.0), 12, 8)


@pytest.fixture
def catalog(reference, rng):
    cat = SummaryCatalog(reference)
    for i in range(8):
        data = random_dataset(rng, reference, 40 + 10 * i, name=f"d{i}")
        cat.register(f"d{i}", ExactEvaluator(data, reference))
    return cat


@pytest.fixture
def query(reference, rng):
    return JoinSketch.from_dataset(
        random_dataset(rng, reference, 50, name="query"), reference, name="query"
    )


def test_dataset_scores_hand_computed(reference, rng):
    """Self-overlap of a dataset equals the sum of its own n_ii channel."""
    data = random_dataset(rng, reference, 30)
    sketch = JoinSketch.from_dataset(data, reference)
    catalog = SummaryCatalog(reference)
    catalog.register_sketch(sketch)
    scores = score_dataset_batch(catalog.stacked(), sketch)
    assert scores.overlap[0] == sketch.n_ii.sum()
    assert scores.containment[0] == np.minimum(sketch.n_ii, sketch.n_cs).sum()
    assert scores.coverage[0] == 1.0  # identical occupancy footprint


def test_disjoint_sketches_score_zero(reference):
    left = np.zeros((12, 8))
    left[:6] = 3.0
    right = np.zeros((12, 8))
    right[6:] = 2.0
    occ_l, occ_r = (left > 0).astype(float), (right > 0).astype(float)
    a = JoinSketch(reference, left, left, left, occ_l, num_objects=10, name="a")
    b = JoinSketch(reference, right, right, right, occ_r, num_objects=10, name="b")
    catalog = SummaryCatalog(reference)
    catalog.register_sketch(a)
    scores = score_dataset_batch(catalog.stacked(), b)
    assert scores.overlap[0] == 0.0
    assert scores.containment[0] == 0.0
    assert scores.coverage[0] == 0.0


def test_dataset_batch_matches_scalar_bitwise(catalog, query):
    stacked = catalog.stacked()
    batch = score_dataset_batch(stacked, query)
    for i in range(len(stacked)):
        overlap, containment, coverage = score_dataset_scalar(stacked, query, i)
        # bit-identical, not approximately equal
        assert batch.overlap[i] == overlap
        assert batch.containment[i] == containment
        assert batch.coverage[i] == coverage


def test_dataset_batch_index_subset(catalog, query):
    stacked = catalog.stacked()
    full = score_dataset_batch(stacked, query)
    index = np.array([5, 1, 6], dtype=np.intp)
    subset = score_dataset_batch(stacked, query, index=index)
    for metric in DATASET_METRICS:
        assert np.array_equal(subset.metric(metric), full.metric(metric)[index])


def test_region_scores_hand_computed(reference, rng):
    data = random_dataset(rng, reference, 30)
    sketch = JoinSketch.from_dataset(data, reference)
    catalog = SummaryCatalog(reference)
    catalog.register_sketch(sketch)
    region = TileQuery(2, 9, 1, 6)
    scores = score_region_batch(catalog.stacked(), region)
    assert scores.intersect_mass[0] == sketch.n_ii[2:9, 1:6].sum()
    assert scores.contained_mass[0] == sketch.n_cs[2:9, 1:6].sum()
    assert scores.containing_mass[0] == sketch.n_cd[2:9, 1:6].sum()
    occupied = float(sketch.occupancy[2:9, 1:6].sum())
    assert scores.coverage[0] == occupied / region.area


def test_region_batch_matches_scalar_bitwise(catalog):
    stacked = catalog.stacked()
    for region in (TileQuery(0, 12, 0, 8), TileQuery(3, 4, 2, 3), TileQuery(1, 11, 0, 5)):
        batch = score_region_batch(stacked, region)
        for i in range(len(stacked)):
            mass, contained, containing, coverage = score_region_scalar(
                stacked, region, i
            )
            assert batch.intersect_mass[i] == mass
            assert batch.contained_mass[i] == contained
            assert batch.containing_mass[i] == containing
            assert batch.coverage[i] == coverage


def test_unknown_metric_rejected(catalog, query):
    scores = score_dataset_batch(catalog.stacked(), query)
    with pytest.raises((ValueError, AttributeError)):
        scores.metric("no_such_metric")
