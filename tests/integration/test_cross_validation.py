"""Cross-validation: every exact path in the library must agree with every
other, and the estimators must satisfy their structural invariants, on
randomised inputs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.beigel_tanin import BeigelTaninIntersect
from repro.baselines.cumulative_density import CumulativeDensity
from repro.euler.full import EulerApprox, QueryEdge
from repro.euler.histogram import EulerHistogram
from repro.euler.multi import MEulerApprox
from repro.euler.simple import SEulerApprox
from repro.exact.evaluator import ExactEvaluator
from repro.exact.store import ExactLevel2Store2D
from repro.exact.tiling import exact_tiling_counts
from repro.geometry.rect import Rect
from repro.grid.grid import Grid

from tests.conftest import brute_force_counts, random_dataset, random_query


@st.composite
def scenario(draw):
    seed = draw(st.integers(0, 100_000))
    n1 = draw(st.sampled_from([4, 6, 8]))
    n2 = draw(st.sampled_from([4, 6]))
    count = draw(st.integers(0, 80))
    return seed, n1, n2, count


@settings(max_examples=50, deadline=None)
@given(scenario())
def test_all_exact_paths_agree(params):
    """Five independent implementations of exact counting -- the scalar
    oracle, the vectorised evaluator, the 4-d store, the Euler histogram's
    n_ii and the CD baseline -- must produce identical numbers."""
    seed, n1, n2, count = params
    grid = Grid(Rect(0.0, float(n1), 0.0, float(n2)), n1, n2)
    rng = np.random.default_rng(seed)
    data = random_dataset(rng, grid, count, degenerate_fraction=0.3, aligned_fraction=0.4)

    evaluator = ExactEvaluator(data, grid)
    store = ExactLevel2Store2D(data, grid)
    hist = EulerHistogram.from_dataset(data, grid)
    cd = CumulativeDensity(data, grid)
    bt = BeigelTaninIntersect.from_histogram(hist)

    for _ in range(5):
        q = random_query(rng, grid)
        oracle = brute_force_counts(data, grid, q)
        assert evaluator.estimate(q) == oracle
        assert store.estimate(q) == oracle
        assert hist.intersect_count(q) == oracle.n_intersect
        assert cd.intersect_count(q) == oracle.n_intersect
        assert bt.intersect_count(q) == oracle.n_intersect


@settings(max_examples=40, deadline=None)
@given(scenario())
def test_estimator_structural_invariants(params):
    """For every estimator and random query: totals equal |S|, the
    disjoint count is exact, and all three Euler variants share one
    overlap estimate."""
    seed, n1, n2, count = params
    grid = Grid(Rect(0.0, float(n1), 0.0, float(n2)), n1, n2)
    rng = np.random.default_rng(seed)
    data = random_dataset(rng, grid, count, degenerate_fraction=0.2, aligned_fraction=0.3)

    hist = EulerHistogram.from_dataset(data, grid)
    estimators = [
        SEulerApprox(hist),
        EulerApprox(hist),
        EulerApprox(hist, QueryEdge.TOP),
        MEulerApprox(data, grid, [1.0, 4.0]),
    ]
    evaluator = ExactEvaluator(data, grid)

    for _ in range(5):
        q = random_query(rng, grid)
        truth = evaluator.estimate(q)
        overlaps = set()
        for estimator in estimators:
            counts = estimator.estimate(q)
            assert counts.total == pytest.approx(len(data))
            assert counts.n_d == truth.n_d  # N_d = |S| - n_ii is exact
            overlaps.add(round(counts.n_o, 9))
        assert len(overlaps) == 1  # shared N_o equation


@settings(max_examples=30, deadline=None)
@given(scenario(), st.sampled_from([1, 2]))
def test_tiling_matches_evaluator_everywhere(params, tile):
    seed, n1, n2, count = params
    grid = Grid(Rect(0.0, float(n1), 0.0, float(n2)), n1, n2)
    rng = np.random.default_rng(seed)
    data = random_dataset(rng, grid, count, degenerate_fraction=0.3, aligned_fraction=0.4)
    if n1 % tile or n2 % tile:
        return
    tiling = exact_tiling_counts(data, grid, tile, tile)
    evaluator = ExactEvaluator(data, grid)
    for tx in range(tiling.shape[0]):
        for ty in range(tiling.shape[1]):
            assert tiling.counts_at(tx, ty) == evaluator.estimate(tiling.query_at(tx, ty))


@settings(max_examples=30, deadline=None)
@given(scenario())
def test_s_euler_exact_for_subcell_data(params):
    """The headline guarantee: when every object fits inside one cell,
    S-EulerApprox answers every aligned query exactly."""
    seed, n1, n2, count = params
    grid = Grid(Rect(0.0, float(n1), 0.0, float(n2)), n1, n2)
    rng = np.random.default_rng(seed)
    data = random_dataset(
        rng, grid, count, max_size_cells=0.95, degenerate_fraction=0.3, aligned_fraction=0.0
    )
    estimator = SEulerApprox(EulerHistogram.from_dataset(data, grid))
    evaluator = ExactEvaluator(data, grid)
    for _ in range(5):
        q = random_query(rng, grid)
        assert estimator.estimate(q) == evaluator.estimate(q)
