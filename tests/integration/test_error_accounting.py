"""Exact error accounting for S-EulerApprox.

The S-EulerApprox errors are not noise -- they have a closed form.  Per
object, the outside-the-query bucket sum counts the Euler characteristic
of the object's exterior footprint:

- an object **within** the query contributes 0,
- a **container** contributes 0 (the loophole: annulus),
- a **crossover** (spans the query along exactly one axis while staying
  strictly inside it along the other) contributes 2,
- every other object meeting the exterior contributes 1.

Summing: ``n'_ei = N_d + N_o + X`` with ``X`` the crossover count, hence

    N_cs_est = N_cs + N_cd - X          (Eq. 16's exact error)
    N_o_est  = N_o + X                  (Eq. 17's exact error)

These identities must hold *exactly* for every dataset and aligned query.
Verifying them with an independent combinatorial crossover counter is a
complete audit of the histogram's bucket semantics, the prefix sums, and
the estimator algebra at once.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.euler.histogram import EulerHistogram
from repro.euler.multi import MEulerApprox
from repro.euler.simple import SEulerApprox
from repro.exact.evaluator import ExactEvaluator
from repro.geometry.rect import Rect
from repro.grid.grid import Grid

from tests.conftest import random_dataset, random_query


def _crossover_count(evaluator: ExactEvaluator, query) -> int:
    """Objects that span the query along exactly one axis while lying
    strictly inside the query's open span along the other: the only
    footprint shape whose exterior intersection has two pieces."""
    a_lo, a_hi = evaluator._a_lo, evaluator._a_hi
    b_lo, b_hi = evaluator._b_lo, evaluator._b_hi

    spans_x = (a_lo <= 2 * query.qx_lo - 1) & (a_hi >= 2 * query.qx_hi - 1)
    spans_y = (b_lo <= 2 * query.qy_lo - 1) & (b_hi >= 2 * query.qy_hi - 1)
    inside_x = (a_lo >= 2 * query.qx_lo) & (a_hi <= 2 * query.qx_hi - 2)
    inside_y = (b_lo >= 2 * query.qy_lo) & (b_hi <= 2 * query.qy_hi - 2)

    horizontal = spans_x & inside_y
    vertical = spans_y & inside_x
    return int(np.count_nonzero(horizontal | vertical))


@st.composite
def scenario(draw):
    seed = draw(st.integers(0, 100_000))
    n1 = draw(st.sampled_from([5, 8, 10]))
    n2 = draw(st.sampled_from([4, 6]))
    count = draw(st.integers(0, 100))
    return seed, n1, n2, count


@settings(max_examples=60, deadline=None)
@given(scenario())
def test_s_euler_error_identities(params):
    seed, n1, n2, count = params
    grid = Grid(Rect(0.0, float(n1), 0.0, float(n2)), n1, n2)
    rng = np.random.default_rng(seed)
    data = random_dataset(rng, grid, count, degenerate_fraction=0.2, aligned_fraction=0.3)

    estimator = SEulerApprox(EulerHistogram.from_dataset(data, grid))
    evaluator = ExactEvaluator(data, grid)

    for _ in range(6):
        query = random_query(rng, grid)
        truth = evaluator.estimate(query)
        crossovers = _crossover_count(evaluator, query)
        counts = estimator.estimate(query)

        assert counts.n_cs == truth.n_cs + truth.n_cd - crossovers
        assert counts.n_o == truth.n_o + crossovers
        assert counts.n_d == truth.n_d


@settings(max_examples=30, deadline=None)
@given(scenario())
def test_outside_sum_closed_form(params):
    """``n'_ei = N_d + N_o + X`` directly on the histogram primitive."""
    seed, n1, n2, count = params
    grid = Grid(Rect(0.0, float(n1), 0.0, float(n2)), n1, n2)
    rng = np.random.default_rng(seed)
    data = random_dataset(rng, grid, count, degenerate_fraction=0.3, aligned_fraction=0.4)

    hist = EulerHistogram.from_dataset(data, grid)
    evaluator = ExactEvaluator(data, grid)
    for _ in range(6):
        query = random_query(rng, grid)
        truth = evaluator.estimate(query)
        crossovers = _crossover_count(evaluator, query)
        assert hist.outside_sum(query) == truth.n_d + truth.n_o + crossovers


@settings(max_examples=25, deadline=None)
@given(scenario())
def test_m_euler_overlap_inherits_the_same_crossovers(params):
    """M-Euler's N_o equals truth plus the *same* global crossover count:
    banding redistributes objects but crossover pieces are per-object."""
    seed, n1, n2, count = params
    grid = Grid(Rect(0.0, float(n1), 0.0, float(n2)), n1, n2)
    rng = np.random.default_rng(seed)
    data = random_dataset(rng, grid, count, degenerate_fraction=0.2)

    multi = MEulerApprox(data, grid, [1.0, 4.0, 16.0])
    evaluator = ExactEvaluator(data, grid)
    for _ in range(5):
        query = random_query(rng, grid)
        truth = evaluator.estimate(query)
        crossovers = _crossover_count(evaluator, query)
        assert multi.estimate(query).n_o == pytest.approx(truth.n_o + crossovers)


def test_crossover_counter_spot_checks():
    grid = Grid(Rect(0.0, 10.0, 0.0, 8.0), 10, 8)
    from repro.datasets.base import RectDataset
    from repro.grid.tiles_math import TileQuery

    rects = [
        Rect(0.5, 9.5, 3.2, 3.8),   # horizontal crossover of a mid query
        Rect(3.2, 3.8, 0.5, 7.5),   # vertical crossover
        Rect(0.5, 9.5, 0.5, 7.5),   # container (not a crossover)
        Rect(3.1, 3.9, 3.1, 3.9),   # within
        Rect(0.2, 0.8, 0.2, 0.8),   # disjoint
    ]
    data = RectDataset.from_rects(rects, grid.extent)
    evaluator = ExactEvaluator(data, grid)
    assert _crossover_count(evaluator, TileQuery(3, 6, 2, 6)) == 2
    assert _crossover_count(evaluator, TileQuery(0, 10, 0, 8)) == 0
