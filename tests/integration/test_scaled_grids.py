"""Integration tests on grids with non-unit cells and shifted extents.

The paper's evaluation uses the 360x180 space with 1x1 cells, where world
coordinates equal cell units; a library bug that conflates the two would
be invisible there.  These tests run the full estimator stack on grids
with scaled and negative-origin extents.
"""

import numpy as np
import pytest

from repro.euler.full import EulerApprox
from repro.euler.histogram import EulerHistogram
from repro.euler.multi import MEulerApprox
from repro.euler.simple import SEulerApprox
from repro.exact.evaluator import ExactEvaluator
from repro.exact.tiling import exact_tiling_counts
from repro.geometry.rect import Rect
from repro.grid.grid import Grid

from tests.conftest import brute_force_counts, random_dataset, random_query

GRIDS = [
    Grid(Rect(-180.0, 180.0, -90.0, 90.0), 36, 18),    # 10-degree cells
    Grid(Rect(1000.0, 1480.0, -40.0, 200.0), 12, 8),   # 40x30-unit cells
    Grid(Rect(0.0, 1.2, 0.0, 0.8), 12, 8),             # 0.1-unit cells
]


@pytest.mark.parametrize("grid", GRIDS, ids=["shifted", "coarse", "fine"])
def test_exact_paths_agree_on_scaled_grids(grid, rng):
    data = random_dataset(rng, grid, 150, degenerate_fraction=0.2, aligned_fraction=0.3)
    evaluator = ExactEvaluator(data, grid)
    hist = EulerHistogram.from_dataset(data, grid)
    for _ in range(25):
        q = random_query(rng, grid)
        oracle = brute_force_counts(data, grid, q)
        assert evaluator.estimate(q) == oracle
        assert hist.intersect_count(q) == oracle.n_intersect


@pytest.mark.parametrize("grid", GRIDS, ids=["shifted", "coarse", "fine"])
def test_estimator_invariants_on_scaled_grids(grid, rng):
    data = random_dataset(rng, grid, 150)
    hist = EulerHistogram.from_dataset(data, grid)
    estimators = [
        SEulerApprox(hist),
        EulerApprox(hist),
        MEulerApprox(data, grid, [1.0, 9.0]),
    ]
    evaluator = ExactEvaluator(data, grid)
    for _ in range(15):
        q = random_query(rng, grid)
        truth = evaluator.estimate(q)
        for estimator in estimators:
            counts = estimator.estimate(q)
            assert counts.total == pytest.approx(len(data))
            assert counts.n_d == truth.n_d
            assert counts.n_o == pytest.approx(estimators[0].estimate(q).n_o)


@pytest.mark.parametrize("grid", GRIDS, ids=["shifted", "coarse", "fine"])
def test_m_euler_area_bands_use_cell_units(grid, rng):
    """The area thresholds are in unit cells: a sub-cell object must land
    in the lowest band regardless of the cell's world size."""
    cw, ch = grid.cell_width, grid.cell_height
    rects = [
        # Half-cell object and a 3x3-cell object.
        Rect(
            grid.extent.x_lo + 0.1 * cw,
            grid.extent.x_lo + 0.6 * cw,
            grid.extent.y_lo + 0.1 * ch,
            grid.extent.y_lo + 0.6 * ch,
        ),
        Rect(
            grid.extent.x_lo + 1.2 * cw,
            grid.extent.x_lo + 4.2 * cw,
            grid.extent.y_lo + 1.3 * ch,
            grid.extent.y_lo + 4.3 * ch,
        ),
    ]
    from repro.datasets.base import RectDataset
    from repro.euler.multi import area_partition

    data = RectDataset.from_rects(rects, grid.extent)
    groups = area_partition(data, grid, [1.0, 4.0])
    assert len(groups[0]) == 1  # the half-cell object
    assert len(groups[1]) == 1  # the 9-cell object


@pytest.mark.parametrize("grid", GRIDS, ids=["shifted", "coarse", "fine"])
def test_tiling_counts_on_scaled_grids(grid, rng):
    data = random_dataset(rng, grid, 120)
    tiling = exact_tiling_counts(data, grid, 4, 2)
    evaluator = ExactEvaluator(data, grid)
    for tx in range(tiling.shape[0]):
        for ty in range(tiling.shape[1]):
            assert tiling.counts_at(tx, ty) == evaluator.estimate(tiling.query_at(tx, ty))
