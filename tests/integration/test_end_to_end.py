"""End-to-end tests: the paper's qualitative findings must hold for the
full pipeline (generators -> histograms -> estimators -> metrics) at small
scale, and the public API must compose as documented."""

import numpy as np
import pytest

from repro import (
    EulerApprox,
    EulerHistogram,
    ExactEvaluator,
    GeoBrowsingService,
    Grid,
    MEulerApprox,
    SEulerApprox,
    TileQuery,
    adl_like,
    average_relative_error,
    ca_road_like,
    query_set,
    sp_skew,
    sz_skew,
)
from repro.exact import exact_tiling_counts
from repro.experiments.runner import estimate_tiling, tiling_errors


@pytest.fixture(scope="module")
def grid():
    return Grid.world_1deg()


@pytest.fixture(scope="module")
def datasets(grid):
    return {
        "sp_skew": sp_skew(5000, seed=11),
        "sz_skew": sz_skew(5000, seed=11),
        "adl": adl_like(8000, seed=11),
        "ca_road": ca_road_like(8000, seed=11),
    }


def _errors(data, grid, estimator, tile_size):
    truth = exact_tiling_counts(data, grid, tile_size, tile_size)
    return tiling_errors(truth, estimate_tiling(estimator, grid, tile_size))


class TestPaperFindings:
    def test_sp_skew_no_crossovers_above_object_size(self, grid, datasets):
        """Section 6.2: sp_skew objects are 3.6x1.8, so crossing is
        impossible for tiles of 4x4 and above -- N_o error exactly 0."""
        estimator = SEulerApprox(EulerHistogram.from_dataset(datasets["sp_skew"], grid))
        for n in (10, 4):
            errors = _errors(datasets["sp_skew"], grid, estimator, n)
            assert errors["n_o"] == 0.0
        # Below 4x4 crossovers appear.
        errors_small = _errors(datasets["sp_skew"], grid, estimator, 3)
        assert errors_small["n_o"] >= 0.0  # may be small but defined

    def test_sz_skew_squares_never_cross(self, grid, datasets):
        estimator = SEulerApprox(EulerHistogram.from_dataset(datasets["sz_skew"], grid))
        for n in (10, 3):
            assert _errors(datasets["sz_skew"], grid, estimator, n)["n_o"] == 0.0

    def test_s_euler_fails_on_large_object_datasets(self, grid, datasets):
        estimator = SEulerApprox(EulerHistogram.from_dataset(datasets["sz_skew"], grid))
        assert _errors(datasets["sz_skew"], grid, estimator, 10)["n_cs"] > 0.5

    def test_euler_improves_contains_on_adl(self, grid, datasets):
        hist = EulerHistogram.from_dataset(datasets["adl"], grid)
        s_err = _errors(datasets["adl"], grid, SEulerApprox(hist), 5)["n_cs"]
        e_err = _errors(datasets["adl"], grid, EulerApprox(hist), 5)["n_cs"]
        assert e_err < s_err

    def test_multi_euler_beats_euler_on_sz_skew(self, grid, datasets):
        data = datasets["sz_skew"]
        hist = EulerHistogram.from_dataset(data, grid)
        e_err = _errors(data, grid, EulerApprox(hist), 10)["n_cs"]
        m_err = _errors(data, grid, MEulerApprox(data, grid, [1, 9, 100]), 10)["n_cs"]
        assert m_err < e_err

    def test_ca_road_everything_is_accurate(self, grid, datasets):
        estimator = SEulerApprox(EulerHistogram.from_dataset(datasets["ca_road"], grid))
        errors = _errors(datasets["ca_road"], grid, estimator, 10)
        assert errors["n_cs"] < 0.01
        assert errors["n_o"] < 0.01


class TestPublicApiComposition:
    def test_quickstart_flow(self, grid, datasets):
        data = datasets["sp_skew"]
        estimator = SEulerApprox(EulerHistogram.from_dataset(data, grid))
        exact = ExactEvaluator(data, grid)
        tile = query_set(grid, 10)[100]
        est = estimator.estimate(tile)
        truth = exact.estimate(tile)
        assert est.n_d == truth.n_d
        assert abs(est.n_o - truth.n_o) <= 2

    def test_browsing_session(self, grid, datasets):
        data = datasets["adl"]
        service = GeoBrowsingService(
            MEulerApprox(data, grid, [1, 100]), grid
        )
        exact_service = GeoBrowsingService(ExactEvaluator(data, grid), grid)
        region = TileQuery(120, 240, 60, 120)
        est = service.browse(region, rows=6, cols=12, relation="contains")
        truth = exact_service.browse(region, rows=6, cols=12, relation="contains")
        assert est.counts.shape == truth.counts.shape
        assert average_relative_error(truth.counts, est.counts) < 0.25

    def test_metric_on_tiling_counts(self, grid, datasets):
        data = datasets["sz_skew"]
        truth = exact_tiling_counts(data, grid, 10, 10)
        estimated = estimate_tiling(
            SEulerApprox(EulerHistogram.from_dataset(data, grid)), grid, 10
        )
        are = average_relative_error(truth.n_o, estimated.n_o)
        assert are == 0.0


class TestScaleStability:
    def test_relative_errors_stable_across_dataset_size(self, grid):
        """The justification for running benchmarks below paper scale:
        ARE is a ratio and stays in the same regime as |S| grows."""
        errors = []
        for size in (2000, 8000):
            data = sz_skew(size, seed=3)
            estimator = SEulerApprox(EulerHistogram.from_dataset(data, grid))
            errors.append(_errors(data, grid, estimator, 10)["n_cs"])
        small, large = errors
        assert small > 0.5 and large > 0.5  # both in the "blown up" regime
