"""Unit tests for the lattice index algebra."""

import numpy as np
import pytest

from repro.grid.lattice import (
    lattice_shape,
    lattice_sign_matrix,
    query_boundary_slice,
    query_interior_slice,
)
from repro.grid.tiles_math import TileQuery


class TestLatticeShape:
    def test_shape(self):
        assert lattice_shape(3, 3) == (5, 5)
        assert lattice_shape(360, 180) == (719, 359)

    def test_single_cell(self):
        assert lattice_shape(1, 1) == (1, 1)

    def test_invalid(self):
        with pytest.raises(ValueError):
            lattice_shape(0, 3)


class TestSignMatrix:
    def test_pattern_3x3(self):
        signs = lattice_sign_matrix(2, 2)
        expected = np.array([[1, -1, 1], [-1, 1, -1], [1, -1, 1]], dtype=np.int8)
        np.testing.assert_array_equal(signs, expected)

    def test_faces_and_vertices_positive_edges_negative(self):
        signs = lattice_sign_matrix(4, 3)
        assert (signs[::2, ::2] == 1).all()    # faces
        assert (signs[1::2, 1::2] == 1).all()  # vertices
        assert (signs[1::2, ::2] == -1).all()  # vertical-line edges
        assert (signs[::2, 1::2] == -1).all()  # horizontal-line edges

    def test_sum_is_one(self):
        # V - E + F over the full interior lattice of an n1 x n2 region is
        # 1 (Corollary 4.1 applied to the whole data space).
        for n1, n2 in [(1, 1), (2, 3), (5, 4), (7, 7)]:
            assert int(lattice_sign_matrix(n1, n2).sum()) == 1


class TestSlices:
    def test_interior_slice_unit_query(self):
        q = TileQuery(2, 3, 1, 2)
        a, b = query_interior_slice(q)
        assert (a.start, a.stop) == (4, 5)
        assert (b.start, b.stop) == (2, 3)

    def test_interior_slice_matches_example(self):
        # Query covering cells [1,3) x [0,2): interior lattice 2..4 x 0..2.
        a, b = query_interior_slice(TileQuery(1, 3, 0, 2))
        assert (a.start, a.stop) == (2, 5)
        assert (b.start, b.stop) == (0, 3)

    def test_boundary_slice_interior_query(self):
        a, b = query_boundary_slice(TileQuery(1, 3, 1, 2), 5, 5)
        assert (a.start, a.stop) == (1, 6)
        assert (b.start, b.stop) == (1, 4)

    def test_boundary_slice_clipped_at_data_space(self):
        a, b = query_boundary_slice(TileQuery(0, 2, 0, 5), 5, 5)
        assert (a.start, a.stop) == (0, 4)
        assert (b.start, b.stop) == (0, 9)

    def test_boundary_contains_interior(self):
        for q in [TileQuery(0, 1, 0, 1), TileQuery(2, 4, 1, 5), TileQuery(0, 5, 0, 5)]:
            ai, bi = query_interior_slice(q)
            ab, bb = query_boundary_slice(q, 5, 5)
            assert ab.start <= ai.start and ai.stop <= ab.stop
            assert bb.start <= bi.start and bi.stop <= bb.stop
