"""Unit tests for TileQuery and aligned query conversion."""

import pytest

from repro.geometry.rect import Rect
from repro.grid.grid import Grid
from repro.grid.tiles_math import TileQuery, aligned_query_cells


class TestTileQuery:
    def test_basic(self):
        q = TileQuery(2, 5, 1, 4)
        assert q.width == 3
        assert q.height == 3
        assert q.area == 9

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            TileQuery(2, 2, 0, 1)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            TileQuery(-1, 2, 0, 1)

    def test_validate_against(self, small_grid):
        TileQuery(0, 12, 0, 8).validate_against(small_grid)
        with pytest.raises(ValueError, match="exceeds grid"):
            TileQuery(0, 13, 0, 8).validate_against(small_grid)

    def test_to_world(self, small_grid):
        q = TileQuery(1, 3, 2, 5)
        assert q.to_world(small_grid) == Rect(1.0, 3.0, 2.0, 5.0)

    def test_to_world_scaled(self):
        grid = Grid(Rect(0.0, 100.0, 0.0, 50.0), 10, 5)  # 10x10 cells
        assert TileQuery(1, 2, 0, 1).to_world(grid) == Rect(10.0, 20.0, 0.0, 10.0)


class TestAlignedQueryCells:
    def test_roundtrip(self, small_grid):
        q = TileQuery(3, 7, 1, 6)
        assert aligned_query_cells(small_grid, q.to_world(small_grid)) == q

    def test_rejects_misaligned(self, small_grid):
        with pytest.raises(ValueError, match="not aligned"):
            aligned_query_cells(small_grid, Rect(0.5, 3.0, 0.0, 2.0))

    def test_rejects_outside(self, small_grid):
        with pytest.raises(ValueError, match="outside the data space"):
            aligned_query_cells(small_grid, Rect(0.0, 13.0, 0.0, 2.0))

    def test_accepts_float_noise_within_tolerance(self, small_grid):
        q = aligned_query_cells(small_grid, Rect(1.0 + 1e-12, 3.0, 0.0, 2.0))
        assert q == TileQuery(1, 3, 0, 2)

    def test_scaled_grid(self):
        grid = Grid(Rect(-180.0, 180.0, -90.0, 90.0), 36, 18)  # 10-degree cells
        q = aligned_query_cells(grid, Rect(-180.0, -170.0, -90.0, -80.0))
        assert q == TileQuery(0, 1, 0, 1)
