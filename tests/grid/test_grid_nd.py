"""Tests for the d-dimensional grid and box query types."""

import numpy as np
import pytest

from repro.grid.grid_nd import BoxQuery, GridND


class TestGridND:
    def test_unit_cells(self):
        grid = GridND.unit_cells([4, 3, 2])
        assert grid.ndim == 3
        assert grid.num_cells == 24
        assert grid.cell_sizes == (1.0, 1.0, 1.0)
        assert grid.lattice_shape == (7, 5, 3)

    def test_world_scaled(self):
        grid = GridND(lows=(0.0, -90.0), highs=(360.0, 90.0), cells=(36, 18))
        assert grid.cell_sizes == (10.0, 10.0)
        np.testing.assert_allclose(grid.to_cell_units(1, np.array([-90.0, 0.0, 90.0])), [0, 9, 18])

    def test_validation(self):
        with pytest.raises(ValueError):
            GridND(lows=(), highs=(), cells=())
        with pytest.raises(ValueError):
            GridND(lows=(0.0,), highs=(0.0,), cells=(1,))
        with pytest.raises(ValueError):
            GridND(lows=(0.0, 0.0), highs=(1.0,), cells=(1,))
        with pytest.raises(ValueError):
            GridND(lows=(0.0,), highs=(1.0,), cells=(0,))


class TestBoxQuery:
    def test_basic(self):
        q = BoxQuery(lo=(0, 1, 2), hi=(2, 3, 4))
        assert q.ndim == 3
        assert q.volume == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            BoxQuery(lo=(), hi=())
        with pytest.raises(ValueError):
            BoxQuery(lo=(0, 0), hi=(1,))
        with pytest.raises(ValueError):
            BoxQuery(lo=(2,), hi=(2,))
        with pytest.raises(ValueError):
            BoxQuery(lo=(-1,), hi=(1,))

    def test_validate_against(self):
        grid = GridND.unit_cells([4, 4])
        BoxQuery(lo=(0, 0), hi=(4, 4)).validate_against(grid)
        with pytest.raises(ValueError, match="exceeds"):
            BoxQuery(lo=(0, 0), hi=(5, 4)).validate_against(grid)
        with pytest.raises(ValueError, match="3-d query"):
            BoxQuery(lo=(0, 0, 0), hi=(1, 1, 1)).validate_against(grid)
