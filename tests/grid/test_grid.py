"""Unit tests for the Grid specification."""

import numpy as np
import pytest

from repro.geometry.rect import Rect
from repro.grid.grid import Grid


@pytest.fixture
def grid():
    # Non-unit cells: extent [10,50]x[0,20], 20x10 cells of 2x2 world units.
    return Grid(Rect(10.0, 50.0, 0.0, 20.0), 20, 10)


class TestConstruction:
    def test_world_1deg(self):
        g = Grid.world_1deg()
        assert (g.n1, g.n2) == (360, 180)
        assert g.cell_width == g.cell_height == 1.0
        assert g.num_cells == 64_800
        assert g.lattice_shape == (719, 359)

    def test_rejects_empty_grid(self):
        with pytest.raises(ValueError):
            Grid(Rect(0.0, 1.0, 0.0, 1.0), 0, 5)

    def test_rejects_zero_area_extent(self):
        with pytest.raises(ValueError):
            Grid(Rect(0.0, 0.0, 0.0, 1.0), 1, 1)

    def test_cell_dimensions(self, grid):
        assert grid.cell_width == 2.0
        assert grid.cell_height == 2.0
        assert grid.cell_area == 4.0


class TestConversion:
    def test_world_to_cell_units(self, grid):
        assert grid.to_cell_units_x(10.0) == 0.0
        assert grid.to_cell_units_x(50.0) == 20.0
        assert grid.to_cell_units_y(13.0) == 6.5

    def test_roundtrip(self, grid):
        xs = np.linspace(10.0, 50.0, 17)
        back = grid.to_world_x(grid.to_cell_units_x(xs))
        np.testing.assert_allclose(back, xs)

    def test_rect_to_cell_units(self, grid):
        assert grid.rect_to_cell_units(Rect(12.0, 16.0, 2.0, 4.0)) == (1.0, 3.0, 1.0, 2.0)

    def test_vectorised_conversion(self, grid):
        ys = np.array([0.0, 10.0, 20.0])
        np.testing.assert_allclose(grid.to_cell_units_y(ys), [0.0, 5.0, 10.0])


class TestAlignment:
    def test_aligned(self, grid):
        assert grid.is_aligned(Rect(12.0, 16.0, 2.0, 6.0))

    def test_not_aligned(self, grid):
        assert not grid.is_aligned(Rect(12.0, 15.0, 2.0, 6.0))

    def test_tolerance(self, grid):
        assert grid.is_aligned(Rect(12.0 + 1e-12, 16.0, 2.0, 6.0))

    def test_cell_rect(self, grid):
        assert grid.cell_rect(0, 0) == Rect(10.0, 12.0, 0.0, 2.0)
        assert grid.cell_rect(19, 9) == Rect(48.0, 50.0, 18.0, 20.0)

    def test_cell_rect_out_of_range(self, grid):
        with pytest.raises(IndexError):
            grid.cell_rect(20, 0)

    def test_contains_rect(self, grid):
        assert grid.contains_rect(Rect(10.0, 50.0, 0.0, 20.0))
        assert not grid.contains_rect(Rect(9.0, 50.0, 0.0, 20.0))
