"""Tests for the request-trace span recorder."""

import threading

import pytest

from repro.obs.trace import RequestTrace


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def trace(clock):
    return RequestTrace(clock=clock)


class TestNesting:
    def test_parent_depth_and_start_order(self, trace, clock):
        with trace.span("browse"):
            clock.advance(1.0)
            with trace.span("resolve"):
                clock.advance(0.5)
            with trace.span("chunk"):
                clock.advance(2.0)
                with trace.span("attempt"):
                    clock.advance(0.25)
        names = [s.name for s in trace.spans]
        assert names == ["browse", "resolve", "chunk", "attempt"]
        browse, resolve, chunk, attempt = trace.spans
        assert browse.parent is None and browse.depth == 0
        assert resolve.parent == browse.index and resolve.depth == 1
        assert chunk.parent == browse.index and chunk.depth == 1
        assert attempt.parent == chunk.index and attempt.depth == 2

    def test_exact_durations_on_fake_clock(self, trace, clock):
        with trace.span("outer"):
            clock.advance(1.0)
            with trace.span("inner"):
                clock.advance(0.5)
            clock.advance(0.25)
        outer, inner = trace.spans
        assert outer.seconds == 1.75
        assert inner.seconds == 0.5
        assert trace.total_seconds == 1.75

    def test_sequential_siblings_share_a_parent(self, trace):
        with trace.span("root"):
            with trace.span("a"):
                pass
            with trace.span("b"):
                pass
        root, a, b = trace.spans
        assert a.parent == b.parent == root.index
        assert a.depth == b.depth == 1

    def test_open_span_reports_zero_seconds(self, trace, clock):
        cm = trace.span("open")
        cm.__enter__()
        clock.advance(5.0)
        (span,) = trace.spans
        assert span.end is None and span.seconds == 0.0
        cm.__exit__(None, None, None)
        assert span.seconds == 5.0


class TestAttrsAndErrors:
    def test_attrs_recorded(self, trace):
        with trace.span("browse", relation="overlap", rows=4):
            pass
        assert trace.spans[0].attrs == {"relation": "overlap", "rows": 4}

    def test_annotate_targets_innermost_open_span(self, trace):
        with trace.span("outer"):
            with trace.span("inner"):
                trace.annotate("tier", "Exact")
            trace.annotate("valid", True)
        outer, inner = trace.spans
        assert inner.attrs == {"tier": "Exact"}
        assert outer.attrs == {"valid": True}

    def test_annotate_without_open_span_raises(self, trace):
        with pytest.raises(RuntimeError, match="no open span"):
            trace.annotate("k", 1)

    def test_raising_body_closes_span_with_error_attr(self, trace, clock):
        with pytest.raises(ValueError):
            with trace.span("chunk"):
                clock.advance(1.0)
                raise ValueError("boom")
        (span,) = trace.spans
        assert span.attrs["error"] == "ValueError"
        assert span.end is not None and span.seconds == 1.0

    def test_stack_unwinds_after_error(self, trace):
        with pytest.raises(RuntimeError):
            with trace.span("a"):
                raise RuntimeError
        with trace.span("b"):
            pass
        assert trace.spans[1].parent is None  # "b" is a new root


class TestRendering:
    def test_render_tree(self, trace, clock):
        with trace.span("browse", relation="overlap"):
            clock.advance(0.002)
            with trace.span("resolve"):
                clock.advance(0.001)
        assert trace.render() == (
            "browse  3.000ms  [relation=overlap]\n"
            "  resolve  1.000ms"
        )

    def test_as_dict_is_json_safe(self, trace):
        import json

        with trace.span("browse", weird=object()):
            pass
        document = json.dumps(trace.as_dict())
        assert "browse" in document

    def test_empty_trace(self, trace):
        assert trace.spans == ()
        assert trace.total_seconds == 0.0
        assert trace.render() == ""


class TestThreads:
    def test_per_thread_stacks_keep_roots_separate(self, trace):
        """Spans opened on another thread must not become children of
        this thread's open span."""
        ready = threading.Event()

        def other() -> None:
            with trace.span("other-root"):
                pass
            ready.set()

        with trace.span("main-root"):
            t = threading.Thread(target=other)
            t.start()
            t.join()
        assert ready.is_set()
        by_name = {s.name: s for s in trace.spans}
        assert by_name["other-root"].parent is None
        assert by_name["other-root"].depth == 0
