"""Tests for the Prometheus-text and JSON exporters and their parsers."""

import json

import pytest

from repro.obs.export import (
    parse_prometheus_text,
    samples_from_json,
    to_json,
    to_json_dict,
    to_prometheus_text,
    to_text,
)
from repro.obs.registry import MetricsRegistry


@pytest.fixture
def populated():
    registry = MetricsRegistry()
    registry.counter(
        "repro_requests_total", help="Requests served", labels=("service",)
    ).labels(service="resilient").inc(3)
    registry.gauge("repro_margin_seconds", help="Deadline margin").set(-0.25)
    h = registry.histogram("repro_latency_seconds", buckets=(0.1, 1.0))
    for v in (0.05, 0.5, 2.0):
        h.observe(v)
    return registry


class TestPrometheusText:
    def test_help_and_type_lines(self, populated):
        text = to_prometheus_text(populated)
        assert "# HELP repro_requests_total Requests served" in text
        assert "# TYPE repro_requests_total counter" in text
        assert "# TYPE repro_latency_seconds histogram" in text

    def test_counter_sample_line(self, populated):
        assert 'repro_requests_total{service="resilient"} 3' in to_prometheus_text(populated)

    def test_histogram_expands_to_cumulative_buckets(self, populated):
        text = to_prometheus_text(populated)
        assert 'repro_latency_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_latency_seconds_bucket{le="1"} 2' in text
        assert 'repro_latency_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_latency_seconds_count 3" in text
        assert "repro_latency_seconds_sum 2.55" in text

    def test_negative_gauge(self, populated):
        assert "repro_margin_seconds -0.25" in to_prometheus_text(populated)

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total", labels=("k",)).labels(k='we"ird\\nv').inc()
        text = to_prometheus_text(registry)
        assert r'c_total{k="we\"ird\\nv"} 1' in text
        # and the parser undoes the quoting enough to keep the key stable
        assert len(parse_prometheus_text(text)) == 1

    def test_empty_registry(self):
        assert to_prometheus_text(MetricsRegistry()) == "\n"


class TestJson:
    def test_document_is_strict_json(self, populated):
        document = to_json(populated)
        parsed = json.loads(document)  # would raise on NaN/Infinity literals
        assert {f["name"] for f in parsed["metrics"]} == {
            "repro_requests_total",
            "repro_margin_seconds",
            "repro_latency_seconds",
        }

    def test_infinite_gauge_survives_strict_json(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(float("inf"))
        registry.gauge("h").set(float("-inf"))
        document = to_json(registry)
        json.loads(document)
        samples = samples_from_json(document)
        assert samples["g"] == float("inf")
        assert samples["h"] == float("-inf")

    def test_dict_form_matches_string_form(self, populated):
        assert samples_from_json(to_json_dict(populated)) == samples_from_json(
            to_json(populated)
        )


class TestRoundTripIdentity:
    def test_prometheus_and_json_flatten_identically(self, populated):
        """The acceptance criterion: both wire formats carry the same
        sample map, verified mechanically."""
        prom = parse_prometheus_text(to_prometheus_text(populated))
        doc = samples_from_json(to_json(populated))
        assert prom == doc
        assert prom  # non-trivial

    def test_identity_holds_with_many_label_combinations(self):
        registry = MetricsRegistry()
        c = registry.counter("ops_total", labels=("kind", "op", "outcome"))
        for kind in ("a", "b"):
            for op in ("load", "save"):
                for outcome in ("ok", "corrupt"):
                    c.labels(kind=kind, op=op, outcome=outcome).inc()
        h = registry.histogram("err", labels=("relation",), buckets=(1.0, 10.0))
        h.labels(relation="overlap").observe(5.0)
        prom = parse_prometheus_text(to_prometheus_text(registry))
        assert prom == samples_from_json(to_json(registry))
        assert len(prom) == 8 + (3 + 2)  # 8 counters + 3 buckets + sum/count


class TestHumanText:
    def test_one_line_per_sample(self, populated):
        text = to_text(populated)
        assert 'repro_requests_total{service="resilient"}  3' in text
        assert "repro_latency_seconds  count=3 sum=2.55 mean=0.85" in text

    def test_empty_registry(self):
        assert to_text(MetricsRegistry()) == ""
