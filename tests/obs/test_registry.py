"""Tests for the dependency-free metrics primitives."""

import threading

import pytest

from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_default_registry,
    set_default_registry,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_starts_at_zero_and_increments(self, registry):
        c = registry.counter("events_total")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative_increment(self, registry):
        c = registry.counter("events_total")
        with pytest.raises(ValueError, match="only go up"):
            c.inc(-1.0)

    def test_labelled_children_are_independent(self, registry):
        c = registry.counter("tiles_total", labels=("outcome",))
        c.labels(outcome="answered").inc(10)
        c.labels(outcome="nan").inc(2)
        assert c.labels(outcome="answered").value == 10.0
        assert c.labels(outcome="nan").value == 2.0

    def test_labelled_family_requires_labels_call(self, registry):
        c = registry.counter("tiles_total", labels=("outcome",))
        with pytest.raises(ValueError, match="labels"):
            c.inc()

    def test_wrong_label_names_rejected(self, registry):
        c = registry.counter("tiles_total", labels=("outcome",))
        with pytest.raises(ValueError):
            c.labels(tier="x")


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("margin")
        g.set(1.5)
        g.inc(0.5)
        g.dec(2.0)
        assert g.value == 0.0

    def test_can_go_negative(self, registry):
        g = registry.gauge("margin")
        g.dec(3.0)
        assert g.value == -3.0


class TestHistogram:
    def test_bucketing_is_cumulative(self, registry):
        h = registry.histogram("lat", buckets=(1.0, 2.0, 5.0))
        for v in (0.5, 1.5, 1.5, 10.0):
            h.observe(v)
        child = h._sole_child()
        assert child.cumulative_buckets() == [
            (1.0, 1), (2.0, 3), (5.0, 3), (float("inf"), 4),
        ]
        assert h.count == 4
        assert h.sum == 13.5

    def test_boundary_value_lands_in_its_bucket(self, registry):
        # le semantics: an observation equal to a bound counts under it.
        h = registry.histogram("lat", buckets=(1.0, 2.0))
        h.observe(1.0)
        assert h._sole_child().cumulative_buckets()[0] == (1.0, 1)

    def test_rejects_nan_observation(self, registry):
        h = registry.histogram("lat", buckets=(1.0,))
        with pytest.raises(ValueError, match="NaN"):
            h.observe(float("nan"))

    def test_rejects_bad_bucket_specs(self, registry):
        with pytest.raises(ValueError):
            registry.histogram("a", buckets=())
        with pytest.raises(ValueError):
            registry.histogram("b", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            registry.histogram("c", buckets=(1.0, float("inf")))

    def test_default_buckets_are_the_latency_schedule(self, registry):
        h = registry.histogram("lat")
        assert h.buckets == DEFAULT_LATENCY_BUCKETS


class TestRegistry:
    def test_redeclaration_is_idempotent(self, registry):
        a = registry.counter("x_total", labels=("k",))
        b = registry.counter("x_total", labels=("k",))
        assert a is b

    def test_conflicting_redeclaration_raises(self, registry):
        registry.counter("x_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("x_total", labels=("k",))

    def test_histogram_bucket_conflict_raises(self, registry):
        registry.histogram("h", buckets=(1.0,))
        with pytest.raises(ValueError, match="already registered"):
            registry.histogram("h", buckets=(1.0, 2.0))

    def test_invalid_names_rejected(self, registry):
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter("1bad")
        with pytest.raises(ValueError, match="invalid label name"):
            registry.counter("ok", labels=("bad-label",))
        with pytest.raises(ValueError, match="duplicate"):
            registry.counter("ok", labels=("a", "a"))

    def test_iteration_is_name_sorted(self, registry):
        registry.counter("zz")
        registry.gauge("aa")
        assert [f.name for f in registry] == ["aa", "zz"]

    def test_collect_shape(self, registry):
        registry.counter("c_total", help="help!", labels=("k",)).labels(k="v").inc()
        (family,) = registry.collect()
        assert family["name"] == "c_total"
        assert family["type"] == "counter"
        assert family["help"] == "help!"
        assert family["samples"] == [{"labels": {"k": "v"}, "value": 1.0}]

    def test_get(self, registry):
        c = registry.counter("x")
        assert registry.get("x") is c
        assert registry.get("y") is None


class TestDefaultRegistry:
    def test_install_and_restore(self):
        registry = MetricsRegistry()
        previous = set_default_registry(registry)
        try:
            assert get_default_registry() is registry
        finally:
            assert set_default_registry(previous) is registry
        assert get_default_registry() is previous


class TestConcurrency:
    def test_concurrent_mutation_loses_nothing(self):
        """Smoke test: hammer one registry from many threads; every
        increment and observation must land."""
        registry = MetricsRegistry()
        counter = registry.counter("hits_total", labels=("worker",))
        shared = registry.counter("shared_total")
        histogram = registry.histogram("work", buckets=(0.5, 1.5))
        n_threads, n_iter = 8, 500
        barrier = threading.Barrier(n_threads)

        def worker(idx: int) -> None:
            barrier.wait()
            mine = counter.labels(worker=str(idx))
            for _ in range(n_iter):
                mine.inc()
                shared.inc()
                histogram.observe(1.0)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert shared.value == n_threads * n_iter
        for i in range(n_threads):
            assert counter.labels(worker=str(i)).value == n_iter
        assert histogram.count == n_threads * n_iter
        assert histogram.sum == float(n_threads * n_iter)
        # Every observation of 1.0 is cumulative under both finite bounds.
        assert histogram._sole_child().cumulative_buckets()[-1][1] == n_threads * n_iter

    def test_concurrent_declaration_yields_one_family(self):
        registry = MetricsRegistry()
        results = []
        barrier = threading.Barrier(8)

        def declare() -> None:
            barrier.wait()
            results.append(registry.counter("shared_total"))

        threads = [threading.Thread(target=declare) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(r is results[0] for r in results)
