"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.datasets.base import RectDataset
from repro.euler.histogram import EulerHistogram


@pytest.fixture
def data_path(tmp_path):
    path = tmp_path / "data.npz"
    assert main(["generate", "sp_skew", "2000", "-o", str(path), "--seed", "3"]) == 0
    return path


@pytest.fixture
def hist_path(tmp_path, data_path):
    path = tmp_path / "hist.npz"
    assert main(["build", str(data_path), "-o", str(path), "--cells", "90", "45"]) == 0
    return path


class TestGenerate:
    def test_writes_dataset(self, data_path):
        data = RectDataset.load(data_path)
        assert len(data) == 2000
        assert data.name == "sp_skew"

    def test_deterministic_seed(self, tmp_path):
        a, b = tmp_path / "a.npz", tmp_path / "b.npz"
        main(["generate", "sz_skew", "500", "-o", str(a), "--seed", "9"])
        main(["generate", "sz_skew", "500", "-o", str(b), "--seed", "9"])
        import numpy as np

        np.testing.assert_array_equal(
            RectDataset.load(a).x_lo, RectDataset.load(b).x_lo
        )

    def test_rejects_bad_count(self, tmp_path, capsys):
        assert main(["generate", "adl", "0", "-o", str(tmp_path / "x.npz")]) == 2
        assert "count must be positive" in capsys.readouterr().err

    def test_rejects_unknown_dataset(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "nope", "10", "-o", str(tmp_path / "x.npz")])


class TestDescribe:
    def test_prints_stats(self, data_path, capsys):
        assert main(["describe", str(data_path)]) == 0
        out = capsys.readouterr().out
        assert "count" in out and "2000" in out
        assert "area_mean" in out


class TestBuild:
    def test_writes_histogram(self, hist_path):
        histogram = EulerHistogram.load(hist_path)
        assert histogram.num_objects == 2000
        assert histogram.grid.n1 == 90
        assert histogram.grid.n2 == 45

    def test_reports_progress(self, tmp_path, data_path, capsys):
        main(["build", str(data_path), "-o", str(tmp_path / "h.npz")])
        assert "bucket histogram" in capsys.readouterr().out


class TestBuildZoned:
    def test_zoned_build_is_bit_identical(self, tmp_path, data_path, hist_path):
        import numpy as np

        out = tmp_path / "zoned.npz"
        code = main(
            [
                "build", str(data_path), "-o", str(out),
                "--cells", "90", "45",
                "--zones", "16", "--chunk-size", "300", "--memory-mb", "8",
            ]
        )
        assert code == 0
        direct = EulerHistogram.load(hist_path)
        zoned = EulerHistogram.load(out)
        np.testing.assert_array_equal(zoned.buckets(), direct.buckets())
        assert zoned.num_objects == direct.num_objects

    def test_reports_the_zoned_pipeline(self, tmp_path, data_path, capsys):
        out = tmp_path / "zoned.npz"
        main(
            [
                "build", str(data_path), "-o", str(out),
                "--zones", "8", "--curve", "hilbert", "--chunk-size", "500",
            ]
        )
        printed = capsys.readouterr().out
        assert "8 hilbert zones" in printed
        assert "objects/s" in printed

    def test_streams_ndjson_without_npz(self, tmp_path, data_path, capsys):
        import json

        data = RectDataset.load(data_path)
        path = tmp_path / "objs.ndjson"
        with open(path, "w") as fh:
            for i in range(len(data)):
                fh.write(
                    json.dumps(
                        [data.x_lo[i], data.x_hi[i], data.y_lo[i], data.y_hi[i]]
                    )
                    + "\n"
                )
        out = tmp_path / "h.npz"
        extent = data.extent
        code = main(
            [
                "build", str(path), "-o", str(out),
                "--cells", "90", "45", "--zones", "4", "--chunk-size", "512",
                "--extent", str(extent.x_lo), str(extent.x_hi),
                str(extent.y_lo), str(extent.y_hi),
            ]
        )
        assert code == 0
        assert EulerHistogram.load(out).num_objects == len(data)

    def test_rejects_bad_flags(self, tmp_path, data_path, capsys):
        out = str(tmp_path / "h.npz")
        assert main(["build", str(data_path), "-o", out, "--zones", "-1"]) == 2
        assert "--zones" in capsys.readouterr().err
        assert main(
            ["build", str(data_path), "-o", out, "--zones", "4", "--chunk-size", "0"]
        ) == 2
        assert "--chunk-size" in capsys.readouterr().err
        assert main(
            ["build", str(data_path), "-o", out, "--zones", "4", "--parallel", "-2"]
        ) == 2
        assert "--parallel" in capsys.readouterr().err

    def test_rejects_unreadable_source(self, tmp_path, capsys):
        missing = tmp_path / "nope.ndjson"
        code = main(
            ["build", str(missing), "-o", str(tmp_path / "h.npz"), "--zones", "4"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestBrowse:
    def test_renders_raster(self, hist_path, capsys):
        code = main(
            [
                "browse",
                str(hist_path),
                "--region", "0", "360", "0", "180",
                "--rows", "3",
                "--cols", "6",
                "--relation", "overlap",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if not line.startswith("#")]
        assert len(lines) == 3
        assert "overlap counts" in out

    def test_misaligned_region_fails_cleanly(self, hist_path, capsys):
        code = main(
            [
                "browse",
                str(hist_path),
                "--region", "0.5", "360", "0", "180",
                "--rows", "2",
                "--cols", "2",
            ]
        )
        assert code == 2
        assert "not aligned" in capsys.readouterr().err

    def test_contains_relation(self, hist_path, capsys):
        code = main(
            [
                "browse",
                str(hist_path),
                "--region", "0", "360", "0", "180",
                "--rows", "3",
                "--cols", "2",
                "--relation", "contains",
            ]
        )
        assert code == 0
        # The whole space split in 4: every object is contained somewhere,
        # so the raster sums to the dataset size minus boundary-spanners.
        out = capsys.readouterr().out
        values = [int(v) for line in out.splitlines() if not line.startswith("#") for v in line.split()]
        assert 0 < sum(values) <= 2000


class TestStats:
    ARGS = ["--region", "0", "360", "0", "180", "--rows", "3", "--cols", "6"]

    def test_prints_raster_and_text_snapshot(self, hist_path, capsys):
        assert main(["stats", str(hist_path), *self.ARGS]) == 0
        out = capsys.readouterr().out
        assert "100% answered" in out
        assert "repro_browse_requests_total" in out
        # the histogram load itself shows up via the default registry
        assert 'repro_persistence_ops_total{kind="Euler histogram",op="load",outcome="ok"}' in out

    def test_prometheus_format_parses(self, hist_path, capsys):
        from repro.obs import parse_prometheus_text

        assert main(["stats", str(hist_path), *self.ARGS, "--format", "prom"]) == 0
        out = capsys.readouterr().out
        metrics_text = out[out.index("# HELP"):]
        samples = parse_prometheus_text(metrics_text)
        assert samples['repro_browse_requests_total{relation="overlap",service="resilient"}'] == 1

    def test_json_format_parses(self, hist_path, capsys):
        import json

        assert main(["stats", str(hist_path), *self.ARGS, "--format", "json"]) == 0
        out = capsys.readouterr().out
        document = json.loads(out[out.index("{"):])
        assert any(f["name"] == "repro_browse_requests_total" for f in document["metrics"])

    def test_trace_flag_prints_span_tree(self, hist_path, capsys):
        assert main(["stats", str(hist_path), *self.ARGS, "--trace"]) == 0
        out = capsys.readouterr().out
        assert "browse  " in out and "resolve" in out

    def test_dataset_enables_accuracy_probe(self, hist_path, data_path, capsys):
        code = main(["stats", str(hist_path), *self.ARGS, "--dataset", str(data_path)])
        assert code == 0
        assert "repro_accuracy_samples_total" in capsys.readouterr().out

    def test_default_registry_restored(self, hist_path):
        from repro.obs import get_default_registry

        before = get_default_registry()
        main(["stats", str(hist_path), *self.ARGS])
        assert get_default_registry() is before

    def test_corrupt_histogram_fails_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.npz"
        bad.write_bytes(b"not a zip")
        assert main(["stats", str(bad), *self.ARGS]) == 2
        assert "unreadable" in capsys.readouterr().err


class TestLoadgen:
    def test_replays_sessions_and_reports(self, hist_path, capsys):
        code = main(
            [
                "loadgen",
                str(hist_path),
                "--tenant",
                "acme:8",
                "--tenant",
                "beta",
                "--sessions",
                "3",
                "--deadline",
                "2.0",
                "--seed",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "requests" in out and "latency_p99_s" in out

    def test_json_report_parses(self, hist_path, capsys):
        import json

        code = main(["loadgen", str(hist_path), "--sessions", "2", "--json"])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["sessions"] == 2
        assert report["requests"] >= report["served"] > 0
        assert report["errors"] == 0

    def test_rejects_bad_flags(self, hist_path, capsys):
        assert main(["loadgen", str(hist_path), "--sessions", "0"]) == 2
        assert "must be positive" in capsys.readouterr().err

    def test_rejects_corrupt_histogram(self, tmp_path, capsys):
        bad = tmp_path / "bad.npz"
        bad.write_bytes(b"nope")
        assert main(["loadgen", str(bad), "--sessions", "1"]) == 2
        assert capsys.readouterr().err.startswith("error:")


class TestServe:
    def test_rejects_bad_flags(self, hist_path, capsys):
        assert main(["serve", str(hist_path), "--workers", "0"]) == 2
        assert "must be positive" in capsys.readouterr().err

    def test_rejects_bad_tenant_spec(self, hist_path, capsys):
        assert main(["serve", str(hist_path), "--tenant", ":4"]) == 2
        assert "empty tenant name" in capsys.readouterr().err

    def test_serves_one_request_over_tcp(self, hist_path):
        """Boot the real server on a free port, run one round trip
        through a TCP client, then shut down -- the CLI's serving path
        end to end."""
        import asyncio
        import json

        from repro.euler.histogram import EulerHistogram
        from repro.euler.simple import SEulerApprox
        from repro.gateway import Gateway, GatewayServer, TenantCatalog

        histogram = EulerHistogram.load(hist_path)
        catalog = TenantCatalog()
        catalog.register_dataset("default", SEulerApprox(histogram), histogram.grid)
        catalog.add_tenant("public")

        async def round_trip():
            gateway = Gateway(catalog, workers=1, max_pending=4)
            server = GatewayServer(gateway, port=0)
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(
                    json.dumps(
                        {
                            "tenant": "public",
                            "dataset": "default",
                            "region": [0, 360, 0, 180],
                            "rows": 3,
                            "cols": 2,
                            "deadline_s": 5.0,
                        }
                    ).encode()
                    + b"\n"
                )
                await writer.drain()
                response = json.loads(await reader.readline())
                writer.close()
                await writer.wait_closed()
                return response
            finally:
                await server.close()
                await gateway.close()

        response = asyncio.run(round_trip())
        assert response["status"] == "ok"
        assert response["valid_fraction"] == 1.0


class TestJoinSearch:
    ARGS = ["join-search", "--sources", "12", "--objects", "120", "--ref-cells", "16", "8"]

    def test_dataset_mode_prints_ranking(self, capsys):
        assert main(self.ARGS + ["--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "dataset search over 12 summaries" in out
        assert "pruned" in out
        assert "# 1" in out

    def test_region_mode_json(self, capsys):
        code = main(
            self.ARGS
            + ["--region", "0", "90", "0", "90", "--top", "3", "--json"]
        )
        assert code == 0
        import json

        doc = json.loads(capsys.readouterr().out)
        assert doc["mode"] == "region"
        assert doc["metric"] == "intersect_mass"
        assert len(doc["ranking"]) == 3
        assert doc["fully_scored"] == 12
        assert doc["pruned"] == 0

    def test_truth_reports_are_and_agreement(self, capsys):
        code = main(self.ARGS + ["--family", "exact", "--top", "4", "--truth"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ARE=0.0000" in out
        assert "agreement=1.00" in out

    def test_no_prune_scores_everything(self, capsys):
        assert main(self.ARGS + ["--no-prune", "--top", "3"]) == 0
        assert "scored 12, pruned 0" in capsys.readouterr().out

    def test_rejects_bad_flags(self, capsys):
        assert main(["join-search", "--sources", "0"]) == 2
        assert "--sources" in capsys.readouterr().err
        assert main(["join-search", "--top", "0"]) == 2
        assert "--top" in capsys.readouterr().err

    def test_rejects_unalignable_summary_grid(self, capsys):
        code = main(self.ARGS + ["--summary-cells", "24", "8"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_rejects_unknown_metric(self, capsys):
        code = main(self.ARGS + ["--metric", "bogus"])
        assert code == 2
        assert "bogus" in capsys.readouterr().err

    def test_seed_pool_controls_pruning(self, capsys):
        assert main(self.ARGS + ["--seed-pool", "4", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "pruned" in out
        assert main(["join-search", "--seed-pool", "0"]) == 2
        assert "--seed-pool" in capsys.readouterr().err
