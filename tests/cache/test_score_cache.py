"""JoinScoreCache: LRU behaviour, key sensitivity, catalog invalidation
and thread safety."""

import threading

from repro.cache import JoinScoreCache, JoinScoreKey


def key(**overrides):
    base = dict(
        catalog_id=1,
        generation=0,
        mode="dataset",
        metric="overlap",
        k=10,
        prune=True,
        query_fingerprint="abc",
    )
    base.update(overrides)
    return JoinScoreKey(**base)


class TestLookup:
    def test_miss_then_hit(self):
        cache = JoinScoreCache()
        assert cache.get(key()) is None
        cache.put(key(), "result")
        assert cache.get(key()) == "result"
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["entries"] == 1

    def test_every_key_field_discriminates(self):
        cache = JoinScoreCache()
        cache.put(key(), "result")
        for variant in (
            key(catalog_id=2),
            key(generation=1),
            key(mode="region"),
            key(metric="coverage"),
            key(k=5),
            key(prune=False),
            key(query_fingerprint="zzz"),
        ):
            assert cache.get(variant) is None


class TestEviction:
    def test_lru_evicts_oldest(self):
        cache = JoinScoreCache(max_entries=2)
        cache.put(key(k=1), "a")
        cache.put(key(k=2), "b")
        cache.get(key(k=1))  # refresh a
        cache.put(key(k=3), "c")  # evicts b
        assert cache.get(key(k=1)) == "a"
        assert cache.get(key(k=2)) is None
        assert cache.get(key(k=3)) == "c"
        assert cache.stats()["evictions"] == 1

    def test_invalidate_catalog(self):
        cache = JoinScoreCache()
        cache.put(key(catalog_id=1, k=1), "a")
        cache.put(key(catalog_id=1, k=2), "b")
        cache.put(key(catalog_id=2, k=1), "c")
        assert cache.invalidate_catalog(1) == 2
        assert len(cache) == 1
        assert cache.get(key(catalog_id=2, k=1)) == "c"
        assert cache.invalidate_catalog(99) == 0


class TestConcurrency:
    def test_parallel_put_get_is_safe(self):
        cache = JoinScoreCache(max_entries=64)

        def worker(tid):
            for i in range(200):
                k = key(catalog_id=tid, k=i % 8)
                cache.put(k, (tid, i))
                got = cache.get(k)
                assert got is None or got[0] == tid

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(cache) <= 64
