"""Unit tests for the tile-result cache: probe/store round trips, the
byte-bounded LRU, generation invalidation, and packing edge cases."""

import threading

import numpy as np
import pytest

from repro.cache import (
    CacheKey,
    TileResultCache,
    backing_summary,
    pack_tile_batch,
    summary_generation,
    summary_token,
)
from repro.cache.tile_cache import ENTRY_BYTES
from repro.grid.tiles_math import TileQueryBatch

KEY = CacheKey(summary_id=1, generation=0, estimator_key="est", field="n_o")


def make_batch(lo, hi=None):
    """A batch of unit tiles at x positions ``lo`` (one row of a raster)."""
    lo = np.asarray(lo, dtype=np.intp)
    hi = lo + 1 if hi is None else np.asarray(hi, dtype=np.intp)
    return TileQueryBatch(lo, hi, np.zeros_like(lo), np.ones_like(lo))


class TestProbeStore:
    def test_round_trip(self):
        cache = TileResultCache()
        batch = make_batch([3, 1, 7])
        values = np.array([30.0, 10.0, 70.0])
        assert cache.store(KEY, batch, values) == 3
        got, hit = cache.probe(KEY, batch)
        assert hit.all()
        np.testing.assert_array_equal(got, values)

    def test_partial_hit_reports_misses_as_nan(self):
        cache = TileResultCache()
        cache.store(KEY, make_batch([1, 2]), np.array([1.0, 2.0]))
        got, hit = cache.probe(KEY, make_batch([2, 5, 1]))
        np.testing.assert_array_equal(hit, [True, False, True])
        assert got[0] == 2.0 and got[2] == 1.0
        assert np.isnan(got[1])

    def test_counters(self):
        cache = TileResultCache()
        cache.store(KEY, make_batch([1]), np.array([1.0]))
        cache.probe(KEY, make_batch([1, 2, 3]))
        assert cache.hits == 1
        assert cache.misses == 2

    def test_mask_restricts_store(self):
        cache = TileResultCache()
        added = cache.store(
            KEY,
            make_batch([1, 2, 3]),
            np.array([1.0, 2.0, 3.0]),
            mask=np.array([True, False, True]),
        )
        assert added == 2
        _, hit = cache.probe(KEY, make_batch([1, 2, 3]))
        np.testing.assert_array_equal(hit, [True, False, True])

    def test_non_finite_values_never_cached(self):
        cache = TileResultCache()
        added = cache.store(
            KEY, make_batch([1, 2, 3]), np.array([1.0, np.nan, np.inf])
        )
        assert added == 1
        _, hit = cache.probe(KEY, make_batch([1, 2, 3]))
        np.testing.assert_array_equal(hit, [True, False, False])

    def test_duplicate_stores_keep_one_entry(self):
        cache = TileResultCache()
        batch = make_batch([4, 4, 4])
        assert cache.store(KEY, batch, np.array([7.0, 7.0, 7.0])) == 1
        assert cache.store(KEY, batch, np.array([7.0, 7.0, 7.0])) == 0
        assert len(cache) == 1

    def test_distinct_fields_do_not_collide(self):
        cache = TileResultCache()
        other = CacheKey(summary_id=1, generation=0, estimator_key="est", field="n_d")
        cache.store(KEY, make_batch([1]), np.array([5.0]))
        _, hit = cache.probe(other, make_batch([1]))
        assert not hit.any()

    def test_empty_batch(self):
        cache = TileResultCache()
        empty = make_batch([])
        assert cache.store(KEY, empty, np.empty(0)) == 0
        values, hit = cache.probe(KEY, empty)
        assert len(values) == 0 and len(hit) == 0

    def test_shape_mismatch_raises(self):
        cache = TileResultCache()
        with pytest.raises(ValueError):
            cache.store(KEY, make_batch([1, 2]), np.array([1.0]))


class TestPacking:
    def test_pack_is_injective_on_distinct_tiles(self):
        lo = np.arange(100, dtype=np.intp)
        packed = pack_tile_batch(make_batch(lo))
        assert len(np.unique(packed)) == 100

    def test_oversized_corners_are_uncachable(self):
        big = make_batch([1 << 16])
        assert pack_tile_batch(big) is None
        cache = TileResultCache()
        assert cache.store(KEY, big, np.array([1.0])) == 0
        values, hit = cache.probe(KEY, big)
        assert not hit.any() and np.isnan(values).all()


class TestLRU:
    def test_capacity_is_never_exceeded(self):
        cache = TileResultCache(10 * ENTRY_BYTES)
        for start in range(0, 40, 4):
            cache.store(
                KEY,
                make_batch(np.arange(start, start + 4)),
                np.arange(4, dtype=np.float64),
            )
            assert cache.nbytes <= cache.capacity_bytes
        assert cache.evictions > 0

    def test_recently_probed_entries_survive(self):
        cache = TileResultCache(8 * ENTRY_BYTES)
        cache.store(KEY, make_batch(np.arange(6)), np.arange(6, dtype=np.float64))
        # Touch 0 and 1, then overflow with four new entries.
        cache.probe(KEY, make_batch([0, 1]))
        cache.store(
            KEY, make_batch(np.arange(10, 14)), np.arange(4, dtype=np.float64)
        )
        _, hit = cache.probe(KEY, make_batch([0, 1]))
        assert hit.all(), "recently-touched entries were evicted before stale ones"

    def test_tiny_capacity_rejected(self):
        with pytest.raises(ValueError):
            TileResultCache(ENTRY_BYTES - 1)

    def test_clear(self):
        cache = TileResultCache()
        cache.store(KEY, make_batch([1, 2]), np.array([1.0, 2.0]))
        cache.clear()
        assert len(cache) == 0
        _, hit = cache.probe(KEY, make_batch([1, 2]))
        assert not hit.any()


class TestGenerationInvalidation:
    def test_new_generation_drops_stale_keyspace(self):
        cache = TileResultCache()
        cache.store(KEY, make_batch([1, 2]), np.array([1.0, 2.0]))
        bumped = CacheKey(
            summary_id=KEY.summary_id,
            generation=1,
            estimator_key=KEY.estimator_key,
            field=KEY.field,
        )
        _, hit = cache.probe(bumped, make_batch([1, 2]))
        assert not hit.any()
        assert cache.generation_invalidations == 1
        assert len(cache) == 0

    def test_store_under_new_generation_replaces(self):
        cache = TileResultCache()
        cache.store(KEY, make_batch([1]), np.array([1.0]))
        bumped = CacheKey(
            summary_id=KEY.summary_id,
            generation=2,
            estimator_key=KEY.estimator_key,
            field=KEY.field,
        )
        cache.store(bumped, make_batch([1]), np.array([9.0]))
        values, hit = cache.probe(bumped, make_batch([1]))
        assert hit.all() and values[0] == 9.0
        # The old generation is gone, not resurrectable.
        _, stale_hit = cache.probe(KEY, make_batch([1]))
        assert not stale_hit.any()


class TestKeys:
    def test_summary_token_is_stable_and_unique(self):
        class Summary:
            pass

        a, b = Summary(), Summary()
        assert summary_token(a) == summary_token(a)
        assert summary_token(a) != summary_token(b)

    def test_summary_generation_defaults_to_zero(self):
        assert summary_generation(object()) == 0

    def test_backing_summary_unwraps_histogram(self):
        class Hist:
            pass

        class Estimator:
            def __init__(self, hist):
                self.histogram = hist

        hist = Hist()
        assert backing_summary(Estimator(hist)) is hist

    def test_backing_summary_unwraps_adapters(self):
        class Hist:
            pass

        class Estimator:
            def __init__(self, hist):
                self.histogram = hist

        class Adapter:
            def __init__(self, inner):
                self.wrapped = inner

        hist = Hist()
        assert backing_summary(Adapter(Adapter(Estimator(hist)))) is hist

    def test_backing_summary_of_plain_estimator_is_itself(self):
        est = object()
        assert backing_summary(est) is est


class TestThreadSafety:
    def test_concurrent_probe_and_store(self):
        cache = TileResultCache(2048 * ENTRY_BYTES)
        errors = []

        def worker(offset):
            try:
                rng = np.random.default_rng(offset)
                for _ in range(50):
                    lo = rng.integers(0, 500, size=32).astype(np.intp)
                    batch = make_batch(lo)
                    cache.store(KEY, batch, lo.astype(np.float64) * 2.0)
                    values, hit = cache.probe(KEY, batch)
                    # Any hit must return the deterministic value.
                    if hit.any() and not np.array_equal(
                        values[hit], lo[hit].astype(np.float64) * 2.0
                    ):
                        errors.append("stale or corrupt value")
            except Exception as exc:  # pragma: no cover
                errors.append(repr(exc))

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert cache.nbytes <= cache.capacity_bytes
