"""Tests for the average-relative-error metric and scatter helpers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.metrics.errors import average_relative_error, per_query_errors, scatter_points


class TestAverageRelativeError:
    def test_paper_definition(self):
        # ARE = sum |r - e| / sum r  (Section 6.1.3).
        exact = np.array([10.0, 20.0, 0.0])
        est = np.array([12.0, 18.0, 1.0])
        assert average_relative_error(exact, est) == pytest.approx(5.0 / 30.0)

    def test_perfect_estimate(self):
        values = np.array([5.0, 0.0, 3.0])
        assert average_relative_error(values, values.copy()) == 0.0

    def test_zero_truth_zero_error(self):
        assert average_relative_error(np.zeros(4), np.zeros(4)) == 0.0

    def test_zero_truth_nonzero_error_is_inf(self):
        assert average_relative_error(np.zeros(3), np.array([0.0, 1.0, 0.0])) == float("inf")

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            average_relative_error(np.zeros(3), np.zeros(4))

    def test_2d_arrays_accepted(self):
        exact = np.array([[4.0, 4.0], [4.0, 4.0]])
        est = exact + 1.0
        assert average_relative_error(exact, est) == pytest.approx(0.25)

    def test_errors_weighted_by_mass_not_per_query(self):
        # One huge accurate query dominates many tiny wrong ones -- that
        # is exactly what the paper's metric intends.
        exact = np.array([1000.0, 1.0, 1.0])
        est = np.array([1000.0, 2.0, 0.0])
        assert average_relative_error(exact, est) == pytest.approx(2.0 / 1002.0)


positive_arrays = hnp.arrays(
    np.float64, st.integers(1, 30), elements=st.floats(0, 1e6, allow_nan=False)
)


@given(positive_arrays, positive_arrays)
def test_are_is_non_negative(a, b):
    n = min(len(a), len(b))
    assert average_relative_error(a[:n], b[:n]) >= 0.0


@given(positive_arrays)
def test_are_of_scaled_estimate(a):
    # Estimating 2r for truth r gives ARE exactly 1 (when truth > 0).
    if a.sum() > 0:
        assert average_relative_error(a, 2 * a) == pytest.approx(1.0)


class TestPerQueryErrors:
    def test_values(self):
        errors = per_query_errors(np.array([1.0, 5.0]), np.array([3.0, 4.0]))
        np.testing.assert_allclose(errors, [2.0, 1.0])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            per_query_errors(np.zeros(2), np.zeros(3))


class TestScatterPoints:
    def test_pairs(self):
        pts = scatter_points(np.array([1.0, 2.0]), np.array([1.5, 2.0]))
        assert pts == [(1.0, 1.5), (2.0, 2.0)]

    def test_drop_zero_truth(self):
        pts = scatter_points(
            np.array([0.0, 2.0, 0.0]), np.array([0.0, 2.5, 1.0]), drop_zero_truth=True
        )
        assert pts == [(2.0, 2.5), (0.0, 1.0)]

    def test_flattens_2d(self):
        pts = scatter_points(np.ones((2, 2)), np.ones((2, 2)))
        assert len(pts) == 4

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            scatter_points(np.zeros(2), np.zeros(3))


class TestNonFiniteInputs:
    """Non-finite inputs are rejected loudly, never propagated as NaN."""

    def test_nan_truth_raises_with_masking_hint(self):
        with pytest.raises(ValueError, match="BrowseResult.valid"):
            average_relative_error(np.array([1.0, np.nan]), np.array([1.0, 2.0]))

    def test_nan_estimate_raises(self):
        with pytest.raises(ValueError, match="non-finite"):
            average_relative_error(np.array([1.0, 2.0]), np.array([np.nan, 2.0]))

    def test_inf_estimate_raises(self):
        with pytest.raises(ValueError, match="non-finite"):
            per_query_errors(np.array([1.0]), np.array([np.inf]))

    def test_scatter_points_rejects_nan(self):
        with pytest.raises(ValueError, match="non-finite"):
            scatter_points(np.array([np.nan]), np.array([1.0]))

    def test_error_message_counts_bad_values(self):
        with pytest.raises(ValueError, match="2 non-finite"):
            average_relative_error(
                np.array([np.nan, 1.0, np.inf]), np.array([0.0, 1.0, 2.0])
            )

    def test_are_never_returns_nan(self):
        # The documented zero-truth semantics stay: 0.0 or inf, never NaN.
        assert average_relative_error(np.zeros(2), np.zeros(2)) == 0.0
        assert average_relative_error(np.zeros(2), np.ones(2)) == float("inf")
