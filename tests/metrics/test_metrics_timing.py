"""Tests for the timing helpers."""

import pytest

from repro.grid.tiles_math import TileQuery
from repro.metrics.timing import Timer, time_query_batch


def test_timer_measures_elapsed():
    with Timer() as t:
        total = sum(range(10_000))
    assert total == 49_995_000
    assert t.elapsed > 0.0


def test_timer_reusable():
    t = Timer()
    with t:
        pass
    first = t.elapsed
    with t:
        sum(range(100_000))
    assert t.elapsed >= 0.0
    assert t.elapsed != first or t.elapsed > 0


def test_time_query_batch_counts_calls():
    calls = []
    queries = [TileQuery(0, 1, 0, 1)] * 7
    elapsed = time_query_batch(lambda q: calls.append(q), queries, repeats=2)
    assert elapsed >= 0.0
    assert len(calls) == 14


def test_time_query_batch_takes_best_of_repeats():
    queries = [TileQuery(0, 1, 0, 1)] * 3
    single = time_query_batch(lambda q: None, queries, repeats=1)
    best = time_query_batch(lambda q: None, queries, repeats=5)
    assert best >= 0.0
    assert single >= 0.0


def test_time_query_batch_validates_repeats():
    with pytest.raises(ValueError):
        time_query_batch(lambda q: None, [], repeats=0)
