"""Tests for the timing helpers."""

import math

import pytest

from repro.grid.tiles_math import TileQuery
from repro.metrics.timing import Timer, time_query_batch


def test_timer_measures_elapsed():
    with Timer() as t:
        total = sum(range(10_000))
    assert total == 49_995_000
    assert t.elapsed > 0.0


def test_timer_reusable():
    t = Timer()
    with t:
        pass
    first = t.elapsed
    with t:
        sum(range(100_000))
    assert t.elapsed >= 0.0
    assert t.elapsed != first or t.elapsed > 0


def test_time_query_batch_counts_calls():
    calls = []
    queries = [TileQuery(0, 1, 0, 1)] * 7
    elapsed = time_query_batch(lambda q: calls.append(q), queries, repeats=2)
    assert elapsed >= 0.0
    assert len(calls) == 14


def test_time_query_batch_takes_best_of_repeats():
    queries = [TileQuery(0, 1, 0, 1)] * 3
    single = time_query_batch(lambda q: None, queries, repeats=1)
    best = time_query_batch(lambda q: None, queries, repeats=5)
    assert best >= 0.0
    assert single >= 0.0


def test_time_query_batch_validates_repeats():
    with pytest.raises(ValueError):
        time_query_batch(lambda q: None, [], repeats=0)


def test_timer_nested_reentry_raises():
    """Regression: re-entering a running Timer used to silently clobber
    the outer measurement's start; now it is an explicit error."""
    t = Timer()
    with t:
        assert t.running
        with pytest.raises(RuntimeError, match="already running"):
            with t:
                pass  # pragma: no cover - never reached
    assert not t.running
    assert t.elapsed >= 0.0


def test_timer_running_flag_tracks_context():
    t = Timer()
    assert not t.running
    with t:
        assert t.running
    assert not t.running


def test_time_query_batch_raises_by_default():
    """Regression: a raising estimator used to leave best=inf; the
    failure mode is now explicit -- propagate by default."""
    def boom(q):
        raise RuntimeError("estimator down")

    with pytest.raises(RuntimeError, match="estimator down"):
        time_query_batch(boom, [TileQuery(0, 1, 0, 1)], repeats=3)


def test_time_query_batch_on_error_nan():
    def boom(q):
        raise RuntimeError("estimator down")

    result = time_query_batch(boom, [TileQuery(0, 1, 0, 1)], repeats=3, on_error="nan")
    assert math.isnan(result)
    assert not math.isinf(result)  # never the old silent inf


def test_time_query_batch_validates_on_error():
    with pytest.raises(ValueError, match="on_error"):
        time_query_batch(lambda q: None, [], on_error="explode")


def test_time_query_batch_success_is_finite():
    queries = [TileQuery(0, 1, 0, 1)] * 3
    result = time_query_batch(lambda q: None, queries, repeats=2, on_error="nan")
    assert math.isfinite(result) and result >= 0.0
