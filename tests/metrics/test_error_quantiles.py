"""Tests for per-query error quantiles."""

import numpy as np
import pytest

from repro.metrics.errors import error_quantiles


def test_basic_quantiles():
    exact = np.array([10.0, 10.0, 10.0, 10.0])
    estimated = np.array([10.0, 11.0, 12.0, 20.0])
    quantiles = error_quantiles(exact, estimated, quantiles=(0.0, 0.5, 1.0))
    assert quantiles[0.0] == 0.0
    assert quantiles[0.5] == pytest.approx(1.5)
    assert quantiles[1.0] == 10.0


def test_perfect_estimate():
    values = np.arange(10.0)
    quantiles = error_quantiles(values, values.copy())
    assert all(v == 0.0 for v in quantiles.values())


def test_empty_input():
    quantiles = error_quantiles(np.zeros(0), np.zeros(0))
    assert quantiles == {0.5: 0.0, 0.9: 0.0, 0.99: 0.0, 1.0: 0.0}


def test_2d_input_flattened():
    exact = np.zeros((3, 3))
    estimated = np.full((3, 3), 2.0)
    assert error_quantiles(exact, estimated)[1.0] == 2.0


def test_validation():
    with pytest.raises(ValueError, match="at least one"):
        error_quantiles(np.zeros(2), np.zeros(2), quantiles=())
    with pytest.raises(ValueError, match="lie in"):
        error_quantiles(np.zeros(2), np.zeros(2), quantiles=(1.5,))
    with pytest.raises(ValueError):
        error_quantiles(np.zeros(2), np.zeros(3))
