"""Tests for the bounded Zipf samplers."""

import numpy as np
import pytest

from repro.datasets.zipf import bounded_zipf, bounded_zipf_continuous


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestDiscrete:
    def test_support(self, rng):
        values = bounded_zipf(rng, 5000, lo=1, hi=180)
        assert values.min() >= 1
        assert values.max() <= 180

    def test_heavy_head(self, rng):
        values = bounded_zipf(rng, 20_000, lo=1, hi=180, exponent=1.5)
        # About half the mass sits at the smallest value for exponent 1.5.
        assert np.mean(values == 1) > 0.3

    def test_tail_is_populated(self, rng):
        values = bounded_zipf(rng, 50_000, lo=1, hi=180, exponent=1.5)
        assert np.any(values > 90)

    def test_monotone_frequencies(self, rng):
        values = bounded_zipf(rng, 100_000, lo=1, hi=10, exponent=1.2)
        counts = np.bincount(values, minlength=11)[1:]
        # Frequencies decrease overall head-to-tail.
        assert counts[0] > counts[4] > counts[9]

    def test_exponent_controls_skew(self, rng):
        flat = bounded_zipf(np.random.default_rng(1), 50_000, lo=1, hi=50, exponent=0.5)
        steep = bounded_zipf(np.random.default_rng(1), 50_000, lo=1, hi=50, exponent=2.5)
        assert flat.mean() > steep.mean()

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            bounded_zipf(rng, -1)
        with pytest.raises(ValueError):
            bounded_zipf(rng, 10, lo=0)
        with pytest.raises(ValueError):
            bounded_zipf(rng, 10, lo=5, hi=4)
        with pytest.raises(ValueError):
            bounded_zipf(rng, 10, exponent=0.0)

    def test_deterministic_with_seed(self):
        a = bounded_zipf(np.random.default_rng(3), 100)
        b = bounded_zipf(np.random.default_rng(3), 100)
        np.testing.assert_array_equal(a, b)


class TestContinuous:
    def test_bounds_respected(self, rng):
        values = bounded_zipf_continuous(rng, 10_000, lo=1.0, hi=180.0)
        assert values.min() >= 1.0
        assert values.max() <= 180.0

    def test_non_integral_values(self, rng):
        values = bounded_zipf_continuous(rng, 1000, lo=1.0, hi=50.0)
        # Draws clipped onto the bounds are exactly integral by design;
        # away from the bounds, values are jittered off the integers.
        interior = values[(values > 1.0) & (values < 50.0)]
        assert len(interior) > 100
        assert np.mean(interior == np.round(interior)) < 0.05

    def test_invalid_support(self, rng):
        with pytest.raises(ValueError):
            bounded_zipf_continuous(rng, 10, lo=5.0, hi=5.0)
