"""Tests for the sp_skew / sz_skew generators against Section 6.1.1."""

import numpy as np
import pytest

from repro.datasets.synthetic import WORLD_EXTENT, sp_skew, sz_skew


class TestSpSkew:
    def test_fixed_object_size(self):
        data = sp_skew(2000, seed=1)
        np.testing.assert_allclose(data.widths, 3.6)
        np.testing.assert_allclose(data.heights, 1.8)

    def test_inside_extent(self):
        data = sp_skew(2000, seed=1)
        assert data.x_lo.min() >= 0.0 and data.x_hi.max() <= 360.0
        assert data.y_lo.min() >= 0.0 and data.y_hi.max() <= 180.0

    def test_spatial_skew(self):
        """Cell occupancy must be far from uniform: the max-occupancy cell
        should hold many times the mean."""
        data = sp_skew(20_000, seed=2)
        cx = ((data.x_lo + data.x_hi) / 2).astype(int) // 36
        cy = ((data.y_lo + data.y_hi) / 2).astype(int) // 36
        counts = np.bincount(cx * 5 + np.minimum(cy, 4), minlength=50)
        assert counts.max() > 5 * counts.mean()

    def test_deterministic(self):
        a, b = sp_skew(500, seed=9), sp_skew(500, seed=9)
        np.testing.assert_array_equal(a.x_lo, b.x_lo)

    def test_different_seeds_differ(self):
        a, b = sp_skew(500, seed=1), sp_skew(500, seed=2)
        assert not np.array_equal(a.x_lo, b.x_lo)

    def test_name_and_count(self):
        data = sp_skew(123, seed=0)
        assert data.name == "sp_skew"
        assert len(data) == 123

    def test_rejects_negative_count(self):
        with pytest.raises(ValueError):
            sp_skew(-1)


class TestSzSkew:
    def test_objects_are_squares(self):
        data = sz_skew(3000, seed=1)
        np.testing.assert_allclose(data.widths, data.heights)

    def test_side_length_bounds(self):
        data = sz_skew(3000, seed=1)
        assert data.widths.min() >= 1.0
        assert data.widths.max() <= 180.0

    def test_zipf_side_distribution(self):
        """Mostly small squares with a genuine large tail (Figure 12(b))."""
        data = sz_skew(30_000, seed=3)
        assert np.mean(data.widths < 2.0) > 0.4
        assert np.any(data.widths > 90.0)

    def test_significant_large_object_population(self):
        data = sz_skew(30_000, seed=3)
        # "contains a significant number of large objects": more than one
        # in a thousand spans over 10x10 cells.
        assert np.mean(data.areas > 100.0) > 1e-3

    def test_inside_extent(self):
        data = sz_skew(3000, seed=1)
        assert data.x_lo.min() >= 0.0 and data.x_hi.max() <= 360.0
        assert data.y_lo.min() >= 0.0 and data.y_hi.max() <= 180.0

    def test_extent_is_world(self):
        assert sz_skew(10, seed=0).extent == WORLD_EXTENT

    def test_deterministic(self):
        a, b = sz_skew(500, seed=5), sz_skew(500, seed=5)
        np.testing.assert_array_equal(a.widths, b.widths)
