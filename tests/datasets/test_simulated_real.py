"""Tests for the adl_like / ca_road_like simulators: they must exhibit the
statistical properties DESIGN.md claims drive the paper's error curves."""

import numpy as np
import pytest

from repro.datasets import by_name, DATASET_NAMES
from repro.datasets.simulated_real import adl_like, ca_road_like


class TestAdlLike:
    def test_count_and_name(self):
        data = adl_like(5000, seed=1)
        assert len(data) == 5000
        assert data.name == "adl"

    def test_contains_point_records(self):
        data = adl_like(10_000, seed=1)
        degenerate = (data.widths == 0) & (data.heights == 0)
        assert 0.4 < np.mean(degenerate) < 0.7

    def test_mixed_sizes_with_large_tail(self):
        data = adl_like(20_000, seed=2)
        areas = data.areas
        assert np.mean(areas < 1.0) > 0.7          # mostly sub-cell
        assert np.any(areas > 10_000.0)            # country/world maps
        assert np.mean(areas > 100.0) > 5e-3       # significant large share

    def test_inside_extent(self):
        data = adl_like(5000, seed=3)
        assert data.x_lo.min() >= 0.0 and data.x_hi.max() <= 360.0
        assert data.y_lo.min() >= 0.0 and data.y_hi.max() <= 180.0

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            adl_like(100, point_fraction=0.8, small_fraction=0.5)

    def test_deterministic(self):
        a, b = adl_like(500, seed=4), adl_like(500, seed=4)
        np.testing.assert_array_equal(a.x_lo, b.x_lo)


class TestCaRoadLike:
    def test_count_and_name(self):
        data = ca_road_like(5000, seed=1)
        assert len(data) == 5000
        assert data.name == "ca_road"

    def test_objects_are_tiny(self):
        """The property behind 'barely noticeable error': essentially all
        objects are far smaller than a grid cell."""
        data = ca_road_like(20_000, seed=2)
        assert np.mean(data.widths < 0.25) > 0.95
        assert np.mean(data.heights < 0.25) > 0.95
        assert data.areas.max() < 1.0

    def test_linear_clustering(self):
        """Consecutive segments chain along corridors: the dataset is far
        from uniform at coarse granularity."""
        data = ca_road_like(20_000, seed=3)
        cx = np.clip(((data.x_lo + data.x_hi) / 2 / 36).astype(int), 0, 9)
        cy = np.clip(((data.y_lo + data.y_hi) / 2 / 36).astype(int), 0, 4)
        counts = np.bincount(cx * 5 + cy, minlength=50)
        assert counts.max() > 4 * max(counts.mean(), 1.0)

    def test_corridor_validation(self):
        with pytest.raises(ValueError):
            ca_road_like(100, num_corridors=0)

    def test_deterministic(self):
        a, b = ca_road_like(500, seed=4), ca_road_like(500, seed=4)
        np.testing.assert_array_equal(a.x_lo, b.x_lo)


class TestRegistry:
    def test_names(self):
        assert set(DATASET_NAMES) == {"sp_skew", "sz_skew", "adl", "ca_road"}

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_by_name(self, name):
        data = by_name(name, 1000, seed=0)
        assert len(data) == 1000
        assert data.name == name

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            by_name("nope", 10)
