"""Tests for the RectDataset container."""

import numpy as np
import pytest

from repro.datasets.base import RectDataset
from repro.geometry.rect import Rect

EXTENT = Rect(0.0, 10.0, 0.0, 10.0)


def _simple_dataset():
    return RectDataset.from_rects(
        [Rect(1.0, 3.0, 1.0, 2.0), Rect(4.0, 4.0, 5.0, 5.0), Rect(0.0, 10.0, 0.0, 10.0)],
        EXTENT,
        name="simple",
    )


class TestConstruction:
    def test_from_rects_roundtrip(self):
        data = _simple_dataset()
        assert len(data) == 3
        assert data[0] == Rect(1.0, 3.0, 1.0, 2.0)
        assert list(data)[1] == Rect(4.0, 4.0, 5.0, 5.0)

    def test_empty(self):
        data = RectDataset.empty(EXTENT)
        assert len(data) == 0
        assert list(data) == []

    def test_rejects_inverted_mbr(self):
        with pytest.raises(ValueError, match="lo <= hi"):
            RectDataset(
                np.array([3.0]), np.array([1.0]), np.array([0.0]), np.array([1.0]), EXTENT
            )

    def test_rejects_out_of_extent(self):
        with pytest.raises(ValueError, match="outside the extent"):
            RectDataset(
                np.array([-1.0]), np.array([1.0]), np.array([0.0]), np.array([1.0]), EXTENT
            )

    def test_rejects_ragged_columns(self):
        with pytest.raises(ValueError, match="same length"):
            RectDataset(
                np.array([0.0, 1.0]), np.array([1.0]), np.array([0.0]), np.array([1.0]), EXTENT
            )

    def test_columns_are_immutable(self):
        data = _simple_dataset()
        with pytest.raises(ValueError):
            data.x_lo[0] = 5.0


class TestDerived:
    def test_widths_heights_areas(self):
        data = _simple_dataset()
        np.testing.assert_allclose(data.widths, [2.0, 0.0, 10.0])
        np.testing.assert_allclose(data.heights, [1.0, 0.0, 10.0])
        np.testing.assert_allclose(data.areas, [2.0, 0.0, 100.0])

    def test_areas_in_cells(self):
        data = _simple_dataset()
        np.testing.assert_allclose(data.areas_in_cells(2.0, 1.0), [1.0, 0.0, 50.0])

    def test_areas_in_cells_validates(self):
        with pytest.raises(ValueError):
            _simple_dataset().areas_in_cells(0.0, 1.0)

    def test_describe(self):
        stats = _simple_dataset().describe()
        assert stats["count"] == 3
        assert stats["degenerate_fraction"] == pytest.approx(1 / 3)
        assert stats["area_max"] == 100.0

    def test_describe_empty(self):
        assert RectDataset.empty(EXTENT).describe() == {"name": "empty", "count": 0}


class TestTransform:
    def test_select_by_mask(self):
        data = _simple_dataset()
        small = data.select(data.areas < 50.0, name="small")
        assert len(small) == 2
        assert small.name == "small"

    def test_select_keeps_name_by_default(self):
        data = _simple_dataset()
        assert data.select(np.array([True, False, False])).name == "simple"

    def test_concatenated(self):
        a = _simple_dataset()
        b = RectDataset.from_rects([Rect(5.0, 6.0, 5.0, 6.0)], EXTENT)
        merged = a.concatenated(b, name="merged")
        assert len(merged) == 4
        assert merged.name == "merged"

    def test_concatenated_requires_same_extent(self):
        a = _simple_dataset()
        b = RectDataset.empty(Rect(0.0, 5.0, 0.0, 5.0))
        with pytest.raises(ValueError, match="extent"):
            a.concatenated(b)


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        data = _simple_dataset()
        path = tmp_path / "data.npz"
        data.save(path)
        loaded = RectDataset.load(path)
        assert loaded.name == "simple"
        assert loaded.extent == EXTENT
        np.testing.assert_array_equal(loaded.x_lo, data.x_lo)
        np.testing.assert_array_equal(loaded.y_hi, data.y_hi)


class TestLoadHardening:
    """Truncated/missing-key/corrupt .npz files raise SummaryCorruptError
    with a message naming the file, never a raw KeyError/ValueError."""

    def test_truncated_file(self, tmp_path):
        from repro.errors import SummaryCorruptError

        path = tmp_path / "data.npz"
        _simple_dataset().save(path)
        path.write_bytes(path.read_bytes()[:50])
        with pytest.raises(SummaryCorruptError, match="unreadable"):
            RectDataset.load(path)

    def test_missing_column_named_in_error(self, tmp_path):
        from repro.errors import SummaryCorruptError

        data = _simple_dataset()
        path = tmp_path / "data.npz"
        np.savez_compressed(
            path,
            x_lo=data.x_lo,
            x_hi=data.x_hi,
            y_lo=data.y_lo,
            extent=np.array(data.extent.as_tuple()),
            name=np.array(data.name),
        )
        with pytest.raises(SummaryCorruptError, match="y_hi"):
            RectDataset.load(path)

    def test_tampered_column_fails_checksum(self, tmp_path):
        from repro.errors import SummaryCorruptError

        path = tmp_path / "data.npz"
        _simple_dataset().save(path)
        with np.load(path) as f:
            payload = {k: f[k] for k in f.files}
        payload["x_lo"] = payload["x_lo"].copy()
        payload["x_lo"][0] += 1e-9
        np.savez_compressed(path, **payload)
        with pytest.raises(SummaryCorruptError, match="checksum"):
            RectDataset.load(path)

    def test_inconsistent_columns_reported_as_corrupt(self, tmp_path):
        """A payload whose columns violate the constructor's invariants
        (lo > hi) is reported as corruption, not a bare ValueError."""
        from repro.errors import SummaryCorruptError

        data = _simple_dataset()
        path = tmp_path / "data.npz"
        np.savez_compressed(  # legacy format, no checksum to catch it first
            path,
            x_lo=data.x_hi,  # swapped: lo > hi
            x_hi=data.x_lo,
            y_lo=data.y_lo,
            y_hi=data.y_hi,
            extent=np.array(data.extent.as_tuple()),
            name=np.array(data.name),
        )
        with pytest.raises(SummaryCorruptError, match="inconsistent"):
            RectDataset.load(path)
