"""Tests for the Beigel-Tanin Level-1 wrapper."""

import pytest

from repro.baselines.beigel_tanin import BeigelTaninIntersect
from repro.euler.histogram import EulerHistogram
from repro.exact.evaluator import ExactEvaluator
from repro.geometry.rect import Rect
from repro.grid.grid import Grid

from tests.conftest import random_dataset, random_query


@pytest.fixture
def grid():
    return Grid(Rect(0.0, 10.0, 0.0, 8.0), 10, 8)


def test_exact_on_random_data(grid, rng):
    data = random_dataset(rng, grid, 250, degenerate_fraction=0.2)
    bt = BeigelTaninIntersect(data, grid)
    exact = ExactEvaluator(data, grid)
    for _ in range(50):
        q = random_query(rng, grid)
        assert bt.intersect_count(q) == exact.estimate(q).n_intersect


def test_from_histogram_shares_structure(grid, rng):
    data = random_dataset(rng, grid, 100)
    hist = EulerHistogram.from_dataset(data, grid)
    bt = BeigelTaninIntersect.from_histogram(hist)
    assert bt.histogram is hist
    q = random_query(rng, grid)
    assert bt.intersect_count(q) == hist.intersect_count(q)


def test_metadata(grid, rng):
    data = random_dataset(rng, grid, 42)
    bt = BeigelTaninIntersect(data, grid)
    assert bt.name == "Beigel-Tanin"
    assert bt.num_objects == 42
    assert bt.num_buckets == 19 * 15
