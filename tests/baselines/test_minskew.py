"""Tests for the Minskew baseline."""

import numpy as np
import pytest

from repro.baselines.minskew import MinskewHistogram
from repro.datasets.base import RectDataset
from repro.exact.evaluator import ExactEvaluator
from repro.geometry.rect import Rect
from repro.grid.grid import Grid
from repro.grid.tiles_math import TileQuery
from repro.metrics.errors import average_relative_error
from repro.workloads.tiles import query_set

from tests.conftest import random_dataset


@pytest.fixture
def grid():
    return Grid(Rect(0.0, 24.0, 0.0, 12.0), 24, 12)


def _clustered_dataset(grid, rng, n=600):
    """Half the objects in a dense corner cluster, half uniform."""
    half = n // 2
    cx = np.concatenate([rng.uniform(1, 5, half), rng.uniform(0, 23, n - half)])
    cy = np.concatenate([rng.uniform(1, 4, half), rng.uniform(0, 11, n - half)])
    w = rng.uniform(0.1, 0.8, n)
    h = rng.uniform(0.1, 0.8, n)
    return RectDataset(
        np.maximum(cx - w / 2, 0.0),
        np.minimum(cx + w / 2, 24.0),
        np.maximum(cy - h / 2, 0.0),
        np.minimum(cy + h / 2, 12.0),
        grid.extent,
        "clustered",
    )


class TestPartitioning:
    def test_buckets_partition_the_grid(self, grid, rng):
        data = _clustered_dataset(grid, rng)
        histogram = MinskewHistogram(data, grid, num_buckets=12)
        covered = np.zeros((grid.n1, grid.n2), dtype=int)
        for bucket in histogram.buckets:
            covered[bucket.cx_lo : bucket.cx_hi, bucket.cy_lo : bucket.cy_hi] += 1
        np.testing.assert_array_equal(covered, np.ones_like(covered))

    def test_bucket_counts_sum_to_objects(self, grid, rng):
        data = _clustered_dataset(grid, rng)
        histogram = MinskewHistogram(data, grid, num_buckets=10)
        assert sum(b.count for b in histogram.buckets) == len(data)

    def test_splits_track_the_skew(self, grid, rng):
        """The partitioning isolates the dense cluster: some bucket
        concentrated in the cluster corner carries far more mass per cell
        than the global average."""
        data = _clustered_dataset(grid, rng)
        histogram = MinskewHistogram(data, grid, num_buckets=12)
        global_density = len(data) / grid.num_cells
        peak = max(b.count / b.num_cells for b in histogram.buckets)
        assert peak > 3 * global_density

    def test_stops_when_uniform(self, grid):
        # One object per cell: zero skew, no split helps.
        rects = [
            Rect(i + 0.3, i + 0.6, j + 0.3, j + 0.6)
            for i in range(24)
            for j in range(12)
        ]
        data = RectDataset.from_rects(rects, Rect(0.0, 24.0, 0.0, 12.0))
        histogram = MinskewHistogram(data, grid, num_buckets=40)
        assert histogram.num_buckets == 1

    def test_respects_bucket_budget(self, grid, rng):
        data = _clustered_dataset(grid, rng)
        histogram = MinskewHistogram(data, grid, num_buckets=7)
        assert histogram.num_buckets <= 7

    def test_validation(self, grid, rng):
        data = _clustered_dataset(grid, rng)
        with pytest.raises(ValueError):
            MinskewHistogram(data, grid, num_buckets=0)


class TestEstimation:
    def test_whole_space_estimate_is_total(self, grid, rng):
        data = _clustered_dataset(grid, rng)
        histogram = MinskewHistogram(data, grid, num_buckets=10)
        estimate = histogram.intersect_count(TileQuery(0, 24, 0, 12))
        # Expansion can push slightly above |S|; it must be close.
        assert estimate >= len(data) * 0.95

    def test_reasonable_accuracy_on_clustered_data(self, grid, rng):
        data = _clustered_dataset(grid, rng)
        histogram = MinskewHistogram(data, grid, num_buckets=24)
        exact = ExactEvaluator(data, grid)
        queries = query_set(grid, 4)
        truth = np.array([exact.estimate(q).n_intersect for q in queries])
        estimates = np.array([histogram.intersect_count(q) for q in queries])
        assert average_relative_error(truth, estimates) < 0.5

    def test_more_buckets_do_not_hurt_much(self, grid, rng):
        data = _clustered_dataset(grid, rng)
        exact = ExactEvaluator(data, grid)
        queries = query_set(grid, 4)
        truth = np.array([exact.estimate(q).n_intersect for q in queries])
        errors = []
        for budget in (1, 8, 32):
            histogram = MinskewHistogram(data, grid, num_buckets=budget)
            estimates = np.array([histogram.intersect_count(q) for q in queries])
            errors.append(average_relative_error(truth, estimates))
        assert errors[-1] <= errors[0] * 1.1

    def test_empty_dataset(self, grid):
        data = RectDataset.empty(Rect(0.0, 24.0, 0.0, 12.0))
        histogram = MinskewHistogram(data, grid, num_buckets=5)
        assert histogram.intersect_count(TileQuery(0, 24, 0, 12)) == 0.0

    def test_name(self, grid, rng):
        data = _clustered_dataset(grid, rng)
        assert MinskewHistogram(data, grid, num_buckets=6).name.startswith("Minskew(B=")
