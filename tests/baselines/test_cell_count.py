"""Tests for the naive cell-count baseline, including the Figure 6
indistinguishability demonstration."""

import numpy as np
import pytest

from repro.baselines.cell_count import CellCountHistogram
from repro.datasets.base import RectDataset
from repro.exact.evaluator import ExactEvaluator
from repro.geometry.rect import Rect
from repro.grid.grid import Grid
from repro.grid.tiles_math import TileQuery

from tests.conftest import random_dataset, random_query


@pytest.fixture
def grid():
    return Grid(Rect(0.0, 8.0, 0.0, 6.0), 8, 6)


def test_figure_6_indistinguishable_histograms(grid):
    """One 2x2-cell object vs four per-cell objects: identical cell-count
    histograms (the failure that motivates the Euler histogram)."""
    big = RectDataset.from_rects([Rect(1.0, 3.0, 1.0, 3.0)], grid.extent)
    small = RectDataset.from_rects(
        [
            Rect(1.2, 1.8, 1.2, 1.8),
            Rect(2.2, 2.8, 1.2, 1.8),
            Rect(1.2, 1.8, 2.2, 2.8),
            Rect(2.2, 2.8, 2.2, 2.8),
        ],
        grid.extent,
    )
    h_big = CellCountHistogram(big, grid)
    h_small = CellCountHistogram(small, grid)
    np.testing.assert_array_equal(h_big.cells(), h_small.cells())

    # ...and consequently the multi-cell query count is wrong for one of
    # them: the big object is counted 4 times.
    q = TileQuery(1, 3, 1, 3)
    assert h_big.intersect_count(q) == 4
    assert ExactEvaluator(big, grid).estimate(q).n_intersect == 1
    assert h_small.intersect_count(q) == 4  # correct for the small case


def test_exact_for_single_cell_queries(grid, rng):
    data = random_dataset(rng, grid, 150)
    hist = CellCountHistogram(data, grid)
    exact = ExactEvaluator(data, grid)
    for i in range(grid.n1):
        for j in range(grid.n2):
            q = TileQuery(i, i + 1, j, j + 1)
            assert hist.intersect_count(q) == exact.estimate(q).n_intersect


def test_upper_bound_property(grid, rng):
    """Multi-counting only ever inflates: the estimate dominates truth."""
    data = random_dataset(rng, grid, 150)
    hist = CellCountHistogram(data, grid)
    exact = ExactEvaluator(data, grid)
    for _ in range(40):
        q = random_query(rng, grid)
        assert hist.intersect_count(q) >= exact.estimate(q).n_intersect


def test_empty_dataset(grid):
    hist = CellCountHistogram(RectDataset.empty(grid.extent), grid)
    assert hist.intersect_count(TileQuery(0, 8, 0, 6)) == 0
    assert hist.num_objects == 0


def test_metadata(grid, rng):
    data = random_dataset(rng, grid, 10)
    hist = CellCountHistogram(data, grid)
    assert hist.name == "CellCount"
    assert hist.num_buckets == 48
    assert hist.grid is grid
    with pytest.raises(ValueError):
        hist.cells()[0, 0] = 1
