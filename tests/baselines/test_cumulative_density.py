"""Tests for the Cumulative Density (CD) Level-1 baseline."""

import pytest

from repro.baselines.cumulative_density import CumulativeDensity
from repro.datasets.base import RectDataset
from repro.exact.evaluator import ExactEvaluator
from repro.geometry.rect import Rect
from repro.grid.grid import Grid
from repro.grid.tiles_math import TileQuery

from tests.conftest import random_dataset, random_query


@pytest.fixture
def grid():
    return Grid(Rect(0.0, 10.0, 0.0, 8.0), 10, 8)


def test_exact_on_random_data(grid, rng):
    data = random_dataset(rng, grid, 300, degenerate_fraction=0.2, aligned_fraction=0.3)
    cd = CumulativeDensity(data, grid)
    exact = ExactEvaluator(data, grid)
    for _ in range(60):
        q = random_query(rng, grid)
        truth = exact.estimate(q)
        assert cd.intersect_count(q) == truth.n_intersect
        assert cd.disjoint_count(q) == truth.n_d


def test_corner_cases(grid):
    rects = [
        Rect(0.0, 10.0, 0.0, 8.0),   # fills everything
        Rect(0.2, 0.8, 0.2, 0.8),    # bottom-left corner cell
        Rect(9.2, 9.8, 7.2, 7.8),    # top-right corner cell
        Rect(0.5, 9.5, 3.5, 4.5),    # horizontal band
    ]
    data = RectDataset.from_rects(rects, Rect(0.0, 10.0, 0.0, 8.0))
    cd = CumulativeDensity(data, grid)
    assert cd.intersect_count(TileQuery(0, 10, 0, 8)) == 4
    assert cd.intersect_count(TileQuery(4, 6, 0, 2)) == 1   # filler only
    assert cd.intersect_count(TileQuery(0, 1, 0, 1)) == 2
    assert cd.intersect_count(TileQuery(4, 6, 3, 5)) == 2   # filler + band


def test_empty_dataset(grid):
    cd = CumulativeDensity(RectDataset.empty(Rect(0.0, 10.0, 0.0, 8.0)), grid)
    assert cd.intersect_count(TileQuery(0, 10, 0, 8)) == 0
    assert cd.disjoint_count(TileQuery(0, 1, 0, 1)) == 0


def test_metadata(grid, rng):
    data = random_dataset(rng, grid, 5)
    cd = CumulativeDensity(data, grid)
    assert cd.name == "CumulativeDensity"
    assert cd.num_objects == 5
    assert cd.num_buckets == 4 * 80
    assert cd.grid is grid


def test_agrees_with_euler_intersect(grid, rng):
    """Two structurally different exact Level-1 algorithms must agree."""
    from repro.euler.histogram import EulerHistogram

    data = random_dataset(rng, grid, 200)
    cd = CumulativeDensity(data, grid)
    euler = EulerHistogram.from_dataset(data, grid)
    for _ in range(40):
        q = random_query(rng, grid)
        assert cd.intersect_count(q) == euler.intersect_count(q)
