"""Property suite: process-sharded rasters are bit-identical to inline.

One pool per (estimator, start method) is built once at module scope --
pools are persistent by design, and Hypothesis re-invokes the test body
many times against the same workers, which doubles as a soak test of
buffer reuse across dispatches.  Every example draws a fresh random
raster plus a random boolean mask, and checks both the full batch and
the masked (restricted) batch that the resilience layer's retry path
produces via :func:`batch_subset`.

``spawn`` coverage matters beyond the start method itself: spawn is the
only path that round-trips the manifest and estimator spec through
pickling into a fresh interpreter, so it would catch any state that
sneaks into a spec object without being picklable or rebuildable.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.browse.sharding import batch_subset
from repro.euler.full import EulerApprox, QueryEdge
from repro.euler.histogram import EulerHistogram
from repro.euler.multi import MEulerApprox
from repro.euler.simple import SEulerApprox
from repro.exact.evaluator import ExactEvaluator
from repro.grid.grid import Grid
from repro.grid.tiles_math import TileQueryBatch
from repro.parallel.pool import ProcessShardPool

from tests.conftest import random_dataset

FIELDS = ("n_d", "n_cs", "n_cd", "n_o")
ESTIMATOR_KEYS = ("s_euler", "euler", "m_euler", "exact")
START_METHODS = ("fork", "spawn")

pytestmark = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="POSIX shared memory not available"
)

_GRID = Grid.world_1deg()
_DATASET = random_dataset(
    np.random.default_rng(2026), _GRID, 400, max_size_cells=40.0
)
_HIST = EulerHistogram.from_dataset(_DATASET, _GRID)

_ESTIMATORS = {
    "s_euler": SEulerApprox(_HIST),
    "euler": EulerApprox(_HIST, QueryEdge.LEFT),
    "m_euler": MEulerApprox(_DATASET, _GRID, [1.0, 16.0], edge=QueryEdge.RIGHT),
    "exact": ExactEvaluator(_DATASET, _GRID),
}

_POOLS: dict[tuple[str, str], ProcessShardPool] = {}


@pytest.fixture(scope="module")
def pools():
    try:
        yield _POOLS
    finally:
        for pool in _POOLS.values():
            pool.close()
        _POOLS.clear()


def _pool_for(key: str, start_method: str) -> ProcessShardPool:
    pool = _POOLS.get((key, start_method))
    if pool is None:
        pool = ProcessShardPool(
            _ESTIMATORS[key],
            num_shards=4,
            max_workers=2,
            start_method=start_method,
            min_shard=1,
        )
        assert pool.ensure_ready(30.0) >= 1
        _POOLS[(key, start_method)] = pool
    return pool


@st.composite
def rasters(draw):
    """A random raster over random sub-viewports of the world grid, with
    a mask selecting a restricted sub-batch."""
    n = draw(st.integers(min_value=1, max_value=400))
    rng = np.random.default_rng(draw(st.integers(min_value=0, max_value=2**32 - 1)))
    qx_lo = rng.integers(0, _GRID.n1, size=n)
    qy_lo = rng.integers(0, _GRID.n2, size=n)
    qx_hi = qx_lo + 1 + rng.integers(0, _GRID.n1 - qx_lo, size=n)
    qy_hi = qy_lo + 1 + rng.integers(0, _GRID.n2 - qy_lo, size=n)
    batch = TileQueryBatch(
        qx_lo, np.minimum(qx_hi, _GRID.n1), qy_lo, np.minimum(qy_hi, _GRID.n2)
    )
    mask = rng.random(n) < draw(st.floats(min_value=0.0, max_value=1.0))
    return batch, mask


@pytest.mark.parametrize("start_method", START_METHODS)
@pytest.mark.parametrize("key", ESTIMATOR_KEYS)
@given(data=rasters())
@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_process_raster_bit_identical_to_inline(pools, key, start_method, data):
    batch, mask = data
    pool = _pool_for(key, start_method)
    inline = _ESTIMATORS[key].estimate_batch(batch)
    sharded = pool.estimate_batch(batch)
    for field in FIELDS:
        np.testing.assert_array_equal(getattr(sharded, field), getattr(inline, field))

    if mask.any():
        restricted = batch_subset(batch, mask)
        inline_r = _ESTIMATORS[key].estimate_batch(restricted)
        sharded_r = pool.estimate_batch(restricted)
        for field in FIELDS:
            np.testing.assert_array_equal(
                getattr(sharded_r, field), getattr(inline_r, field)
            )
