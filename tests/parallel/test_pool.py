"""ProcessShardPool: parity, crash recovery, timeouts, leak hygiene.

The crash and latency scenarios drive *real* worker processes through
the fault specs in :mod:`repro.testing.faults`; a crashed worker dies
with ``os._exit``, which is the only way to exercise the sentinel-based
crash detection rather than the orderly error-reply path.

Everything here uses the ``fork`` start method: these tests pin down
pool *behaviour*, and fork keeps each pool's startup under a few
milliseconds so the file can afford many pool lifecycles.  Spawn-method
coverage (which exercises pickling of manifests and specs) lives in
``test_parity_hypothesis.py`` and the CI parity job.
"""

from __future__ import annotations

import glob
import os
import time

import numpy as np
import pytest

from repro.euler.base import as_batch_estimator
from repro.euler.histogram import EulerHistogram
from repro.euler.simple import SEulerApprox
from repro.grid.grid import Grid
from repro.grid.tiles_math import TileQuery
from repro.obs.instruments import BrowseInstrumentation
from repro.parallel.pool import (
    PoolUnavailableError,
    ProcessShardPool,
    WorkerEstimateError,
)
from repro.testing.faults import WorkerCrashSpec, WorkerLatencySpec
from repro.workloads.tiles import browsing_tile_batch

from tests.conftest import random_dataset

FIELDS = ("n_d", "n_cs", "n_cd", "n_o")

pytestmark = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="POSIX shared memory not available"
)


@pytest.fixture(scope="module")
def grid() -> Grid:
    return Grid.world_1deg()


@pytest.fixture(scope="module")
def estimator(grid):
    rng = np.random.default_rng(42)
    dataset = random_dataset(rng, grid, 500, max_size_cells=30.0)
    return SEulerApprox(EulerHistogram.from_dataset(dataset, grid))


@pytest.fixture(scope="module")
def raster(grid):
    # A 60x120 viewport raster: large enough that band slicing actually
    # splits work across two workers, small enough to keep tests quick.
    return browsing_tile_batch(TileQuery(0, grid.n1, 0, grid.n2), 60, 120)


@pytest.fixture(scope="module")
def inline(estimator, raster):
    return estimator.estimate_batch(raster)


def make_pool(estimator, **kwargs):
    kwargs.setdefault("num_shards", 4)
    kwargs.setdefault("max_workers", 2)
    kwargs.setdefault("start_method", "fork")
    kwargs.setdefault("min_shard", 1)
    return ProcessShardPool(estimator, **kwargs)


def assert_parity(got, expected):
    for field in FIELDS:
        np.testing.assert_array_equal(getattr(got, field), getattr(expected, field))


def test_multiworker_dispatch_is_bit_identical(estimator, raster, inline):
    with make_pool(estimator) as pool:
        assert pool.ensure_ready(20.0) == 2
        assert len(set(pool.worker_pids())) == 2
        assert_parity(pool.estimate_batch(raster), inline)
        # A second dispatch reuses the same workers and buffers.
        assert_parity(pool.estimate_batch(raster), inline)
        assert pool.crashes == 0


def test_estimate_field_matches_batch_column(estimator, raster, inline):
    with make_pool(estimator) as pool:
        pool.ensure_ready(20.0)
        np.testing.assert_array_equal(
            pool.estimate_field(raster, "n_o"), inline.n_o
        )
        np.testing.assert_array_equal(
            pool.estimate_field(raster, "n_intersect"),
            np.asarray(inline.n_cs) + np.asarray(inline.n_cd) + np.asarray(inline.n_o),
        )


def test_capacity_chunking_preserves_parity(estimator, raster, inline):
    # Raster (7200 tiles) >> capacity (1024): estimate_batch must chunk
    # into multiple dispatch rounds and stitch the answer seamlessly.
    with make_pool(estimator, capacity=1024) as pool:
        pool.ensure_ready(20.0)
        assert_parity(pool.estimate_batch(raster), inline)


def test_zero_timeout_ensure_ready_drains_pending_messages(estimator):
    # The auto routing policy polls with ensure_ready(0.0); a zero
    # timeout must still perform one non-blocking drain of pending
    # "ready" messages, or the pool looks empty forever.
    with make_pool(estimator) as pool:
        deadline = time.monotonic() + 20.0
        while pool.ensure_ready(0.0) < 2:
            assert time.monotonic() < deadline, "0-timeout polls never saw readiness"
            time.sleep(0.01)
        assert pool.ready_count() == 2


def test_dispatch_remarks_respawned_workers_ready(estimator, raster, inline):
    # After a crash, the replacement workers' "ready" messages must be
    # picked up by dispatch itself -- with no explicit ensure_ready call
    # -- or a long-lived pool silently decays to inline execution.
    with make_pool(
        estimator, spec_transform=lambda spec: WorkerCrashSpec(spec, crash_on_call=2)
    ) as pool:
        pool.ensure_ready(20.0)
        assert_parity(pool.estimate_batch(raster), inline)  # call 1: clean
        assert_parity(pool.estimate_batch(raster), inline)  # call 2: both crash
        assert pool.crashes == 2
        deadline = time.monotonic() + 20.0
        while pool.ready_count() < 2:
            assert time.monotonic() < deadline, "dispatch never re-marked respawns ready"
            time.sleep(0.01)
            assert_parity(pool.estimate_batch(raster), inline)


def test_worker_dead_before_ready_is_respawned(estimator, raster, inline, tmp_path):
    # A worker dying during startup *before* sending any message (so
    # neither "ready" nor "init_error" ever arrives) must be detected
    # and respawned by ensure_ready, not silently dropped from the pool.
    flag = tmp_path / "died-once"

    class _DieOnceSpec:
        # Fork-only (inherited, never pickled): exactly one worker wins
        # the O_EXCL race, dies without a word, and its replacement --
        # seeing the flag -- comes up normally.
        def __init__(self, inner):
            self.inner = inner

        def build(self, arrays):
            try:
                os.close(os.open(flag, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
                os._exit(1)
            except FileExistsError:
                pass
            return self.inner.build(arrays)

    with make_pool(estimator, spec_transform=_DieOnceSpec) as pool:
        assert pool.ensure_ready(20.0) == 2
        assert pool.crashes == 1
        assert_parity(pool.estimate_batch(raster), inline)


def test_worker_error_terminates_in_flight_stragglers(estimator, raster):
    # An "error" reply aborts the round; the other worker is still
    # sleeping on its band and must be terminated like a timed-out
    # straggler -- left alive, its late write into the shared result
    # buffer could corrupt a subsequent dispatch.
    obs = BrowseInstrumentation()
    first = (
        int(raster.qx_lo[0]),
        int(raster.qx_hi[0]),
        int(raster.qy_lo[0]),
        int(raster.qy_hi[0]),
    )

    class _FirstBandErrorElseSleep:
        # Fork-only: the worker holding the raster's first band raises
        # immediately; every other band sleeps well past the test.
        def __init__(self, inner):
            self._inner = as_batch_estimator(inner)

        name = "first-band-error"

        def estimate(self, query):
            return self._inner.estimate(query)

        def estimate_batch(self, queries):
            corner = (
                int(queries.qx_lo[0]),
                int(queries.qx_hi[0]),
                int(queries.qy_lo[0]),
                int(queries.qy_hi[0]),
            )
            if corner == first:
                raise ValueError("deliberate estimator bug")
            time.sleep(30.0)
            return self._inner.estimate_batch(queries)

    class _Spec:
        def __init__(self, inner):
            self.inner = inner

        def build(self, arrays):
            return _FirstBandErrorElseSleep(self.inner.build(arrays))

    with make_pool(estimator, spec_transform=_Spec, instruments=obs) as pool:
        pool.ensure_ready(20.0)
        pids = set(pool.worker_pids())
        with pytest.raises(WorkerEstimateError, match="deliberate estimator bug"):
            pool.estimate_batch(raster)
        assert obs.worker_crashes.labels(service="plain", reason="abort").value == 1
        assert pool.crashes == 1
        # The erroring worker (healthy) survives; the straggler's pid is
        # gone, replaced by a fresh worker.
        assert pool.ensure_ready(20.0) == 2
        assert len(set(pool.worker_pids()) & pids) == 1


def test_worker_crash_recovers_and_is_counted(estimator, raster, inline):
    # Satellite: kill a worker mid-raster; the raster must still complete
    # (parent recomputes the dead worker's band inline), the crash
    # counter and observability metric must tick, and the pool must
    # respawn a replacement that serves the next raster.
    obs = BrowseInstrumentation()
    with make_pool(
        estimator,
        spec_transform=lambda spec: WorkerCrashSpec(spec, crash_on_call=2),
        instruments=obs,
        service="plain",
    ) as pool:
        pool.ensure_ready(20.0)
        first_pids = set(pool.worker_pids())
        assert_parity(pool.estimate_batch(raster), inline)  # call 1: clean
        assert_parity(pool.estimate_batch(raster), inline)  # call 2: crash
        assert pool.crashes >= 1
        assert (
            obs.worker_crashes.labels(service="plain", reason="crash").value
            == pool.crashes
        )
        # Replacement workers come up and report fresh pids.
        assert pool.ensure_ready(20.0) == 2
        respawned = set(pool.worker_pids())
        assert respawned
        assert respawned.isdisjoint(first_pids)
        # The respawned workers' call counters restart, so the next
        # raster gets one clean round again.
        assert_parity(pool.estimate_batch(raster), inline)


def test_every_worker_crashing_still_completes(estimator, raster, inline):
    with make_pool(
        estimator, spec_transform=lambda spec: WorkerCrashSpec(spec, crash_on_call=1)
    ) as pool:
        pool.ensure_ready(20.0)
        assert_parity(pool.estimate_batch(raster), inline)
        assert pool.crashes == 2  # both workers died on their first band


def test_slow_workers_hit_timeout_and_fall_back_inline(estimator, raster, inline):
    obs = BrowseInstrumentation()
    with make_pool(
        estimator,
        spec_transform=lambda spec: WorkerLatencySpec(spec, delay=30.0),
        dispatch_timeout=0.5,
        instruments=obs,
    ) as pool:
        pool.ensure_ready(20.0)
        assert_parity(pool.estimate_batch(raster), inline)
        assert obs.worker_crashes.labels(service="plain", reason="timeout").value >= 1
        # Stragglers were terminated, not left running: replacements live.
        assert all(pid > 0 for pid in pool.worker_pids())


def test_worker_estimate_error_propagates(estimator, raster):
    # An estimator bug must surface, not be silently papered over by the
    # inline fallback (inline would hit the same bug).  Fork-only: the
    # test-local spec class below is inherited by fork, never pickled.
    class _BrokenEstimator:
        name = "broken"

        def estimate(self, query):
            raise ValueError("deliberate estimator bug")

        def estimate_batch(self, queries):
            raise ValueError("deliberate estimator bug")

    class _BrokenSpec:
        def __init__(self, inner):
            self.inner = inner

        def build(self, arrays):
            return _BrokenEstimator()

    with make_pool(estimator, spec_transform=_BrokenSpec) as pool:
        pool.ensure_ready(20.0)
        with pytest.raises(WorkerEstimateError, match="deliberate estimator bug"):
            pool.estimate_batch(raster)


def test_closed_pool_refuses_dispatch(estimator, raster):
    pool = make_pool(estimator)
    pool.ensure_ready(20.0)
    pool.close()
    pool.close()  # idempotent
    with pytest.raises(PoolUnavailableError):
        pool.estimate_batch(raster)


def test_pool_lifecycle_leaves_no_shm_segments(estimator, raster, inline):
    def shm_entries():
        return set(glob.glob("/dev/shm/*"))

    before = shm_entries()
    pool = make_pool(estimator)
    pool.ensure_ready(20.0)
    assert shm_entries() != before  # summary + query + result segments live
    assert_parity(pool.estimate_batch(raster), inline)
    pool.close()
    assert shm_entries() - before == set()


def test_crashed_workers_leave_no_shm_segments(estimator, raster):
    # A worker killed by os._exit never runs its detach path; the
    # owner-side unlink must still reclaim every segment on close.
    def shm_entries():
        return set(glob.glob("/dev/shm/*"))

    before = shm_entries()
    pool = make_pool(
        estimator, spec_transform=lambda spec: WorkerCrashSpec(spec, crash_on_call=1)
    )
    pool.ensure_ready(20.0)
    pool.estimate_batch(raster)
    assert pool.crashes >= 1
    pool.close()
    assert shm_entries() - before == set()
