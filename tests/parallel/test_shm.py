"""Shared-memory summary store: layout, attach protocol, leak-freedom.

The leak tests enumerate ``/dev/shm`` directly -- segment hygiene is an
acceptance criterion of the process-parallel stack, not an
implementation detail: a leaked segment survives the process and eats
tmpfs until reboot.
"""

from __future__ import annotations

import glob
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.parallel.shm import (
    SegmentFormatError,
    SharedSummaryStore,
    StaleSummaryError,
    attach_store,
)

pytestmark = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="POSIX shared memory not available"
)


def shm_entries() -> set[str]:
    return set(glob.glob("/dev/shm/*"))


def test_put_get_roundtrip_and_manifest():
    store = SharedSummaryStore(generation=3)
    arrays = {
        "cube": np.arange(24, dtype=np.int64).reshape(4, 6),
        "floats": np.linspace(0.0, 1.0, 7),
        "flags": np.array([True, False, True]),
    }
    with store:
        for key, arr in arrays.items():
            store.put(key, arr)
        assert set(store.manifest) == set(arrays)
        assert store.generation == 3
        for key, arr in arrays.items():
            view = store.get(key)
            assert view.dtype == (np.int64 if key == "cube" else arr.dtype)
            np.testing.assert_array_equal(view, arr)
            assert not view.flags.writeable


def test_attach_sees_identical_bytes_and_generation():
    with SharedSummaryStore(generation=7) as store:
        cube = np.arange(30, dtype=np.int64).reshape(5, 6)
        store.put("cube", cube)
        attached = attach_store(store.manifest, expected_generation=7)
        try:
            np.testing.assert_array_equal(attached.arrays["cube"], cube)
            assert attached.generation == 7
            assert not attached.arrays["cube"].flags.writeable
        finally:
            attached.close()


def test_attach_refuses_stale_generation():
    with SharedSummaryStore(generation=1) as store:
        store.put("a", np.zeros(4, dtype=np.int64))
        with pytest.raises(StaleSummaryError):
            attach_store(store.manifest, expected_generation=2)


def test_attach_refuses_corrupt_magic():
    from multiprocessing import shared_memory

    store = SharedSummaryStore()
    try:
        name = store.put("a", np.zeros(4, dtype=np.int64))
        raw = shared_memory.SharedMemory(name=name)
        try:
            np.ndarray((1,), dtype=np.int64, buffer=raw.buf)[0] = 0xBAD
            with pytest.raises(SegmentFormatError):
                attach_store(store.manifest)
        finally:
            raw.close()
    finally:
        store.close()


def test_refcount_tracks_attachers():
    with SharedSummaryStore() as store:
        store.put("a", np.zeros(4, dtype=np.int64))
        assert store.segment_refcount("a") == 1  # owner
        first = attach_store(store.manifest)
        second = attach_store(store.manifest)
        assert store.segment_refcount("a") == 3
        first.close()
        assert store.segment_refcount("a") == 2
        first.close()  # idempotent: no double decrement
        assert store.segment_refcount("a") == 2
        second.close()
        assert store.segment_refcount("a") == 1


def test_failed_attach_rolls_back_refcounts():
    # Attaching bumps refcounts segment by segment; a validation failure
    # on a *later* segment must undo the earlier bumps, or every failed
    # attach skews the advisory count diagnostics read.
    from multiprocessing import shared_memory

    with SharedSummaryStore() as store:
        store.put("a", np.zeros(4, dtype=np.int64))
        name_b = store.put("b", np.zeros(4, dtype=np.int64))
        raw = shared_memory.SharedMemory(name=name_b)
        try:
            np.ndarray((1,), dtype=np.int64, buffer=raw.buf)[0] = 0xBAD
            with pytest.raises(SegmentFormatError):
                attach_store(store.manifest)
            assert store.segment_refcount("a") == 1  # owner only, rolled back
        finally:
            raw.close()


def test_unsupported_dtype_and_duplicate_key_rejected():
    with SharedSummaryStore() as store:
        with pytest.raises(ValueError, match="not exportable"):
            store.put("complex", np.zeros(3, dtype=np.complex128))
        store.put("a", np.zeros(3, dtype=np.int64))
        with pytest.raises(ValueError, match="already holds"):
            store.put("a", np.zeros(3, dtype=np.int64))


def test_close_unlinks_every_segment_and_is_idempotent():
    before = shm_entries()
    store = SharedSummaryStore()
    store.put("a", np.zeros(1024, dtype=np.int64))
    store.put("b", np.zeros(1024, dtype=np.float64))
    assert len(shm_entries() - before) == 2
    store.close()
    assert shm_entries() - before == set()
    store.close()  # idempotent
    with pytest.raises(RuntimeError):
        store.put("c", np.zeros(3, dtype=np.int64))


def test_unlink_under_live_attachment_keeps_views_valid():
    # POSIX semantics: the owner's unlink removes the name, not the
    # pages; an attached mapping keeps reading valid data.
    store = SharedSummaryStore()
    payload = np.arange(64, dtype=np.int64)
    store.put("a", payload)
    attached = attach_store(store.manifest)
    store.close()
    try:
        np.testing.assert_array_equal(attached.arrays["a"], payload)
    finally:
        attached.close()


def test_garbage_collected_store_does_not_leak():
    before = shm_entries()
    store = SharedSummaryStore()
    store.put("a", np.zeros(4096, dtype=np.int64))
    assert len(shm_entries() - before) == 1
    del store  # finalizer must unlink without an explicit close()
    assert shm_entries() - before == set()


def test_process_exit_without_close_does_not_leak(tmp_path):
    # The weakref.finalize cleanup must also run at interpreter exit:
    # a process that dies holding an open store leaves /dev/shm clean.
    script = tmp_path / "leaker.py"
    script.write_text(
        "import numpy as np\n"
        "from repro.parallel.shm import SharedSummaryStore\n"
        "store = SharedSummaryStore()\n"
        "print(store.put('a', np.zeros(4096, dtype=np.int64)))\n"
        # no close(): exit with the store open
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(os.getcwd(), "src"), env.get("PYTHONPATH")) if p
    )
    proc = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True, env=env
    )
    assert proc.returncode == 0, proc.stderr
    name = proc.stdout.strip()
    assert name
    assert not os.path.exists(f"/dev/shm/{name}")
