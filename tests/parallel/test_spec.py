"""Estimator export/rebuild specs: parity, size, refusal rules."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.euler.full import EulerApprox, QueryEdge
from repro.euler.histogram import EulerHistogram
from repro.euler.maintained import MaintainedEulerHistogram
from repro.euler.multi import MEulerApprox
from repro.euler.simple import SEulerApprox
from repro.exact.evaluator import ExactEvaluator
from repro.parallel.shm import SharedSummaryStore, attach_store
from repro.parallel.spec import UnsupportedEstimatorError, export_estimator

from tests.conftest import random_dataset


@pytest.fixture(scope="module")
def setup(world_grid_module):
    grid = world_grid_module
    rng = np.random.default_rng(99)
    dataset = random_dataset(rng, grid, 400, max_size_cells=25.0)
    return grid, dataset, EulerHistogram.from_dataset(dataset, grid)


@pytest.fixture(scope="module")
def world_grid_module():
    from repro.grid.grid import Grid

    return Grid.world_1deg()


def _random_batch(grid, n=300, seed=7):
    from repro.grid.tiles_math import TileQueryBatch

    rng = np.random.default_rng(seed)
    qx_lo = rng.integers(0, grid.n1 - 1, size=n)
    qy_lo = rng.integers(0, grid.n2 - 1, size=n)
    qx_hi = qx_lo + 1 + rng.integers(0, np.maximum(grid.n1 - qx_lo - 1, 1))
    qy_hi = qy_lo + 1 + rng.integers(0, np.maximum(grid.n2 - qy_lo - 1, 1))
    return TileQueryBatch(qx_lo, np.minimum(qx_hi, grid.n1), qy_lo, np.minimum(qy_hi, grid.n2))


def _estimators(setup):
    grid, dataset, hist = setup
    return {
        "s_euler": SEulerApprox(hist),
        "euler": EulerApprox(hist, QueryEdge.RIGHT),
        "m_euler": MEulerApprox(dataset, grid, [1.0, 9.0, 100.0], edge=QueryEdge.TOP),
        "exact": ExactEvaluator(dataset, grid),
    }


@pytest.mark.parametrize("key", ["s_euler", "euler", "m_euler", "exact"])
def test_export_rebuild_bit_parity(setup, key):
    grid, _, _ = setup
    estimator = _estimators(setup)[key]
    batch = _random_batch(grid)
    expected = estimator.estimate_batch(batch)

    store = SharedSummaryStore()
    try:
        spec = export_estimator(estimator, store)
        # The spec must travel as a small pickle: keys and scalars only,
        # never the summary arrays themselves.
        payload = pickle.dumps(spec)
        assert len(payload) < 4096
        attached = attach_store(store.manifest)
        try:
            rebuilt = pickle.loads(payload).build(attached.arrays)
            got = rebuilt.estimate_batch(batch)
            for field in ("n_d", "n_cs", "n_cd", "n_o"):
                np.testing.assert_array_equal(
                    getattr(got, field), getattr(expected, field)
                )
            assert rebuilt.name == estimator.name
        finally:
            attached.close()
    finally:
        store.close()


def test_rebuilt_estimators_preserve_configuration(setup):
    grid, dataset, hist = setup
    store = SharedSummaryStore()
    try:
        euler = EulerApprox(hist, QueryEdge.BOTTOM)
        spec = export_estimator(euler, store)
        attached = attach_store(store.manifest)
        try:
            rebuilt = spec.build(attached.arrays)
            assert rebuilt.edge is QueryEdge.BOTTOM
            assert rebuilt.histogram.num_objects == hist.num_objects
        finally:
            attached.close()
    finally:
        store.close()


def test_maintained_histogram_refuses_export(setup):
    grid, dataset, _ = setup
    maintained = MaintainedEulerHistogram(grid, dataset)
    store = SharedSummaryStore()
    try:
        with pytest.raises(UnsupportedEstimatorError):
            export_estimator(SEulerApprox(maintained), store)
    finally:
        store.close()


def test_unknown_estimator_refuses_export(setup):
    class Custom:
        name = "custom"

        def estimate(self, query):  # pragma: no cover - never called
            raise NotImplementedError

    store = SharedSummaryStore()
    try:
        with pytest.raises(UnsupportedEstimatorError):
            export_estimator(Custom(), store)
        # A refused export must not leave half a manifest behind.
        assert store.manifest == {}
    finally:
        store.close()
