"""Threaded stress test: many workers hammering one shared resilient
service with the cache, shard pool and fault injector all enabled.

Both tiers wrap the same summary, so every fully-answered raster --
whichever tier answered, cached or not -- must equal the fault-free
reference bit for bit.  The test asserts that under concurrency, plus
the cache's byte bound and the absence of any raised error."""

import threading

import numpy as np
import pytest

from repro.browse.resilience import ResilientBrowsingService
from repro.browse.service import GeoBrowsingService
from repro.cache import TileResultCache
from repro.euler.histogram import EulerHistogram
from repro.euler.simple import SEulerApprox
from repro.geometry.rect import Rect
from repro.grid.grid import Grid
from repro.grid.tiles_math import TileQuery
from repro.testing.faults import FaultSchedule, FaultyBatchEstimator

from tests.conftest import random_dataset

GRID = Grid(Rect(0.0, 12.0, 0.0, 8.0), 12, 8)
NUM_WORKERS = 6
REQUESTS_PER_WORKER = 12

#: The raster shapes the workers cycle through (all over the full grid,
#: so cache entries overlap across shapes with identical tile geometry).
SHAPES = ((4, 6), (8, 12), (2, 3))


@pytest.fixture(scope="module")
def hist():
    data = random_dataset(np.random.default_rng(99), GRID, 300, max_size_cells=3.0)
    return EulerHistogram.from_dataset(data, GRID)


def test_threaded_stress_with_faults_cache_and_shards(hist):
    estimator = SEulerApprox(hist)
    references = {
        shape: GeoBrowsingService(estimator, GRID)
        .browse(TileQuery(0, 12, 0, 8), *shape)
        .counts
        for shape in SHAPES
    }

    primary = FaultyBatchEstimator(
        SEulerApprox(hist),
        FaultSchedule(seed=5, error_rate=0.15, nan_rate=0.1),
        sleep=lambda _s: None,
    )
    cache = TileResultCache()
    service = ResilientBrowsingService(
        [primary, estimator],
        GRID,
        cache=cache,
        num_shards=3,
        chunk_rows=2,
        failure_threshold=10_000,  # keep the breaker out of the way
        sleep=lambda _s: None,
    )

    errors: list[str] = []
    barrier = threading.Barrier(NUM_WORKERS)

    def worker(worker_id: int) -> None:
        try:
            barrier.wait()
            for i in range(REQUESTS_PER_WORKER):
                rows, cols = SHAPES[(worker_id + i) % len(SHAPES)]
                result = service.browse(TileQuery(0, 12, 0, 8), rows, cols)
                if result.valid is not None and not result.valid.all():
                    errors.append("partial result without a deadline")
                elif not np.array_equal(result.counts, references[(rows, cols)]):
                    errors.append(f"raster diverged on {rows}x{cols}")
        except Exception as exc:
            errors.append(repr(exc))

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(NUM_WORKERS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    service.close()

    assert not errors, errors[:5]
    assert primary.injected["error"] + primary.injected["nan"] > 0, (
        "the fault injector never fired; the stress test is vacuous"
    )
    assert cache.nbytes <= cache.capacity_bytes
    # The shared cache saw real traffic and stayed coherent.
    total_tiles = NUM_WORKERS * REQUESTS_PER_WORKER  # lower bound: 6 tiles/raster
    assert cache.hits + cache.misses >= total_tiles
    # Tier stats were counted under their locks: attempts cover every
    # chunk outcome recorded.
    tier0, tier1 = service.chain.tiers
    assert tier0.attempts == tier0.successes + tier0.failures
    assert tier1.attempts >= tier1.successes
