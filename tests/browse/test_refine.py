"""The pyramid refinement tier: coarse-first serving under deadlines.

Acceptance properties of the degradation tier:

- a zero-budget browse still returns a *complete* raster, served from
  the coarsest aligned pyramid level with per-tile level and error-bound
  annotations;
- an unbounded (or roomy-deadline) browse is bit-identical to the same
  service without a pyramid -- the fine path overwrites every prefilled
  tile and the annotation is dropped;
- coarse-but-valid tiles never seed the tile cache and are never reused
  by viewport deltas;
- a chunk whose fallback chain is exhausted is rescued from the coarsest
  level instead of failing the request;
- ``on_deadline="raise"`` degrades instead of raising when the pyramid
  made the raster complete.
"""

import numpy as np
import pytest

from repro.browse.delta import DeltaTracker
from repro.browse.refine import PyramidSource
from repro.browse.resilience import ResilientBrowsingService
from repro.browse.service import GeoBrowsingService
from repro.cache import TileResultCache
from repro.errors import DeadlineExceededError, EstimatorFailedError
from repro.euler.histogram import EulerHistogram
from repro.euler.pyramid import HistogramPyramid
from repro.euler.simple import SEulerApprox
from repro.geometry.rect import Rect
from repro.grid.grid import Grid
from repro.grid.tiles_math import TileQuery
from repro.obs import BrowseInstrumentation
from repro.testing.faults import FaultSchedule, FaultyBatchEstimator

from tests.conftest import random_dataset

REGION = TileQuery(0, 64, 0, 32)


@pytest.fixture
def grid():
    return Grid(Rect(0.0, 64.0, 0.0, 32.0), 64, 32)


@pytest.fixture
def data(grid, rng):
    return random_dataset(rng, grid, 250, max_size_cells=4.0)


@pytest.fixture
def estimator(grid, data):
    return SEulerApprox(EulerHistogram.from_dataset(data, grid))


@pytest.fixture
def pyramid(grid, data):
    # 64x32 -> 32x16 -> 16x8 -> 8x4: four levels, coarsest is 3.
    return HistogramPyramid(data, grid, min_cells=4)


def make_service(estimator, grid, pyramid, **kwargs):
    return ResilientBrowsingService(estimator, grid, pyramid=pyramid, **kwargs)


class TestPyramidSource:
    def test_grid_mismatch_rejected(self, grid, data, pyramid):
        other = Grid(Rect(0.0, 64.0, 0.0, 32.0), 32, 16)
        with pytest.raises(ValueError, match="does not match"):
            PyramidSource(pyramid, grid=other)
        est = SEulerApprox(EulerHistogram.from_dataset(data, other))
        with pytest.raises(ValueError, match="match"):
            ResilientBrowsingService(est, other, pyramid=pyramid)
        source = PyramidSource(pyramid)
        with pytest.raises(ValueError, match="must equal"):
            ResilientBrowsingService(est, other, pyramid=source)

    def test_plan_is_coarsest_first_and_excludes_full_resolution(self, pyramid):
        source = PyramidSource(pyramid)
        steps = source.plan(REGION, rows=32, cols=64)
        assert [(s.level, s.rows, s.cols) for s in steps] == [
            (3, 4, 8),
            (2, 8, 16),
            (1, 16, 32),
        ]
        # Level 0 would be the requested resolution itself: the primary
        # chain owns that answer, so the ladder must not contain it.
        assert all(s.level > 0 for s in steps)
        # Each kept step strictly refines the previous one.
        tiles = [s.tiles for s in steps]
        assert tiles == sorted(tiles) and len(set(tiles)) == len(tiles)

    def test_plan_empty_when_no_level_helps(self, pyramid):
        source = PyramidSource(pyramid)
        assert source.plan(REGION, rows=1, cols=1) == ()

    def test_raster_broadcasts_coarse_counts(self, pyramid):
        source = PyramidSource(pyramid)
        step = source.plan(REGION, rows=32, cols=64)[0]
        counts, bound = source.raster(step, 32, 64, "n_intersect")
        assert counts.shape == bound.shape == (32, 64)
        assert (bound >= 0).all()
        # Compare against browsing the step's level directly.
        level_grid = pyramid.grid(step.level)
        coarse = GeoBrowsingService(pyramid.estimator(step.level), level_grid).browse(
            step.region, rows=step.rows, cols=step.cols, relation="intersect"
        ).counts
        expected = np.repeat(
            np.repeat(coarse, 32 // step.rows, axis=0), 64 // step.cols, axis=1
        )
        np.testing.assert_array_equal(counts, expected)


class TestCoarseFirstServing:
    def test_zero_deadline_serves_complete_coarse_raster(self, estimator, grid, pyramid):
        service = make_service(estimator, grid, pyramid)
        result = service.browse(REGION, rows=32, cols=64, deadline=0.0)
        assert result.is_complete
        assert not result.full_resolution
        assert np.isfinite(result.counts).all()
        assert result.levels is not None and (result.levels == 3).all()
        assert result.error_bound is not None and (result.error_bound >= 0).all()

    def test_error_bound_actually_bounds_the_error(self, estimator, grid, pyramid):
        service = make_service(estimator, grid, pyramid)
        coarse = service.browse(REGION, rows=32, cols=64, relation="intersect", deadline=0.0)
        fine = service.browse(REGION, rows=32, cols=64, relation="intersect")
        assert fine.full_resolution
        assert (np.abs(fine.counts - coarse.counts) <= coarse.error_bound).all()

    def test_unbounded_browse_matches_pyramid_free_service(self, estimator, grid, pyramid):
        with_pyramid = make_service(estimator, grid, pyramid)
        without = ResilientBrowsingService(estimator, grid)
        a = with_pyramid.browse(REGION, rows=16, cols=16)
        b = without.browse(REGION, rows=16, cols=16)
        assert a.full_resolution and a.levels is None and a.error_bound is None
        np.testing.assert_array_equal(a.counts, b.counts)

    def test_roomy_deadline_reaches_full_resolution(self, estimator, grid, pyramid):
        service = make_service(estimator, grid, pyramid)
        result = service.browse(REGION, rows=16, cols=16, deadline=60.0)
        # The prefill ran, then the fine path overwrote every tile, so
        # the annotation is dropped and the result is authoritative.
        assert result.is_complete and result.full_resolution
        assert result.levels is None

    def test_no_deadline_means_no_prefill_spans(self, estimator, grid, pyramid):
        instruments = BrowseInstrumentation()
        service = make_service(estimator, grid, pyramid, instruments=instruments)
        service.browse(REGION, rows=16, cols=16)
        served = instruments.registry.get("repro_pyramid_level_served_total")
        assert all(s["value"] == 0 for s in served.samples())

    def test_metrics_record_levels_and_rounds(self, estimator, grid, pyramid):
        instruments = BrowseInstrumentation()
        service = make_service(estimator, grid, pyramid, instruments=instruments)
        service.browse(REGION, rows=32, cols=64, deadline=0.0)
        served = instruments.registry.get("repro_pyramid_level_served_total")
        assert served.labels(service="resilient", level="3").value == 1.0
        rounds = instruments.registry.get("repro_pyramid_refine_rounds")
        assert rounds.labels(service="resilient").count == 1


class TestCoarseNeverReused:
    def test_coarse_tiles_never_seed_the_cache(self, estimator, grid, pyramid):
        cache = TileResultCache()
        service = make_service(estimator, grid, pyramid, cache=cache)
        result = service.browse(REGION, rows=32, cols=64, deadline=0.0)
        assert result.is_complete and not result.full_resolution
        assert len(cache) == 0

    def test_primary_tiles_still_cached_without_a_deadline(self, estimator, grid, pyramid):
        cache = TileResultCache()
        service = make_service(estimator, grid, pyramid, cache=cache)
        result = service.browse(REGION, rows=16, cols=16)
        assert result.full_resolution
        assert len(cache) == 16 * 16

    def test_coarse_tiles_never_reused_by_deltas(self, estimator, grid, pyramid):
        tracker = DeltaTracker()
        service = make_service(estimator, grid, pyramid, delta=tracker)
        first = service.browse(REGION, rows=32, cols=64, deadline=0.0, session="s")
        # Every tile is coarse: nothing is marked reusable.
        assert first.delta.reusable is not None
        assert not first.delta.reusable.any()
        # A repeat of the same viewport must be served from the pyramid
        # again, not copied from the remembered coarse raster.
        second = service.browse(REGION, rows=32, cols=64, deadline=0.0, session="s")
        assert second.levels is not None and (second.levels >= 0).all()


class TestChainExhaustedRescue:
    def _failing_chain_service(self, estimator, grid, pyramid):
        flaky = FaultyBatchEstimator(
            estimator, FaultSchedule(script=("error",), cycle=True)
        )
        return ResilientBrowsingService(flaky, grid, pyramid=pyramid)

    def test_rescued_from_coarsest_level(self, estimator, grid, pyramid):
        service = self._failing_chain_service(estimator, grid, pyramid)
        result = service.browse(REGION, rows=32, cols=64)
        assert result.is_complete
        assert not result.full_resolution
        assert (result.levels == 3).all()
        assert (result.error_bound >= 0).all()
        # Rescued tiles are not primary: nothing is delta-reusable.
        assert not result.delta.reusable.any()

    def test_rescued_tiles_never_seed_the_cache(self, estimator, grid, pyramid):
        flaky = FaultyBatchEstimator(
            estimator, FaultSchedule(script=("error",), cycle=True)
        )
        cache = TileResultCache()
        service = ResilientBrowsingService(flaky, grid, pyramid=pyramid, cache=cache)
        result = service.browse(REGION, rows=32, cols=64)
        assert result.is_complete
        assert len(cache) == 0

    def test_without_pyramid_the_failure_still_surfaces(self, estimator, grid):
        flaky = FaultyBatchEstimator(
            estimator, FaultSchedule(script=("error",), cycle=True)
        )
        service = ResilientBrowsingService(flaky, grid)
        with pytest.raises(EstimatorFailedError):
            service.browse(REGION, rows=32, cols=64)

    def test_rescue_metric_recorded(self, estimator, grid, pyramid):
        flaky = FaultyBatchEstimator(
            estimator, FaultSchedule(script=("error",), cycle=True)
        )
        instruments = BrowseInstrumentation()
        service = ResilientBrowsingService(
            flaky, grid, pyramid=pyramid, instruments=instruments
        )
        service.browse(REGION, rows=32, cols=64)
        rescues = instruments.registry.get("repro_pyramid_rescued_chunks_total")
        assert rescues.labels(service="resilient").value > 0


class TestDeadlineRaiseDegrades:
    def test_raise_mode_returns_coarse_complete_raster(self, estimator, grid, pyramid):
        service = make_service(estimator, grid, pyramid)
        result = service.browse(
            REGION, rows=32, cols=64, deadline=0.0, on_deadline="raise"
        )
        assert result.is_complete and not result.full_resolution

    def test_raise_mode_still_raises_without_a_pyramid(self, estimator, grid):
        service = ResilientBrowsingService(estimator, grid)
        with pytest.raises(DeadlineExceededError):
            service.browse(REGION, rows=32, cols=64, deadline=0.0, on_deadline="raise")

    def test_raise_mode_still_raises_when_no_level_aligns(self, estimator, grid, pyramid):
        service = make_service(estimator, grid, pyramid)
        # rows=1, cols=1 plans an empty ladder: nothing prefills, so the
        # zero budget must surface as the usual deadline error.
        with pytest.raises(DeadlineExceededError):
            service.browse(REGION, rows=1, cols=1, deadline=0.0, on_deadline="raise")


class TestValidation:
    def test_refine_fraction_validated(self, estimator, grid, pyramid):
        with pytest.raises(ValueError, match="refine_fraction"):
            make_service(estimator, grid, pyramid, refine_fraction=0.0)
        with pytest.raises(ValueError, match="refine_fraction"):
            make_service(estimator, grid, pyramid, refine_fraction=1.5)

    def test_pyramid_property_exposes_the_source(self, estimator, grid, pyramid):
        service = make_service(estimator, grid, pyramid)
        assert isinstance(service.pyramid, PyramidSource)
        assert service.pyramid.pyramid is pyramid
        assert ResilientBrowsingService(estimator, grid).pyramid is None
