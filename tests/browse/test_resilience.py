"""End-to-end tests of the resilient serving layer under injected faults.

Every degradation path is exercised deterministically: scripted fault
schedules, a fake clock, and a fake sleep that advances it -- no real
timers, no flakes.
"""

import numpy as np
import pytest

from repro.browse.resilience import (
    CircuitBreaker,
    FallbackChain,
    ResilientBrowsingService,
    RetryPolicy,
)
from repro.browse.service import GeoBrowsingService
from repro.errors import (
    BrowseError,
    DeadlineExceededError,
    EstimatorFailedError,
    InvalidRegionError,
)
from repro.euler.base import ScalarBatchFallback
from repro.euler.histogram import EulerHistogram
from repro.euler.simple import SEulerApprox
from repro.exact.evaluator import ExactEvaluator
from repro.geometry.rect import Rect
from repro.grid.grid import Grid
from repro.grid.tiles_math import TileQuery
from repro.testing.faults import (
    FaultSchedule,
    FaultyBatchEstimator,
    FaultyEstimator,
    InjectedFault,
)
from repro.workloads.tiles import browsing_tile_batch

from tests.conftest import random_dataset

REGION = TileQuery(0, 12, 0, 8)


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def grid():
    return Grid(Rect(0.0, 12.0, 0.0, 8.0), 12, 8)


@pytest.fixture
def data(grid, rng):
    return random_dataset(rng, grid, 300, max_size_cells=3.0)


@pytest.fixture
def hist(grid, data):
    return EulerHistogram.from_dataset(data, grid)


@pytest.fixture
def exact(grid, data):
    return ExactEvaluator(data, grid)


def reference_counts(exact, grid, rows=4, cols=6, relation="overlap"):
    return GeoBrowsingService(exact, grid).browse(
        REGION, rows=rows, cols=cols, relation=relation
    ).counts


class TestFaultSchedule:
    def test_scripted_sequence_then_none(self):
        schedule = FaultSchedule(script=("error", "nan", "latency"))
        assert [schedule.next_fault() for _ in range(5)] == [
            "error", "nan", "latency", "none", "none",
        ]

    def test_cycling_script(self):
        schedule = FaultSchedule(script=("error", "none"), cycle=True)
        assert [schedule.next_fault() for _ in range(4)] == [
            "error", "none", "error", "none",
        ]

    def test_seeded_draws_are_reproducible(self):
        kwargs = dict(seed=7, error_rate=0.3, latency_rate=0.2, nan_rate=0.2)
        a = [FaultSchedule(**kwargs).next_fault() for _ in range(50)]
        b = [FaultSchedule(**kwargs).next_fault() for _ in range(50)]
        assert a == b
        assert {"error", "latency", "nan", "none"} >= set(a)
        assert set(a) != {"none"}

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSchedule(script=("explode",))
        with pytest.raises(ValueError):
            FaultSchedule(error_rate=0.7, nan_rate=0.7)
        with pytest.raises(ValueError):
            FaultSchedule(error_rate=-0.1)

    def test_corrupt_mask_hits_at_least_one_entry(self):
        schedule = FaultSchedule(seed=3)
        for n in (1, 2, 17):
            mask = schedule.corrupt_mask(n)
            assert mask.shape == (n,)
            assert mask.any()


class TestFaultyEstimator:
    def test_error_fault_raises_injected(self, exact):
        faulty = FaultyEstimator(exact, FaultSchedule(script=("error",)))
        with pytest.raises(InjectedFault):
            faulty.estimate(TileQuery(0, 2, 0, 2))
        assert faulty.injected["error"] == 1

    def test_passthrough_matches_wrapped(self, exact):
        faulty = FaultyEstimator(exact, FaultSchedule())
        q = TileQuery(1, 5, 2, 6)
        assert faulty.estimate(q) == exact.estimate(q)
        assert faulty.name == "Faulty(Exact)"

    def test_nan_fault_corrupts_scalar_counts(self, exact):
        faulty = FaultyEstimator(exact, FaultSchedule(script=("nan",)))
        counts = faulty.estimate(TileQuery(0, 2, 0, 2))
        assert np.isnan([counts.n_d, counts.n_cs, counts.n_cd, counts.n_o]).all()

    def test_latency_fault_calls_sleep(self, exact):
        slept = []
        faulty = FaultyEstimator(
            exact,
            FaultSchedule(script=("latency",), latency=0.25),
            sleep=slept.append,
        )
        faulty.estimate(TileQuery(0, 2, 0, 2))
        assert slept == [0.25]

    def test_batch_nan_fault_corrupts_subset(self, exact):
        faulty = FaultyBatchEstimator(exact, FaultSchedule(script=("nan",), seed=5))
        batch = browsing_tile_batch(REGION, 4, 6)
        result = faulty.estimate_batch(batch)
        bad = np.isnan(result.n_o)
        assert bad.any() and not bad.all()
        clean = faulty.estimate_batch(batch)  # script exhausted -> none
        assert np.isfinite(clean.n_o).all()


class TestCircuitBreaker:
    def test_trips_after_k_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, cooldown=5.0, clock=clock)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed" and breaker.allows()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allows()

    def test_success_resets_the_count(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_probe_recovers(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown=2.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allows()
        clock.advance(2.0)
        assert breaker.allows() and breaker.state == "half_open"
        breaker.record_success()
        assert breaker.state == "closed"

    def test_failed_probe_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, cooldown=1.0, clock=clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allows()
        breaker.record_failure()  # single probe failure re-opens immediately
        assert breaker.state == "open" and not breaker.allows()

    def test_trips_on_exactly_the_kth_failure(self):
        """The K-th consecutive failure -- not K+1 -- opens the breaker."""
        for threshold in (1, 2, 5):
            breaker = CircuitBreaker(failure_threshold=threshold, clock=FakeClock())
            for i in range(threshold - 1):
                breaker.record_failure()
                assert breaker.state == "closed", f"tripped early at failure {i + 1}"
            breaker.record_failure()
            assert breaker.state == "open"

    def test_failed_probe_restarts_the_cooldown(self):
        """Re-opening stamps a fresh opened_at: the next probe waits a
        full cooldown from the probe failure, not from the original trip."""
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown=10.0, clock=clock)
        breaker.record_failure()  # opens at t=0
        clock.advance(10.0)
        assert breaker.allows()  # probe admitted at t=10
        breaker.record_failure()  # probe fails -> re-opened at t=10
        clock.advance(9.9)  # t=19.9: only 9.9s since re-open
        assert not breaker.allows()
        clock.advance(0.1)  # t=20: full cooldown since re-open
        assert breaker.allows()

    def test_half_open_admits_exactly_one_probe(self):
        """Only the admitting allows() call wins; until the probe's
        outcome is recorded every other caller is rejected."""
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allows()  # the probe
        assert not breaker.allows()  # concurrent caller: rejected
        assert not breaker.allows()
        breaker.record_success()
        assert breaker.allows()  # closed again: normal traffic

    def test_state_reads_do_not_admit_the_probe(self):
        """Reading .state is pure -- only allows() may transition the
        breaker to half-open (the chain relies on this mid-retry)."""
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(5.0)
        for _ in range(3):
            assert breaker.state == "open"
        assert breaker.allows()  # the probe is still available
        assert breaker.state == "half_open"

    def test_transition_hook_sees_every_state_change(self):
        clock = FakeClock()
        transitions = []
        breaker = CircuitBreaker(
            failure_threshold=2, cooldown=1.0, clock=clock,
            on_transition=lambda old, new: transitions.append((old, new)),
        )
        breaker.record_failure()
        breaker.record_failure()  # trip
        clock.advance(1.0)
        breaker.allows()  # admit the probe
        breaker.record_failure()  # failed probe re-opens
        clock.advance(1.0)
        breaker.allows()
        breaker.record_success()  # recovered
        assert transitions == [
            ("closed", "open"),
            ("open", "half_open"),
            ("half_open", "open"),
            ("open", "half_open"),
            ("half_open", "closed"),
        ]

    def test_redundant_success_fires_no_transition(self):
        transitions = []
        breaker = CircuitBreaker(
            clock=FakeClock(),
            on_transition=lambda old, new: transitions.append((old, new)),
        )
        breaker.record_success()  # already closed: no-op transition
        assert transitions == []


class TestRetryPolicy:
    def test_deterministic_backoff(self):
        policy = RetryPolicy(attempts=4, backoff_base=0.1, backoff_multiplier=2.0)
        assert [policy.delay(i) for i in range(3)] == [0.1, 0.2, 0.4]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base=-1.0)


class TestFallbackChain:
    def test_failing_primary_falls_back_to_complete_raster(self, grid, exact, hist):
        """Acceptance: FaultyEstimator failures on the primary still yield
        a complete raster, answered by the fallback."""
        primary = FaultyBatchEstimator(exact, FaultSchedule(script=("error",) * 10))
        service = ResilientBrowsingService(
            [primary, SEulerApprox(hist)], grid, chunk_rows=2,
            retry=RetryPolicy(attempts=1), clock=FakeClock(), sleep=lambda s: None,
        )
        result = service.browse(REGION, rows=4, cols=6)
        assert result.is_complete and result.valid is None
        expected = GeoBrowsingService(SEulerApprox(hist), grid).browse(
            REGION, rows=4, cols=6
        )
        np.testing.assert_array_equal(result.counts, expected.counts)

    def test_transient_fault_recovered_by_retry(self, grid, exact):
        slept = []
        primary = FaultyBatchEstimator(exact, FaultSchedule(script=("error",)))
        service = ResilientBrowsingService(
            [primary], grid, chunk_rows=8,
            retry=RetryPolicy(attempts=2, backoff_base=0.5),
            clock=FakeClock(), sleep=slept.append,
        )
        result = service.browse(REGION, rows=4, cols=6)
        assert result.is_complete
        np.testing.assert_array_equal(result.counts, reference_counts(exact, grid))
        assert slept == [0.5]  # one deterministic backoff before the retry

    def test_nan_corruption_never_reaches_the_client(self, grid, exact, hist):
        primary = FaultyBatchEstimator(exact, FaultSchedule(script=("nan",) * 10, seed=2))
        service = ResilientBrowsingService(
            [primary, SEulerApprox(hist)], grid, chunk_rows=2,
            retry=RetryPolicy(attempts=1), clock=FakeClock(), sleep=lambda s: None,
        )
        result = service.browse(REGION, rows=4, cols=6)
        assert result.is_complete
        assert np.isfinite(result.counts).all()

    def test_all_estimators_failing_raises_estimator_failed(self, grid, exact, hist):
        """Acceptance: exhausting the chain raises EstimatorFailedError --
        never a bare ValueError/KeyError."""
        chain = [
            FaultyBatchEstimator(exact, FaultSchedule(script=("error",), cycle=True)),
            FaultyBatchEstimator(
                SEulerApprox(hist), FaultSchedule(script=("nan",), cycle=True, seed=9)
            ),
        ]
        service = ResilientBrowsingService(
            chain, grid, chunk_rows=2,
            retry=RetryPolicy(attempts=2), clock=FakeClock(), sleep=lambda s: None,
        )
        with pytest.raises(EstimatorFailedError) as excinfo:
            service.browse(REGION, rows=4, cols=6)
        assert isinstance(excinfo.value, BrowseError)
        assert len(excinfo.value.causes) == 2
        assert isinstance(excinfo.value.causes[0], InjectedFault)

    def test_breaker_trips_and_skips_the_primary(self, grid, exact, hist):
        primary = FaultyBatchEstimator(exact, FaultSchedule(script=("error",), cycle=True))
        service = ResilientBrowsingService(
            [primary, SEulerApprox(hist)], grid, chunk_rows=1,
            failure_threshold=3, cooldown=60.0,
            retry=RetryPolicy(attempts=1), clock=FakeClock(), sleep=lambda s: None,
        )
        result = service.browse(REGION, rows=8, cols=6)
        assert result.is_complete
        primary_tier = service.chain.tiers[0]
        assert primary_tier.breaker.state == "open"
        # 3 failures tripped it; the remaining 5 chunks never touched it.
        assert primary.calls == 3
        assert primary_tier.attempts == 3

    def test_half_open_probe_restores_the_primary(self, grid, exact, hist):
        clock = FakeClock()
        primary = FaultyBatchEstimator(exact, FaultSchedule(script=("error",) * 2))
        service = ResilientBrowsingService(
            [primary, SEulerApprox(hist)], grid, chunk_rows=8,
            failure_threshold=2, cooldown=10.0,
            retry=RetryPolicy(attempts=2), clock=clock, sleep=lambda s: None,
        )
        service.browse(REGION, rows=4, cols=6)  # trips the primary open
        assert service.chain.tiers[0].breaker.state == "open"
        clock.advance(10.0)
        result = service.browse(REGION, rows=4, cols=6)  # half-open probe succeeds
        assert service.chain.tiers[0].breaker.state == "closed"
        np.testing.assert_array_equal(result.counts, reference_counts(exact, grid))

    def test_mid_chunk_trip_stops_retrying_the_tier(self, grid, exact, hist):
        """Once a tier trips open mid-chunk, remaining retries are not
        spent on it -- the chunk falls through immediately."""
        primary = FaultyBatchEstimator(exact, FaultSchedule(script=("error",) * 10))
        service = ResilientBrowsingService(
            [primary, SEulerApprox(hist)], grid, chunk_rows=8,
            failure_threshold=1, cooldown=60.0,
            retry=RetryPolicy(attempts=3), clock=FakeClock(), sleep=lambda s: None,
        )
        result = service.browse(REGION, rows=4, cols=6)
        assert result.is_complete
        assert primary.calls == 1  # tripped on the first failure, never retried

    def test_zero_cooldown_trip_does_not_burn_the_probe(self, grid, exact, hist):
        """Regression: the mid-retry open check must not call allows() --
        with a zero cooldown that would admit (and burn) the half-open
        probe inside the same chunk's retry loop."""
        primary = FaultyBatchEstimator(exact, FaultSchedule(script=("error", "error")))
        service = ResilientBrowsingService(
            [primary, SEulerApprox(hist)], grid, chunk_rows=2,
            failure_threshold=1, cooldown=0.0,
            retry=RetryPolicy(attempts=2), clock=FakeClock(), sleep=lambda s: None,
        )
        result = service.browse(REGION, rows=4, cols=6)
        assert result.is_complete
        # Exactly one attempt per chunk: the trip ends chunk 1's retries,
        # and chunk 2 spends the single half-open probe (which fails and
        # re-opens).  The buggy check produced a third call here.
        assert primary.calls == 2
        assert service.chain.tiers[0].successes == 0

    def test_timeout_overrun_counts_as_failure(self, grid, exact, hist):
        clock = FakeClock()
        primary = FaultyBatchEstimator(
            exact,
            FaultSchedule(script=("latency",), cycle=True, latency=0.5),
            sleep=clock.advance,
        )
        service = ResilientBrowsingService(
            [primary, SEulerApprox(hist)], grid, chunk_rows=8,
            attempt_timeout=0.1, retry=RetryPolicy(attempts=1),
            clock=clock, sleep=lambda s: None,
        )
        result = service.browse(REGION, rows=4, cols=6)
        assert result.is_complete
        assert service.chain.tiers[0].failures == 1
        assert service.chain.tiers[1].successes == 1

    def test_scalar_loop_as_last_resort_tier(self, grid, exact, hist):
        """The scalar loop rides the chain as a ScalarBatchFallback tier."""
        primary = FaultyBatchEstimator(exact, FaultSchedule(script=("error",), cycle=True))
        service = ResilientBrowsingService(
            [primary, ScalarBatchFallback(SEulerApprox(hist))], grid, chunk_rows=4,
            retry=RetryPolicy(attempts=1), clock=FakeClock(), sleep=lambda s: None,
        )
        result = service.browse(REGION, rows=4, cols=6)
        assert result.is_complete
        expected = GeoBrowsingService(SEulerApprox(hist), grid).browse(
            REGION, rows=4, cols=6, use_batch=False
        )
        np.testing.assert_array_equal(result.counts, expected.counts)


class TestDeadlines:
    def test_zero_deadline_yields_fully_masked_partial(self, grid, exact):
        """Acceptance: a ~0 deadline yields a partial raster whose
        validity mask marks the unanswered chunks."""
        service = ResilientBrowsingService([exact], grid, chunk_rows=2, clock=FakeClock())
        result = service.browse(REGION, rows=4, cols=6, deadline=0.0)
        assert not result.is_complete
        assert result.valid is not None and not result.valid.any()
        assert np.isnan(result.counts).all()
        assert result.valid_fraction == 0.0

    def test_mid_request_expiry_marks_remaining_rows(self, grid, exact):
        clock = FakeClock()
        slow = FaultyBatchEstimator(
            exact,
            FaultSchedule(script=("latency",), cycle=True, latency=0.6),
            sleep=clock.advance,
        )
        service = ResilientBrowsingService([slow], grid, chunk_rows=1, clock=clock)
        result = service.browse(REGION, rows=4, cols=6, deadline=1.0)
        assert result.valid is not None
        np.testing.assert_array_equal(result.valid.all(axis=1), [True, True, False, False])
        assert np.isfinite(result.counts[:2]).all()
        assert np.isnan(result.counts[2:]).all()
        np.testing.assert_array_equal(
            result.counts[:2], reference_counts(exact, grid, rows=4, cols=6)[:2]
        )

    def test_on_deadline_raise(self, grid, exact):
        service = ResilientBrowsingService([exact], grid, clock=FakeClock())
        with pytest.raises(DeadlineExceededError) as excinfo:
            service.browse(REGION, rows=4, cols=6, deadline=0.0, on_deadline="raise")
        assert excinfo.value.answered_rows == 0
        assert excinfo.value.total_rows == 4

    def test_unbounded_request_matches_plain_service(self, grid, exact):
        service = ResilientBrowsingService([exact], grid, chunk_rows=3, clock=FakeClock())
        result = service.browse(REGION, rows=4, cols=6, relation="contains")
        np.testing.assert_array_equal(
            result.counts, reference_counts(exact, grid, relation="contains")
        )

    def test_partial_raster_renders_unanswered_tiles(self, grid, exact):
        service = ResilientBrowsingService([exact], grid, clock=FakeClock())
        art = service.browse(REGION, rows=4, cols=6, deadline=0.0).render_ascii()
        assert "?" in art and "nan" not in art

    def test_bad_on_deadline_value(self, grid, exact):
        service = ResilientBrowsingService([exact], grid, clock=FakeClock())
        with pytest.raises(ValueError):
            service.browse(REGION, rows=4, cols=6, on_deadline="explode")


class TestErrorTaxonomy:
    def test_unknown_relation_is_invalid_region(self, grid, exact):
        service = ResilientBrowsingService([exact], grid, clock=FakeClock())
        with pytest.raises(InvalidRegionError):
            service.browse(REGION, rows=4, cols=6, relation="touches")

    def test_misaligned_world_rect_is_invalid_region(self, grid, exact):
        service = ResilientBrowsingService([exact], grid, clock=FakeClock())
        with pytest.raises(InvalidRegionError):
            service.browse(Rect(0.25, 11.75, 0.0, 8.0), rows=4, cols=6)

    def test_impossible_tiling_is_invalid_region(self, grid, exact):
        service = ResilientBrowsingService([exact], grid, clock=FakeClock())
        with pytest.raises(InvalidRegionError):
            service.browse(REGION, rows=5, cols=7)

    def test_plain_service_raises_the_same_taxonomy(self, grid, exact):
        """GeoBrowsingService shares the taxonomy (and stays a
        ValueError for pre-taxonomy callers)."""
        service = GeoBrowsingService(exact, grid)
        with pytest.raises(InvalidRegionError):
            service.browse(REGION, rows=4, cols=6, relation="touches")
        with pytest.raises(ValueError):
            service.browse(REGION, rows=4, cols=6, relation="touches")

    def test_every_chain_failure_is_a_browse_error(self, grid, exact):
        """Nothing outside the taxonomy escapes the serving layer."""
        primary = FaultyBatchEstimator(
            exact, FaultSchedule(seed=11, error_rate=0.5, nan_rate=0.5)
        )
        service = ResilientBrowsingService(
            [primary], grid, chunk_rows=1,
            retry=RetryPolicy(attempts=1), clock=FakeClock(), sleep=lambda s: None,
        )
        for _ in range(5):
            try:
                result = service.browse(REGION, rows=4, cols=6)
            except Exception as exc:
                assert isinstance(exc, BrowseError)
            else:
                assert np.isfinite(result.counts).all()
