"""Threaded stress on the state the gateway shares across executor
threads: session-keyed viewport deltas and the shared tile cache.

The gateway runs ``browse()`` on a thread pool, with per-tenant
services sharing one :class:`TileResultCache` and each owning a
session-keyed :class:`DeltaTracker` whose LRU bound is hammered by many
concurrent sessions.  This mirrors ``test_cache_stress`` for that
topology: panning sessions (delta-reuse-eligible) from many threads,
two tenants on one cache, small session bound to force evictions --
every raster must still be bit-identical to the fault-free reference.
"""

import threading

import numpy as np
import pytest

from repro.browse.delta import DeltaTracker
from repro.browse.resilience import ResilientBrowsingService
from repro.browse.service import GeoBrowsingService
from repro.cache import TileResultCache
from repro.euler.histogram import EulerHistogram
from repro.euler.simple import SEulerApprox
from repro.geometry.rect import Rect
from repro.grid.grid import Grid
from repro.grid.tiles_math import TileQuery

from tests.conftest import random_dataset

GRID = Grid(Rect(0.0, 24.0, 0.0, 16.0), 24, 16)
NUM_WORKERS = 8
STEPS_PER_SESSION = 8
MAX_SESSIONS = 3  # far fewer than workers: constant LRU eviction churn

#: An 8x8-cell viewport tiled 4x4, panned one tile right per step.
VIEW_W, VIEW_H, ROWS, COLS = 8, 8, 4, 4


@pytest.fixture(scope="module")
def hist():
    data = random_dataset(np.random.default_rng(31), GRID, 400, max_size_cells=4.0)
    return EulerHistogram.from_dataset(data, GRID)


def pan_path(step: int) -> TileQuery:
    """The session's viewport at ``step``: slides right, wraps around."""
    max_x = GRID.n1 - VIEW_W
    x = (2 * step) % (max_x + 1)
    return TileQuery(x, x + VIEW_W, 4, 4 + VIEW_H)


def test_threaded_sessions_with_shared_cache_and_bounded_delta(hist):
    estimator = SEulerApprox(hist)
    plain = GeoBrowsingService(estimator, GRID)
    references = {
        step: plain.browse(pan_path(step), ROWS, COLS).counts
        for step in range(STEPS_PER_SESSION)
    }

    cache = TileResultCache()
    trackers = [DeltaTracker(max_sessions=MAX_SESSIONS) for _ in range(2)]
    tenants = [
        ResilientBrowsingService(
            [SEulerApprox(hist)], GRID, cache=cache, delta=tracker
        )
        for tracker in trackers
    ]

    errors: list[str] = []
    barrier = threading.Barrier(NUM_WORKERS)

    def worker(worker_id: int) -> None:
        service = tenants[worker_id % 2]
        session = f"tenant{worker_id % 2}/user{worker_id}"
        try:
            barrier.wait()
            for step in range(STEPS_PER_SESSION):
                result = service.browse(
                    pan_path(step), ROWS, COLS, session=session
                )
                if result.valid is not None and not result.valid.all():
                    errors.append("partial raster without a deadline")
                elif not np.array_equal(result.counts, references[step]):
                    errors.append(f"raster diverged at step {step}")
        except Exception as exc:  # noqa: BLE001 - collected for the assert
            errors.append(repr(exc))

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(NUM_WORKERS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    for service in tenants:
        service.close()

    assert not errors, errors[:5]
    # The tracker honoured its LRU bound under concurrent remember().
    for tracker in trackers:
        assert len(tracker) <= MAX_SESSIONS
    # The shared cache stayed inside its byte budget and saw real
    # cross-tenant traffic.
    assert cache.nbytes <= cache.capacity_bytes
    assert cache.hits > 0
