"""Service shutdown hardening: ``close()`` is idempotent and race-safe.

The gateway closes services from the event loop while executor threads
may still be inside ``browse()``, and a crashing request handler may
close a service the catalog later closes again.  Neither may raise.
"""

import threading

import numpy as np
import pytest

from repro.browse.resilience import ResilientBrowsingService
from repro.euler.histogram import EulerHistogram
from repro.euler.simple import SEulerApprox
from repro.geometry.rect import Rect
from repro.grid.grid import Grid
from repro.grid.tiles_math import TileQuery

from tests.conftest import random_dataset

GRID = Grid(Rect(0.0, 12.0, 0.0, 8.0), 12, 8)
REGION = TileQuery(0, 12, 0, 8)


@pytest.fixture(scope="module")
def estimator():
    data = random_dataset(np.random.default_rng(21), GRID, 200)
    return SEulerApprox(EulerHistogram.from_dataset(data, GRID))


def test_double_close_without_pools(estimator):
    service = ResilientBrowsingService([estimator], GRID)
    assert not service.closed
    service.close()
    assert service.closed
    service.close()  # second close is a no-op, not an error
    assert service.closed


def test_double_close_with_shard_pool(estimator):
    service = ResilientBrowsingService([estimator], GRID, num_shards=3)
    service.browse(REGION, 4, 4)
    service.close()
    service.close()
    assert service.closed


def test_concurrent_closes_race_safely(estimator):
    service = ResilientBrowsingService([estimator], GRID, num_shards=2)
    errors: list[BaseException] = []
    barrier = threading.Barrier(8)

    def closer():
        try:
            barrier.wait()
            service.close()
        except BaseException as exc:  # noqa: BLE001 - the assertion below
            errors.append(exc)

    threads = [threading.Thread(target=closer) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert service.closed


def test_closes_racing_inflight_browses(estimator):
    """Gateway shutdown shape: browse() calls in flight on executor
    threads while close() runs concurrently (single-shard fast path, so
    the raster work itself never depends on the closed pool)."""
    service = ResilientBrowsingService([estimator], GRID)
    reference = service.browse(REGION, 4, 4).counts
    errors: list[BaseException] = []
    barrier = threading.Barrier(6)

    def browser():
        try:
            barrier.wait()
            for _ in range(10):
                result = service.browse(REGION, 4, 4)
                if not np.array_equal(result.counts, reference):
                    raise AssertionError("raster diverged during shutdown race")
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    def closer():
        try:
            barrier.wait()
            service.close()
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=browser) for _ in range(4)] + [
        threading.Thread(target=closer) for _ in range(2)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors[:3]
    assert service.closed
