"""ShardPool failure and shutdown semantics.

Regression coverage for two promises in :meth:`ShardPool.map`:

- the *first* exception (in submission order) aborts the raster and
  cancels still-pending shards rather than running them to completion;
- ``close()`` is safe to call concurrently with ``map`` -- racing
  callers always get complete, correct results via inline fallback.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.browse.sharding import ShardPool, band_slices


class DeliberateFailure(RuntimeError):
    pass


class TestFirstExceptionCancelsPending:
    def test_pending_shards_are_cancelled_after_failure(self):
        # One worker serialises execution, so everything queued behind
        # the failing shard is still pending (cancellable) when the
        # exception surfaces.  Two items are forced through the pool
        # path by len > 1; worker=1 would inline, so use 2 workers and
        # a barrier to hold both workers busy while the queue fills.
        executed = []
        gate = threading.Barrier(3)

        def shard(i):
            if i < 2:
                gate.wait(timeout=5.0)  # occupy both workers...
            executed.append(i)
            if i == 0:
                raise DeliberateFailure(f"shard {i}")
            time.sleep(0.01)
            return i

        pool = ShardPool(8, max_workers=2)
        try:
            # Release the gate from the side once both workers hold it,
            # guaranteeing items 2..7 are queued (not started) first.
            releaser = threading.Timer(0.05, gate.wait)
            releaser.start()
            with pytest.raises(DeliberateFailure):
                pool.map(shard, list(range(8)))
            releaser.join()
        finally:
            pool.close()
        # The failing shard ran; the queued tail was cancelled, not run.
        assert 0 in executed
        assert len(executed) < 8

    def test_earliest_observed_failure_wins(self):
        # Both shards fail; the earliest-submitted failure *observed*
        # is the one reported (the later one is still sleeping when the
        # first surfaces and never shadows it).
        start = threading.Barrier(2)

        def shard(i):
            start.wait(timeout=5.0)
            if i == 1:
                time.sleep(0.2)  # fails long after shard 0 surfaced
            raise DeliberateFailure(f"shard {i}")

        with ShardPool(2, max_workers=2) as pool:
            with pytest.raises(DeliberateFailure, match="shard 0"):
                pool.map(shard, [0, 1])

    def test_no_work_in_flight_when_map_raises(self):
        # A still-running shard must be awaited before the exception
        # propagates, so callers can safely tear down shared state.
        in_flight = threading.Event()
        finished = threading.Event()

        def shard(i):
            if i == 1:
                in_flight.set()
                time.sleep(0.1)
                finished.set()
                return i
            in_flight.wait(timeout=5.0)
            raise DeliberateFailure("shard 0")

        with ShardPool(2, max_workers=2) as pool:
            with pytest.raises(DeliberateFailure):
                pool.map(shard, [0, 1])
            assert finished.is_set()


class TestCloseRacesMap:
    def test_map_after_close_runs_inline(self):
        pool = ShardPool(4, max_workers=2)
        pool.close()
        assert pool.map(lambda x: x * x, [1, 2, 3]) == [1, 4, 9]

    def test_close_is_idempotent_and_reentrant(self):
        pool = ShardPool(4, max_workers=2)
        pool.map(lambda x: x, [1, 2])
        pool.close()
        pool.close()

    def test_concurrent_close_never_loses_results(self):
        # Hammer map from one thread while close() lands mid-stream:
        # every map call must return the full, ordered result list --
        # via the pool before the close, inline after it.
        for _ in range(20):
            pool = ShardPool(8, max_workers=2)
            items = list(range(16))
            expected = [i * 3 for i in items]
            outcomes = []

            def run_maps():
                for _ in range(10):
                    outcomes.append(pool.map(lambda x: x * 3, items))

            mapper = threading.Thread(target=run_maps)
            mapper.start()
            time.sleep(0.001)
            pool.close()
            mapper.join(timeout=30.0)
            assert not mapper.is_alive()
            assert len(outcomes) == 10
            assert all(outcome == expected for outcome in outcomes)


class TestBandSlices:
    def test_slices_cover_exactly_once(self):
        for n, shards in ((1, 4), (100, 3), (64800, 8), (7, 16)):
            slices = band_slices(n, shards, min_shard=1)
            covered = []
            for s in slices:
                covered.extend(range(s.start, s.stop))
            assert covered == list(range(n))
