"""Integration tests of the observability layer over the serving stack.

The acceptance scenario of the tentpole: a degraded browse (fault
injection + deadline) must produce a telemetry snapshot showing tier
fallback counts, breaker transitions, per-stage latency histograms and
NaN-tile counts -- and the snapshot must export identically via
Prometheus text and JSON.
"""

import numpy as np
import pytest

from repro.browse.resilience import ResilientBrowsingService, RetryPolicy
from repro.browse.service import GeoBrowsingService
from repro.euler.histogram import EulerHistogram
from repro.euler.simple import SEulerApprox
from repro.exact.evaluator import ExactEvaluator
from repro.geometry.rect import Rect
from repro.grid.grid import Grid
from repro.grid.tiles_math import TileQuery
from repro.obs import (
    AccuracyProbe,
    BrowseInstrumentation,
    MetricsRegistry,
    parse_prometheus_text,
    samples_from_json,
    set_default_registry,
    to_json,
    to_prometheus_text,
)
from repro.testing.faults import FaultSchedule, FaultyBatchEstimator
from repro.errors import SummaryCorruptError

from tests.conftest import random_dataset

REGION = TileQuery(0, 12, 0, 8)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def grid():
    return Grid(Rect(0.0, 12.0, 0.0, 8.0), 12, 8)


@pytest.fixture
def data(grid, rng):
    return random_dataset(rng, grid, 300, max_size_cells=3.0)


@pytest.fixture
def hist(grid, data):
    return EulerHistogram.from_dataset(data, grid)


@pytest.fixture
def exact(grid, data):
    return ExactEvaluator(data, grid)


def degraded_browse(grid, exact, hist, clock, instruments):
    """A scripted degraded request: flaky primary, slow fallback, tight
    deadline -- exercises retries, a breaker trip, fallback and expiry."""
    primary = FaultyBatchEstimator(exact, FaultSchedule(script=("error",) * 4))
    fallback = FaultyBatchEstimator(
        SEulerApprox(hist),
        FaultSchedule(script=("latency",), cycle=True, latency=0.3),
        sleep=clock.advance,
    )
    service = ResilientBrowsingService(
        [primary, fallback], grid, chunk_rows=1,
        failure_threshold=2, cooldown=60.0,
        retry=RetryPolicy(attempts=1), clock=clock, sleep=lambda s: None,
        instruments=instruments,
    )
    return service.browse(REGION, rows=8, cols=6, deadline=1.5)


class TestPlainServiceTelemetry:
    def test_result_carries_a_trace(self, grid, exact):
        clock = FakeClock()
        instruments = BrowseInstrumentation(
            MetricsRegistry(clock=clock), clock=clock
        )
        service = GeoBrowsingService(exact, grid, instruments=instruments)
        result = service.browse(REGION, rows=4, cols=6)
        assert result.telemetry is not None
        names = [s.name for s in result.telemetry.spans]
        assert names == ["browse", "resolve", "build_batch", "estimate"]
        assert result.telemetry.spans[3].attrs["tier"] == "Exact"

    def test_request_and_stage_metrics(self, grid, exact):
        instruments = BrowseInstrumentation()
        service = GeoBrowsingService(exact, grid, instruments=instruments)
        service.browse(REGION, rows=4, cols=6)
        service.browse(REGION, rows=4, cols=6, relation="contains")
        reg = instruments.registry
        assert reg.get("repro_browse_requests_total").labels(
            service="plain", relation="overlap"
        ).value == 1
        assert reg.get("repro_browse_requests_total").labels(
            service="plain", relation="contains"
        ).value == 1
        assert instruments.request_seconds.labels(service="plain").count == 2
        for stage in ("resolve", "build_batch", "estimate"):
            assert instruments.stage_seconds.labels(service="plain", stage=stage).count == 2
        assert instruments.tiles.labels(service="plain", outcome="answered").value == 48

    def test_uninstrumented_service_has_no_telemetry(self, grid, exact):
        result = GeoBrowsingService(exact, grid).browse(REGION, rows=4, cols=6)
        assert result.telemetry is None

    def test_scalar_path_is_traced_too(self, grid, exact):
        instruments = BrowseInstrumentation()
        service = GeoBrowsingService(exact, grid, instruments=instruments)
        result = service.browse(REGION, rows=4, cols=6, use_batch=False)
        estimate = [s for s in result.telemetry.spans if s.name == "estimate"][0]
        assert estimate.attrs["path"] == "scalar"


class TestDegradedBrowseTelemetry:
    @pytest.fixture
    def snapshot(self, grid, exact, hist):
        clock = FakeClock()
        registry = MetricsRegistry(clock=clock)
        instruments = BrowseInstrumentation(registry, clock=clock)
        result = degraded_browse(grid, exact, hist, clock, instruments)
        return result, instruments

    def test_partial_raster_with_telemetry(self, snapshot):
        result, _ = snapshot
        assert not result.is_complete
        assert result.telemetry is not None
        root = result.telemetry.spans[0]
        assert root.attrs["deadline_expired"] is True
        assert root.attrs["valid_fraction"] == result.valid_fraction

    def test_tier_fallback_counts(self, snapshot):
        _, instruments = snapshot
        reg = instruments.registry
        failures = reg.get("repro_tier_failures_total")
        assert failures.labels(tier="Faulty(Exact)", reason="error").value == 2
        # after the trip, remaining chunks skip the open primary
        assert reg.get("repro_tier_skips_total").labels(tier="Faulty(Exact)").value > 0
        assert instruments.fallback_depth.count > 0
        assert instruments.fallback_depth.sum > 0  # some chunks answered at depth 1

    def test_breaker_transition_counter(self, snapshot):
        _, instruments = snapshot
        transitions = instruments.registry.get("repro_breaker_transitions_total")
        assert transitions.labels(
            tier="Faulty(Exact)", from_state="closed", to_state="open"
        ).value == 1

    def test_deadline_and_nan_tile_counters(self, snapshot):
        result, instruments = snapshot
        reg = instruments.registry
        assert reg.get("repro_browse_deadline_expirations_total").labels(
            service="resilient"
        ).value == 1
        answered = int(result.valid.sum())
        tiles = reg.get("repro_browse_tiles_total")
        assert tiles.labels(service="resilient", outcome="answered").value == answered
        assert tiles.labels(service="resilient", outcome="nan").value == 48 - answered
        assert instruments.deadline_margin.labels(service="resilient").value <= 0.0

    def test_stage_latency_histogram_recorded(self, snapshot):
        _, instruments = snapshot
        chunk = instruments.stage_seconds.labels(service="resilient", stage="chunk")
        assert chunk.count > 0
        assert chunk.sum > 0.0  # the injected latency is on the same clock

    def test_trace_has_attempt_spans_with_errors(self, snapshot):
        result, _ = snapshot
        attempts = [s for s in result.telemetry.spans if s.name.startswith("attempt:")]
        assert any(s.attrs.get("error") == "InjectedFault" for s in attempts)
        assert any("error" not in s.attrs for s in attempts)

    def test_exports_agree(self, snapshot):
        """Acceptance: the snapshot exports identically via Prometheus
        text and JSON."""
        _, instruments = snapshot
        prom = parse_prometheus_text(to_prometheus_text(instruments.registry))
        doc = samples_from_json(to_json(instruments.registry))
        assert prom == doc
        assert 'repro_tier_failures_total{reason="error",tier="Faulty(Exact)"}' in prom


class TestPersistenceTelemetry:
    def test_save_load_and_corruption_recorded(self, hist, tmp_path):
        registry = MetricsRegistry()
        previous = set_default_registry(registry)
        try:
            path = tmp_path / "hist.npz"
            hist.save(path)
            EulerHistogram.load(path)
            raw = path.read_bytes()
            (tmp_path / "bad.npz").write_bytes(raw[: len(raw) // 2])
            with pytest.raises(SummaryCorruptError):
                EulerHistogram.load(tmp_path / "bad.npz")
        finally:
            set_default_registry(previous)
        ops = registry.get("repro_persistence_ops_total")
        kind = "Euler histogram"
        assert ops.labels(kind=kind, op="save", outcome="ok").value == 1
        assert ops.labels(kind=kind, op="load", outcome="ok").value == 1
        assert ops.labels(kind=kind, op="verify", outcome="ok").value >= 1
        assert ops.labels(kind=kind, op="load", outcome="unreadable").value == 1

    def test_no_default_registry_is_a_noop(self, hist, tmp_path):
        assert set_default_registry(None) is None  # already none in tests
        hist.save(tmp_path / "hist.npz")  # must not raise


class TestAccuracyProbe:
    def test_exact_estimator_scores_zero_error(self, grid, exact):
        registry = MetricsRegistry()
        probe = AccuracyProbe(exact, registry, sample_size=8)
        instruments = BrowseInstrumentation(registry, accuracy=probe)
        service = ResilientBrowsingService(
            [exact], grid, clock=FakeClock(), instruments=instruments
        )
        result = service.browse(REGION, rows=4, cols=6)
        assert result.is_complete
        assert registry.get("repro_accuracy_samples_total").labels(
            relation="overlap"
        ).value == 8
        assert registry.get("repro_accuracy_error_sum_total").labels(
            relation="overlap"
        ).value == 0.0
        assert registry.get("repro_accuracy_running_are").labels(
            relation="overlap"
        ).value == 0.0
        probe_spans = [s for s in result.telemetry.spans if s.name == "accuracy_probe"]
        assert len(probe_spans) == 1
        assert probe_spans[0].attrs["tiles_sampled"] == 8

    def test_approximate_estimator_records_error_mass(self, grid, exact, hist):
        registry = MetricsRegistry()
        probe = AccuracyProbe(exact, registry, sample_size=24)
        instruments = BrowseInstrumentation(registry, accuracy=probe)
        service = ResilientBrowsingService(
            [SEulerApprox(hist)], grid, clock=FakeClock(), instruments=instruments
        )
        service.browse(REGION, rows=8, cols=12, relation="contains")
        truth_sum = registry.get("repro_accuracy_truth_sum_total").labels(
            relation="contains"
        ).value
        assert truth_sum > 0
        assert registry.get("repro_accuracy_abs_error").labels(
            relation="contains"
        ).count == 24

    def test_partial_raster_samples_only_answered_tiles(self, grid, exact):
        clock = FakeClock()
        slow = FaultyBatchEstimator(
            exact,
            FaultSchedule(script=("latency",), cycle=True, latency=0.6),
            sleep=clock.advance,
        )
        registry = MetricsRegistry(clock=clock)
        probe = AccuracyProbe(exact, registry, sample_size=100)
        instruments = BrowseInstrumentation(registry, clock=clock, accuracy=probe)
        service = ResilientBrowsingService(
            [slow], grid, chunk_rows=1, clock=clock, instruments=instruments
        )
        result = service.browse(REGION, rows=4, cols=6, deadline=1.0)
        answered = int(result.valid.sum())
        assert 0 < answered < 24
        assert registry.get("repro_accuracy_samples_total").labels(
            relation="overlap"
        ).value == answered

    def test_zero_truth_emits_no_inf(self, grid):
        """An all-empty region keeps the ratio gauge unset, so the JSON
        export stays strict-parseable (the acceptance criterion's 'no
        NaN-polluted output' for telemetry)."""
        import json

        from repro.datasets.base import RectDataset

        empty = RectDataset.empty(grid.extent)
        exact_empty = ExactEvaluator(empty, grid)
        registry = MetricsRegistry()
        probe = AccuracyProbe(exact_empty, registry, sample_size=4)
        instruments = BrowseInstrumentation(registry, accuracy=probe)
        service = ResilientBrowsingService(
            [exact_empty], grid, clock=FakeClock(), instruments=instruments
        )
        service.browse(REGION, rows=4, cols=6)
        samples = registry.get("repro_accuracy_running_are").samples()
        assert samples == []  # never set: truth sum is zero
        document = to_json(registry)
        json.loads(document)
        assert "Infinity" not in document
