"""Tests for the GeoBrowsing service facade."""

import numpy as np
import pytest

from repro.browse.service import BrowseResult, GeoBrowsingService, RELATION_FIELDS
from repro.euler.histogram import EulerHistogram
from repro.euler.simple import SEulerApprox
from repro.exact.evaluator import ExactEvaluator
from repro.geometry.rect import Rect
from repro.grid.grid import Grid
from repro.grid.tiles_math import TileQuery

from tests.conftest import random_dataset


@pytest.fixture
def grid():
    return Grid(Rect(0.0, 12.0, 0.0, 8.0), 12, 8)


@pytest.fixture
def data(grid, rng):
    return random_dataset(rng, grid, 300, max_size_cells=3.0)


@pytest.fixture
def service(grid, data):
    return GeoBrowsingService(SEulerApprox(EulerHistogram.from_dataset(data, grid)), grid)


class TestBrowse:
    def test_raster_shape(self, service):
        result = service.browse(TileQuery(0, 12, 0, 8), rows=4, cols=6, relation="overlap")
        assert result.counts.shape == (4, 6)
        assert result.rows == 4 and result.cols == 6
        assert len(result.tiles) == 4 and len(result.tiles[0]) == 6

    def test_world_rect_region(self, service):
        result = service.browse(Rect(0.0, 12.0, 0.0, 8.0), rows=2, cols=3)
        assert result.counts.shape == (2, 3)

    def test_misaligned_region_rejected(self, service):
        with pytest.raises(ValueError, match="not aligned"):
            service.browse(Rect(0.5, 12.0, 0.0, 8.0), rows=2, cols=3)

    def test_unknown_relation_rejected(self, service):
        with pytest.raises(ValueError, match="unknown relation"):
            service.browse(TileQuery(0, 12, 0, 8), rows=2, cols=3, relation="touching")

    def test_counts_match_estimator(self, grid, data):
        exact = ExactEvaluator(data, grid)
        service = GeoBrowsingService(exact, grid)
        result = service.browse(TileQuery(0, 12, 0, 8), rows=2, cols=2, relation="contains")
        for r in range(2):
            for c in range(2):
                tile = result.tiles[r][c]
                assert result.counts[r, c] == exact.estimate(tile).n_cs

    def test_intersect_relation(self, grid, data):
        service = GeoBrowsingService(ExactEvaluator(data, grid), grid)
        result = service.browse(TileQuery(0, 12, 0, 8), rows=1, cols=1, relation="intersect")
        assert result.counts[0, 0] == ExactEvaluator(data, grid).estimate(
            TileQuery(0, 12, 0, 8)
        ).n_intersect

    def test_disjoint_plus_intersect_is_total(self, grid, data):
        service = GeoBrowsingService(ExactEvaluator(data, grid), grid)
        region = TileQuery(0, 12, 0, 8)
        disjoint = service.browse(region, 1, 1, relation="disjoint").counts[0, 0]
        intersect = service.browse(region, 1, 1, relation="intersect").counts[0, 0]
        assert disjoint + intersect == len(data)

    def test_all_relations_exposed(self):
        assert set(RELATION_FIELDS) == {"contains", "contained", "overlap", "disjoint", "intersect"}


class TestBrowseResult:
    def test_total(self, service):
        result = service.browse(TileQuery(0, 12, 0, 8), rows=2, cols=2, relation="disjoint")
        assert result.total == pytest.approx(float(result.counts.sum()))

    def test_render_ascii_shape(self, service):
        result = service.browse(TileQuery(0, 12, 0, 8), rows=4, cols=3)
        rendering = result.render_ascii()
        lines = rendering.splitlines()
        assert len(lines) == 4
        assert all(len(line.split()) == 3 for line in lines)

    def test_render_ascii_top_row_first(self, grid, data):
        service = GeoBrowsingService(ExactEvaluator(data, grid), grid)
        result = service.browse(TileQuery(0, 12, 0, 8), rows=2, cols=1, relation="intersect")
        lines = result.render_ascii().splitlines()
        assert int(lines[0].strip()) == int(round(result.counts[1, 0]))
        assert int(lines[1].strip()) == int(round(result.counts[0, 0]))

    def test_estimator_name(self, service):
        assert service.estimator_name == "S-EulerApprox"
        assert service.grid.n1 == 12


class TestNanRendering:
    """Regression: render_ascii used to crash on NaN counts
    (int(round(nan)) raises ValueError); NaN tiles now render as "?"."""

    def test_nan_tiles_render_as_question_marks(self):
        counts = np.array([[1.0, float("nan")], [float("nan") , 4.0]])
        result = BrowseResult(
            region=TileQuery(0, 2, 0, 2), relation="overlap", counts=counts
        )
        lines = result.render_ascii(width=3).splitlines()
        assert lines == ["  ?   4", "  1   ?"]

    def test_narrow_width_stays_grid_aligned(self):
        """Regression: a width smaller than the widest count used to
        misalign columns; now every column expands to the widest cell."""
        counts = np.array([[1.0, 12345.0], [7.0, 42.0]])
        result = BrowseResult(
            region=TileQuery(0, 2, 0, 2), relation="overlap", counts=counts
        )
        rendering = result.render_ascii(width=1)
        assert rendering == "    7    42\n    1 12345"
        lines = rendering.splitlines()
        assert len(lines[0]) == len(lines[1])

    def test_default_width_golden_string(self):
        counts = np.array([[3.0, float("nan")], [100.0, 7.0]])
        result = BrowseResult(
            region=TileQuery(0, 2, 0, 2), relation="overlap", counts=counts
        )
        assert result.render_ascii() == " 100    7\n   3    ?"

    def test_wide_minimum_width_pads_all_columns(self):
        counts = np.array([[1.0, 2.0]])
        result = BrowseResult(
            region=TileQuery(0, 2, 0, 1), relation="overlap", counts=counts
        )
        assert result.render_ascii(width=6) == "     1      2"

    def test_all_nan_raster_renders(self):
        counts = np.full((2, 3), float("nan"))
        result = BrowseResult(
            region=TileQuery(0, 3, 0, 2), relation="overlap", counts=counts
        )
        rendering = result.render_ascii()
        assert rendering.count("?") == 6
        assert "nan" not in rendering

    def test_validity_mask_defaults(self):
        counts = np.ones((2, 2))
        complete = BrowseResult(
            region=TileQuery(0, 2, 0, 2), relation="overlap", counts=counts
        )
        assert complete.valid is None
        assert complete.is_complete and complete.valid_fraction == 1.0
        partial = BrowseResult(
            region=TileQuery(0, 2, 0, 2),
            relation="overlap",
            counts=counts,
            valid=np.array([[True, False], [True, True]]),
        )
        assert not partial.is_complete
        assert partial.valid_fraction == 0.75
