"""Process parallelism wired through the browsing services.

These tests pin down the *service-level* contract of
:mod:`repro.parallel`: a ``parallel=`` policy must never change what a
raster contains -- only where the arithmetic runs -- and misconfigured
policies must fail loudly at construction, not degrade silently at
request time.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.browse.resilience import ResilientBrowsingService
from repro.browse.service import GeoBrowsingService
from repro.euler.histogram import EulerHistogram
from repro.euler.maintained import MaintainedEulerHistogram
from repro.euler.simple import SEulerApprox
from repro.exact.evaluator import ExactEvaluator
from repro.grid.grid import Grid
from repro.grid.tiles_math import TileQuery
from repro.obs.instruments import BrowseInstrumentation
from repro.parallel.executor import ParallelConfig, ProcessBackedEstimator

from tests.conftest import random_dataset

pytestmark = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="POSIX shared memory not available"
)

@pytest.fixture(scope="module")
def grid():
    return Grid.world_1deg()


@pytest.fixture(scope="module")
def dataset(grid):
    return random_dataset(np.random.default_rng(7), grid, 400, max_size_cells=30.0)


@pytest.fixture(scope="module")
def estimator(grid, dataset):
    return SEulerApprox(EulerHistogram.from_dataset(dataset, grid))


@pytest.fixture(scope="module")
def baseline(grid, estimator):
    service = GeoBrowsingService(estimator, grid)
    try:
        return service.browse(TileQuery(0, grid.n1, 0, grid.n2), 90, 120, "overlap")
    finally:
        service.close()


def process_config(**overrides):
    overrides.setdefault("mode", "process")
    overrides.setdefault("max_workers", 2)
    overrides.setdefault("start_method", "fork")
    return ParallelConfig(**overrides)


class TestGeoBrowsingService:
    def test_forced_process_raster_matches_plain(self, grid, estimator, baseline):
        service = GeoBrowsingService(
            estimator, grid, num_shards=4, parallel=process_config()
        )
        try:
            assert service.parallel_executor.mode == "process"
            result = service.browse(
                TileQuery(0, grid.n1, 0, grid.n2), 90, 120, "overlap"
            )
            np.testing.assert_array_equal(result.counts, baseline.counts)
        finally:
            service.close()

    def test_auto_policy_routes_large_rasters_to_processes(
        self, grid, estimator, baseline
    ):
        service = GeoBrowsingService(
            estimator,
            grid,
            num_shards=4,
            parallel=process_config(mode="auto", process_threshold=1024),
        )
        try:
            pool = service.parallel_executor.process_pool
            assert pool is not None
            # Auto never blocks on startup: it polls with a zero-timeout
            # ensure_ready on each routing.  Wait the same way here (no
            # blocking ensure_ready) so this test exercises the exact
            # path that decides whether a raster reaches the processes.
            deadline = time.monotonic() + 20.0
            while pool.ensure_ready(0.0) == 0:
                assert time.monotonic() < deadline, "auto-mode poll never saw readiness"
                time.sleep(0.01)
            result = service.browse(
                TileQuery(0, grid.n1, 0, grid.n2), 90, 120, "overlap"
            )
            np.testing.assert_array_equal(result.counts, baseline.counts)
            assert pool.ready_count() > 0
        finally:
            service.close()

    def test_auto_with_unexportable_estimator_stays_on_threads(self, grid, dataset):
        # MaintainedEulerHistogram summaries are mutable and refuse
        # shared-memory export; auto mode must quietly keep threads.
        maintained = SEulerApprox(MaintainedEulerHistogram(grid, dataset))
        service = GeoBrowsingService(
            maintained, grid, num_shards=4, parallel="auto"
        )
        try:
            assert service.parallel_executor.process_pool is None
            result = service.browse(TileQuery(0, grid.n1, 0, grid.n2), 30, 40)
            assert result.counts.shape == (30, 40)
        finally:
            service.close()

    def test_forced_process_with_unexportable_estimator_raises(self, grid, dataset):
        maintained = SEulerApprox(MaintainedEulerHistogram(grid, dataset))
        with pytest.raises(ValueError, match="process"):
            GeoBrowsingService(
                maintained, grid, num_shards=4, parallel=process_config()
            )

    def test_worker_gauge_tracks_pool(self, grid, estimator):
        obs = BrowseInstrumentation()
        service = GeoBrowsingService(
            estimator,
            grid,
            num_shards=4,
            parallel=process_config(),
            instruments=obs,
        )
        try:
            assert obs.shard_pool_workers.labels(service="plain").value == 2
        finally:
            service.close()
        assert obs.shard_pool_workers.labels(service="plain").value == 0


class TestResilientBrowsingService:
    def test_process_raster_matches_plain(self, grid, estimator, baseline):
        service = ResilientBrowsingService(
            estimator, grid, chunk_rows=16, num_shards=4, parallel=process_config()
        )
        try:
            primary = service.chain.tiers[0]
            assert isinstance(primary.estimator, ProcessBackedEstimator)
            result = service.browse(
                TileQuery(0, grid.n1, 0, grid.n2), 90, 120, "overlap"
            )
            assert result.is_complete
            np.testing.assert_array_equal(result.counts, baseline.counts)
        finally:
            service.close()

    def test_fallback_chain_is_preserved(self, grid, dataset, estimator, baseline):
        # The process wrapper applies to the primary tier only; the
        # fallback tiers answer exactly as before.
        fallback = ExactEvaluator(dataset, grid)
        service = ResilientBrowsingService(
            [estimator, fallback],
            grid,
            chunk_rows=16,
            num_shards=2,
            parallel=process_config(),
        )
        try:
            assert len(service.chain.tiers) == 2
            assert not isinstance(
                service.chain.tiers[1].estimator, ProcessBackedEstimator
            )
            result = service.browse(
                TileQuery(0, grid.n1, 0, grid.n2), 90, 120, "overlap"
            )
            np.testing.assert_array_equal(result.counts, baseline.counts)
        finally:
            service.close()

    def test_parallel_rejects_prebuilt_chain(self, grid, estimator):
        from repro.browse.resilience import FallbackChain

        chain = FallbackChain([estimator])
        with pytest.raises(ValueError, match="chain"):
            ResilientBrowsingService(
                estimator, grid, chain=chain, parallel=process_config()
            )

    def test_deadline_still_enforced_with_process_pool(self, grid, estimator):
        # A zero budget must degrade (partial raster), never block on
        # the pool: wave dispatch checks the deadline between waves.
        service = ResilientBrowsingService(
            estimator,
            grid,
            chunk_rows=8,
            num_shards=2,
            parallel=process_config(),
        )
        try:
            result = service.browse(
                TileQuery(0, grid.n1, 0, grid.n2), 90, 120, deadline=0.0
            )
            assert not result.is_complete
        finally:
            service.close()
