"""Viewport-delta semantics at every layer: plan construction, tracker
LRU behaviour, service-level bit-parity under property-tested pan/zoom/
re-tile traces, generation invalidation through a maintained histogram,
and the resilient service's delta/deadline/degradation interactions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.browse.delta import DeltaTracker, plan_delta
from repro.browse.resilience import ResilientBrowsingService, RetryPolicy
from repro.browse.service import RELATION_FIELDS, GeoBrowsingService
from repro.cache import TileResultCache
from repro.euler.histogram import EulerHistogram
from repro.euler.maintained import MaintainedEulerHistogram
from repro.euler.simple import SEulerApprox
from repro.geometry.rect import Rect
from repro.grid.grid import Grid
from repro.grid.tiles_math import TileQuery
from repro.obs.instruments import BrowseInstrumentation
from repro.testing.faults import FaultSchedule, FaultyBatchEstimator
from repro.workloads.tiles import browsing_tile_batch, browsing_tile_batch_subset

from tests.conftest import random_dataset

GRID = Grid(Rect(0.0, 24.0, 0.0, 16.0), 24, 16)


@pytest.fixture(scope="module")
def data():
    return random_dataset(np.random.default_rng(42), GRID, 400, max_size_cells=4.0)


@pytest.fixture(scope="module")
def hist(data):
    return EulerHistogram.from_dataset(data, GRID)


@st.composite
def pan_zoom_traces(draw):
    """A browsing trace mixing tile-aligned pans, re-tiles and fresh
    viewports -- compatible and incompatible consecutive rasters alike."""
    relation = draw(st.sampled_from(sorted(RELATION_FIELDS)))

    def fresh():
        rows = draw(st.integers(1, 4))
        cols = draw(st.integers(1, 4))
        tile_w = draw(st.integers(1, 3))
        tile_h = draw(st.integers(1, 3))
        x_lo = draw(st.integers(0, GRID.n1 - cols * tile_w))
        y_lo = draw(st.integers(0, GRID.n2 - rows * tile_h))
        region = TileQuery(x_lo, x_lo + cols * tile_w, y_lo, y_lo + rows * tile_h)
        return region, rows, cols

    steps = [fresh()]
    for _ in range(draw(st.integers(1, 6))):
        region, rows, cols = steps[-1]
        move = draw(st.sampled_from(["pan", "retile", "fresh"]))
        if move == "pan":
            tile_w = region.width // cols
            tile_h = region.height // rows
            dx = draw(st.integers(-2, 2)) * tile_w
            dy = draw(st.integers(-2, 2)) * tile_h
            x_lo = min(max(region.qx_lo + dx, 0), GRID.n1 - region.width)
            y_lo = min(max(region.qy_lo + dy, 0), GRID.n2 - region.height)
            steps.append(
                (
                    TileQuery(x_lo, x_lo + region.width, y_lo, y_lo + region.height),
                    rows,
                    cols,
                )
            )
        elif move == "retile":
            rows = draw(st.sampled_from([d for d in (1, 2, 4) if region.height % d == 0]))
            cols = draw(st.sampled_from([d for d in (1, 2, 4) if region.width % d == 0]))
            steps.append((region, rows, cols))
        else:
            steps.append(fresh())
    return relation, steps


class TestDeltaParity:
    @given(trace=pan_zoom_traces())
    @settings(max_examples=60, deadline=None)
    def test_delta_rasters_bit_identical(self, hist, trace):
        """Every raster of a session answers bit-identically with and
        without delta reuse, whatever mix of pans, re-tiles and jumps the
        trace contains."""
        relation, steps = trace
        estimator = SEulerApprox(hist)
        cold = GeoBrowsingService(estimator, GRID)
        delta = GeoBrowsingService(estimator, GRID, delta=DeltaTracker())
        for region, rows, cols in steps:
            expected = cold.browse(region, rows, cols, relation)
            got = delta.browse(region, rows, cols, relation)
            np.testing.assert_array_equal(got.counts, expected.counts)

    @given(trace=pan_zoom_traces())
    @settings(max_examples=25, deadline=None)
    def test_delta_composes_with_cache_and_shards(self, hist, trace):
        relation, steps = trace
        estimator = SEulerApprox(hist)
        cold = GeoBrowsingService(estimator, GRID)
        stacked = GeoBrowsingService(
            estimator,
            GRID,
            cache=TileResultCache(),
            num_shards=2,
            delta=DeltaTracker(),
        )
        try:
            for region, rows, cols in steps:
                expected = cold.browse(region, rows, cols, relation)
                got = stacked.browse(region, rows, cols, relation)
                np.testing.assert_array_equal(got.counts, expected.counts)
        finally:
            stacked.close()

    @given(trace=pan_zoom_traces())
    @settings(max_examples=25, deadline=None)
    def test_resilient_delta_parity(self, hist, trace):
        relation, steps = trace
        estimator = SEulerApprox(hist)
        cold = ResilientBrowsingService([estimator], GRID)
        delta = ResilientBrowsingService([estimator], GRID, delta=DeltaTracker())
        for region, rows, cols in steps:
            expected = cold.browse(region, rows, cols, relation)
            got = delta.browse(region, rows, cols, relation)
            np.testing.assert_array_equal(got.counts, expected.counts)


class TestDeltaReuse:
    def test_pan_reuses_the_overlap_band(self, hist):
        """Panning one tile column right on an 8x12 raster answers
        8 x 11 tiles by copying and estimates only the fresh column."""
        instruments = BrowseInstrumentation()
        service = GeoBrowsingService(
            SEulerApprox(hist), GRID, delta=DeltaTracker(), instruments=instruments
        )
        service.browse(TileQuery(0, 12, 0, 8), 8, 12)
        service.browse(TileQuery(1, 13, 0, 8), 8, 12)
        reused = instruments.delta_rasters.labels(service="plain", outcome="reused")
        assert reused.value == 1
        assert instruments.delta_tiles_reused.labels(service="plain").value == 8 * 11

    def test_sessions_are_isolated(self, hist):
        """A pan in one session never reuses another session's raster."""
        instruments = BrowseInstrumentation()
        service = GeoBrowsingService(
            SEulerApprox(hist), GRID, delta=DeltaTracker(), instruments=instruments
        )
        service.browse(TileQuery(0, 12, 0, 8), 4, 6, session="a")
        service.browse(TileQuery(0, 12, 0, 8), 4, 6, session="b")
        reused = instruments.delta_rasters.labels(service="plain", outcome="reused")
        assert reused.value == 0
        service.browse(TileQuery(0, 12, 0, 8), 4, 6, session="a")
        assert reused.value == 1

    def test_explicit_previous_hint_overrides_the_tracker(self, hist):
        service = GeoBrowsingService(SEulerApprox(hist), GRID)
        first = service.browse(TileQuery(0, 12, 0, 8), 8, 12)
        expected = service.browse(TileQuery(2, 14, 0, 8), 8, 12)
        hinted = service.browse(TileQuery(2, 14, 0, 8), 8, 12, previous=first)
        np.testing.assert_array_equal(hinted.counts, expected.counts)

    def test_incompatible_retile_counts_as_incompatible(self, hist):
        instruments = BrowseInstrumentation()
        service = GeoBrowsingService(
            SEulerApprox(hist), GRID, delta=DeltaTracker(), instruments=instruments
        )
        service.browse(TileQuery(0, 12, 0, 8), 4, 6)
        service.browse(TileQuery(0, 12, 0, 8), 2, 3)  # coarser tiles
        labels = instruments.delta_rasters.labels
        assert labels(service="plain", outcome="incompatible").value == 1
        assert labels(service="plain", outcome="reused").value == 0
        assert labels(service="plain", outcome="cold").value == 1


class TestPlanDelta:
    def test_unrestricted_overlap_is_a_block_plan(self, hist):
        service = GeoBrowsingService(SEulerApprox(hist), GRID)
        prev = service.browse(TileQuery(0, 12, 0, 8), 8, 12)
        plan = plan_delta(prev, TileQuery(2, 14, 1, 9), 8, 12, prev.delta.scope)
        assert plan is not None and plan.block is not None and plan.source is None
        assert plan.n_reused == 7 * 10
        r0, r1, c0, c1, dr, dc = plan.block
        assert (r0, r1, c0, c1, dr, dc) == (0, 7, 0, 10, 1, 2)

    def test_block_fill_matches_masked_semantics(self, hist):
        service = GeoBrowsingService(SEulerApprox(hist), GRID)
        prev = service.browse(TileQuery(0, 12, 0, 8), 8, 12)
        cold = service.browse(TileQuery(3, 15, 2, 10), 8, 12)
        plan = plan_delta(prev, TileQuery(3, 15, 2, 10), 8, 12, prev.delta.scope)
        counts = np.full(8 * 12, np.nan)
        plan.fill(counts, prev.counts)
        np.testing.assert_array_equal(
            counts[plan.reused], cold.counts.reshape(-1)[plan.reused]
        )
        assert np.isnan(counts[~plan.reused]).all()

    def test_misaligned_offset_is_rejected(self, hist):
        service = GeoBrowsingService(SEulerApprox(hist), GRID)
        prev = service.browse(TileQuery(0, 12, 0, 8), 4, 6)  # 2x2-cell tiles
        assert plan_delta(prev, TileQuery(1, 13, 0, 8), 4, 6, prev.delta.scope) is None

    def test_different_tile_extents_are_rejected(self, hist):
        service = GeoBrowsingService(SEulerApprox(hist), GRID)
        prev = service.browse(TileQuery(0, 12, 0, 8), 4, 6)
        assert plan_delta(prev, TileQuery(0, 12, 0, 8), 2, 3, prev.delta.scope) is None

    def test_disjoint_viewports_are_rejected(self, hist):
        service = GeoBrowsingService(SEulerApprox(hist), GRID)
        prev = service.browse(TileQuery(0, 6, 0, 4), 4, 6)
        assert plan_delta(prev, TileQuery(12, 18, 8, 12), 4, 6, prev.delta.scope) is None

    def test_scope_mismatch_is_rejected(self, hist):
        service = GeoBrowsingService(SEulerApprox(hist), GRID)
        prev = service.browse(TileQuery(0, 12, 0, 8), 4, 6, relation="overlap")
        contains = service.browse(TileQuery(0, 12, 0, 8), 4, 6, relation="contains")
        assert (
            plan_delta(prev, TileQuery(0, 12, 0, 8), 4, 6, contains.delta.scope) is None
        )


class TestGenerationInvalidation:
    def test_update_between_interactions_disables_reuse(self, data):
        maintained = MaintainedEulerHistogram(GRID, data)
        estimator = SEulerApprox(maintained)
        instruments = BrowseInstrumentation()
        service = GeoBrowsingService(
            estimator, GRID, delta=DeltaTracker(), instruments=instruments
        )
        region = TileQuery(0, 12, 0, 8)
        before = service.browse(region, 4, 6).counts
        maintained.insert(Rect(1.0, 5.0, 1.0, 5.0))
        after = service.browse(region, 4, 6).counts
        fresh = GeoBrowsingService(estimator, GRID).browse(region, 4, 6).counts
        np.testing.assert_array_equal(after, fresh)
        assert not np.array_equal(after, before)
        labels = instruments.delta_rasters.labels
        assert labels(service="plain", outcome="reused").value == 0
        assert labels(service="plain", outcome="incompatible").value == 1

    def test_merge_keeps_reuse_valid(self, data):
        """merge() answers bit-identically, so reuse must survive it."""
        maintained = MaintainedEulerHistogram(GRID, data)
        estimator = SEulerApprox(maintained)
        instruments = BrowseInstrumentation()
        service = GeoBrowsingService(
            estimator, GRID, delta=DeltaTracker(), instruments=instruments
        )
        region = TileQuery(0, 12, 0, 8)
        maintained.insert(Rect(2.0, 3.0, 2.0, 3.0))
        first = service.browse(region, 4, 6).counts
        maintained.merge()
        again = service.browse(region, 4, 6).counts
        np.testing.assert_array_equal(again, first)
        assert (
            instruments.delta_rasters.labels(service="plain", outcome="reused").value
            == 1
        )


class TestResilientDelta:
    def test_delta_tiles_survive_a_zero_deadline(self, hist):
        """Tiles copied from the previous raster are valid before any
        estimation work, so even deadline=0 serves them complete."""
        service = ResilientBrowsingService(
            [SEulerApprox(hist)], GRID, delta=DeltaTracker()
        )
        region = TileQuery(0, 12, 0, 8)
        warm = service.browse(region, 4, 6)
        rushed = service.browse(region, 4, 6, deadline=0.0)
        assert rushed.valid is None or rushed.valid.all()
        np.testing.assert_array_equal(rushed.counts, warm.counts)

    def test_degraded_tiles_are_not_reused(self, hist):
        """A raster answered by the fallback tier must not seed reuse:
        the next interaction recomputes rather than copy degraded
        counts."""
        primary = FaultyBatchEstimator(
            SEulerApprox(hist), FaultSchedule(script=["error"] * 1000, cycle=True)
        )
        fallback = SEulerApprox(hist)
        instruments = BrowseInstrumentation()
        service = ResilientBrowsingService(
            [primary, fallback],
            GRID,
            delta=DeltaTracker(),
            failure_threshold=10_000,
            instruments=instruments,
        )
        region = TileQuery(0, 12, 0, 8)
        first = service.browse(region, 4, 6)
        assert first.delta is not None
        assert first.delta.reusable is not None and not first.delta.reusable.any()
        service.browse(region, 4, 6)
        assert (
            instruments.delta_rasters.labels(
                service="resilient", outcome="reused"
            ).value
            == 0
        )

    def test_partial_degradation_reuses_only_primary_tiles(self, hist):
        """One failed chunk: its tiles answer via the fallback and are
        excluded from the reusable mask; the rest stay reusable."""
        primary = FaultyBatchEstimator(
            SEulerApprox(hist), FaultSchedule(script=["error"])  # first chunk fails
        )
        fallback = SEulerApprox(hist)
        service = ResilientBrowsingService(
            [primary, fallback],
            GRID,
            delta=DeltaTracker(),
            failure_threshold=10_000,
            chunk_rows=2,
            retry=RetryPolicy(attempts=1),
        )
        region = TileQuery(0, 12, 0, 8)
        result = service.browse(region, 4, 6)
        assert result.delta is not None and result.delta.reusable is not None
        assert result.delta.reusable.any() and not result.delta.reusable.all()


class TestDeltaTracker:
    def test_lru_eviction(self):
        tracker = DeltaTracker(max_sessions=2)
        tracker.remember("a", "ra")
        tracker.remember("b", "rb")
        tracker.lookup("a")  # refresh: b becomes least recently used
        tracker.remember("c", "rc")
        assert len(tracker) == 2
        assert tracker.lookup("b") is None
        assert tracker.lookup("a") == "ra"
        assert tracker.lookup("c") == "rc"

    def test_forget_and_clear(self):
        tracker = DeltaTracker()
        tracker.remember("a", "ra")
        tracker.forget("a")
        tracker.forget("missing")  # no-op
        assert tracker.lookup("a") is None
        tracker.remember("a", "ra")
        tracker.remember("b", "rb")
        tracker.clear()
        assert len(tracker) == 0

    def test_rejects_non_positive_bound(self):
        with pytest.raises(ValueError):
            DeltaTracker(max_sessions=0)


class TestBatchSubset:
    def test_subset_matches_full_batch(self):
        region = TileQuery(2, 14, 1, 9)
        full = browsing_tile_batch(region, 4, 6)
        idx = np.array([0, 5, 7, 13, 23])
        subset = browsing_tile_batch_subset(region, 4, 6, idx)
        np.testing.assert_array_equal(subset.qx_lo, full.qx_lo[idx])
        np.testing.assert_array_equal(subset.qx_hi, full.qx_hi[idx])
        np.testing.assert_array_equal(subset.qy_lo, full.qy_lo[idx])
        np.testing.assert_array_equal(subset.qy_hi, full.qy_hi[idx])

    def test_subset_validates_like_the_full_builder(self):
        with pytest.raises(ValueError):
            browsing_tile_batch_subset(TileQuery(0, 12, 0, 8), 5, 6, np.array([0]))


class TestBrowseResultTiles:
    def test_tiles_are_cached_and_match_the_raster(self, hist):
        """BrowseResult.tiles is derived lazily and memoised: repeated
        access returns the same object, aligned with counts[r, c]."""
        result = GeoBrowsingService(SEulerApprox(hist), GRID).browse(
            TileQuery(2, 14, 1, 9), 4, 6
        )
        tiles = result.tiles
        assert tiles is result.tiles
        assert len(tiles) == 4 and all(len(row) == 6 for row in tiles)
        assert tiles[0][0] == TileQuery(2, 4, 1, 3)
        assert tiles[3][5] == TileQuery(12, 14, 7, 9)


class TestCliDelta:
    @pytest.fixture
    def hist_path(self, tmp_path, hist):
        path = tmp_path / "hist.npz"
        hist.save(path)
        return path

    ARGS = ["--region", "0", "24", "0", "16", "--rows", "4", "--cols", "6"]

    def test_browse_repeat_reports_reuse(self, hist_path, capsys):
        from repro.cli import main

        code = main(["browse", str(hist_path), *self.ARGS, "--repeat", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "# delta: 2 rasters reused" in out

    def test_no_delta_disables_the_report(self, hist_path, capsys):
        from repro.cli import main

        code = main(["browse", str(hist_path), *self.ARGS, "--no-delta"])
        assert code == 0
        assert "# delta:" not in capsys.readouterr().out
