"""Tests for attribute-filtered browsing."""

import numpy as np
import pytest

from repro.browse.catalog import AttributeCatalog, SummedEstimator
from repro.exact.evaluator import ExactEvaluator
from repro.geometry.rect import Rect
from repro.grid.grid import Grid
from repro.grid.tiles_math import TileQuery

from tests.conftest import random_dataset, random_query


@pytest.fixture
def grid():
    return Grid(Rect(0.0, 12.0, 0.0, 8.0), 12, 8)


@pytest.fixture
def data(grid, rng):
    return random_dataset(rng, grid, 240, max_size_cells=3.0)


@pytest.fixture
def labels(data, rng):
    return rng.choice(["map", "photo", "gazetteer"], size=len(data))


@pytest.fixture
def catalog(grid, data, labels):
    # Exact backend so filter arithmetic can be checked exactly.
    return AttributeCatalog(
        data, grid, labels, factory=lambda d, g: ExactEvaluator(d, g)
    )


class TestPartitioning:
    def test_categories_discovered(self, catalog):
        assert set(catalog.categories) == {"map", "photo", "gazetteer"}

    def test_sizes_sum_to_dataset(self, catalog, data):
        assert sum(catalog.category_size(c) for c in catalog.categories) == len(data)

    def test_label_shape_validated(self, grid, data):
        with pytest.raises(ValueError, match="one category per object"):
            AttributeCatalog(data, grid, ["a", "b"])


class TestFiltering:
    def test_all_categories_equal_unfiltered(self, catalog, grid, data, rng):
        full = ExactEvaluator(data, grid)
        for _ in range(15):
            q = random_query(rng, grid)
            assert catalog.estimate(q) == full.estimate(q)

    def test_single_category_matches_subset(self, catalog, grid, data, labels, rng):
        subset = data.select(labels == "map")
        reference = ExactEvaluator(subset, grid)
        for _ in range(15):
            q = random_query(rng, grid)
            assert catalog.estimate(q, ["map"]) == reference.estimate(q)

    def test_pair_filter_is_additive(self, catalog, rng, grid):
        q = random_query(rng, grid)
        pair = catalog.estimate(q, ["map", "photo"])
        singles = catalog.estimate(q, ["map"]) + catalog.estimate(q, ["photo"])
        assert pair == singles

    def test_unknown_category(self, catalog):
        with pytest.raises(KeyError, match="unknown category"):
            catalog.estimate(TileQuery(0, 1, 0, 1), ["atlas"])

    def test_empty_filter_rejected(self, catalog):
        with pytest.raises(ValueError, match="at least one"):
            catalog.estimator([])


class TestService:
    def test_scoped_service(self, catalog, data, labels):
        service = catalog.service(["gazetteer"])
        result = service.browse(TileQuery(0, 12, 0, 8), rows=2, cols=3, relation="intersect")
        expected = int(np.count_nonzero(labels == "gazetteer"))
        # Every gazetteer record intersects at least one tile of a full
        # partitioning; sum over tiles >= category size.
        assert result.total >= expected
        assert "gazetteer" in service.estimator_name

    def test_service_name_all(self, catalog):
        assert catalog.service().estimator_name == "Catalog[all]"


class TestSummedEstimator:
    def test_requires_estimators(self):
        with pytest.raises(ValueError):
            SummedEstimator([], "x")

    def test_integer_labels(self, grid, data, rng):
        years = rng.integers(1990, 1994, size=len(data))
        catalog = AttributeCatalog(data, grid, years)
        assert set(catalog.categories) == set(range(1990, 1994)) & set(catalog.categories) | set(catalog.categories)
        q = TileQuery(0, 12, 0, 8)
        total = catalog.estimate(q)
        assert total.total == pytest.approx(len(data))


class TestDegeneratePartitions:
    """Edge cases: an empty collection and filters selecting nothing."""

    def test_catalog_over_empty_collection(self, grid):
        from repro.datasets.base import RectDataset

        catalog = AttributeCatalog(
            RectDataset.empty(grid.extent), grid, [],
            factory=lambda d, g: ExactEvaluator(d, g),
        )
        assert catalog.categories == ()
        with pytest.raises(ValueError, match="no categories"):
            catalog.estimator()

    def test_zero_category_filter_rejected(self, catalog):
        with pytest.raises(ValueError, match="at least one"):
            catalog.estimator([])
        with pytest.raises(ValueError, match="at least one"):
            catalog.service([])

    def test_empty_category_subset_estimates_zero(self, grid):
        """A category whose partition is empty never arises from labels,
        but a factory-built estimator over 0 objects must answer 0s."""
        from repro.datasets.base import RectDataset

        empty = ExactEvaluator(RectDataset.empty(grid.extent), grid)
        counts = SummedEstimator([empty], "empty").estimate(TileQuery(0, 4, 0, 4))
        assert (counts.n_d, counts.n_cs, counts.n_cd, counts.n_o) == (0, 0, 0, 0)

    def test_single_object_categories(self, grid, data, rng):
        """One category per object: the finest partition still sums back
        to the unfiltered answer."""
        subset = data.select(np.arange(12))
        catalog = AttributeCatalog(
            subset, grid, np.arange(12), factory=lambda d, g: ExactEvaluator(d, g)
        )
        assert len(catalog.categories) == 12
        q = TileQuery(0, 12, 0, 8)
        whole = ExactEvaluator(subset, grid).estimate(q)
        assert catalog.estimate(q) == whole
