"""Cache and shard semantics at the service level: bit-parity between
cached/sharded and plain rasters (property-tested), generation
invalidation through a maintained histogram, and the resilient service's
cache/deadline/degradation interactions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.browse.resilience import ResilientBrowsingService
from repro.browse.service import RELATION_FIELDS, GeoBrowsingService
from repro.cache import TileResultCache
from repro.euler.histogram import EulerHistogram
from repro.euler.maintained import MaintainedEulerHistogram
from repro.euler.simple import SEulerApprox
from repro.geometry.rect import Rect
from repro.grid.grid import Grid
from repro.grid.tiles_math import TileQuery
from repro.obs.instruments import BrowseInstrumentation
from repro.testing.faults import FaultSchedule, FaultyBatchEstimator

from tests.conftest import random_dataset

GRID = Grid(Rect(0.0, 12.0, 0.0, 8.0), 12, 8)


@pytest.fixture(scope="module")
def data():
    return random_dataset(np.random.default_rng(77), GRID, 300, max_size_cells=3.0)


@pytest.fixture(scope="module")
def hist(data):
    return EulerHistogram.from_dataset(data, GRID)


@st.composite
def rasters(draw):
    """A grid-aligned region plus a (rows, cols) tiling that divides it."""
    rows = draw(st.integers(1, 4))
    cols = draw(st.integers(1, 4))
    tile_w = draw(st.integers(1, 3))
    tile_h = draw(st.integers(1, 2))
    x_lo = draw(st.integers(0, GRID.n1 - cols * tile_w))
    y_lo = draw(st.integers(0, GRID.n2 - rows * tile_h))
    region = TileQuery(x_lo, x_lo + cols * tile_w, y_lo, y_lo + rows * tile_h)
    relation = draw(st.sampled_from(sorted(RELATION_FIELDS)))
    return region, rows, cols, relation


class TestCachedParity:
    @given(trace=st.lists(rasters(), min_size=1, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_cached_rasters_bit_identical(self, hist, trace):
        """Any sequence of overlapping rasters answers bit-identically
        through a cached service -- cold misses, warm hits, and partial
        overlaps alike."""
        estimator = SEulerApprox(hist)
        plain = GeoBrowsingService(estimator, GRID)
        cached = GeoBrowsingService(estimator, GRID, cache=TileResultCache())
        for region, rows, cols, relation in trace:
            expected = plain.browse(region, rows, cols, relation)
            # Twice: the first may populate, the second must hit.
            for _ in range(2):
                got = cached.browse(region, rows, cols, relation)
                np.testing.assert_array_equal(got.counts, expected.counts)
            assert got.valid is None or got.valid.all()

    @given(raster=rasters(), num_shards=st.sampled_from([2, 3, 8]))
    @settings(max_examples=30, deadline=None)
    def test_sharded_rasters_bit_identical(self, hist, raster, num_shards):
        region, rows, cols, relation = raster
        estimator = SEulerApprox(hist)
        expected = GeoBrowsingService(estimator, GRID).browse(
            region, rows, cols, relation
        )
        sharded = GeoBrowsingService(estimator, GRID, num_shards=num_shards)
        try:
            got = sharded.browse(region, rows, cols, relation)
        finally:
            sharded.close()
        np.testing.assert_array_equal(got.counts, expected.counts)

    def test_cache_and_shards_compose(self, hist):
        estimator = SEulerApprox(hist)
        expected = GeoBrowsingService(estimator, GRID).browse(
            TileQuery(0, 12, 0, 8), 4, 6
        )
        service = GeoBrowsingService(
            estimator, GRID, cache=TileResultCache(), num_shards=4
        )
        try:
            for _ in range(3):
                got = service.browse(TileQuery(0, 12, 0, 8), 4, 6)
                np.testing.assert_array_equal(got.counts, expected.counts)
        finally:
            service.close()


class TestGenerationInvalidation:
    def test_update_after_cached_browse_never_serves_stale_counts(self, data):
        maintained = MaintainedEulerHistogram(GRID, data)
        estimator = SEulerApprox(maintained)
        cache = TileResultCache()
        service = GeoBrowsingService(estimator, GRID, cache=cache)
        region = TileQuery(0, 12, 0, 8)

        before = service.browse(region, 4, 6).counts
        service.browse(region, 4, 6)  # warm: served from cache
        assert cache.hits > 0

        gen_before = maintained.generation
        maintained.insert(Rect(1.2, 4.8, 1.2, 4.8))
        assert maintained.generation == gen_before + 1

        after = service.browse(region, 4, 6).counts
        fresh = GeoBrowsingService(estimator, GRID).browse(region, 4, 6).counts
        np.testing.assert_array_equal(after, fresh)
        assert not np.array_equal(after, before), (
            "inserting an object inside the region must change the raster"
        )
        assert cache.generation_invalidations >= 1

    def test_merge_keeps_cache_valid(self, data):
        """A merge() is a representation change with identical answers,
        so it must NOT invalidate (generation stays put)."""
        maintained = MaintainedEulerHistogram(GRID, data)
        estimator = SEulerApprox(maintained)
        cache = TileResultCache()
        service = GeoBrowsingService(estimator, GRID, cache=cache)
        region = TileQuery(0, 12, 0, 8)

        maintained.insert(Rect(2.0, 3.0, 2.0, 3.0))
        first = service.browse(region, 4, 6).counts
        gen = maintained.generation
        maintained.merge()
        assert maintained.generation == gen
        again = service.browse(region, 4, 6).counts
        np.testing.assert_array_equal(again, first)
        assert cache.generation_invalidations == 0
        assert cache.hits > 0


class TestResilientCache:
    def test_cache_hits_survive_a_zero_deadline(self, hist):
        estimator = SEulerApprox(hist)
        cache = TileResultCache()
        service = ResilientBrowsingService([estimator], GRID, cache=cache)
        region = TileQuery(0, 12, 0, 8)

        warm = service.browse(region, 4, 6)  # populates the cache
        cold_deadline = service.browse(region, 4, 6, deadline=0.0)
        assert cold_deadline.valid is None or cold_deadline.valid.all()
        np.testing.assert_array_equal(cold_deadline.counts, warm.counts)

    def test_degraded_answers_are_not_cached(self, hist):
        """With the primary hard-down, the fallback answers every chunk
        -- and none of it may enter the cache under the primary's key."""
        primary = FaultyBatchEstimator(
            SEulerApprox(hist), FaultSchedule(script=["error"] * 1000, cycle=True)
        )
        fallback = SEulerApprox(hist)
        cache = TileResultCache()
        service = ResilientBrowsingService(
            [primary, fallback], GRID, cache=cache, failure_threshold=10_000
        )
        region = TileQuery(0, 12, 0, 8)
        result = service.browse(region, 4, 6)
        assert result.valid is None or result.valid.all()
        assert len(cache) == 0, "degraded (fallback-tier) answers were cached"

        # Second request: still all fallback, still nothing cached.
        service.browse(region, 4, 6)
        assert len(cache) == 0
        assert cache.hits == 0

    def test_primary_recovery_fills_the_cache(self, hist):
        primary = FaultyBatchEstimator(
            SEulerApprox(hist), FaultSchedule(script=["error"])  # fails once
        )
        fallback = SEulerApprox(hist)
        cache = TileResultCache()
        service = ResilientBrowsingService(
            [primary, fallback],
            GRID,
            cache=cache,
            failure_threshold=10_000,
            chunk_rows=2,
        )
        region = TileQuery(0, 12, 0, 8)
        reference = GeoBrowsingService(SEulerApprox(hist), GRID).browse(region, 4, 6)
        result = service.browse(region, 4, 6)
        np.testing.assert_array_equal(result.counts, reference.counts)
        # The retried/recovered primary answered at least one chunk.
        assert len(cache) > 0

    def test_sharded_resilient_parity(self, hist):
        estimator = SEulerApprox(hist)
        expected = ResilientBrowsingService([estimator], GRID).browse(
            TileQuery(0, 12, 0, 8), 8, 12
        )
        sharded = ResilientBrowsingService(
            [estimator], GRID, num_shards=4, chunk_rows=2
        )
        try:
            got = sharded.browse(TileQuery(0, 12, 0, 8), 8, 12)
        finally:
            sharded.close()
        np.testing.assert_array_equal(got.counts, expected.counts)


class TestCacheMetrics:
    def test_plain_service_records_hits_and_misses(self, hist):
        instruments = BrowseInstrumentation()
        service = GeoBrowsingService(
            SEulerApprox(hist),
            GRID,
            cache=TileResultCache(),
            instruments=instruments,
        )
        service.browse(TileQuery(0, 12, 0, 8), 4, 6)
        service.browse(TileQuery(0, 12, 0, 8), 4, 6)
        assert instruments.cache_misses.labels(service="plain").value == 24
        assert instruments.cache_hits.labels(service="plain").value == 24

    def test_resilient_service_records_hits_misses_and_shards(self, hist):
        instruments = BrowseInstrumentation()
        service = ResilientBrowsingService(
            [SEulerApprox(hist)],
            GRID,
            cache=TileResultCache(),
            instruments=instruments,
        )
        service.browse(TileQuery(0, 12, 0, 8), 4, 6)
        service.browse(TileQuery(0, 12, 0, 8), 4, 6)
        assert instruments.cache_misses.labels(service="resilient").value == 24
        assert instruments.cache_hits.labels(service="resilient").value == 24

    def test_shard_seconds_observed(self, hist):
        instruments = BrowseInstrumentation()
        service = GeoBrowsingService(
            SEulerApprox(hist), GRID, num_shards=2, instruments=instruments
        )
        try:
            service.browse(TileQuery(0, 12, 0, 8), 8, 12)
        finally:
            service.close()
        shard_obs = instruments.shard_seconds.labels(service="plain")
        assert shard_obs.count >= 1
