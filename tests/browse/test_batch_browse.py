"""Batched browsing: raster parity, fallback adapter, and the
persist -> reload -> batch-serve deployment path."""

import numpy as np
import pytest

from repro.browse.service import GeoBrowsingService, RELATION_FIELDS
from repro.euler.base import Level2BatchEstimator, ScalarBatchFallback, as_batch_estimator
from repro.euler.full import EulerApprox, QueryEdge
from repro.euler.histogram import EulerHistogram
from repro.euler.multi import MEulerApprox
from repro.euler.simple import SEulerApprox
from repro.exact.evaluator import ExactEvaluator
from repro.geometry.rect import Rect
from repro.grid.grid import Grid
from repro.grid.tiles_math import TileQuery
from repro.workloads.tiles import browsing_tile_batch, browsing_tiles

from tests.conftest import random_dataset


@pytest.fixture
def grid():
    return Grid(Rect(0.0, 12.0, 0.0, 8.0), 12, 8)


@pytest.fixture
def data(grid, rng):
    return random_dataset(rng, grid, 400, max_size_cells=4.0)


class TestBatchBrowseParity:
    @pytest.mark.parametrize("relation", sorted(RELATION_FIELDS))
    def test_batch_and_scalar_rasters_identical(self, grid, data, relation):
        hist = EulerHistogram.from_dataset(data, grid)
        for estimator in (
            SEulerApprox(hist),
            EulerApprox(hist, QueryEdge.ALL),
            MEulerApprox(data, grid, [1.0, 9.0]),
            ExactEvaluator(data, grid),
        ):
            service = GeoBrowsingService(estimator, grid)
            region = TileQuery(0, 12, 0, 8)
            fast = service.browse(region, rows=4, cols=6, relation=relation)
            slow = service.browse(
                region, rows=4, cols=6, relation=relation, use_batch=False
            )
            np.testing.assert_array_equal(fast.counts, slow.counts)

    def test_sub_region_raster(self, grid, data):
        service = GeoBrowsingService(ExactEvaluator(data, grid), grid)
        region = TileQuery(2, 10, 1, 7)
        fast = service.browse(region, rows=3, cols=4)
        slow = service.browse(region, rows=3, cols=4, use_batch=False)
        np.testing.assert_array_equal(fast.counts, slow.counts)

    def test_lazy_tiles_match_tiling(self, grid, data):
        service = GeoBrowsingService(ExactEvaluator(data, grid), grid)
        region = TileQuery(0, 12, 0, 8)
        result = service.browse(region, rows=2, cols=3)
        assert result.tiles == browsing_tiles(region, 2, 3)


class TestScalarFallbackAdapter:
    class _ScalarOnly:
        """A third-party estimator that only speaks the scalar protocol."""

        def __init__(self, inner):
            self._inner = inner

        @property
        def name(self):
            return "scalar-only"

        def estimate(self, query):
            return self._inner.estimate(query)

    def test_adapter_wraps_scalar_estimator(self, grid, data):
        scalar_only = self._ScalarOnly(ExactEvaluator(data, grid))
        adapted = as_batch_estimator(scalar_only)
        assert isinstance(adapted, ScalarBatchFallback)
        assert adapted.name == "scalar-only"
        assert adapted.wrapped is scalar_only

        batch = browsing_tile_batch(TileQuery(0, 12, 0, 8), 2, 2)
        got = adapted.estimate_batch(batch)
        for i, q in enumerate(batch):
            assert got[i] == scalar_only.estimate(q)

    def test_native_batch_estimator_passes_through(self, grid, data):
        estimator = SEulerApprox(EulerHistogram.from_dataset(data, grid))
        assert as_batch_estimator(estimator) is estimator
        assert isinstance(estimator, Level2BatchEstimator)

    def test_service_serves_scalar_only_estimators(self, grid, data):
        scalar_only = self._ScalarOnly(ExactEvaluator(data, grid))
        service = GeoBrowsingService(scalar_only, grid)
        direct = GeoBrowsingService(ExactEvaluator(data, grid), grid)
        region = TileQuery(0, 12, 0, 8)
        np.testing.assert_array_equal(
            service.browse(region, 2, 3).counts, direct.browse(region, 2, 3).counts
        )


class TestSaveLoadBatchBrowse:
    def test_round_trip_histogram_serves_identical_rasters(self, tmp_path, grid, data):
        """The deployment path: build once, persist, reload elsewhere, and
        serve batched rasters from the rebuilt prefix cube."""
        original = EulerHistogram.from_dataset(data, grid)
        path = tmp_path / "hist.npz"
        original.save(path)
        reloaded = EulerHistogram.load(path)

        assert reloaded.num_objects == original.num_objects
        np.testing.assert_array_equal(reloaded.buckets(), original.buckets())

        region = TileQuery(0, 12, 0, 8)
        for edge in (QueryEdge.LEFT, QueryEdge.ALL):
            before = GeoBrowsingService(EulerApprox(original, edge), grid)
            after = GeoBrowsingService(EulerApprox(reloaded, edge), grid)
            for relation in sorted(RELATION_FIELDS):
                want = before.browse(region, rows=4, cols=6, relation=relation)
                got = after.browse(region, rows=4, cols=6, relation=relation)
                np.testing.assert_array_equal(got.counts, want.counts)
                # And the batch raster from the reloaded cube still equals
                # the reloaded scalar path (full parity after the rebuild).
                slow = after.browse(
                    region, rows=4, cols=6, relation=relation, use_batch=False
                )
                np.testing.assert_array_equal(got.counts, slow.counts)
