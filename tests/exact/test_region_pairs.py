"""Batched region-pair intersection counts (satellite of the join-search
PR): bit parity with the scalar mask path, empty datasets, chunking and
grid validation."""

import numpy as np
import pytest

import repro.exact.evaluator as evaluator_mod
from repro.datasets.base import RectDataset
from repro.exact.evaluator import ExactEvaluator
from repro.geometry.rect import Rect
from repro.grid.grid import Grid
from repro.grid.tiles_math import TileQuery, TileQueryBatch

from tests.conftest import random_dataset


def query_batch(queries):
    return TileQueryBatch(
        np.array([q.qx_lo for q in queries], dtype=np.intp),
        np.array([q.qx_hi for q in queries], dtype=np.intp),
        np.array([q.qy_lo for q in queries], dtype=np.intp),
        np.array([q.qy_hi for q in queries], dtype=np.intp),
    )


def all_cells_and_some_regions(grid, rng, num_regions=20):
    queries = [
        TileQuery(i, i + 1, j, j + 1) for i in range(grid.n1) for j in range(grid.n2)
    ]
    for _ in range(num_regions):
        x_lo = int(rng.integers(0, grid.n1))
        x_hi = int(rng.integers(x_lo + 1, grid.n1 + 1))
        y_lo = int(rng.integers(0, grid.n2))
        y_hi = int(rng.integers(y_lo + 1, grid.n2 + 1))
        queries.append(TileQuery(x_lo, x_hi, y_lo, y_hi))
    return queries


def test_pairs_match_scalar_masks(small_grid, rng):
    datasets = [random_dataset(rng, small_grid, 40, name=f"d{i}") for i in range(4)]
    evaluators = [ExactEvaluator(d, small_grid) for d in datasets]
    queries = all_cells_and_some_regions(small_grid, rng)
    counts = ExactEvaluator.region_intersections_batch(evaluators, query_batch(queries))
    assert counts.shape == (4, len(queries))
    assert counts.dtype == np.int64
    for d, ev in enumerate(evaluators):
        for q, query in enumerate(queries):
            assert counts[d, q] == np.count_nonzero(ev.masks(query)[0])


def test_intersection_counts_single_dataset(small_grid, rng):
    data = random_dataset(rng, small_grid, 60)
    ev = ExactEvaluator(data, small_grid)
    queries = all_cells_and_some_regions(small_grid, rng)
    batch = query_batch(queries)
    counts = ev.intersection_counts(batch)
    expected = ev.estimate_batch(batch).n_intersect
    assert np.array_equal(counts.astype(np.float64), expected)


def test_empty_datasets_count_zero(small_grid, rng):
    empty = RectDataset(
        np.empty(0), np.empty(0), np.empty(0), np.empty(0), small_grid.extent, name="e"
    )
    datasets = [
        empty,
        random_dataset(rng, small_grid, 25, name="full"),
        empty,
    ]
    evaluators = [ExactEvaluator(d, small_grid) for d in datasets]
    queries = query_batch([TileQuery(0, small_grid.n1, 0, small_grid.n2), TileQuery(1, 2, 1, 2)])
    counts = ExactEvaluator.region_intersections_batch(evaluators, queries)
    assert (counts[0] == 0).all()
    assert (counts[2] == 0).all()
    # the non-empty neighbour is unaffected by the empty segments
    assert counts[1, 0] == np.count_nonzero(
        evaluators[1].masks(TileQuery(0, small_grid.n1, 0, small_grid.n2))[0]
    )


def test_all_empty(small_grid):
    empty = RectDataset(
        np.empty(0), np.empty(0), np.empty(0), np.empty(0), small_grid.extent
    )
    counts = ExactEvaluator.region_intersections_batch(
        [ExactEvaluator(empty, small_grid)], query_batch([TileQuery(0, 1, 0, 1)])
    )
    assert counts.shape == (1, 1)
    assert counts[0, 0] == 0


def test_no_evaluators_yield_empty_matrix(small_grid):
    counts = ExactEvaluator.region_intersections_batch(
        [], query_batch([TileQuery(0, 1, 0, 1)])
    )
    assert counts.shape == (0, 1)
    assert counts.dtype == np.int64


def test_mixed_grids_rejected(small_grid, world_grid, rng):
    a = ExactEvaluator(random_dataset(rng, small_grid, 5), small_grid)
    b = ExactEvaluator(random_dataset(rng, world_grid, 5), world_grid)
    with pytest.raises(ValueError, match="grid"):
        ExactEvaluator.region_intersections_batch(
            [a, b], query_batch([TileQuery(0, 1, 0, 1)])
        )


def test_chunked_path_is_bit_identical(small_grid, rng, monkeypatch):
    """Force tiny chunks so the query loop takes many iterations."""
    datasets = [random_dataset(rng, small_grid, 30, name=f"d{i}") for i in range(3)]
    evaluators = [ExactEvaluator(d, small_grid) for d in datasets]
    queries = query_batch(all_cells_and_some_regions(small_grid, rng))
    full = ExactEvaluator.region_intersections_batch(evaluators, queries)
    monkeypatch.setattr(evaluator_mod, "_BATCH_CHUNK_ELEMENTS", 64)
    chunked = ExactEvaluator.region_intersections_batch(evaluators, queries)
    assert np.array_equal(full, chunked)
