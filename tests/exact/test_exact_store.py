"""Tests for the Theorem 3.1 exact stores."""

import numpy as np
import pytest

from repro.exact.evaluator import ExactEvaluator
from repro.exact.storage import exact_contains_bucket_count
from repro.exact.store import ExactContainsStore1D, ExactLevel2Store2D
from repro.geometry.rect import Rect
from repro.grid.grid import Grid

from tests.conftest import random_dataset, random_query


class TestStore1D:
    N = 8

    def _brute(self, lo, hi, q_lo, q_hi):
        """Scalar 1-d oracle on the open-object/closed-query semantics."""
        contains = sum(1 for a, b in zip(lo, hi) if q_lo <= a and b <= q_hi)
        contained = sum(1 for a, b in zip(lo, hi) if a < q_lo and q_hi < b)
        intersect = sum(1 for a, b in zip(lo, hi) if a < q_hi and b > q_lo)
        return contains, contained, intersect

    def test_against_brute_force(self, rng):
        # Non-aligned endpoints: the snapped store answers at resolution,
        # so compare against the snapped intervals.
        raw_lo = rng.uniform(0, self.N, size=200)
        raw_hi = np.minimum(raw_lo + rng.uniform(0, 4, size=200), self.N)
        store = ExactContainsStore1D(raw_lo, raw_hi, self.N)
        lo = np.floor(raw_lo)
        hi = np.ceil(raw_hi)
        hi = np.maximum(hi, lo + 1)  # degenerate-on-line convention
        lo = np.minimum(lo, self.N - 1)
        hi = np.minimum(np.maximum(hi, lo + 1), self.N)
        for q_lo in range(self.N):
            for q_hi in range(q_lo + 1, self.N + 1):
                cs, cd, it = self._brute(lo, hi, q_lo, q_hi)
                assert store.contains(q_lo, q_hi) == cs
                assert store.contained(q_lo, q_hi) == cd
                assert store.intersect(q_lo, q_hi) == it

    def test_bucket_count_matches_theorem(self):
        store = ExactContainsStore1D(np.array([0.5]), np.array([1.5]), 7)
        assert store.effective_bucket_count == 7 * 8 // 2
        assert store.effective_bucket_count == exact_contains_bucket_count([7])

    def test_boundary_query_has_no_containers(self):
        store = ExactContainsStore1D(np.array([0.2]), np.array([7.8]), 8)
        assert store.contained(0, 4) == 0
        assert store.contained(4, 8) == 0
        assert store.contained(1, 7) == 1

    def test_invalid_query(self):
        store = ExactContainsStore1D(np.array([1.5]), np.array([2.5]), 8)
        with pytest.raises(ValueError):
            store.contains(3, 3)
        with pytest.raises(ValueError):
            store.intersect(-1, 2)

    def test_num_objects(self):
        store = ExactContainsStore1D(np.array([0.5, 1.5]), np.array([1.0, 3.0]), 8)
        assert store.num_objects == 2


class TestStore2D:
    def test_matches_exact_evaluator(self, rng):
        grid = Grid(Rect(0.0, 10.0, 0.0, 6.0), 10, 6)
        data = random_dataset(rng, grid, 200, degenerate_fraction=0.2, aligned_fraction=0.3)
        store = ExactLevel2Store2D(data, grid)
        evaluator = ExactEvaluator(data, grid)
        for _ in range(60):
            q = random_query(rng, grid)
            assert store.estimate(q) == evaluator.estimate(q)

    def test_bucket_count_matches_theorem(self, rng):
        grid = Grid(Rect(0.0, 6.0, 0.0, 4.0), 6, 4)
        data = random_dataset(rng, grid, 10)
        store = ExactLevel2Store2D(data, grid)
        assert store.effective_bucket_count == (6 * 7 // 2) * (4 * 5 // 2)
        assert store.effective_bucket_count == exact_contains_bucket_count([6, 4])

    def test_refuses_large_grids(self, rng):
        """The Theorem 3.1 blow-up is enforced, not just documented."""
        grid = Grid.world_1deg()
        data = random_dataset(rng, grid, 10)
        with pytest.raises(ValueError, match="Theorem 3.1"):
            ExactLevel2Store2D(data, grid)

    def test_num_objects(self, rng):
        grid = Grid(Rect(0.0, 5.0, 0.0, 5.0), 5, 5)
        data = random_dataset(rng, grid, 33)
        assert ExactLevel2Store2D(data, grid).num_objects == 33
