"""Tests for the continuous (unaligned) exact evaluator."""

import pytest

from repro.datasets.base import RectDataset
from repro.exact.continuous import ContinuousExactEvaluator
from repro.exact.evaluator import ExactEvaluator
from repro.geometry.rect import Rect
from repro.geometry.relations import Level2Relation, classify_level2_shrunk
from repro.grid.grid import Grid

from tests.conftest import random_dataset, random_query


@pytest.fixture
def grid():
    return Grid(Rect(0.0, 12.0, 0.0, 8.0), 12, 8)


def _brute(dataset, query):
    tally = {rel: 0 for rel in Level2Relation}
    for obj in dataset:
        tally[classify_level2_shrunk(obj, query)] += 1
    return tally


def test_matches_scalar_classifier(grid, rng):
    data = random_dataset(rng, grid, 150, degenerate_fraction=0.0)
    evaluator = ContinuousExactEvaluator(data)
    for _ in range(30):
        x = sorted(rng.uniform(0, 12, size=2))
        y = sorted(rng.uniform(0, 8, size=2))
        if x[1] - x[0] < 1e-6 or y[1] - y[0] < 1e-6:
            continue
        query = Rect(x[0], x[1], y[0], y[1])
        tally = _brute(data, query)
        counts = evaluator.estimate(query)
        assert counts.n_d == tally[Level2Relation.DISJOINT]
        assert counts.n_cs == tally[Level2Relation.CONTAINS]
        assert counts.n_cd == tally[Level2Relation.CONTAINED]
        assert counts.n_o == tally[Level2Relation.OVERLAP]


def test_agrees_with_lattice_evaluator_on_aligned_queries(grid, rng):
    # Interior-aligned objects only (the convention-resolved degenerate
    # cases are excluded by construction of the snapped evaluator).
    data = random_dataset(rng, grid, 200, degenerate_fraction=0.0, aligned_fraction=0.0)
    continuous = ContinuousExactEvaluator(data)
    lattice = ExactEvaluator(data, grid)
    for _ in range(30):
        q = random_query(rng, grid)
        assert continuous.estimate(q.to_world(grid)) == lattice.estimate(q)


def test_degenerate_objects_closed_query_convention(grid):
    data = RectDataset.from_rects(
        [Rect.point(3.0, 3.0), Rect(2.0, 2.0, 1.0, 5.0)], grid.extent
    )
    evaluator = ContinuousExactEvaluator(data)
    # Point on the query corner intersects (closed query); the vertical
    # segment lies on the boundary -> intersects too.
    counts = evaluator.estimate(Rect(2.0, 3.0, 1.0, 3.0))
    assert counts.n_intersect == 2


def test_rejects_degenerate_query(grid):
    data = RectDataset.empty(grid.extent)
    with pytest.raises(ValueError, match="positive area"):
        ContinuousExactEvaluator(data).estimate(Rect(1.0, 1.0, 0.0, 5.0))


def test_counts_partition(grid, rng):
    data = random_dataset(rng, grid, 100)
    evaluator = ContinuousExactEvaluator(data)
    counts = evaluator.estimate(Rect(1.3, 7.9, 0.4, 6.1))
    assert counts.total == len(data)
