"""Tests for the Equation 3 reconstruction and the Theorem 3.1 argument.

Two computational demonstrations of Section 3:

1. a contains-oracle determines the *complete* type histogram
   (Equation 3 runs and recovers every bucket), so exact contains
   answers require the full O(N^2) information;
2. an intersect-oracle does NOT: there exist different datasets with
   identical Euler histograms (hence identical intersect answers for
   every aligned query) but different contains answers -- Figure 8's
   point, found here by exhaustive search.
"""

import itertools

import numpy as np
import pytest

from repro.datasets.base import RectDataset
from repro.euler.histogram import EulerHistogram
from repro.exact.evaluator import ExactEvaluator
from repro.exact.reconstruction import reconstruct_1d, reconstruct_2d
from repro.exact.store import ExactContainsStore1D, ExactLevel2Store2D
from repro.geometry.rect import Rect
from repro.grid.grid import Grid
from repro.grid.tiles_math import TileQuery


class TestReconstruct1D:
    N = 8

    def test_recovers_type_histogram(self, rng):
        lo = rng.uniform(0, self.N, size=150)
        hi = np.minimum(lo + rng.uniform(0, 4, size=150), self.N)
        store = ExactContainsStore1D(lo, hi, self.N)

        recovered = reconstruct_1d(store.contains, self.N)

        # Direct type histogram from the snapped intervals.
        expected = np.zeros((self.N, self.N), dtype=np.int64)
        from repro.geometry.snapping import snap_axis_arrays

        a_lo, a_hi = snap_axis_arrays(lo, hi, self.N)
        np.add.at(expected, (a_lo // 2, a_hi // 2), 1)
        np.testing.assert_array_equal(recovered, expected)

    def test_total_preserved(self, rng):
        lo = rng.uniform(0, self.N, size=60)
        hi = np.minimum(lo + rng.uniform(0, 2, size=60), self.N)
        store = ExactContainsStore1D(lo, hi, self.N)
        assert reconstruct_1d(store.contains, self.N).sum() == 60

    def test_empty(self):
        store = ExactContainsStore1D(np.zeros(0), np.zeros(0), 4)
        assert reconstruct_1d(store.contains, 4).sum() == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            reconstruct_1d(lambda a, b: 0, 0)


class TestReconstruct2D:
    def test_recovers_footprint_histogram(self, rng):
        grid = Grid(Rect(0.0, 5.0, 0.0, 4.0), 5, 4)
        from tests.conftest import random_dataset

        data = random_dataset(rng, grid, 80, degenerate_fraction=0.2)
        store = ExactLevel2Store2D(data, grid)

        def oracle(qx_lo, qx_hi, qy_lo, qy_hi):
            return store.estimate(TileQuery(qx_lo, qx_hi, qy_lo, qy_hi)).n_cs

        recovered = reconstruct_2d(oracle, 5, 4)
        assert recovered.sum() == 80

        # Cross-check against direct snapped footprints.
        from repro.geometry.snapping import snap_rects

        a_lo, a_hi, b_lo, b_hi = snap_rects(
            data.x_lo, data.x_hi, data.y_lo, data.y_hi, 5, 4
        )
        expected = np.zeros((5, 5, 4, 4), dtype=np.int64)
        np.add.at(expected, (a_lo // 2, a_hi // 2, b_lo // 2, b_hi // 2), 1)
        np.testing.assert_array_equal(recovered, expected)

    def test_validation(self):
        with pytest.raises(ValueError):
            reconstruct_2d(lambda *a: 0, 0, 3)


class TestIntersectOracleIsNotInvertible:
    """Figure 8, computationally: different datasets, identical Euler
    histograms (=> identical intersect answers for every aligned query),
    different contains answers."""

    def _find_collision(self):
        grid = Grid(Rect(0.0, 3.0, 0.0, 3.0), 3, 3)
        # All axis-aligned footprint types on a 3x3 grid, as open rects
        # slightly shrunk inside their cell spans.
        types = [
            Rect(i1 + 0.25, j1 - 0.25, i2 + 0.25, j2 - 0.25)
            for i1, j1 in itertools.combinations(range(4), 2)
            for i2, j2 in itertools.combinations(range(4), 2)
        ]
        seen: dict[bytes, tuple] = {}
        for pair in itertools.combinations_with_replacement(range(len(types)), 2):
            data = RectDataset.from_rects([types[k] for k in pair], grid.extent)
            hist = EulerHistogram.from_dataset(data, grid)
            key = hist.buckets().tobytes()
            if key in seen and seen[key] != pair:
                return grid, [types[k] for k in seen[key]], [types[k] for k in pair]
            seen.setdefault(key, pair)
        return None

    def test_collision_exists_and_contains_differs(self):
        found = self._find_collision()
        assert found is not None, "no Euler-histogram collision found"
        grid, rects_a, rects_b = found
        data_a = RectDataset.from_rects(rects_a, grid.extent)
        data_b = RectDataset.from_rects(rects_b, grid.extent)

        hist_a = EulerHistogram.from_dataset(data_a, grid)
        hist_b = EulerHistogram.from_dataset(data_b, grid)
        np.testing.assert_array_equal(hist_a.buckets(), hist_b.buckets())

        eval_a = ExactEvaluator(data_a, grid)
        eval_b = ExactEvaluator(data_b, grid)
        all_queries = [
            TileQuery(x1, x2, y1, y2)
            for x1, x2 in itertools.combinations(range(4), 2)
            for y1, y2 in itertools.combinations(range(4), 2)
        ]
        # Intersect answers agree everywhere (they must: same histogram).
        for q in all_queries:
            assert hist_a.intersect_count(q) == hist_b.intersect_count(q)
            assert eval_a.estimate(q).n_intersect == eval_b.estimate(q).n_intersect
        # ...but contains answers differ somewhere: the intersect oracle
        # cannot determine contains, hence no Equation 3 for intersect.
        assert any(
            eval_a.estimate(q).n_cs != eval_b.estimate(q).n_cs for q in all_queries
        )
