"""Tests for the vectorised exact evaluator against the scalar oracle."""

import numpy as np
import pytest

from repro.datasets.base import RectDataset
from repro.exact.evaluator import ExactEvaluator
from repro.geometry.rect import Rect
from repro.grid.grid import Grid
from repro.grid.tiles_math import TileQuery

from tests.conftest import brute_force_counts, random_dataset, random_query


@pytest.fixture
def grid():
    return Grid(Rect(0.0, 12.0, 0.0, 8.0), 12, 8)


def test_matches_scalar_oracle_on_random_data(grid, rng):
    data = random_dataset(rng, grid, 250, degenerate_fraction=0.25, aligned_fraction=0.3)
    evaluator = ExactEvaluator(data, grid)
    for _ in range(50):
        q = random_query(rng, grid)
        assert evaluator.estimate(q) == brute_force_counts(data, grid, q)


def test_matches_on_scaled_grid(rng):
    # Non-unit cells: 2.5 x 1.25 world units per cell.
    grid = Grid(Rect(0.0, 25.0, 0.0, 10.0), 10, 8)
    data = random_dataset(rng, grid, 200)
    evaluator = ExactEvaluator(data, grid)
    for _ in range(30):
        q = random_query(rng, grid)
        assert evaluator.estimate(q) == brute_force_counts(data, grid, q)


def test_counts_are_integral_and_non_negative(grid, rng):
    data = random_dataset(rng, grid, 100)
    evaluator = ExactEvaluator(data, grid)
    for _ in range(20):
        counts = evaluator.estimate(random_query(rng, grid))
        for value in (counts.n_d, counts.n_cs, counts.n_cd, counts.n_o):
            assert value >= 0
            assert value == int(value)
        assert counts.total == len(data)


def test_masks_partition_objects(grid, rng):
    data = random_dataset(rng, grid, 150)
    evaluator = ExactEvaluator(data, grid)
    q = random_query(rng, grid)
    intersects, within, covers = evaluator.masks(q)
    assert not np.any(within & covers)
    assert np.all(intersects[within])
    assert np.all(intersects[covers])


def test_full_space_query(grid, rng):
    data = random_dataset(rng, grid, 80)
    evaluator = ExactEvaluator(data, grid)
    counts = evaluator.estimate(TileQuery(0, 12, 0, 8))
    assert counts.n_cs == len(data)
    assert counts.n_d == counts.n_cd == counts.n_o == 0


def test_empty_dataset(grid):
    evaluator = ExactEvaluator(RectDataset.empty(Rect(0.0, 12.0, 0.0, 8.0)), grid)
    counts = evaluator.estimate(TileQuery(0, 1, 0, 1))
    assert counts.total == 0


def test_out_of_grid_query_rejected(grid, rng):
    data = random_dataset(rng, grid, 10)
    evaluator = ExactEvaluator(data, grid)
    with pytest.raises(ValueError):
        evaluator.estimate(TileQuery(0, 13, 0, 8))


def test_name(grid):
    evaluator = ExactEvaluator(RectDataset.empty(Rect(0.0, 12.0, 0.0, 8.0)), grid)
    assert evaluator.name == "Exact"
