"""Tests for the d-dimensional exact evaluator."""

import numpy as np
import pytest

from repro.datasets.base import RectDataset
from repro.exact.evaluator import ExactEvaluator
from repro.exact.evaluator_nd import ExactEvaluatorND
from repro.euler.histogram_nd import EulerHistogramND
from repro.geometry.rect import Rect
from repro.grid.grid import Grid
from repro.grid.grid_nd import BoxQuery, GridND

from tests.conftest import random_dataset, random_query


def _random_boxes(rng, grid, m):
    d = grid.ndim
    lows = np.empty((m, d))
    highs = np.empty((m, d))
    for k in range(d):
        size = rng.uniform(0.0, grid.cells[k] / 2, size=m)
        lo = rng.uniform(0.0, grid.cells[k] - size)
        lows[:, k] = lo
        highs[:, k] = lo + size
    return lows, highs


def test_2d_agrees_with_specialised_evaluator(rng):
    grid_nd = GridND.unit_cells([8, 6])
    grid_2d = Grid(Rect(0.0, 8.0, 0.0, 6.0), 8, 6)
    data = random_dataset(rng, grid_2d, 150, degenerate_fraction=0.2)
    nd = ExactEvaluatorND(
        grid_nd,
        np.column_stack([data.x_lo, data.y_lo]),
        np.column_stack([data.x_hi, data.y_hi]),
    )
    reference = ExactEvaluator(data, grid_2d)
    for _ in range(30):
        q = random_query(rng, grid_2d)
        nd_counts = nd.estimate(BoxQuery(lo=(q.qx_lo, q.qy_lo), hi=(q.qx_hi, q.qy_hi)))
        assert nd_counts == reference.estimate(q)


def test_3d_intersect_matches_histogram(rng):
    grid = GridND.unit_cells([5, 4, 6])
    lows, highs = _random_boxes(rng, grid, 120)
    evaluator = ExactEvaluatorND(grid, lows, highs)
    hist = EulerHistogramND.from_boxes(grid, lows, highs)
    for _ in range(25):
        lo = tuple(int(rng.integers(0, n)) for n in grid.cells)
        hi = tuple(int(rng.integers(a + 1, n + 1)) for a, n in zip(lo, grid.cells))
        q = BoxQuery(lo=lo, hi=hi)
        assert hist.intersect_count(q) == evaluator.estimate(q).n_intersect


def test_counts_partition(rng):
    grid = GridND.unit_cells([4, 4, 4])
    lows, highs = _random_boxes(rng, grid, 60)
    evaluator = ExactEvaluatorND(grid, lows, highs)
    q = BoxQuery(lo=(1, 1, 1), hi=(3, 3, 3))
    counts = evaluator.estimate(q)
    assert counts.total == 60
    assert counts.n_cs >= 0 and counts.n_cd >= 0 and counts.n_o >= 0


def test_full_space_query(rng):
    grid = GridND.unit_cells([4, 4, 4])
    lows, highs = _random_boxes(rng, grid, 40)
    evaluator = ExactEvaluatorND(grid, lows, highs)
    counts = evaluator.estimate(BoxQuery(lo=(0, 0, 0), hi=(4, 4, 4)))
    assert counts.n_cs == 40


def test_validation(rng):
    grid = GridND.unit_cells([4, 4])
    with pytest.raises(ValueError, match="corner arrays"):
        ExactEvaluatorND(grid, np.zeros((5, 3)), np.zeros((5, 3)))
    evaluator = ExactEvaluatorND(grid, np.zeros((0, 2)), np.zeros((0, 2)))
    with pytest.raises(ValueError):
        evaluator.estimate(BoxQuery(lo=(0, 0), hi=(5, 4)))
    assert evaluator.name == "Exact2D"
