"""Tests for the Theorem 3.1 storage accounting."""

import pytest

from repro.exact.storage import (
    euler_histogram_bucket_count,
    exact_contains_bucket_count,
    exact_contains_storage_bytes,
    storage_comparison_row,
)


class TestBucketCounts:
    def test_1d(self):
        assert exact_contains_bucket_count([8]) == 36

    def test_2d(self):
        assert exact_contains_bucket_count([360, 180]) == (360 * 361 // 2) * (180 * 181 // 2)

    def test_3d(self):
        assert exact_contains_bucket_count([2, 3, 4]) == 3 * 6 * 10

    def test_corner_types_factor(self):
        base = exact_contains_bucket_count([5, 5])
        assert exact_contains_bucket_count([5, 5], corner_types=True) == 16 * base

    def test_invalid(self):
        with pytest.raises(ValueError):
            exact_contains_bucket_count([])
        with pytest.raises(ValueError):
            exact_contains_bucket_count([0, 5])


class TestPaperExample:
    def test_four_gb_figure(self):
        """Section 3: the 360x180 grid at 1-degree resolution needs
        ~4 GB -- 4 * (360*361)/2 * (180*181)/2 bytes."""
        total = exact_contains_storage_bytes([360, 180], bytes_per_bucket=4)
        assert total == 4 * (360 * 361 // 2) * (180 * 181 // 2)
        assert 3.9e9 < total < 4.3e9

    def test_bytes_validation(self):
        with pytest.raises(ValueError):
            exact_contains_storage_bytes([5], bytes_per_bucket=0)


class TestEulerContrast:
    def test_euler_is_linear_in_cells(self):
        assert euler_histogram_bucket_count([360, 180]) == 719 * 359

    def test_quadratic_vs_linear_growth(self):
        """Doubling the resolution roughly 16-folds the exact store but
        only 4-folds the Euler histogram (the O(N^2) vs O(N) contrast)."""
        small = exact_contains_bucket_count([64, 64])
        large = exact_contains_bucket_count([128, 128])
        assert 15 < large / small < 17
        e_small = euler_histogram_bucket_count([64, 64])
        e_large = euler_histogram_bucket_count([128, 128])
        assert 3.5 < e_large / e_small < 4.5

    def test_comparison_row(self):
        row = storage_comparison_row([360, 180])
        assert row["grid"] == "360x180"
        assert row["exact_buckets"] == exact_contains_bucket_count([360, 180])
        assert row["euler_buckets"] == 719 * 359
        assert row["ratio"] > 4000
