"""Tests for the O(M) whole-tiling exact evaluator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.base import RectDataset
from repro.exact.evaluator import ExactEvaluator
from repro.exact.tiling import exact_tiling_counts
from repro.geometry.rect import Rect
from repro.grid.grid import Grid

from tests.conftest import random_dataset


@pytest.fixture
def grid():
    return Grid(Rect(0.0, 12.0, 0.0, 8.0), 12, 8)


def _assert_matches_evaluator(data, grid, tile_w, tile_h):
    tiling = exact_tiling_counts(data, grid, tile_w, tile_h)
    evaluator = ExactEvaluator(data, grid)
    for tx in range(tiling.shape[0]):
        for ty in range(tiling.shape[1]):
            assert tiling.counts_at(tx, ty) == evaluator.estimate(tiling.query_at(tx, ty)), (
                tx,
                ty,
            )


@pytest.mark.parametrize("tile_w,tile_h", [(1, 1), (2, 2), (3, 4), (4, 2), (6, 8), (12, 8)])
def test_matches_per_query_evaluator(grid, rng, tile_w, tile_h):
    data = random_dataset(rng, grid, 300, degenerate_fraction=0.2, aligned_fraction=0.3)
    _assert_matches_evaluator(data, grid, tile_w, tile_h)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000), tile=st.sampled_from([1, 2, 4]))
def test_matches_evaluator_property(seed, tile):
    grid = Grid(Rect(0.0, 8.0, 0.0, 4.0), 8, 4)
    rng = np.random.default_rng(seed)
    data = random_dataset(rng, grid, 60, degenerate_fraction=0.3, aligned_fraction=0.4)
    _assert_matches_evaluator(data, grid, tile, tile)


def test_per_tile_totals(grid, rng):
    data = random_dataset(rng, grid, 200)
    tiling = exact_tiling_counts(data, grid, 4, 4)
    totals = tiling.n_d + tiling.n_cs + tiling.n_cd + tiling.n_o
    np.testing.assert_array_equal(totals, np.full(tiling.shape, len(data)))


def test_contained_objects_counted_once_across_tiles(grid, rng):
    """Disjoint tiles: every object is within at most one tile, so the
    global n_cs sum equals the number of single-tile objects."""
    data = random_dataset(rng, grid, 200, max_size_cells=2.0)
    tiling = exact_tiling_counts(data, grid, 4, 4)
    evaluator = ExactEvaluator(data, grid)
    per_tile = sum(
        evaluator.estimate(tiling.query_at(tx, ty)).n_cs
        for tx in range(tiling.shape[0])
        for ty in range(tiling.shape[1])
    )
    assert tiling.n_cs.sum() == per_tile


def test_rejects_non_dividing_tiles(grid, rng):
    data = random_dataset(rng, grid, 10)
    with pytest.raises(ValueError, match="does not divide"):
        exact_tiling_counts(data, grid, 5, 4)


def test_rejects_bad_tile_size(grid, rng):
    data = random_dataset(rng, grid, 10)
    with pytest.raises(ValueError):
        exact_tiling_counts(data, grid, 0, 4)


def test_empty_dataset(grid):
    data = RectDataset.empty(grid.extent)
    tiling = exact_tiling_counts(data, grid, 4, 4)
    assert tiling.n_d.sum() == 0
    assert tiling.num_tiles == 6

def test_shape_and_queries(grid, rng):
    data = random_dataset(rng, grid, 20)
    tiling = exact_tiling_counts(data, grid, 3, 2)
    assert tiling.shape == (4, 4)
    q = tiling.query_at(1, 2)
    assert (q.qx_lo, q.qx_hi, q.qy_lo, q.qy_hi) == (3, 6, 4, 6)
