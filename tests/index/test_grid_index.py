"""Tests for the grid-bucket spatial index."""

import numpy as np
import pytest

from repro.exact.evaluator import ExactEvaluator
from repro.geometry.rect import Rect
from repro.grid.grid import Grid
from repro.grid.tiles_math import TileQuery
from repro.index.grid_index import GridBucketIndex

from tests.conftest import random_dataset, random_query


@pytest.fixture
def grid():
    return Grid(Rect(0.0, 12.0, 0.0, 8.0), 12, 8)


@pytest.fixture
def data(grid, rng):
    return random_dataset(rng, grid, 250, degenerate_fraction=0.2, aligned_fraction=0.3)


RELATIONS = ("intersect", "contains", "contained", "overlap")


class TestExactness:
    @pytest.mark.parametrize("relation", RELATIONS)
    def test_counts_match_exact_evaluator(self, grid, data, rng, relation):
        index = GridBucketIndex(data, grid)
        evaluator = ExactEvaluator(data, grid)
        field = {
            "intersect": "n_intersect",
            "contains": "n_cs",
            "contained": "n_cd",
            "overlap": "n_o",
        }[relation]
        for _ in range(30):
            q = random_query(rng, grid)
            assert index.count(q, relation) == getattr(evaluator.estimate(q), field)

    def test_ids_match_evaluator_masks(self, grid, data, rng):
        index = GridBucketIndex(data, grid)
        evaluator = ExactEvaluator(data, grid)
        for _ in range(15):
            q = random_query(rng, grid)
            intersects, within, covers = evaluator.masks(q)
            np.testing.assert_array_equal(
                index.query(q, "intersect"), np.flatnonzero(intersects)
            )
            np.testing.assert_array_equal(index.query(q, "contains"), np.flatnonzero(within))
            np.testing.assert_array_equal(index.query(q, "contained"), np.flatnonzero(covers))

    def test_oversize_handling_is_transparent(self, grid, data, rng):
        """Aggressive oversize threshold must not change answers."""
        tight = GridBucketIndex(data, grid, max_span_cells=1)
        loose = GridBucketIndex(data, grid, max_span_cells=1000)
        assert tight.num_oversize > loose.num_oversize
        for _ in range(20):
            q = random_query(rng, grid)
            for relation in RELATIONS:
                np.testing.assert_array_equal(
                    tight.query(q, relation), loose.query(q, relation)
                )


class TestStats:
    def test_candidate_accounting(self, grid, data):
        index = GridBucketIndex(data, grid)
        q = TileQuery(0, 2, 0, 2)
        index.query(q, "intersect")
        assert index.stats.queries == 1
        assert index.stats.candidates_examined >= index.stats.results_returned
        assert index.stats.per_query_candidates[0] <= len(data)

    def test_small_query_examines_few_candidates(self, grid, rng):
        # Tiny objects, small tile: candidates << |S|.
        data = random_dataset(rng, grid, 400, max_size_cells=0.5, aligned_fraction=0.0)
        index = GridBucketIndex(data, grid)
        index.query(TileQuery(3, 4, 3, 4), "intersect")
        assert index.stats.candidates_examined < len(data) / 4


class TestValidation:
    def test_unknown_relation(self, grid, data):
        index = GridBucketIndex(data, grid)
        with pytest.raises(ValueError, match="unknown relation"):
            index.query(TileQuery(0, 1, 0, 1), "touches")
        with pytest.raises(ValueError, match="unknown relation"):
            index.refine(np.array([0]), TileQuery(0, 1, 0, 1), "disjoint")

    def test_bad_max_span(self, grid, data):
        with pytest.raises(ValueError):
            GridBucketIndex(data, grid, max_span_cells=0)

    def test_out_of_grid_query(self, grid, data):
        index = GridBucketIndex(data, grid)
        with pytest.raises(ValueError):
            index.query(TileQuery(0, 13, 0, 8))

    def test_empty_dataset(self, grid):
        from repro.datasets.base import RectDataset

        index = GridBucketIndex(RectDataset.empty(grid.extent), grid)
        assert index.count(TileQuery(0, 12, 0, 8)) == 0
        assert index.nbytes >= 0
