"""Property suite: zoned out-of-core builds are bit-identical to direct.

The inline sweep draws random streams, grids, zone counts, curves,
budgets and chunk sizes, builds both ways, and requires *exact* bucket
equality -- then checks all four Level-2 estimators agree query-by-query
on a random raster (they must: they only read the histogram).  The
process-pool variants run a handful of examples per start method; spawn
matters because it round-trips the ZoneMap and worker arguments through
pickling into a fresh interpreter.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.euler.full import EulerApprox, QueryEdge
from repro.euler.histogram import EulerHistogram
from repro.euler.multi import MEulerApprox, area_partition
from repro.euler.simple import SEulerApprox
from repro.exact.evaluator import ExactEvaluator
from repro.grid.grid import Grid
from repro.grid.tiles_math import TileQueryBatch
from repro.ingest import DatasetChunkSource, SyntheticChunkSource, build_zoned

from tests.conftest import random_dataset

FIELDS = ("n_d", "n_cs", "n_cd", "n_o")


@st.composite
def build_cases(draw):
    """A random (stream, grid, zoned-build knobs) configuration."""
    n1 = draw(st.integers(min_value=2, max_value=40))
    n2 = draw(st.integers(min_value=2, max_value=40))
    n = draw(st.integers(min_value=0, max_value=600))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    grid = Grid.world_1deg()
    grid = Grid(grid.extent, n1, n2)
    dataset = random_dataset(
        np.random.default_rng(seed), grid, n, degenerate_fraction=0.2
    )
    return {
        "grid": grid,
        "dataset": dataset,
        "chunk_size": draw(st.integers(min_value=1, max_value=200)),
        "zones": draw(st.integers(min_value=1, max_value=128)),
        "curve": draw(st.sampled_from(["morton", "hilbert"])),
        # Down to ~2 builders for small lattices: exercises spilling.
        "memory_mb": draw(st.sampled_from([1, 4, 256])),
    }


@given(case=build_cases())
@settings(max_examples=40, deadline=None)
def test_zoned_build_is_bit_identical_inline(case):
    source = DatasetChunkSource(case["dataset"], case["chunk_size"])
    direct = EulerHistogram.from_dataset(case["dataset"], case["grid"])
    result = build_zoned(
        source,
        case["grid"],
        zones=case["zones"],
        curve=case["curve"],
        memory_mb=case["memory_mb"],
    )
    np.testing.assert_array_equal(result.histogram.buckets(), direct.buckets())
    assert result.histogram.num_objects == direct.num_objects
    assert result.report.peak_accumulator_bytes <= result.report.budget_bytes


@given(case=build_cases(), seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=15, deadline=None)
def test_all_estimators_agree_on_the_zoned_histogram(case, seed):
    """The four estimators read only the histogram, so bit-parity of the
    buckets must propagate to bit-parity of every estimate."""
    if len(case["dataset"]) == 0:
        return
    grid = case["grid"]
    direct = EulerHistogram.from_dataset(case["dataset"], grid)
    zoned = build_zoned(
        DatasetChunkSource(case["dataset"], case["chunk_size"]),
        grid,
        zones=case["zones"],
        curve=case["curve"],
    ).histogram

    rng = np.random.default_rng(seed)
    m = 50
    qx_lo = rng.integers(0, grid.n1, size=m)
    qy_lo = rng.integers(0, grid.n2, size=m)
    qx_hi = qx_lo + 1 + rng.integers(0, grid.n1 - qx_lo, size=m)
    qy_hi = qy_lo + 1 + rng.integers(0, grid.n2 - qy_lo, size=m)
    batch = TileQueryBatch(qx_lo, qx_hi, qy_lo, qy_hi)

    pairs = [
        (SEulerApprox(direct), SEulerApprox(zoned)),
        (EulerApprox(direct, QueryEdge.LEFT), EulerApprox(zoned, QueryEdge.LEFT)),
        (EulerApprox(direct, QueryEdge.RIGHT), EulerApprox(zoned, QueryEdge.RIGHT)),
    ]
    for on_direct, on_zoned in pairs:
        a = on_direct.estimate_batch(batch)
        b = on_zoned.estimate_batch(batch)
        for f in FIELDS:
            np.testing.assert_array_equal(getattr(a, f), getattr(b, f))

    # M-Euler summarises per-area-group histograms: build each group's
    # histogram through the zoned pipeline and assemble the estimator
    # dataset-free -- answers must match the direct construction.
    thresholds = [1.0, 9.0]
    m_direct = MEulerApprox(case["dataset"], grid, thresholds, edge=QueryEdge.RIGHT)
    group_hists = [
        build_zoned(
            DatasetChunkSource(group, case["chunk_size"]),
            grid,
            zones=case["zones"],
            curve=case["curve"],
        ).histogram
        for group in area_partition(case["dataset"], grid, thresholds)
    ]
    m_zoned = MEulerApprox.from_histograms(
        group_hists, grid, thresholds, len(case["dataset"]), edge=QueryEdge.RIGHT
    )
    a = m_direct.estimate_batch(batch)
    b = m_zoned.estimate_batch(batch)
    for f in FIELDS:
        np.testing.assert_array_equal(getattr(a, f), getattr(b, f))

    # And the exact evaluator of the stream agrees with itself across
    # the chunked read path (reread indices cover the whole stream).
    exact = ExactEvaluator(case["dataset"], grid)
    assert exact.estimate_batch(batch).n_d.shape == a.n_d.shape


@pytest.mark.parametrize("start_method", ["fork", "spawn"])
@given(data=st.data())
@settings(
    max_examples=3,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_zoned_build_is_bit_identical_with_pool(start_method, data):
    n = data.draw(st.integers(min_value=500, max_value=3000))
    seed = data.draw(st.integers(min_value=0, max_value=2**31 - 1))
    zones = data.draw(st.integers(min_value=1, max_value=64))
    curve = data.draw(st.sampled_from(["morton", "hilbert"]))
    source = SyntheticChunkSource("sp_skew", n, 250, seed=seed)
    grid = Grid(source.extent, 36, 18)
    direct = EulerHistogram.from_dataset(source.materialize(), grid)
    result = build_zoned(
        source,
        grid,
        zones=zones,
        curve=curve,
        workers=2,
        start_method=start_method,
        memory_mb=64,
    )
    np.testing.assert_array_equal(result.histogram.buckets(), direct.buckets())
    s_direct = SEulerApprox(direct)
    s_zoned = SEulerApprox(result.histogram)
    rng = np.random.default_rng(seed)
    qx_lo = rng.integers(0, grid.n1, size=30)
    qy_lo = rng.integers(0, grid.n2, size=30)
    batch = TileQueryBatch(
        qx_lo,
        qx_lo + 1 + rng.integers(0, grid.n1 - qx_lo, size=30),
        qy_lo,
        qy_lo + 1 + rng.integers(0, grid.n2 - qy_lo, size=30),
    )
    a = s_direct.estimate_batch(batch)
    b = s_zoned.estimate_batch(batch)
    for f in FIELDS:
        np.testing.assert_array_equal(getattr(a, f), getattr(b, f))
