"""ZoneBuildPool behaviour: parity, crash recovery, stalls, errors.

Everything here uses the ``fork`` start method to keep pool startup
cheap; the spawn pickling path is exercised by the Hypothesis parity
suite (one example is enough to round-trip the ZoneMap and worker args
through a fresh interpreter).
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.euler.histogram import EulerHistogram
from repro.grid.grid import Grid
from repro.ingest import SyntheticChunkSource, build_zoned
from repro.ingest.pool import IngestWorkerError, ZoneBuildPool
from repro.ingest.worker import snap_columns
from repro.ingest.zones import ZoneMap

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="fork start method not available"
)

N_OBJECTS = 6000
CHUNK = 400


@pytest.fixture(scope="module")
def source():
    return SyntheticChunkSource("sz_skew", N_OBJECTS, CHUNK, seed=21)


@pytest.fixture(scope="module")
def grid(source):
    return Grid(source.extent, 48, 48)


@pytest.fixture(scope="module")
def direct(source, grid):
    return EulerHistogram.from_dataset(source.materialize(), grid)


def test_pool_build_matches_direct(source, grid, direct):
    result = build_zoned(
        source, grid, zones=24, workers=2, start_method="fork", memory_mb=64
    )
    assert result.report.workers == 2
    assert result.report.chunks_pool == source.num_chunks
    assert result.report.crashes == 0
    np.testing.assert_array_equal(result.histogram.buckets(), direct.buckets())


def test_worker_count_is_clamped_by_budget(source):
    # A lattice big enough that the budget affords exactly one builder:
    # 8 requested workers collapse to an inline build rather than
    # starving every worker.
    big = Grid(source.extent, 512, 512)
    shape = big.lattice_shape
    builder_mb = ((shape[0] + 1) * (shape[1] + 1) * 8) / (1 << 20)
    memory_mb = int(np.ceil(builder_mb))
    assert (memory_mb << 20) // ((shape[0] + 1) * (shape[1] + 1) * 8) == 1
    result = build_zoned(
        source, big, zones=24, workers=8, start_method="fork", memory_mb=memory_mb
    )
    assert result.report.workers == 0
    assert result.report.chunks_inline == source.num_chunks
    direct = EulerHistogram.from_dataset(source.materialize(), big)
    np.testing.assert_array_equal(result.histogram.buckets(), direct.buckets())


class _KillOnChunk(ZoneBuildPool):
    """Fault injection: SIGKILL one worker right after a given dispatch."""

    def __init__(self, *args, kill_after: int, **kwargs):
        super().__init__(*args, **kwargs)
        self._kill_after = kill_after
        self.killed_pid = None

    def dispatch(self, chunk_index, chunk):
        sent = super().dispatch(chunk_index, chunk)
        if chunk_index == self._kill_after and self.killed_pid is None:
            victim = next(w for w in self._workers if w.ready and w.assigned)
            self.killed_pid = victim.pid
            os.kill(victim.pid, signal.SIGKILL)
        return sent


def test_worker_crash_replays_lost_chunks_exactly(source, grid, direct, tmp_path, monkeypatch):
    monkeypatch.setattr(
        "repro.ingest.pipeline.ZoneBuildPool",
        lambda *a, **kw: _KillOnChunk(*a, kill_after=5, **kw),
    )
    result = build_zoned(
        source, grid, zones=24, workers=2, start_method="fork", memory_mb=64,
        spill_dir=tmp_path,
    )
    assert result.report.crashes >= 1
    assert result.report.chunks_replayed >= 1
    # Replay is bit-exact and no chunk is double counted.
    assert result.histogram.num_objects == N_OBJECTS
    np.testing.assert_array_equal(result.histogram.buckets(), direct.buckets())
    # The dead incarnation's spill files are gone.
    assert not list(tmp_path.glob("*.npz"))


def test_crash_during_drain_forfeits_chunks(source, grid, tmp_path):
    zone_map = ZoneMap.for_grid(grid, 8)
    pool = ZoneBuildPool(
        zone_map, workers=2, budget_bytes=1 << 24, spill_dir=tmp_path,
        start_method="fork", label="drain-crash",
    )
    try:
        assert pool.ensure_ready() == 2
        sent = []
        for index, chunk in source:
            if pool.dispatch(index, chunk):
                sent.append(index)
        for pid in pool.worker_pids():
            os.kill(pid, signal.SIGKILL)
        result = pool.drain(timeout=30.0)
        assert result.crashes == 2
        assert sorted(result.lost_chunks) == sent
        assert result.partials == []
    finally:
        pool.close()


def test_worker_error_aborts_the_build(grid, tmp_path, monkeypatch):
    # Coordinates outside the data space make the worker-side snap raise
    # -- a data bug that must abort loudly, not silently replay forever.
    source = SyntheticChunkSource("sz_skew", 800, 200, seed=3)

    class _Poison:
        def __init__(self, n):
            self.x_lo = np.full(n, -50.0)
            self.x_hi = np.full(n, -40.0)
            self.y_lo = np.zeros(n)
            self.y_hi = np.ones(n)

        def __len__(self):
            return self.x_lo.size

    class _PoisonSource:
        name = "poison"
        chunk_size = 200
        extent = source.extent

        def __iter__(self):
            for index, chunk in source:
                yield index, (_Poison(10) if index == 1 else chunk)

        def reread(self, index):
            raise AssertionError("errors must not trigger replay")

    with pytest.raises(IngestWorkerError, match="failed on chunk"):
        build_zoned(
            _PoisonSource(), grid, zones=8, workers=2, start_method="fork",
            memory_mb=64, spill_dir=tmp_path,
        )


def test_stalled_dispatch_falls_back_inline(source, grid, direct, tmp_path, monkeypatch):
    # Freeze both workers with SIGSTOP after readiness: dispatch fills the
    # in-flight window, times out, condemns them, and the pipeline
    # finishes inline -- still bit-exact.
    class _StopAfterReady(ZoneBuildPool):
        def ensure_ready(self, timeout=10.0):
            ready = super().ensure_ready(timeout)
            for pid in self.worker_pids():
                os.kill(pid, signal.SIGSTOP)
            self.stopped = list(self.worker_pids())
            return ready

    pools = []

    def make_pool(*a, **kw):
        kw["dispatch_timeout"] = 1.0
        pool = _StopAfterReady(*a, **kw)
        pools.append(pool)
        return pool

    monkeypatch.setattr("repro.ingest.pipeline.ZoneBuildPool", make_pool)
    try:
        result = build_zoned(
            source, grid, zones=8, workers=2, start_method="fork",
            memory_mb=64, spill_dir=tmp_path, dispatch_timeout=1.0,
        )
    finally:
        for pool in pools:
            for pid in getattr(pool, "stopped", []):
                try:
                    os.kill(pid, signal.SIGCONT)
                except ProcessLookupError:
                    pass
    assert result.histogram.num_objects == N_OBJECTS
    np.testing.assert_array_equal(result.histogram.buckets(), direct.buckets())
    report = result.report
    assert report.chunks_pool + report.chunks_inline + report.chunks_replayed == source.num_chunks


def test_pool_spills_are_deleted_on_close(grid, tmp_path):
    zone_map = ZoneMap.for_grid(grid, 8)
    pool = ZoneBuildPool(
        zone_map, workers=1, budget_bytes=1 << 24, spill_dir=tmp_path,
        start_method="fork", label="closer",
    )
    try:
        assert pool.ensure_ready() == 1
    finally:
        pool.close()
    assert not list(tmp_path.glob("*.npz"))
    # close() is idempotent.
    pool.close()
