"""End-to-end zoned builds: bit-parity, zone summaries, reports, metrics."""

import numpy as np
import pytest

from repro.browse.catalog import ZoneScatterGatherSummary
from repro.euler.histogram import EulerHistogram
from repro.euler.simple import SEulerApprox
from repro.grid.grid import Grid
from repro.grid.tiles_math import TileQuery
from repro.ingest import DatasetChunkSource, SyntheticChunkSource, build_zoned
from repro.obs import IngestInstrumentation


@pytest.fixture(scope="module")
def source():
    return SyntheticChunkSource("sp_skew", 4000, 512, seed=13)


@pytest.fixture(scope="module")
def grid(source):
    return Grid(source.extent, 60, 30)


@pytest.fixture(scope="module")
def direct(source, grid):
    return EulerHistogram.from_dataset(source.materialize(), grid)


class TestInlineParity:
    @pytest.mark.parametrize("zones", [1, 7, 64, 10**6])
    def test_zone_count_never_changes_the_histogram(self, source, grid, direct, zones):
        result = build_zoned(source, grid, zones=zones, workers=0)
        np.testing.assert_array_equal(result.histogram.buckets(), direct.buckets())
        assert result.histogram.num_objects == direct.num_objects

    @pytest.mark.parametrize("curve", ["morton", "hilbert"])
    def test_curve_never_changes_the_histogram(self, source, grid, direct, curve):
        result = build_zoned(source, grid, zones=16, curve=curve)
        np.testing.assert_array_equal(result.histogram.buckets(), direct.buckets())

    def test_tight_budget_spills_and_still_matches(self, source, grid, direct):
        shape = grid.lattice_shape
        builder_mb = ((shape[0] + 1) * (shape[1] + 1) * 8) / (1 << 20)
        memory_mb = max(1, int(np.ceil(2 * builder_mb)))
        result = build_zoned(source, grid, zones=64, memory_mb=memory_mb)
        assert result.report.spills > 0
        assert result.report.peak_accumulator_bytes <= result.report.budget_bytes
        np.testing.assert_array_equal(result.histogram.buckets(), direct.buckets())

    def test_budget_too_small_for_one_builder(self, grid):
        big = Grid(grid.extent, 2000, 2000)
        source = SyntheticChunkSource("sp_skew", 10, 10)
        with pytest.raises(ValueError, match="memory"):
            build_zoned(source, big, memory_mb=1)

    def test_dataset_source_parity(self, source, grid, direct):
        materialized = source.materialize()
        result = build_zoned(DatasetChunkSource(materialized, 700), grid, zones=32)
        np.testing.assert_array_equal(result.histogram.buckets(), direct.buckets())


class TestReport:
    def test_report_accounts_for_every_chunk(self, source, grid):
        result = build_zoned(source, grid, zones=8)
        report = result.report
        assert report.chunks == source.num_chunks
        assert report.chunks_inline == source.num_chunks
        assert report.chunks_pool == report.chunks_replayed == 0
        assert report.workers == 0 and report.crashes == 0
        assert report.objects == 4000
        assert report.zones == 8 and report.curve == "morton"
        assert report.objects_per_second > 0
        doc = report.to_dict()
        assert doc["objects"] == 4000 and doc["source"] == "sp_skew"

    def test_instruments_record_the_build(self, source, grid):
        obs = IngestInstrumentation()
        build_zoned(source, grid, zones=8, instruments=obs)
        assert obs.objects.labels(source="sp_skew").value == 4000
        assert obs.chunks.labels(source="sp_skew", path="inline").value == source.num_chunks
        assert obs.chunks.labels(source="sp_skew", path="pool").value == 0
        assert obs.peak_accumulator_bytes.labels(source="sp_skew").value > 0
        assert obs.objects_per_second.labels(source="sp_skew").value > 0


class TestZoneSummaries:
    def test_zone_histograms_sum_to_the_global(self, source, grid, direct):
        result = build_zoned(source, grid, zones=12, keep_zone_summaries=True)
        assert result.zone_histograms
        assert sum(h.num_objects for h in result.zone_histograms.values()) == 4000
        total = np.zeros(grid.lattice_shape, dtype=np.int64)
        for hist in result.zone_histograms.values():
            assert hist.grid == grid
            total = total + hist.buckets()
        np.testing.assert_array_equal(total, direct.buckets())

    def test_scatter_gather_summary_is_bit_identical(self, source, grid, direct):
        result = build_zoned(source, grid, zones=12, keep_zone_summaries=True)
        summary = ZoneScatterGatherSummary(result.zone_histograms, grid)
        assert summary.num_objects == direct.num_objects
        assert summary.total_sum == direct.total_sum
        assert summary.num_zones == len(result.zone_histograms)
        rng = np.random.default_rng(3)
        for _ in range(25):
            qx = np.sort(rng.integers(0, grid.n1 + 1, size=2))
            qy = np.sort(rng.integers(0, grid.n2 + 1, size=2))
            if qx[0] == qx[1] or qy[0] == qy[1]:
                continue
            region = TileQuery(int(qx[0]), int(qx[1]), int(qy[0]), int(qy[1]))
            assert summary.intersect_count(region) == direct.intersect_count(region)
            assert summary.closed_region_sum(region) == direct.closed_region_sum(region)
            assert summary.outside_sum(region) == direct.outside_sum(region)
            assert summary.contained_count(region) == direct.contained_count(region)

    def test_summary_feeds_s_euler_estimator(self, source, grid, direct):
        result = build_zoned(source, grid, zones=6, keep_zone_summaries=True)
        summary = ZoneScatterGatherSummary(result.zone_histograms, grid)
        via_zones = SEulerApprox(summary)
        via_direct = SEulerApprox(direct)
        region = TileQuery(4, 40, 2, 20)
        assert via_zones.estimate(region) == via_direct.estimate(region)
        service = summary.service()
        try:
            assert service.estimator_name == via_direct.name
        finally:
            service.close()

    def test_summary_rejects_grid_mismatch(self, source, grid):
        result = build_zoned(source, grid, zones=4, keep_zone_summaries=True)
        other = Grid(grid.extent, grid.n1, grid.n2 * 2)
        with pytest.raises(ValueError, match="different grid"):
            ZoneScatterGatherSummary(result.zone_histograms, other)


class TestSpillDirOwnership:
    def test_caller_provided_dir_is_kept_but_cleaned(self, source, grid, tmp_path):
        spill_dir = tmp_path / "spills"
        spill_dir.mkdir()
        keep = spill_dir / "unrelated.npz"
        keep.write_bytes(b"not ours")
        shape = grid.lattice_shape
        builder_mb = ((shape[0] + 1) * (shape[1] + 1) * 8) / (1 << 20)
        result = build_zoned(
            source,
            grid,
            zones=64,
            memory_mb=max(1, int(np.ceil(2 * builder_mb))),
            spill_dir=spill_dir,
        )
        assert result.report.spills > 0
        assert spill_dir.is_dir()
        assert list(spill_dir.glob("*.npz")) == [keep]
