"""Budgeted zone accumulation, spill round-trips and merge exactness."""

import numpy as np
import pytest

from repro.errors import SummaryCorruptError
from repro.euler.histogram import EulerHistogram, EulerHistogramBuilder
from repro.geometry.rect import Rect
from repro.grid.grid import Grid
from repro.ingest.accumulator import ZoneAccumulator, ZonePartial, load_zone_partial
from repro.ingest.worker import snap_columns
from repro.ingest.zones import ZoneMap


@pytest.fixture
def grid():
    return Grid(Rect(0.0, 12.0, 0.0, 8.0), 12, 8)


def _snapped(grid, n=400, seed=7):
    from tests.conftest import random_dataset

    data = random_dataset(np.random.default_rng(seed), grid, n, max_size_cells=4.0)
    return data, snap_columns(grid, data.x_lo, data.x_hi, data.y_lo, data.y_hi)


def _merge_all(grid, partials, spill_paths):
    builder = EulerHistogramBuilder(grid)
    for partial in partials:
        builder.add_partial(partial.a_lo, partial.b_lo, partial.patch, partial.num_objects)
    for path in spill_paths:
        partial = load_zone_partial(path, grid)
        builder.add_partial(partial.a_lo, partial.b_lo, partial.patch, partial.num_objects)
    return builder.build()


class TestZoneAccumulator:
    def test_budget_must_hold_one_builder(self, grid, tmp_path):
        with pytest.raises(ValueError, match="memory budget"):
            ZoneAccumulator(grid, 10, tmp_path)

    def test_no_spills_under_generous_budget(self, grid, tmp_path):
        data, (a_lo, a_hi, b_lo, b_hi) = _snapped(grid)
        zone_map = ZoneMap.for_grid(grid, 8)
        acc = ZoneAccumulator(grid, 1 << 24, tmp_path)
        acc.add_spans(zone_map.zone_of_spans(a_lo, a_hi, b_lo, b_hi), a_lo, a_hi, b_lo, b_hi)
        assert acc.spills == 0
        assert acc.objects == len(data)
        direct = EulerHistogram.from_dataset(data, grid)
        merged = _merge_all(grid, acc.finish(), acc.spill_paths)
        np.testing.assert_array_equal(merged.buckets(), direct.buckets())

    def test_tight_budget_spills_but_merges_exactly(self, grid, tmp_path):
        data, (a_lo, a_hi, b_lo, b_hi) = _snapped(grid, n=600)
        zone_map = ZoneMap.for_grid(grid, 16)
        acc = ZoneAccumulator(grid, 2 * acc_builder_bytes(grid), tmp_path)
        # Feed in small batches to force builder churn across zones.
        zones = zone_map.zone_of_spans(a_lo, a_hi, b_lo, b_hi)
        for start in range(0, len(data), 25):
            s = slice(start, start + 25)
            acc.add_spans(zones[s], a_lo[s], a_hi[s], b_lo[s], b_hi[s])
        assert acc.spills > 0
        # The budget is an invariant, not a soft target.
        assert acc.peak_bytes <= 2 * acc_builder_bytes(grid)
        assert all(p.endswith(".npz") for p in acc.spill_paths)
        merged = _merge_all(grid, acc.finish(), acc.spill_paths)
        direct = EulerHistogram.from_dataset(data, grid)
        np.testing.assert_array_equal(merged.buckets(), direct.buckets())
        assert merged.num_objects == len(data)

    def test_budget_caps_live_bytes(self, grid, tmp_path):
        data, (a_lo, a_hi, b_lo, b_hi) = _snapped(grid, n=600)
        zone_map = ZoneMap.for_grid(grid, 16)
        budget = 3 * acc_builder_bytes(grid)
        acc = ZoneAccumulator(grid, budget, tmp_path)
        zones = zone_map.zone_of_spans(a_lo, a_hi, b_lo, b_hi)
        for start in range(0, len(data), 10):
            s = slice(start, start + 10)
            acc.add_spans(zones[s], a_lo[s], a_hi[s], b_lo[s], b_hi[s])
            assert acc.live_bytes <= budget
        acc.finish()
        assert acc.live_zones == 0

    def test_empty_batch_is_a_noop(self, grid, tmp_path):
        acc = ZoneAccumulator(grid, 1 << 24, tmp_path)
        empty = np.array([], dtype=np.int64)
        acc.add_spans(empty, empty, empty, empty, empty)
        assert acc.objects == 0 and acc.live_zones == 0


def acc_builder_bytes(grid):
    shape = grid.lattice_shape
    return (shape[0] + 1) * (shape[1] + 1) * 8


class TestZonePartialPersistence:
    def _partial(self, grid):
        builder = EulerHistogramBuilder(grid)
        a = np.array([3, 5]); b = np.array([2, 6])
        builder.add_spans(a, a + 2, b, b + 1, np.ones(2, dtype=np.int64))
        patch, count = builder.export_partial(3, 7, 2, 7)
        return ZonePartial(zone=4, a_lo=3, b_lo=2, patch=patch, num_objects=count)

    def test_round_trip(self, grid, tmp_path):
        partial = self._partial(grid)
        path = tmp_path / "p.npz"
        partial.save(path, grid)
        loaded = load_zone_partial(path, grid)
        assert (loaded.zone, loaded.a_lo, loaded.b_lo) == (4, 3, 2)
        assert loaded.num_objects == partial.num_objects
        np.testing.assert_array_equal(loaded.patch, partial.patch)

    def test_rejects_grid_mismatch(self, grid, tmp_path):
        partial = self._partial(grid)
        path = tmp_path / "p.npz"
        partial.save(path, grid)
        other = Grid(grid.extent, grid.n1 // 2, grid.n2)
        with pytest.raises(SummaryCorruptError, match="different grid"):
            load_zone_partial(path, other)
        shifted = Grid(Rect(0.0, 24.0, 0.0, 8.0), grid.n1, grid.n2)
        with pytest.raises(SummaryCorruptError, match="different grid"):
            load_zone_partial(path, shifted)

    def test_rejects_corruption(self, grid, tmp_path):
        partial = self._partial(grid)
        path = tmp_path / "p.npz"
        partial.save(path, grid)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(SummaryCorruptError):
            load_zone_partial(path, grid)


class TestBuilderMergeApi:
    """Satellite coverage: merge/partial/dtype hygiene on the builder."""

    def test_merge_is_bit_exact(self, grid):
        data, (a_lo, a_hi, b_lo, b_hi) = _snapped(grid, n=500)
        whole = EulerHistogramBuilder(grid)
        whole.add_dataset(data)
        left = EulerHistogramBuilder(grid)
        right = EulerHistogramBuilder(grid)
        half = len(data) // 2
        ones = np.ones(half, dtype=np.int64)
        left.add_spans(a_lo[:half], a_hi[:half], b_lo[:half], b_hi[:half], ones)
        right.add_spans(
            a_lo[half:], a_hi[half:], b_lo[half:], b_hi[half:],
            np.ones(len(data) - half, dtype=np.int64),
        )
        left.merge(right)
        np.testing.assert_array_equal(left.build().buckets(), whole.build().buckets())
        # `right` stays usable after being merged from.
        assert right.build().num_objects == len(data) - half

    def test_merge_rejects_grid_mismatch(self, grid):
        other = Grid(grid.extent, grid.n1, grid.n2 * 2)
        with pytest.raises(ValueError, match="different grids"):
            EulerHistogramBuilder(grid).merge(EulerHistogramBuilder(other))

    def test_export_import_partial_round_trip(self, grid):
        data, (a_lo, a_hi, b_lo, b_hi) = _snapped(grid, n=300)
        builder = EulerHistogramBuilder(grid)
        builder.add_spans(a_lo, a_hi, b_lo, b_hi, np.ones(len(data), dtype=np.int64))
        bbox = (
            int(a_lo.min()), int(a_hi.max()), int(b_lo.min()), int(b_hi.max())
        )
        patch, count = builder.export_partial(*bbox)
        rebuilt = EulerHistogramBuilder(grid)
        rebuilt.add_partial(bbox[0], bbox[2], patch, count)
        np.testing.assert_array_equal(rebuilt.build().buckets(), builder.build().buckets())

    def test_add_partial_rejects_negative_count(self, grid):
        builder = EulerHistogramBuilder(grid)
        with pytest.raises(ValueError, match="non-negative"):
            builder.add_partial(0, 0, np.zeros((2, 2), dtype=np.int64), -1)

    def test_float_span_arrays_raise(self, grid):
        builder = EulerHistogramBuilder(grid)
        a = np.array([1.0]); w = np.ones(1, dtype=np.int64)
        ai = np.array([1], dtype=np.int64)
        with pytest.raises(ValueError):
            builder.add_spans(a, ai, ai, ai, w)
        with pytest.raises(ValueError):
            builder.add_spans(ai, ai, ai, ai, np.array([1.5]))

    def test_accumulator_nbytes_matches_budget_formula(self, grid):
        builder = EulerHistogramBuilder(grid)
        assert builder.accumulator_nbytes == acc_builder_bytes(grid)
