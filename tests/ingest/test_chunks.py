"""Replayable chunk sources: iteration, reread parity, file dispatch."""

import json

import numpy as np
import pytest

from repro.datasets import by_name
from repro.datasets.base import RectDataset
from repro.geometry.rect import Rect
from repro.ingest.chunks import (
    DatasetChunkSource,
    NdjsonChunkSource,
    NpyChunkSource,
    SyntheticChunkSource,
    open_chunk_source,
)


@pytest.fixture
def dataset():
    return by_name("sp_skew", 1000, seed=11)


def _concatenate(source):
    chunks = [chunk for _, chunk in source]
    out = RectDataset.empty(source.extent, name=source.name)
    for chunk in chunks:
        out = out.concatenated(chunk, name=source.name)
    return out, chunks


def _assert_same_rects(a: RectDataset, b: RectDataset):
    np.testing.assert_array_equal(a.x_lo, b.x_lo)
    np.testing.assert_array_equal(a.x_hi, b.x_hi)
    np.testing.assert_array_equal(a.y_lo, b.y_lo)
    np.testing.assert_array_equal(a.y_hi, b.y_hi)


class TestDatasetChunkSource:
    def test_chunks_cover_the_dataset(self, dataset):
        source = DatasetChunkSource(dataset, 128)
        stream, chunks = _concatenate(source)
        assert [len(c) for c in chunks[:-1]] == [128] * (len(chunks) - 1)
        _assert_same_rects(stream, dataset)
        assert source.num_objects == len(dataset)

    def test_reread_matches_iteration(self, dataset):
        source = DatasetChunkSource(dataset, 300)
        for index, chunk in source:
            _assert_same_rects(chunk, source.reread(index))

    def test_reread_out_of_range(self, dataset):
        source = DatasetChunkSource(dataset, 300)
        with pytest.raises(IndexError):
            source.reread(99)

    def test_rejects_bad_chunk_size(self, dataset):
        with pytest.raises(ValueError, match="chunk_size"):
            DatasetChunkSource(dataset, 0)


class TestSyntheticChunkSource:
    def test_stream_is_deterministic(self):
        a = SyntheticChunkSource("sz_skew", 700, 128, seed=5)
        b = SyntheticChunkSource("sz_skew", 700, 128, seed=5)
        _assert_same_rects(a.materialize(), b.materialize())

    def test_chunks_are_independently_replayable(self):
        source = SyntheticChunkSource("sp_skew", 500, 99, seed=2)
        seen = dict(source)
        assert len(seen) == source.num_chunks == 6
        for index, chunk in seen.items():
            _assert_same_rects(chunk, source.reread(index))

    def test_last_chunk_is_short(self):
        source = SyntheticChunkSource("sp_skew", 250, 100, seed=0)
        sizes = [len(chunk) for _, chunk in source]
        assert sizes == [100, 100, 50]

    def test_rejects_unknown_dataset_eagerly(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            SyntheticChunkSource("nope", 100, 10)

    def test_empty_stream(self):
        source = SyntheticChunkSource("sp_skew", 0, 10)
        assert list(source) == []
        assert source.num_chunks == 0


class TestNdjsonChunkSource:
    @pytest.fixture
    def path(self, tmp_path, dataset):
        path = tmp_path / "objs.ndjson"
        with open(path, "w") as fh:
            for i in range(len(dataset)):
                row = [dataset.x_lo[i], dataset.x_hi[i], dataset.y_lo[i], dataset.y_hi[i]]
                if i % 3 == 0:
                    fh.write(json.dumps(dict(zip(("x_lo", "x_hi", "y_lo", "y_hi"), row))))
                else:
                    fh.write(json.dumps(row))
                fh.write("\n")
                if i % 50 == 0:
                    fh.write("\n")  # blank lines are skipped
        return path

    def test_round_trips_records(self, path, dataset):
        source = NdjsonChunkSource(path, 256, extent=dataset.extent)
        stream, _ = _concatenate(source)
        _assert_same_rects(stream, dataset)

    def test_scans_extent_when_not_declared(self, path, dataset):
        source = NdjsonChunkSource(path, 256)
        assert source.extent.x_lo == pytest.approx(float(dataset.x_lo.min()))
        assert source.extent.y_hi == pytest.approx(float(dataset.y_hi.max()))

    def test_reread_seeks_to_recorded_offsets(self, path, dataset):
        source = NdjsonChunkSource(path, 256, extent=dataset.extent)
        seen = dict(source)
        for index, chunk in seen.items():
            _assert_same_rects(chunk, source.reread(index))

    def test_reread_refuses_unseen_chunks(self, path, dataset):
        source = NdjsonChunkSource(path, 256, extent=dataset.extent)
        with pytest.raises(IndexError, match="not been read"):
            source.reread(2)

    def test_rejects_malformed_record(self, tmp_path):
        path = tmp_path / "bad.ndjson"
        path.write_text("[1, 2, 3]\n")
        source = NdjsonChunkSource(path, 10, extent=Rect(0, 1, 0, 1))
        with pytest.raises(ValueError, match="4 coordinates"):
            list(source)

    def test_empty_file_needs_declared_extent(self, tmp_path):
        path = tmp_path / "empty.ndjson"
        path.write_text("")
        with pytest.raises(ValueError, match="extent"):
            NdjsonChunkSource(path, 10)


class TestNpyChunkSource:
    @pytest.fixture
    def path(self, tmp_path, dataset):
        path = tmp_path / "objs.npy"
        np.save(
            path,
            np.column_stack([dataset.x_lo, dataset.x_hi, dataset.y_lo, dataset.y_hi]),
        )
        return path

    def test_round_trips_rows(self, path, dataset):
        source = NpyChunkSource(path, 333, extent=dataset.extent)
        stream, _ = _concatenate(source)
        _assert_same_rects(stream, dataset)
        assert source.num_objects == len(dataset)

    def test_derives_extent_from_columns(self, path, dataset):
        source = NpyChunkSource(path, 333)
        assert source.extent.x_lo == pytest.approx(float(dataset.x_lo.min()))
        assert source.extent.x_hi == pytest.approx(float(dataset.x_hi.max()))

    def test_reread_matches_iteration(self, path, dataset):
        source = NpyChunkSource(path, 150, extent=dataset.extent)
        for index, chunk in source:
            _assert_same_rects(chunk, source.reread(index))
        with pytest.raises(IndexError):
            source.reread(source.num_chunks)

    def test_rejects_wrong_shape(self, tmp_path):
        path = tmp_path / "bad.npy"
        np.save(path, np.zeros((5, 3)))
        with pytest.raises(ValueError, match=r"\(N, 4\)"):
            NpyChunkSource(path, 10)


class TestOpenChunkSource:
    def test_dispatches_on_suffix(self, tmp_path, dataset):
        npz = tmp_path / "d.npz"
        dataset.save(npz)
        assert isinstance(open_chunk_source(npz, 100), DatasetChunkSource)

        npy = tmp_path / "d.npy"
        np.save(npy, np.column_stack([dataset.x_lo, dataset.x_hi, dataset.y_lo, dataset.y_hi]))
        assert isinstance(open_chunk_source(npy, 100), NpyChunkSource)

        nd = tmp_path / "d.jsonl"
        nd.write_text("[0.0, 1.0, 0.0, 1.0]\n")
        assert isinstance(open_chunk_source(nd, 100), NdjsonChunkSource)

    def test_npz_rejects_extent_override(self, tmp_path, dataset):
        npz = tmp_path / "d.npz"
        dataset.save(npz)
        with pytest.raises(ValueError, match="extent"):
            open_chunk_source(npz, 100, extent=dataset.extent)

    def test_unknown_suffix(self, tmp_path):
        with pytest.raises(ValueError, match="suffix"):
            open_chunk_source(tmp_path / "d.csv", 100)
