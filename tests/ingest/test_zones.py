"""Space-filling-curve keys and the ZoneMap partition."""

import numpy as np
import pytest

from repro.geometry.rect import Rect
from repro.grid.grid import Grid
from repro.ingest.zones import CURVES, ZoneMap, hilbert_keys, morton_keys


class TestMortonKeys:
    def test_interleaves_bits(self):
        # x occupies even bit positions, y odd ones.
        assert morton_keys(np.array([0]), np.array([0]))[0] == 0
        assert morton_keys(np.array([1]), np.array([0]))[0] == 1
        assert morton_keys(np.array([0]), np.array([1]))[0] == 2
        assert morton_keys(np.array([1]), np.array([1]))[0] == 3
        assert morton_keys(np.array([2]), np.array([0]))[0] == 4
        assert morton_keys(np.array([0]), np.array([2]))[0] == 8

    def test_bijective_on_a_square(self):
        cx, cy = np.meshgrid(np.arange(32), np.arange(32), indexing="ij")
        keys = morton_keys(cx.reshape(-1), cy.reshape(-1))
        assert keys.dtype == np.uint64
        assert len(np.unique(keys)) == 32 * 32
        assert int(keys.max()) == 32 * 32 - 1

    def test_handles_32_bit_coordinates(self):
        big = np.array([2**31 - 1], dtype=np.uint64)
        key = morton_keys(big, big)[0]
        assert int(key) == 2**62 - 1


class TestHilbertKeys:
    def test_order_one_square(self):
        cx = np.array([0, 0, 1, 1])
        cy = np.array([0, 1, 1, 0])
        np.testing.assert_array_equal(hilbert_keys(cx, cy, 1), [0, 1, 2, 3])

    def test_bijective_and_unit_steps(self):
        # The Hilbert curve visits every cell once, moving one cell at a
        # time -- the locality property Morton lacks at seams.
        order = 4
        side = 1 << order
        cx, cy = np.meshgrid(np.arange(side), np.arange(side), indexing="ij")
        cx, cy = cx.reshape(-1), cy.reshape(-1)
        keys = hilbert_keys(cx, cy, order)
        assert len(np.unique(keys)) == side * side
        by_key = np.argsort(keys)
        dx = np.abs(np.diff(cx[by_key]))
        dy = np.abs(np.diff(cy[by_key]))
        np.testing.assert_array_equal(dx + dy, np.ones(side * side - 1))

    def test_rejects_bad_order(self):
        with pytest.raises(ValueError, match="order"):
            hilbert_keys(np.array([0]), np.array([0]), 0)
        with pytest.raises(ValueError, match="order"):
            hilbert_keys(np.array([0]), np.array([0]), 32)

    def test_rejects_out_of_square_coordinates(self):
        with pytest.raises(ValueError, match="exceed"):
            hilbert_keys(np.array([4]), np.array([0]), 2)


@pytest.fixture
def grid():
    return Grid(Rect(0.0, 12.0, 0.0, 8.0), 12, 8)


class TestZoneMap:
    @pytest.mark.parametrize("curve", CURVES)
    def test_partitions_all_cells(self, grid, curve):
        zone_map = ZoneMap.for_grid(grid, 6, curve)
        cx, cy = np.meshgrid(
            np.arange(grid.n1, dtype=np.int64),
            np.arange(grid.n2, dtype=np.int64),
            indexing="ij",
        )
        zones = zone_map.zone_of_cells(cx.reshape(-1), cy.reshape(-1))
        assert zones.min() == 0
        assert zones.max() == zone_map.num_zones - 1
        # Equal-cell-count quantile boundaries: zones are balanced.
        counts = np.bincount(zones, minlength=zone_map.num_zones)
        assert counts.min() >= grid.num_cells // zone_map.num_zones

    def test_clamps_zone_count_to_cells(self, grid):
        zone_map = ZoneMap.for_grid(grid, 10**6)
        assert zone_map.num_zones == grid.num_cells

    def test_single_zone(self, grid):
        zone_map = ZoneMap.for_grid(grid, 1)
        zones = zone_map.zone_of_cells(np.array([11]), np.array([7]))
        assert zone_map.num_zones == 1
        np.testing.assert_array_equal(zones, [0])

    def test_rejects_bad_arguments(self, grid):
        with pytest.raises(ValueError, match="num_zones"):
            ZoneMap.for_grid(grid, 0)
        with pytest.raises(ValueError, match="curve"):
            ZoneMap.for_grid(grid, 4, "peano")

    def test_constructor_validates_boundaries(self, grid):
        with pytest.raises(ValueError, match="strictly increasing"):
            ZoneMap(
                grid=grid,
                curve="morton",
                order=4,
                boundaries=np.array([0, 5, 5], dtype=np.uint64),
            )

    def test_zone_of_spans_uses_center_cell(self, grid):
        zone_map = ZoneMap.for_grid(grid, 8)
        # A degenerate span at cell (3, 2): lattice center 2*3+1, 2*2+1.
        a = np.array([7]); b = np.array([5])
        by_span = zone_map.zone_of_spans(a, a, b, b)
        by_cell = zone_map.zone_of_cells(np.array([3]), np.array([2]))
        np.testing.assert_array_equal(by_span, by_cell)

    def test_placement_is_deterministic_after_pickle(self, grid):
        import pickle

        zone_map = ZoneMap.for_grid(grid, 6, "hilbert")
        clone = pickle.loads(pickle.dumps(zone_map))
        rng = np.random.default_rng(5)
        a_lo = rng.integers(0, 2 * grid.n1, size=200)
        a_hi = a_lo + rng.integers(0, 2 * grid.n1 - a_lo, size=200)
        b_lo = rng.integers(0, 2 * grid.n2, size=200)
        b_hi = b_lo + rng.integers(0, 2 * grid.n2 - b_lo, size=200)
        np.testing.assert_array_equal(
            zone_map.zone_of_spans(a_lo, a_hi, b_lo, b_hi),
            clone.zone_of_spans(a_lo, a_hi, b_lo, b_hi),
        )
