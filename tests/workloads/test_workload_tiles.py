"""Tests for the paper's query sets and browsing tilings."""

import pytest

from repro.grid.grid import Grid
from repro.grid.tiles_math import TileQuery
from repro.workloads.tiles import (
    PAPER_QUERY_SET_SIZES,
    browsing_tiles,
    paper_query_sets,
    query_set,
)


class TestQuerySet:
    def test_paper_sizes_divide_the_world_grid(self, world_grid):
        for n in PAPER_QUERY_SET_SIZES:
            assert world_grid.n1 % n == 0
            assert world_grid.n2 % n == 0

    @pytest.mark.parametrize("n,expected", [(10, 648), (2, 16_200), (20, 162), (9, 800)])
    def test_cardinality_matches_paper(self, world_grid, n, expected):
        # Section 6.1.2: |Q_n| = 360/n * 180/n.
        assert len(query_set(world_grid, n)) == expected

    def test_tiles_partition_the_space(self, world_grid):
        tiles = query_set(world_grid, 20)
        covered = sum(t.area for t in tiles)
        assert covered == world_grid.num_cells
        # No overlaps: tile corners are unique.
        corners = {(t.qx_lo, t.qy_lo) for t in tiles}
        assert len(corners) == len(tiles)

    def test_all_tiles_are_square(self, world_grid):
        assert all(t.width == t.height == 15 for t in query_set(world_grid, 15))

    def test_rejects_non_divisor(self, world_grid):
        with pytest.raises(ValueError, match="does not divide"):
            query_set(world_grid, 7)

    def test_rejects_non_positive(self, world_grid):
        with pytest.raises(ValueError):
            query_set(world_grid, 0)

    def test_paper_query_sets(self, world_grid):
        sets = paper_query_sets(world_grid)
        assert set(sets) == set(PAPER_QUERY_SET_SIZES)
        assert len(sets[10]) == 648


class TestBrowsingTiles:
    def test_california_style_partitioning(self):
        # Figure 1(b): a region split into a rows x cols raster.
        region = TileQuery(10, 32, 20, 64)  # 22 cells wide, 44 tall
        tiles = browsing_tiles(region, rows=4, cols=11)
        assert len(tiles) == 4 and len(tiles[0]) == 11
        assert tiles[0][0] == TileQuery(10, 12, 20, 31)
        assert tiles[3][10] == TileQuery(30, 32, 53, 64)

    def test_tiles_cover_region_exactly(self):
        region = TileQuery(0, 12, 0, 8)
        tiles = browsing_tiles(region, rows=2, cols=3)
        total = sum(t.area for row in tiles for t in row)
        assert total == region.area

    def test_rejects_non_dividing_partition(self):
        with pytest.raises(ValueError, match="equal aligned tiles"):
            browsing_tiles(TileQuery(0, 10, 0, 10), rows=3, cols=2)

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            browsing_tiles(TileQuery(0, 10, 0, 10), rows=0, cols=2)

    def test_single_tile(self):
        region = TileQuery(3, 7, 2, 6)
        tiles = browsing_tiles(region, rows=1, cols=1)
        assert tiles == [[region]]
