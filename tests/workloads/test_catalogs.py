"""Multi-source catalog workload generator: determinism, extents,
family cycling and catalog assembly."""

import numpy as np
import pytest

from repro.errors import CatalogAlignmentError
from repro.euler import EulerApprox, MEulerApprox, SEulerApprox
from repro.exact.evaluator import ExactEvaluator
from repro.geometry.rect import Rect
from repro.grid.grid import Grid
from repro.workloads import (
    CATALOG_FAMILIES,
    build_catalog,
    catalog_estimator,
    generate_catalog_sources,
    generate_query_regions,
)

GRID = Grid(Rect(0.0, 360.0, 0.0, 180.0), 16, 8)


def test_sources_are_deterministic():
    a = generate_catalog_sources(GRID, 6, 200, seed=4)
    b = generate_catalog_sources(GRID, 6, 200, seed=4)
    assert len(a) == len(b) == 6
    for da, db in zip(a, b):
        assert da.name == db.name
        assert np.array_equal(da.x_lo, db.x_lo)
        assert np.array_equal(da.y_hi, db.y_hi)
    c = generate_catalog_sources(GRID, 6, 200, seed=5)
    assert not np.array_equal(a[0].x_lo, c[0].x_lo)


def test_sources_live_inside_the_grid_extent():
    for source in generate_catalog_sources(GRID, 5, 300, seed=1):
        assert len(source) == 300
        assert source.extent == GRID.extent
        assert (source.x_lo >= GRID.extent.x_lo).all()
        assert (source.x_hi <= GRID.extent.x_hi).all()
        assert (source.y_lo >= GRID.extent.y_lo).all()
        assert (source.y_hi <= GRID.extent.y_hi).all()
        assert (source.x_lo <= source.x_hi).all()
        assert (source.y_lo <= source.y_hi).all()


def test_sources_occupy_distinct_territories():
    """Each source is clustered, not uniform over the world -- otherwise
    a join search would have nothing to discriminate."""
    sources = generate_catalog_sources(GRID, 8, 400, seed=2)
    spans = [
        (s.x_hi.max() - s.x_lo.min(), s.y_hi.max() - s.y_lo.min()) for s in sources
    ]
    extent_w = GRID.extent.x_hi - GRID.extent.x_lo
    extent_h = GRID.extent.y_hi - GRID.extent.y_lo
    assert all(w <= 0.75 * extent_w and h <= 0.75 * extent_h for w, h in spans)
    centers = {(round(s.x_lo.mean(), 1), round(s.y_lo.mean(), 1)) for s in sources}
    assert len(centers) == 8


def test_names_are_stable_and_prefixed():
    sources = generate_catalog_sources(GRID, 3, 50, seed=0, name_prefix="cat")
    assert [s.name for s in sources] == ["cat-000", "cat-001", "cat-002"]


def test_query_regions_deterministic_and_aligned():
    a = generate_query_regions(GRID, 10, seed=3)
    b = generate_query_regions(GRID, 10, seed=3)
    assert [(q.qx_lo, q.qx_hi, q.qy_lo, q.qy_hi) for q in a] == [
        (q.qx_lo, q.qx_hi, q.qy_lo, q.qy_hi) for q in b
    ]
    for q in a:
        assert 0 <= q.qx_lo < q.qx_hi <= GRID.n1
        assert 0 <= q.qy_lo < q.qy_hi <= GRID.n2


@pytest.mark.parametrize("family", CATALOG_FAMILIES)
def test_catalog_estimator_families(family):
    source = generate_catalog_sources(GRID, 1, 100, seed=6)[0]
    est = catalog_estimator(source, family, GRID, area_thresholds=(1.0, 9.0))
    expected = {
        "seuler": SEulerApprox,
        "euler": EulerApprox,
        "meuler": MEulerApprox,
        "exact": ExactEvaluator,
    }[family]
    assert isinstance(est, expected)


def test_catalog_estimator_rejects_unknown_family():
    source = generate_catalog_sources(GRID, 1, 10, seed=0)[0]
    with pytest.raises(ValueError, match="family"):
        catalog_estimator(source, "bogus", GRID, area_thresholds=(1.0,))


def test_build_catalog_mixed_cycles_families():
    sources = generate_catalog_sources(GRID, 4, 150, seed=7)
    catalog = build_catalog(sources, GRID, family="mixed")
    assert len(catalog) == 4
    assert catalog.names == tuple(s.name for s in sources)
    # every sketch landed on the shared reference grid
    stacked = catalog.stacked()
    assert stacked.blocks["n_ii"].shape == (4, GRID.n1, GRID.n2)


def test_build_catalog_summary_grid_must_align():
    sources = generate_catalog_sources(GRID, 1, 50, seed=8)
    bad = Grid(GRID.extent, 24, 8)  # 24 % 16 != 0
    with pytest.raises(CatalogAlignmentError):
        build_catalog(sources, GRID, family="seuler", summary_grid=bad)
