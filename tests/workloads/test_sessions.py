"""Tests for the browsing-session workload generator."""

import pytest

from repro.geometry.rect import Rect
from repro.grid.grid import Grid
from repro.workloads.sessions import BrowseInteraction, generate_sessions
from repro.grid.tiles_math import TileQuery


@pytest.fixture
def grid():
    return Grid(Rect(0.0, 360.0, 0.0, 180.0), 360, 180)


def test_sessions_are_reproducible(grid):
    a = generate_sessions(grid, num_sessions=5, seed=3)
    b = generate_sessions(grid, num_sessions=5, seed=3)
    assert a == b


def test_different_seeds_differ(grid):
    a = generate_sessions(grid, num_sessions=5, seed=1)
    b = generate_sessions(grid, num_sessions=5, seed=2)
    assert a != b


def test_sessions_start_at_world_view(grid):
    for session in generate_sessions(grid, num_sessions=8, seed=0):
        first = session.interactions[0]
        assert first.region == TileQuery(0, 360, 0, 180)


def test_regions_nest_monotonically(grid):
    """Each step's region is contained in the previous step's region."""
    for session in generate_sessions(grid, num_sessions=10, seed=4):
        prev = None
        for step in session:
            if prev is not None:
                assert prev.qx_lo <= step.region.qx_lo
                assert step.region.qx_hi <= prev.qx_hi
                assert prev.qy_lo <= step.region.qy_lo
                assert step.region.qy_hi <= prev.qy_hi
            prev = step.region


def test_partitions_divide_regions(grid):
    for session in generate_sessions(grid, num_sessions=10, seed=5):
        for step in session:
            assert step.region.width % step.cols == 0
            assert step.region.height % step.rows == 0
            tiles = step.tile_queries()
            assert len(tiles) == step.num_tiles
            assert sum(t.area for t in tiles) == step.region.area


def test_relations_are_browsable(grid):
    from repro.browse.service import RELATION_FIELDS

    for session in generate_sessions(grid, num_sessions=10, seed=6):
        for step in session:
            assert step.relation in RELATION_FIELDS


def test_total_tiles(grid):
    session = generate_sessions(grid, num_sessions=1, seed=7)[0]
    assert session.total_tiles == sum(s.num_tiles for s in session)
    assert len(session) >= 2


def test_validation(grid):
    with pytest.raises(ValueError):
        generate_sessions(grid, num_sessions=0)
    with pytest.raises(ValueError):
        generate_sessions(grid, max_depth=0)


def test_pan_free_traces_are_unchanged_by_the_pan_parameters(grid):
    """pan_prob=0 must reproduce the original zoom-only traces draw for
    draw -- the pan machinery may not perturb existing workloads."""
    baseline = generate_sessions(grid, num_sessions=6, max_depth=5, seed=12)
    explicit = generate_sessions(
        grid, num_sessions=6, max_depth=5, seed=12, pan_prob=0.0, pan_fraction=0.5
    )
    assert baseline == explicit


def test_pans_keep_tiling_and_shift_by_whole_tiles(grid):
    """A panned step keeps the previous viewport size, tiling and
    relation, and its offset is a whole number of tiles per axis."""
    sessions = generate_sessions(
        grid, num_sessions=12, max_depth=8, seed=13, pan_prob=0.9
    )
    pans = 0
    for session in sessions:
        prev = None
        for step in session:
            if (
                prev is not None
                and step.region != prev.region
                and step.region.width == prev.region.width
                and step.region.height == prev.region.height
            ):
                pans += 1
                assert (step.rows, step.cols, step.relation) == (
                    prev.rows,
                    prev.cols,
                    prev.relation,
                )
                tile_w = prev.region.width // prev.cols
                tile_h = prev.region.height // prev.rows
                assert (step.region.qx_lo - prev.region.qx_lo) % tile_w == 0
                assert (step.region.qy_lo - prev.region.qy_lo) % tile_h == 0
            prev = step
    assert pans > 0, "a pan_prob=0.9 trace produced no pans"


def test_pans_stay_inside_the_grid(grid):
    for session in generate_sessions(
        grid, num_sessions=12, max_depth=8, seed=14, pan_prob=0.9
    ):
        for step in session:
            assert 0 <= step.region.qx_lo < step.region.qx_hi <= grid.n1
            assert 0 <= step.region.qy_lo < step.region.qy_hi <= grid.n2


def test_start_region_is_respected(grid):
    start = TileQuery(60, 300, 30, 150)
    for session in generate_sessions(
        grid, num_sessions=5, seed=15, start_region=start
    ):
        assert session.interactions[0].region == start


def test_min_partition_bounds_the_tiling(grid):
    for session in generate_sessions(
        grid, num_sessions=5, seed=16, min_partition=4, max_partition=8
    ):
        for step in session:
            # 1 appears only as the fallback when no divisor fits.
            assert step.rows == 1 or 4 <= step.rows <= 8
            assert step.cols == 1 or 4 <= step.cols <= 8


def test_pan_parameter_validation(grid):
    with pytest.raises(ValueError):
        generate_sessions(grid, pan_prob=1.5)
    with pytest.raises(ValueError):
        generate_sessions(grid, pan_fraction=0.0)
    with pytest.raises(ValueError):
        generate_sessions(grid, min_partition=1)
    with pytest.raises(ValueError):
        generate_sessions(grid, min_partition=8, max_partition=4)
    with pytest.raises(ValueError):
        generate_sessions(grid, start_region=TileQuery(0, 361, 0, 180))


def test_interaction_expansion():
    step = BrowseInteraction(region=TileQuery(0, 4, 0, 4), rows=2, cols=2, relation="overlap")
    tiles = step.tile_queries()
    assert len(tiles) == 4
    assert all(t.area == 4 for t in tiles)
