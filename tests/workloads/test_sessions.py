"""Tests for the browsing-session workload generator."""

import pytest

from repro.geometry.rect import Rect
from repro.grid.grid import Grid
from repro.workloads.sessions import BrowseInteraction, generate_sessions
from repro.grid.tiles_math import TileQuery


@pytest.fixture
def grid():
    return Grid(Rect(0.0, 360.0, 0.0, 180.0), 360, 180)


def test_sessions_are_reproducible(grid):
    a = generate_sessions(grid, num_sessions=5, seed=3)
    b = generate_sessions(grid, num_sessions=5, seed=3)
    assert a == b


def test_different_seeds_differ(grid):
    a = generate_sessions(grid, num_sessions=5, seed=1)
    b = generate_sessions(grid, num_sessions=5, seed=2)
    assert a != b


def test_sessions_start_at_world_view(grid):
    for session in generate_sessions(grid, num_sessions=8, seed=0):
        first = session.interactions[0]
        assert first.region == TileQuery(0, 360, 0, 180)


def test_regions_nest_monotonically(grid):
    """Each step's region is contained in the previous step's region."""
    for session in generate_sessions(grid, num_sessions=10, seed=4):
        prev = None
        for step in session:
            if prev is not None:
                assert prev.qx_lo <= step.region.qx_lo
                assert step.region.qx_hi <= prev.qx_hi
                assert prev.qy_lo <= step.region.qy_lo
                assert step.region.qy_hi <= prev.qy_hi
            prev = step.region


def test_partitions_divide_regions(grid):
    for session in generate_sessions(grid, num_sessions=10, seed=5):
        for step in session:
            assert step.region.width % step.cols == 0
            assert step.region.height % step.rows == 0
            tiles = step.tile_queries()
            assert len(tiles) == step.num_tiles
            assert sum(t.area for t in tiles) == step.region.area


def test_relations_are_browsable(grid):
    from repro.browse.service import RELATION_FIELDS

    for session in generate_sessions(grid, num_sessions=10, seed=6):
        for step in session:
            assert step.relation in RELATION_FIELDS


def test_total_tiles(grid):
    session = generate_sessions(grid, num_sessions=1, seed=7)[0]
    assert session.total_tiles == sum(s.num_tiles for s in session)
    assert len(session) >= 2


def test_validation(grid):
    with pytest.raises(ValueError):
        generate_sessions(grid, num_sessions=0)
    with pytest.raises(ValueError):
        generate_sessions(grid, max_depth=0)


def test_interaction_expansion():
    step = BrowseInteraction(region=TileQuery(0, 4, 0, 4), rows=2, cols=2, relation="overlap")
    tiles = step.tile_queries()
    assert len(tiles) == 4
    assert all(t.area == 4 for t in tiles)
