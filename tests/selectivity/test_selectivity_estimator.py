"""Tests for the Level-2 selectivity estimator."""

import pytest

from repro.euler.histogram import EulerHistogram
from repro.euler.simple import SEulerApprox
from repro.exact.evaluator import ExactEvaluator
from repro.geometry.rect import Rect
from repro.grid.grid import Grid
from repro.grid.tiles_math import TileQuery
from repro.selectivity.estimator import RELATION_ACCESSORS, SelectivityEstimator

from tests.conftest import random_dataset, random_query


@pytest.fixture
def grid():
    return Grid(Rect(0.0, 12.0, 0.0, 8.0), 12, 8)


@pytest.fixture
def data(grid, rng):
    return random_dataset(rng, grid, 200)


def test_exact_backend_gives_exact_selectivities(grid, data, rng):
    selectivity = SelectivityEstimator(ExactEvaluator(data, grid), len(data))
    evaluator = ExactEvaluator(data, grid)
    for _ in range(20):
        q = random_query(rng, grid)
        truth = evaluator.estimate(q)
        for relation, accessor in RELATION_ACCESSORS.items():
            estimate = selectivity.estimate(q, relation)
            assert estimate.cardinality == accessor(truth)
            assert estimate.selectivity == pytest.approx(accessor(truth) / len(data))


def test_selectivities_are_clamped(grid, rng):
    """S-EulerApprox can return negative raw contains counts; the
    selectivity layer clamps while preserving the raw value."""
    crossover = random_dataset(rng, grid, 0)
    from repro.datasets.base import RectDataset

    crossover = RectDataset.from_rects([Rect(0.5, 11.5, 3.2, 3.8)], grid.extent)
    estimator = SEulerApprox(EulerHistogram.from_dataset(crossover, grid))
    selectivity = SelectivityEstimator(estimator, 1)
    estimate = selectivity.estimate(TileQuery(3, 6, 0, 8), "contains")
    assert estimate.raw == -1.0
    assert estimate.cardinality == 0.0
    assert estimate.selectivity == 0.0


def test_selectivity_in_unit_interval(grid, data, rng):
    estimator = SEulerApprox(EulerHistogram.from_dataset(data, grid))
    selectivity = SelectivityEstimator(estimator, len(data))
    for _ in range(25):
        q = random_query(rng, grid)
        for relation in RELATION_ACCESSORS:
            value = selectivity.selectivity(q, relation)
            assert 0.0 <= value <= 1.0


def test_unknown_relation(grid, data):
    selectivity = SelectivityEstimator(ExactEvaluator(data, grid), len(data))
    with pytest.raises(ValueError, match="unknown relation"):
        selectivity.estimate(TileQuery(0, 1, 0, 1), "near")


def test_empty_dataset_selectivity_is_zero(grid):
    from repro.datasets.base import RectDataset

    empty = RectDataset.empty(grid.extent)
    selectivity = SelectivityEstimator(ExactEvaluator(empty, grid), 0)
    assert selectivity.selectivity(TileQuery(0, 1, 0, 1), "intersect") == 0.0


def test_name(grid, data):
    selectivity = SelectivityEstimator(ExactEvaluator(data, grid), len(data))
    assert selectivity.name == "Selectivity[Exact]"


def test_validation():
    with pytest.raises(ValueError):
        SelectivityEstimator(None, -1)  # type: ignore[arg-type]
