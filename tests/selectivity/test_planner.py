"""Tests for the cost-based spatial query planner."""

import numpy as np
import pytest

from repro.euler.histogram import EulerHistogram
from repro.euler.simple import SEulerApprox
from repro.exact.evaluator import ExactEvaluator
from repro.geometry.rect import Rect
from repro.grid.grid import Grid
from repro.grid.tiles_math import TileQuery
from repro.index.grid_index import GridBucketIndex
from repro.selectivity.estimator import SelectivityEstimator
from repro.selectivity.planner import CostModel, SpatialQueryPlanner, Strategy

from tests.conftest import random_dataset, random_query


@pytest.fixture
def grid():
    return Grid(Rect(0.0, 12.0, 0.0, 8.0), 12, 8)


@pytest.fixture
def data(grid, rng):
    return random_dataset(rng, grid, 300, max_size_cells=2.0)


@pytest.fixture
def planner(grid, data):
    index = GridBucketIndex(data, grid)
    estimator = SEulerApprox(EulerHistogram.from_dataset(data, grid))
    return SpatialQueryPlanner(index, SelectivityEstimator(estimator, len(data)))


class TestPlanSelection:
    def test_selective_query_uses_index(self, planner):
        strategy, *_ = planner.plan(TileQuery(5, 6, 3, 4), "intersect")
        assert strategy is Strategy.INDEX_SCAN

    def test_broad_query_uses_scan(self, planner):
        strategy, _, scan_cost, index_cost = planner.plan(TileQuery(0, 12, 0, 8), "intersect")
        assert strategy is Strategy.FULL_SCAN
        assert index_cost >= scan_cost

    def test_unknown_relation_rejected(self, planner):
        with pytest.raises(ValueError, match="retrieval relations"):
            planner.plan(TileQuery(0, 1, 0, 1), "disjoint")

    def test_cost_model_tunable(self, grid, data):
        index = GridBucketIndex(data, grid)
        selectivity = SelectivityEstimator(ExactEvaluator(data, grid), len(data))
        expensive_index = SpatialQueryPlanner(
            index, selectivity, CostModel(index_cost_per_candidate=1e9)
        )
        strategy, *_ = expensive_index.plan(TileQuery(5, 6, 3, 4), "intersect")
        assert strategy is Strategy.FULL_SCAN


class TestExecution:
    @pytest.mark.parametrize("relation", ["intersect", "contains", "contained", "overlap"])
    def test_both_paths_return_exact_ids(self, grid, data, planner, relation, rng):
        evaluator = ExactEvaluator(data, grid)
        for _ in range(10):
            q = random_query(rng, grid)
            ids, report = planner.execute(q, relation)
            intersects, within, covers = evaluator.masks(q)
            expected = {
                "intersect": intersects,
                "contains": within,
                "contained": covers,
                "overlap": intersects & ~within & ~covers,
            }[relation]
            np.testing.assert_array_equal(ids, np.flatnonzero(expected))
            assert report.actual_results == int(expected.sum())

    def test_index_path_examines_fewer_candidates(self, planner, data):
        ids, report = planner.execute(TileQuery(5, 6, 3, 4), "intersect")
        assert report.strategy is Strategy.INDEX_SCAN
        assert report.actual_candidates < len(data)

    def test_scan_path_examines_everything(self, planner, data):
        ids, report = planner.execute(TileQuery(0, 12, 0, 8), "intersect")
        assert report.strategy is Strategy.FULL_SCAN
        assert report.actual_candidates == len(data)

    def test_explain_output(self, planner):
        _, report = planner.execute(TileQuery(5, 6, 3, 4), "overlap")
        text = report.explain()
        assert "overlap" in text
        assert report.strategy.value in text
        assert "actual results" in text


class TestValidation:
    def test_mismatched_dataset_sizes_rejected(self, grid, data):
        index = GridBucketIndex(data, grid)
        wrong = SelectivityEstimator(ExactEvaluator(data, grid), len(data) + 1)
        with pytest.raises(ValueError, match="different datasets"):
            SpatialQueryPlanner(index, wrong)
