"""Public API integrity: everything advertised is importable and every
subpackage's __all__ is consistent."""

import importlib
import inspect

import pytest

import repro

SUBPACKAGES = [
    "repro.geometry",
    "repro.grid",
    "repro.cube",
    "repro.euler",
    "repro.exact",
    "repro.baselines",
    "repro.index",
    "repro.selectivity",
    "repro.datasets",
    "repro.workloads",
    "repro.metrics",
    "repro.browse",
    "repro.cache",
    "repro.joins",
    "repro.experiments",
    "repro.gateway",
    "repro.ingest",
]


def test_top_level_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.__all__ lists missing name {name}"


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_subpackage_all_names_resolve(module_name):
    module = importlib.import_module(module_name)
    assert hasattr(module, "__all__"), f"{module_name} has no __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{module_name}.__all__ lists missing name {name}"


def test_no_duplicate_top_level_names():
    assert len(repro.__all__) == len(set(repro.__all__))


def test_version_is_a_string():
    assert isinstance(repro.__version__, str)
    assert repro.__version__.count(".") >= 1


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_public_classes_and_functions_have_docstrings(module_name):
    """Deliverable (e): doc comments on every public item."""
    module = importlib.import_module(module_name)
    for name in module.__all__:
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert obj.__doc__, f"{module_name}.{name} lacks a docstring"
            # Public methods of public classes too.
            if inspect.isclass(obj):
                for meth_name, meth in inspect.getmembers(obj, inspect.isfunction):
                    if meth_name.startswith("_"):
                        continue
                    assert meth.__doc__, (
                        f"{module_name}.{name}.{meth_name} lacks a docstring"
                    )


def test_estimators_satisfy_protocol():
    from repro.euler.base import Level2Estimator

    instances = []
    import numpy as np

    grid = repro.Grid(repro.Rect(0.0, 4.0, 0.0, 4.0), 4, 4)
    data = repro.RectDataset(
        np.array([0.5]), np.array([1.5]), np.array([0.5]), np.array([1.5]), grid.extent
    )
    hist = repro.EulerHistogram.from_dataset(data, grid)
    instances.append(repro.SEulerApprox(hist))
    instances.append(repro.EulerApprox(hist))
    instances.append(repro.MEulerApprox(data, grid, [1.0]))
    instances.append(repro.ExactEvaluator(data, grid))
    for instance in instances:
        assert isinstance(instance, Level2Estimator)
