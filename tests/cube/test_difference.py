"""Tests for the 2-d difference-array accumulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cube.difference import DifferenceArray2D


class TestBasics:
    def test_single_box(self):
        acc = DifferenceArray2D((4, 3))
        acc.add_box(1, 2, 0, 1)
        expected = np.zeros((4, 3), dtype=np.int64)
        expected[1:3, 0:2] = 1
        np.testing.assert_array_equal(acc.materialize(), expected)

    def test_full_array_box(self):
        acc = DifferenceArray2D((3, 3))
        acc.add_box(0, 2, 0, 2, weight=5)
        np.testing.assert_array_equal(acc.materialize(), np.full((3, 3), 5))

    def test_overlapping_boxes_accumulate(self):
        acc = DifferenceArray2D((3, 3))
        acc.add_box(0, 1, 0, 1)
        acc.add_box(1, 2, 1, 2)
        result = acc.materialize()
        assert result[1, 1] == 2
        assert result[0, 0] == 1
        assert result[2, 0] == 0

    def test_negative_weight_removes(self):
        acc = DifferenceArray2D((3, 3))
        acc.add_box(0, 2, 0, 2)
        acc.add_box(0, 2, 0, 2, weight=-1)
        np.testing.assert_array_equal(acc.materialize(), np.zeros((3, 3), dtype=np.int64))

    def test_materialize_is_repeatable_and_composable(self):
        acc = DifferenceArray2D((2, 2))
        acc.add_box(0, 0, 0, 0)
        first = acc.materialize()
        acc.add_box(1, 1, 1, 1)
        second = acc.materialize()
        assert first[0, 0] == 1 and first[1, 1] == 0
        assert second[0, 0] == 1 and second[1, 1] == 1

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            DifferenceArray2D((0, 3))

    def test_rejects_out_of_bounds(self):
        acc = DifferenceArray2D((3, 3))
        with pytest.raises(IndexError):
            acc.add_box(0, 3, 0, 1)
        with pytest.raises(IndexError):
            acc.add_boxes(np.array([-1]), np.array([0]), np.array([0]), np.array([0]))

    def test_rejects_empty_box(self):
        acc = DifferenceArray2D((3, 3))
        with pytest.raises(ValueError):
            acc.add_boxes(np.array([2]), np.array([1]), np.array([0]), np.array([0]))

    def test_rejects_mismatched_arrays(self):
        acc = DifferenceArray2D((3, 3))
        with pytest.raises(ValueError):
            acc.add_boxes(np.array([0, 1]), np.array([1]), np.array([0, 0]), np.array([1, 1]))

    def test_empty_batch_is_noop(self):
        acc = DifferenceArray2D((3, 3))
        empty = np.zeros(0, dtype=np.int64)
        acc.add_boxes(empty, empty, empty, empty)
        assert acc.materialize().sum() == 0

    def test_weights_array(self):
        acc = DifferenceArray2D((2, 2))
        acc.add_boxes(
            np.array([0, 0]),
            np.array([0, 1]),
            np.array([0, 0]),
            np.array([0, 1]),
            weights=np.array([3, 2]),
        )
        result = acc.materialize()
        assert result[0, 0] == 5
        assert result[1, 1] == 2


boxes = st.lists(
    st.tuples(
        st.integers(0, 7), st.integers(0, 7), st.integers(0, 5), st.integers(0, 5)
    ).map(lambda t: (min(t[0], t[1]), max(t[0], t[1]), min(t[2], t[3]), max(t[2], t[3]))),
    min_size=0,
    max_size=40,
)


@settings(max_examples=150)
@given(boxes)
def test_matches_naive_accumulation(box_list):
    acc = DifferenceArray2D((8, 6))
    naive = np.zeros((8, 6), dtype=np.int64)
    for a_lo, a_hi, b_lo, b_hi in box_list:
        naive[a_lo : a_hi + 1, b_lo : b_hi + 1] += 1
    if box_list:
        arr = np.array(box_list)
        acc.add_boxes(arr[:, 0], arr[:, 1], arr[:, 2], arr[:, 3])
    np.testing.assert_array_equal(acc.materialize(), naive)


@settings(max_examples=100)
@given(boxes)
def test_batch_equals_scalar_adds(box_list):
    batch = DifferenceArray2D((8, 6))
    scalar = DifferenceArray2D((8, 6))
    if box_list:
        arr = np.array(box_list)
        batch.add_boxes(arr[:, 0], arr[:, 1], arr[:, 2], arr[:, 3])
    for a_lo, a_hi, b_lo, b_hi in box_list:
        scalar.add_box(a_lo, a_hi, b_lo, b_hi)
    np.testing.assert_array_equal(batch.materialize(), scalar.materialize())
