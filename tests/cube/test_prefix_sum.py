"""Property and unit tests for the HAMS97 prefix-sum cube."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.cube.prefix_sum import PrefixSumCube


class TestBasics:
    def test_total(self):
        cube = PrefixSumCube(np.arange(12).reshape(3, 4))
        assert cube.total == 66

    def test_shape_and_ndim(self):
        cube = PrefixSumCube(np.zeros((3, 4, 5)))
        assert cube.shape == (3, 4, 5)
        assert cube.ndim == 3

    def test_scalar_input_rejected(self):
        with pytest.raises(ValueError):
            PrefixSumCube(np.array(5))

    def test_single_element(self):
        cube = PrefixSumCube(np.array([7]))
        assert cube.range_sum((0,), (0,)) == 7

    def test_empty_box_sums_to_zero(self):
        cube = PrefixSumCube(np.arange(12).reshape(3, 4))
        assert cube.range_sum((2, 2), (1, 3)) == 0
        assert cube.range_sum_2d(2, 1, 0, 3) == 0

    def test_out_of_bounds_raises(self):
        cube = PrefixSumCube(np.arange(12).reshape(3, 4))
        with pytest.raises(IndexError):
            cube.range_sum((0, 0), (3, 3))
        with pytest.raises(IndexError):
            cube.range_sum_2d(-1, 2, 0, 3)

    def test_wrong_arity(self):
        cube = PrefixSumCube(np.arange(12).reshape(3, 4))
        with pytest.raises(ValueError):
            cube.range_sum((0,), (1,))

    def test_range_sum_2d_requires_2d(self):
        cube = PrefixSumCube(np.arange(4))
        with pytest.raises(ValueError):
            cube.range_sum_2d(0, 1, 0, 1)

    def test_negative_values(self):
        values = np.array([[1, -2], [-3, 4]])
        cube = PrefixSumCube(values)
        assert cube.range_sum_2d(0, 1, 0, 1) == 0
        assert cube.range_sum_2d(0, 0, 0, 1) == -1

    def test_float_input(self):
        cube = PrefixSumCube(np.array([0.5, 1.5, 2.0]))
        assert cube.range_sum((1,), (2,)) == pytest.approx(3.5)

    def test_int_inputs_do_not_overflow_int32(self):
        values = np.full((100, 100), 2**31 - 1, dtype=np.int32)
        cube = PrefixSumCube(values)
        assert cube.total == (2**31 - 1) * 10_000

    def test_nbytes_positive(self):
        assert PrefixSumCube(np.zeros((5, 5))).nbytes > 0


@st.composite
def array_and_box(draw, max_dims=3):
    ndim = draw(st.integers(min_value=1, max_value=max_dims))
    shape = tuple(draw(st.integers(min_value=1, max_value=6)) for _ in range(ndim))
    values = draw(
        hnp.arrays(np.int64, shape, elements=st.integers(min_value=-50, max_value=50))
    )
    lo = tuple(draw(st.integers(min_value=0, max_value=s - 1)) for s in shape)
    hi = tuple(
        draw(st.integers(min_value=lo[k], max_value=shape[k] - 1)) for k in range(ndim)
    )
    return values, lo, hi


@settings(max_examples=200)
@given(array_and_box())
def test_range_sum_matches_numpy_slice(case):
    values, lo, hi = case
    cube = PrefixSumCube(values)
    box = tuple(slice(a, b + 1) for a, b in zip(lo, hi))
    assert cube.range_sum(lo, hi) == int(values[box].sum())


@settings(max_examples=200)
@given(array_and_box(max_dims=2))
def test_range_sum_2d_matches_generic(case):
    values, lo, hi = case
    if values.ndim != 2:
        return
    cube = PrefixSumCube(values)
    assert cube.range_sum_2d(lo[0], hi[0], lo[1], hi[1]) == cube.range_sum(lo, hi)


@given(array_and_box())
def test_total_matches_sum(case):
    values, _, _ = case
    assert PrefixSumCube(values).total == int(values.sum())


class TestBatch:
    def test_matches_scalar(self):
        rng = np.random.default_rng(7)
        values = rng.integers(-50, 50, size=(9, 13))
        cube = PrefixSumCube(values)
        a_lo = rng.integers(0, 9, size=200)
        a_hi = rng.integers(0, 9, size=200)
        b_lo = rng.integers(0, 13, size=200)
        b_hi = rng.integers(0, 13, size=200)
        got = cube.range_sum_2d_batch(a_lo, a_hi, b_lo, b_hi)
        assert got.dtype == np.int64
        for i in range(200):
            assert got[i] == cube.range_sum_2d(
                int(a_lo[i]), int(a_hi[i]), int(b_lo[i]), int(b_hi[i])
            )

    def test_empty_boxes_sum_to_zero(self):
        cube = PrefixSumCube(np.arange(12).reshape(3, 4))
        got = cube.range_sum_2d_batch([2, 0], [1, 2], [0, 3], [3, 2])
        np.testing.assert_array_equal(got, [0, 0])

    def test_empty_boxes_skip_bounds_check(self):
        # Scalar range_sum_2d returns 0 for empty boxes before bounds
        # checking; the batch path must accept the same degenerate corners
        # (e.g. Region-B slabs clipped to hi = lo - 1 at the boundary).
        cube = PrefixSumCube(np.arange(12).reshape(3, 4))
        got = cube.range_sum_2d_batch([0], [-1], [0], [3])
        np.testing.assert_array_equal(got, [0])

    def test_out_of_bounds_raises(self):
        cube = PrefixSumCube(np.arange(12).reshape(3, 4))
        with pytest.raises(IndexError):
            cube.range_sum_2d_batch([0, 0], [2, 3], [0, 0], [3, 3])
        with pytest.raises(IndexError):
            cube.range_sum_2d_batch([-1], [2], [0], [3])

    def test_requires_2d(self):
        cube = PrefixSumCube(np.arange(4))
        with pytest.raises(ValueError):
            cube.range_sum_2d_batch([0], [1], [0], [1])

    def test_broadcasting(self):
        values = np.arange(12).reshape(3, 4)
        cube = PrefixSumCube(values)
        # Scalar lows against an array of highs.
        got = cube.range_sum_2d_batch(0, [0, 1, 2], 0, 3)
        expected = [values[:1].sum(), values[:2].sum(), values.sum()]
        np.testing.assert_array_equal(got, expected)

    def test_float_dtype(self):
        cube = PrefixSumCube(np.array([[0.5, 1.5], [2.0, 4.0]]))
        got = cube.range_sum_2d_batch([0], [1], [0], [1])
        assert got.dtype == np.float64
        assert got[0] == pytest.approx(8.0)

    def test_empty_batch(self):
        cube = PrefixSumCube(np.arange(12).reshape(3, 4))
        got = cube.range_sum_2d_batch([], [], [], [])
        assert got.shape == (0,)


@settings(max_examples=100)
@given(array_and_box(max_dims=2))
def test_batch_matches_scalar_property(case):
    values, lo, hi = case
    if values.ndim != 2:
        return
    cube = PrefixSumCube(values)
    got = cube.range_sum_2d_batch([lo[0]], [hi[0]], [lo[1]], [hi[1]])
    assert got[0] == cube.range_sum_2d(lo[0], hi[0], lo[1], hi[1])
