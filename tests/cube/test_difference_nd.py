"""Tests for the d-dimensional difference-array accumulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cube.difference import DifferenceArray2D
from repro.cube.difference_nd import DifferenceArrayND


class TestBasics:
    def test_1d(self):
        acc = DifferenceArrayND((5,))
        acc.add_box([1], [3])
        np.testing.assert_array_equal(acc.materialize(), [0, 1, 1, 1, 0])

    def test_3d_single_box(self):
        acc = DifferenceArrayND((3, 3, 3))
        acc.add_box([0, 1, 2], [1, 2, 2])
        dense = acc.materialize()
        expected = np.zeros((3, 3, 3), dtype=np.int64)
        expected[0:2, 1:3, 2:3] = 1
        np.testing.assert_array_equal(dense, expected)

    def test_weights(self):
        acc = DifferenceArrayND((2, 2))
        acc.add_boxes(np.array([[0, 0], [0, 0]]), np.array([[1, 1], [0, 0]]), np.array([2, 3]))
        dense = acc.materialize()
        assert dense[0, 0] == 5
        assert dense[1, 1] == 2

    def test_empty_batch(self):
        acc = DifferenceArrayND((4, 4))
        acc.add_boxes(np.zeros((0, 2), dtype=np.int64), np.zeros((0, 2), dtype=np.int64))
        assert acc.materialize().sum() == 0

    def test_validation(self):
        acc = DifferenceArrayND((3, 3))
        with pytest.raises(ValueError):
            DifferenceArrayND(())
        with pytest.raises(ValueError):
            DifferenceArrayND((0, 3))
        with pytest.raises(IndexError):
            acc.add_box([0, 0], [3, 0])
        with pytest.raises(ValueError):
            acc.add_box([2, 0], [1, 0])
        with pytest.raises(ValueError):
            acc.add_boxes(np.zeros((2, 3), dtype=np.int64), np.zeros((2, 3), dtype=np.int64))
        with pytest.raises(ValueError):
            acc.add_boxes(
                np.zeros((2, 2), dtype=np.int64),
                np.zeros((2, 2), dtype=np.int64),
                weights=np.zeros(3),
            )


@st.composite
def nd_boxes(draw):
    ndim = draw(st.integers(1, 4))
    shape = tuple(draw(st.integers(1, 5)) for _ in range(ndim))
    num = draw(st.integers(0, 15))
    boxes = []
    for _ in range(num):
        lo = [draw(st.integers(0, s - 1)) for s in shape]
        hi = [draw(st.integers(lo[k], shape[k] - 1)) for k in range(ndim)]
        boxes.append((lo, hi))
    return shape, boxes


@settings(max_examples=120)
@given(nd_boxes())
def test_matches_naive(case):
    shape, boxes = case
    acc = DifferenceArrayND(shape)
    naive = np.zeros(shape, dtype=np.int64)
    for lo, hi in boxes:
        acc.add_box(lo, hi)
        naive[tuple(slice(a, b + 1) for a, b in zip(lo, hi))] += 1
    np.testing.assert_array_equal(acc.materialize(), naive)


@settings(max_examples=60)
@given(nd_boxes())
def test_2d_agrees_with_specialised(case):
    shape, boxes = case
    if len(shape) != 2:
        return
    nd = DifferenceArrayND(shape)
    d2 = DifferenceArray2D(shape)
    for lo, hi in boxes:
        nd.add_box(lo, hi)
        d2.add_box(lo[0], hi[0], lo[1], hi[1])
    np.testing.assert_array_equal(nd.materialize(), d2.materialize())
