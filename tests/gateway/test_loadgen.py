"""The closed-loop load generator and its report arithmetic."""

import asyncio

import numpy as np
import pytest

from repro.euler.histogram import EulerHistogram
from repro.euler.simple import SEulerApprox
from repro.gateway.catalog import TenantCatalog
from repro.gateway.gateway import Gateway
from repro.geometry.rect import Rect
from repro.grid.grid import Grid
from repro.workloads.loadgen import LoadgenReport, percentile, run_loadgen
from repro.workloads.sessions import generate_tenant_sessions

from tests.conftest import random_dataset

GRID = Grid(Rect(0.0, 32.0, 0.0, 32.0), 32, 32)


@pytest.fixture(scope="module")
def estimator():
    data = random_dataset(np.random.default_rng(13), GRID, 400)
    return SEulerApprox(EulerHistogram.from_dataset(data, GRID))


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 99) == 0.0

    def test_nearest_rank(self):
        samples = [0.1, 0.2, 0.3, 0.4, 0.5]
        assert percentile(samples, 0) == 0.1
        assert percentile(samples, 50) == 0.3
        assert percentile(samples, 100) == 0.5

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestTenantSessions:
    def test_reproducible_and_round_robin(self):
        a = generate_tenant_sessions(
            GRID, tenants=["t1", "t2"], dataset="main", sessions_per_tenant=3, seed=9
        )
        b = generate_tenant_sessions(
            GRID, tenants=["t1", "t2"], dataset="main", sessions_per_tenant=3, seed=9
        )
        assert a == b
        assert [p.tenant for p in a[:4]] == ["t1", "t2", "t1", "t2"]
        # Distinct session ids -> distinct viewport-delta state.
        assert len({p.session_id for p in a}) == len(a)

    def test_tenants_get_different_traces(self):
        plans = generate_tenant_sessions(
            GRID, tenants=["t1", "t2"], dataset="main", sessions_per_tenant=2, seed=0
        )
        t1 = [p.session for p in plans if p.tenant == "t1"]
        t2 = [p.session for p in plans if p.tenant == "t2"]
        assert t1 != t2

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_tenant_sessions(GRID, tenants=[], dataset="main")
        with pytest.raises(ValueError):
            generate_tenant_sessions(
                GRID, tenants=["t"], dataset="main", sessions_per_tenant=0
            )


class TestReport:
    def test_rates_and_tallies(self):
        report = LoadgenReport(sessions=2)

        class Resp:
            def __init__(self, status, code=None, coalesced=False, vf=1.0):
                self.status = status
                self.error = {"code": code} if code else None
                self.coalesced = coalesced
                self.total_s = 0.1
                self.valid_fraction = vf

            @property
            def ok(self):
                return self.error is None

            @property
            def shed(self):
                return self.error is not None and self.error.get("code") in (
                    "overloaded",
                    "tenant_quota_exceeded",
                )

        report.record(Resp("ok"))
        report.record(Resp("degraded", vf=0.5, coalesced=True))
        report.record(Resp("error", code="overloaded"))
        report.record(Resp("error", code="tenant_quota_exceeded"))
        report.record(Resp("error", code="invalid_region"))
        assert report.requests == 5
        assert report.served == 2
        assert report.shed == 1
        assert report.quota_rejected == 1
        assert report.errors == 1
        assert report.shed_rate == pytest.approx(2 / 5)
        assert report.coalesce_rate == pytest.approx(1 / 2)
        assert report.degraded_tile_fraction == pytest.approx(0.25)
        doc = report.to_dict()
        assert doc["requests"] == 5
        assert doc["latency_p50_s"] > 0

    def test_empty_report_has_sane_zeros(self):
        report = LoadgenReport()
        assert report.shed_rate == 0.0
        assert report.coalesce_rate == 0.0
        assert report.degraded_tile_fraction == 0.0
        assert report.throughput_rps == 0.0


class TestRunLoadgen:
    def test_closed_loop_replay_serves_every_interaction(self, estimator):
        catalog = TenantCatalog()
        catalog.register_dataset("main", estimator, GRID)
        catalog.add_tenant("t1")
        catalog.add_tenant("t2")
        plans = generate_tenant_sessions(
            GRID,
            tenants=["t1", "t2"],
            dataset="main",
            sessions_per_tenant=4,
            seed=2,
            pan_prob=0.5,
        )
        expected = sum(len(p.session) for p in plans)

        async def main():
            gateway = Gateway(catalog, workers=2, max_pending=32)
            try:
                return await run_loadgen(gateway, plans, deadline_s=10.0)
            finally:
                await gateway.close()

        report = asyncio.run(main())
        assert report.sessions == len(plans)
        assert report.requests == expected
        assert report.served == expected
        assert report.errors == 0
        assert report.latency(99) > 0
        assert report.elapsed_s > 0

    def test_max_concurrent_bounds_active_sessions(self, estimator):
        catalog = TenantCatalog()
        catalog.register_dataset("main", estimator, GRID)
        catalog.add_tenant("t1")
        plans = generate_tenant_sessions(
            GRID, tenants=["t1"], dataset="main", sessions_per_tenant=6, seed=4
        )

        async def main():
            gateway = Gateway(catalog, workers=1, max_pending=64)
            try:
                return await run_loadgen(gateway, plans, max_concurrent=2)
            finally:
                await gateway.close()

        report = asyncio.run(main())
        assert report.served == report.requests
        assert report.errors == 0

    def test_negative_think_time_rejected(self, estimator):
        catalog = TenantCatalog()
        catalog.register_dataset("main", estimator, GRID)
        catalog.add_tenant("t1")

        async def main():
            gateway = Gateway(catalog, workers=1)
            try:
                await run_loadgen(gateway, [], think_time_s=-1.0)
            finally:
                await gateway.close()

        with pytest.raises(ValueError):
            asyncio.run(main())
