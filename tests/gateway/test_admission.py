"""Admission control: the window, the degrade curve, the triage rules.

Everything runs on a fake clock -- the controller is pure logic, which is
the point of keeping it out of the event loop.
"""

import pytest

from repro.gateway.admission import (
    AdmissionController,
    ServiceTimeWindow,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def make_controller(clock=None, **kwargs):
    clock = clock or FakeClock()
    window = ServiceTimeWindow(clock=clock)
    defaults = dict(workers=2, max_pending=8, window=window)
    defaults.update(kwargs)
    return AdmissionController(**defaults), window, clock


class TestServiceTimeWindow:
    def test_empty_window_returns_optimistic_prior(self):
        window = ServiceTimeWindow(clock=FakeClock(), default_p50=0.05)
        assert window.p50() == 0.05
        assert window.quantile(0.99) == 0.05
        assert len(window) == 0

    def test_p50_is_the_median_of_observations(self):
        window = ServiceTimeWindow(clock=FakeClock())
        for s in (0.1, 0.2, 0.3):
            window.observe(s)
        assert window.p50() == pytest.approx(0.2)
        assert len(window) == 3

    def test_old_samples_age_out(self):
        clock = FakeClock()
        window = ServiceTimeWindow(window_s=10.0, clock=clock, default_p50=0.01)
        window.observe(5.0)  # a slow spell
        clock.advance(11.0)
        window.observe(0.1)  # the current regime
        assert window.p50() == pytest.approx(0.1)
        assert len(window) == 1

    def test_all_samples_aged_out_falls_back_to_prior(self):
        clock = FakeClock()
        window = ServiceTimeWindow(window_s=1.0, clock=clock, default_p50=0.02)
        window.observe(9.0)
        clock.advance(2.0)
        assert window.p50() == 0.02

    def test_max_samples_bounds_memory(self):
        window = ServiceTimeWindow(max_samples=4, clock=FakeClock())
        for s in (1.0, 1.0, 1.0, 0.1, 0.1, 0.1, 0.1):
            window.observe(s)
        assert window.p50() == pytest.approx(0.1)
        assert len(window) == 4

    def test_quantile_nearest_rank(self):
        window = ServiceTimeWindow(clock=FakeClock())
        for s in (0.1, 0.2, 0.3, 0.4, 0.5):
            window.observe(s)
        assert window.quantile(0.0) == pytest.approx(0.1)
        assert window.quantile(1.0) == pytest.approx(0.5)
        assert window.quantile(0.5) == pytest.approx(0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            ServiceTimeWindow(window_s=0.0)
        with pytest.raises(ValueError):
            ServiceTimeWindow(max_samples=0)
        with pytest.raises(ValueError):
            ServiceTimeWindow(default_p50=0.0)
        window = ServiceTimeWindow(clock=FakeClock())
        with pytest.raises(ValueError):
            window.observe(-1.0)
        with pytest.raises(ValueError):
            window.quantile(1.5)


class TestWaitEstimate:
    def test_idle_gateway_waits_nothing(self):
        controller, _, _ = make_controller(workers=2)
        assert controller.estimated_wait(pending=0) == 0.0
        assert controller.estimated_wait(pending=1) == 0.0

    def test_wait_grows_with_queue_depth(self):
        controller, window, _ = make_controller(workers=2)
        window.observe(0.1)
        # pending=2: one request must retire before a worker frees up.
        assert controller.estimated_wait(pending=2) == pytest.approx(0.05)
        assert controller.estimated_wait(pending=5) == pytest.approx(0.2)


class TestDegradeCurve:
    def test_full_quality_below_degrade_start(self):
        controller, _, _ = make_controller(
            max_pending=10, degrade_start=0.5, degrade_floor=0.25
        )
        assert controller.degrade_factor(pending=0) == 1.0
        assert controller.degrade_factor(pending=5) == 1.0

    def test_linear_ramp_to_floor(self):
        controller, _, _ = make_controller(
            max_pending=10, degrade_start=0.5, degrade_floor=0.25
        )
        # Midway between start (0.5) and full (1.0) pressure.
        mid = controller.degrade_factor(pending=7)
        assert 0.25 < mid < 1.0
        assert controller.degrade_factor(pending=10) == pytest.approx(0.25)

    def test_monotone_nonincreasing(self):
        controller, _, _ = make_controller(max_pending=10)
        factors = [controller.degrade_factor(p) for p in range(11)]
        assert factors == sorted(factors, reverse=True)


class TestTriage:
    def test_unbounded_budget_is_always_admitted_below_queue_full(self):
        controller, window, _ = make_controller(max_pending=4)
        window.observe(10.0)  # terrible service times
        decision = controller.triage(budget=None, pending=3)
        assert decision.admitted
        assert decision.effective_deadline is None

    def test_queue_full_sheds_regardless_of_budget(self):
        controller, _, _ = make_controller(max_pending=4)
        decision = controller.triage(budget=None, pending=4)
        assert not decision.admitted
        assert decision.reason == "queue_full"
        assert decision.retry_after_s > 0

    def test_budget_covering_wait_is_admitted_at_full_quality(self):
        controller, window, _ = make_controller(max_pending=10)
        window.observe(0.1)
        decision = controller.triage(budget=5.0, pending=0)
        assert decision.admitted
        assert decision.degrade_factor == 1.0
        assert decision.effective_deadline == pytest.approx(5.0)

    def test_budget_below_wait_plus_service_is_shed_with_retry_hint(self):
        controller, window, _ = make_controller(workers=1, max_pending=100)
        window.observe(1.0)
        # pending=10 -> wait = 10s; a 2s budget cannot cover it.
        decision = controller.triage(budget=2.0, pending=10)
        assert not decision.admitted
        assert decision.reason == "deadline"
        # Hint covers the excess wait plus one service time.
        assert decision.retry_after_s == pytest.approx(8.0 + 1.0)

    def test_degraded_admission_keeps_deadline_above_predicted_wait(self):
        controller, window, _ = make_controller(
            workers=1, max_pending=10, degrade_start=0.1, degrade_floor=0.2
        )
        window.observe(0.5)
        # Heavy pressure: pending=9 -> wait = 4.5s; budget 10s covers it.
        decision = controller.triage(budget=10.0, pending=9)
        assert decision.admitted
        assert decision.degrade_factor < 1.0
        # The degraded deadline still clears the queue wait: the request
        # must not reach its worker already expired.
        assert decision.effective_deadline > decision.estimated_wait_s
        assert decision.effective_deadline < 10.0

    def test_zero_budget_admitted_only_when_a_worker_is_idle(self):
        controller, window, _ = make_controller(workers=1, max_pending=10)
        window.observe(0.5)
        idle = controller.triage(budget=0.0, pending=0)
        assert idle.admitted
        assert idle.effective_deadline == 0.0
        busy = controller.triage(budget=0.0, pending=3)
        assert not busy.admitted
        assert busy.reason == "deadline"

    def test_coarse_capable_turns_a_deadline_shed_into_admission(self):
        controller, window, _ = make_controller(
            workers=1, max_pending=100, degrade_floor=0.25
        )
        window.observe(1.0)
        # pending=10 -> wait = 10s; a 12s budget fails the fine-path
        # triage (wait + p50 >= budget is false here... use 10.5s).
        shed = controller.triage(budget=10.5, pending=10)
        assert not shed.admitted and shed.reason == "deadline"
        coarse = controller.triage(budget=10.5, pending=10, coarse_capable=True)
        assert coarse.admitted
        assert coarse.coarse
        assert coarse.effective_deadline == pytest.approx(10.5)
        assert coarse.degrade_factor == pytest.approx(0.25)

    def test_coarse_capable_cannot_save_a_budget_below_the_wait(self):
        controller, window, _ = make_controller(workers=1, max_pending=100)
        window.observe(1.0)
        # wait = 10s; a 2s budget expires in queue either way.
        decision = controller.triage(budget=2.0, pending=10, coarse_capable=True)
        assert not decision.admitted
        assert decision.reason == "deadline"

    def test_fine_path_admission_is_not_marked_coarse(self):
        controller, window, _ = make_controller(max_pending=10)
        window.observe(0.1)
        decision = controller.triage(budget=5.0, pending=0, coarse_capable=True)
        assert decision.admitted
        assert not decision.coarse
        assert decision.degrade_factor == 1.0

    def test_negative_budget_rejected(self):
        controller, _, _ = make_controller()
        with pytest.raises(ValueError):
            controller.triage(budget=-1.0, pending=0)

    def test_constructor_validation(self):
        window = ServiceTimeWindow(clock=FakeClock())
        with pytest.raises(ValueError):
            AdmissionController(workers=0, max_pending=1, window=window)
        with pytest.raises(ValueError):
            AdmissionController(workers=1, max_pending=0, window=window)
        with pytest.raises(ValueError):
            AdmissionController(
                workers=1, max_pending=1, window=window, degrade_start=0.0
            )
        with pytest.raises(ValueError):
            AdmissionController(
                workers=1, max_pending=1, window=window, degrade_floor=1.5
            )
        with pytest.raises(ValueError):
            AdmissionController(
                workers=1, max_pending=1, window=window, triage_margin=0.0
            )
