"""The JSON-lines TCP surface: framing, parsing, structured errors."""

import asyncio
import json

import numpy as np
import pytest

from repro.errors import InvalidRegionError
from repro.euler.histogram import EulerHistogram
from repro.euler.simple import SEulerApprox
from repro.gateway.catalog import TenantCatalog
from repro.gateway.gateway import Gateway
from repro.gateway.server import GatewayServer, parse_request
from repro.geometry.rect import Rect
from repro.grid.grid import Grid
from repro.grid.tiles_math import TileQuery

from tests.conftest import random_dataset

GRID = Grid(Rect(0.0, 16.0, 0.0, 16.0), 16, 16)


@pytest.fixture(scope="module")
def estimator():
    data = random_dataset(np.random.default_rng(7), GRID, 300)
    return SEulerApprox(EulerHistogram.from_dataset(data, GRID))


class TestParseRequest:
    def test_world_rect_region(self):
        req = parse_request(
            {
                "tenant": "acme",
                "dataset": "main",
                "region": [0, 16, 0, 16],
                "rows": 2,
                "cols": 2,
            }
        )
        assert req.region == Rect(0.0, 16.0, 0.0, 16.0)
        assert req.deadline_s is None
        assert req.relation == "overlap"
        assert req.session == "default"

    def test_cell_span_region(self):
        req = parse_request(
            {
                "tenant": "acme",
                "dataset": "main",
                "region": {"cells": [0, 8, 0, 8]},
                "rows": 2,
                "cols": 2,
                "deadline_s": 1.5,
                "session": "u1",
            }
        )
        assert req.region == TileQuery(0, 8, 0, 8)
        assert req.deadline_s == 1.5
        assert req.session == "u1"

    @pytest.mark.parametrize(
        "doc",
        [
            "not a dict",
            {},
            {"tenant": "a", "dataset": "d", "region": [0, 16], "rows": 2, "cols": 2},
            {"tenant": "a", "dataset": "d", "region": "x", "rows": 2, "cols": 2},
            {"tenant": "a", "dataset": "d", "region": [0, 16, 0, 16], "rows": "x", "cols": 2},
            {"tenant": "a", "dataset": "d", "region": {"cells": [0]}, "rows": 2, "cols": 2},
            {"tenant": "a", "dataset": "d", "region": [0, 16, 0, 16], "rows": 2, "cols": 2, "deadline_s": "soon"},
        ],
    )
    def test_malformed_documents_raise_invalid_region(self, doc):
        with pytest.raises(InvalidRegionError):
            parse_request(doc)


class TestServer:
    def run_session(self, estimator, lines):
        """Start a server, send ``lines``, return one response per line."""

        async def main():
            catalog = TenantCatalog()
            catalog.register_dataset("main", estimator, GRID)
            catalog.add_tenant("acme")
            gateway = Gateway(catalog, workers=2, max_pending=8)
            server = GatewayServer(gateway, port=0)
            await server.start()
            try:
                reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
                for line in lines:
                    payload = line if isinstance(line, (bytes,)) else (
                        line if isinstance(line, str) else json.dumps(line)
                    )
                    if isinstance(payload, str):
                        payload = payload.encode()
                    writer.write(payload + b"\n")
                await writer.drain()
                responses = [json.loads(await reader.readline()) for _ in lines]
                writer.close()
                await writer.wait_closed()
                return responses
            finally:
                await server.close()
                await gateway.close()

        return asyncio.run(main())

    def test_round_trip_both_region_forms(self, estimator):
        ok_rect, ok_cells = self.run_session(
            estimator,
            [
                {"tenant": "acme", "dataset": "main", "region": [0, 16, 0, 16], "rows": 2, "cols": 2, "deadline_s": 5.0},
                {"tenant": "acme", "dataset": "main", "region": {"cells": [0, 16, 0, 16]}, "rows": 2, "cols": 2},
            ],
        )
        assert ok_rect["status"] == "ok"
        assert ok_cells["status"] == "ok"
        # Same region either way: identical counts over the wire.
        assert ok_rect["counts"] == ok_cells["counts"]
        assert ok_rect["valid_fraction"] == 1.0

    def test_bad_lines_get_structured_errors_not_disconnects(self, estimator):
        responses = self.run_session(
            estimator,
            [
                "this is not json",
                {"tenant": "acme"},  # missing fields
                {"tenant": "ghost", "dataset": "main", "region": [0, 16, 0, 16], "rows": 2, "cols": 2},
                {"tenant": "acme", "dataset": "main", "region": [0, 16, 0, 16], "rows": 2, "cols": 2},
            ],
        )
        codes = [r.get("error", {}).get("code") for r in responses]
        assert codes[:3] == ["invalid_region"] * 3
        assert responses[3]["status"] == "ok"

    def test_port_property_requires_started_server(self, estimator):
        catalog = TenantCatalog()
        catalog.register_dataset("main", estimator, GRID)
        catalog.add_tenant("acme")

        async def main():
            gateway = Gateway(catalog, workers=1, max_pending=2)
            server = GatewayServer(gateway, port=0)
            with pytest.raises(RuntimeError):
                server.port
            await server.start()
            with pytest.raises(RuntimeError):
                await server.start()
            port = server.port
            await server.close()
            await server.close()  # idempotent
            await gateway.close()
            return port

        assert asyncio.run(main()) > 0
