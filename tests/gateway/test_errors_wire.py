"""The error taxonomy survives the trip through structured responses.

Satellite guarantee: a remote client can re-raise exactly the exception
the gateway caught -- type, message and structured fields included.
"""

import pytest

from repro.errors import (
    BrowseError,
    DeadlineExceededError,
    EstimatorFailedError,
    InvalidRegionError,
    OverloadedError,
    SummaryCorruptError,
    TenantQuotaExceededError,
)
from repro.gateway.gateway import decode_error, encode_error

ROUND_TRIPS = [
    BrowseError("something structured"),
    InvalidRegionError("bad region"),
    DeadlineExceededError("too slow", answered_rows=3, total_rows=8),
    EstimatorFailedError("all tiers down"),
    SummaryCorruptError("checksum mismatch"),
    OverloadedError("shed", retry_after_s=0.25),
    OverloadedError("shutdown shed", retry_after_s=None),
    TenantQuotaExceededError("quota", retry_after_s=0.1, tenant="acme"),
]


@pytest.mark.parametrize("exc", ROUND_TRIPS, ids=lambda e: type(e).__name__)
def test_encode_decode_round_trip(exc):
    doc = encode_error(exc)
    rebuilt = decode_error(doc)
    assert type(rebuilt) is type(exc)
    assert str(rebuilt) == str(exc)


def test_structured_fields_survive():
    deadline = decode_error(
        encode_error(DeadlineExceededError("late", answered_rows=5, total_rows=9))
    )
    assert deadline.answered_rows == 5
    assert deadline.total_rows == 9

    shed = decode_error(encode_error(OverloadedError("shed", retry_after_s=1.5)))
    assert shed.retry_after_s == 1.5

    quota = decode_error(
        encode_error(TenantQuotaExceededError("q", retry_after_s=0.2, tenant="beta"))
    )
    assert quota.tenant == "beta"
    assert quota.retry_after_s == 0.2


def test_subclass_encodes_as_its_own_code_not_the_parents():
    assert encode_error(TenantQuotaExceededError("q"))["code"] == "tenant_quota_exceeded"
    assert encode_error(OverloadedError("o"))["code"] == "overloaded"
    assert encode_error(InvalidRegionError("i"))["code"] == "invalid_region"


def test_decoded_errors_keep_taxonomy_relationships():
    quota = decode_error({"code": "tenant_quota_exceeded", "message": "q"})
    # One except clause for both backpressure kinds -- the wire trip
    # must not break the inheritance contract.
    assert isinstance(quota, OverloadedError)
    assert isinstance(quota, BrowseError)
    invalid = decode_error({"code": "invalid_region", "message": "i"})
    assert isinstance(invalid, ValueError)


def test_unknown_code_degrades_to_base_browse_error():
    exc = decode_error({"code": "???", "message": "m"})
    assert type(exc) is BrowseError
    assert str(exc) == "m"
