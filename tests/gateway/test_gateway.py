"""The asyncio gateway end to end: coalescing, quotas, shedding,
degradation, cancellation and shutdown.

Concurrency choreography uses gate events (estimators that block until
released), never bare sleeps, so every scenario is deterministic; the
one timing-based test (the dispatch backstop) uses margins an order of
magnitude above scheduler jitter.
"""

import asyncio
import threading

import numpy as np
import pytest

from repro.cache import TileResultCache
from repro.euler.histogram import EulerHistogram
from repro.euler.simple import SEulerApprox
from repro.gateway.admission import AdmissionController, ServiceTimeWindow
from repro.gateway.catalog import TenantCatalog
from repro.gateway.gateway import Gateway, TileRequest
from repro.geometry.rect import Rect
from repro.grid.grid import Grid
from repro.grid.tiles_math import TileQuery
from repro.obs.instruments import BrowseInstrumentation

from tests.conftest import random_dataset

GRID = Grid(Rect(0.0, 16.0, 0.0, 16.0), 16, 16)
REGION = TileQuery(0, 16, 0, 16)
OTHER_REGION = TileQuery(0, 8, 0, 8)


@pytest.fixture(scope="module")
def estimator():
    data = random_dataset(np.random.default_rng(5), GRID, 400)
    return SEulerApprox(EulerHistogram.from_dataset(data, GRID))


class GatedEstimator:
    """Delegates to a real estimator after a gate opens.

    ``entered`` is set when a request reaches the estimator, so tests
    can wait for "the worker is now occupied" without sleeping.
    """

    def __init__(self, inner) -> None:
        self._inner = inner
        self.gate = threading.Event()
        self.entered = threading.Event()

    @property
    def name(self) -> str:
        return "gated"

    def _block(self) -> None:
        self.entered.set()
        assert self.gate.wait(timeout=10.0), "test gate never opened"

    def estimate(self, query):
        self._block()
        return self._inner.estimate(query)

    def estimate_batch(self, queries):
        self._block()
        return self._inner.estimate_batch(queries)


def make_gateway(
    estimator,
    *,
    tenants=(("acme", 0),),
    cache=None,
    workers=2,
    max_pending=8,
    coalesce=True,
    admission=None,
    instruments=None,
):
    catalog = TenantCatalog(instruments=instruments)
    catalog.register_dataset("main", estimator, GRID, cache=cache)
    for name, quota in tenants:
        catalog.add_tenant(name, quota=quota)
    return Gateway(
        catalog,
        workers=workers,
        max_pending=max_pending,
        coalesce=coalesce,
        admission=admission,
        instruments=instruments,
    )


def request(region=REGION, *, tenant="acme", deadline=None, session="default", rows=4, cols=4):
    return TileRequest(
        tenant=tenant,
        dataset="main",
        region=region,
        rows=rows,
        cols=cols,
        deadline_s=deadline,
        session=session,
    )


async def wait_for(predicate, timeout=5.0):
    """Poll a predicate from the event loop without blocking it."""
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError("condition never became true")
        await asyncio.sleep(0.005)


class TestServing:
    def test_ok_response_matches_the_service_directly(self, estimator):
        async def main():
            gateway = make_gateway(estimator)
            try:
                response = await gateway.submit(request())
            finally:
                await gateway.close()
            return response

        response = asyncio.run(main())
        assert response.status == "ok"
        assert response.ok and not response.shed
        assert response.result.is_complete
        # The gateway serves exactly what the library computes.
        expected = estimator.estimate_batch  # sanity: same estimator object
        assert expected is not None
        direct = response.result.counts
        assert direct.shape == (4, 4)
        assert np.isfinite(direct).all()

    def test_wire_form_is_json_safe(self, estimator):
        import json

        async def main():
            gateway = make_gateway(estimator)
            try:
                return await gateway.submit(request())
            finally:
                await gateway.close()

        doc = asyncio.run(main()).to_wire()
        encoded = json.loads(json.dumps(doc))
        assert encoded["status"] == "ok"
        assert encoded["valid_fraction"] == 1.0
        assert len(encoded["counts"]) == 4

    def test_unknown_tenant_and_dataset_are_structured_errors(self, estimator):
        async def main():
            gateway = make_gateway(estimator)
            try:
                ghost = await gateway.submit(request(tenant="ghost"))
                wrong = await gateway.submit(
                    TileRequest(
                        tenant="acme", dataset="nope", region=REGION, rows=2, cols=2
                    )
                )
            finally:
                await gateway.close()
            return ghost, wrong

        ghost, wrong = asyncio.run(main())
        assert ghost.status == "error"
        assert ghost.error["code"] == "invalid_region"
        assert wrong.error["code"] == "invalid_region"

    def test_metrics_families_record_outcomes(self, estimator):
        instruments = BrowseInstrumentation()

        async def main():
            gateway = make_gateway(estimator, instruments=instruments)
            try:
                await gateway.submit(request())
                await gateway.submit(request(tenant="ghost"))
            finally:
                await gateway.close()

        asyncio.run(main())
        ok = instruments.gateway_requests.labels(tenant="acme", outcome="ok")
        err = instruments.gateway_requests.labels(tenant="ghost", outcome="error")
        assert ok.value == 1
        assert err.value == 1


class TestCoalescing:
    def test_identical_requests_share_one_computation(self, estimator):
        gated = GatedEstimator(estimator)

        async def main():
            gateway = make_gateway(gated)
            try:
                waiters = [
                    asyncio.ensure_future(gateway.submit(request()))
                    for _ in range(4)
                ]
                await wait_for(gated.entered.is_set)
                gated.gate.set()
                return await asyncio.gather(*waiters), gateway.stats.copy()
            finally:
                await gateway.close()

        responses, stats = asyncio.run(main())
        assert [r.status for r in responses] == ["ok"] * 4
        assert stats["coalesced_leaders"] == 1
        assert stats["coalesced_followers"] == 3
        assert stats["completed"] == 1
        leaders = [r for r in responses if not r.coalesced]
        followers = [r for r in responses if r.coalesced]
        assert len(leaders) == 1 and len(followers) == 3

    def test_coalesced_raster_is_bit_identical_to_uncoalesced(self, estimator):
        async def coalesced():
            gateway = make_gateway(estimator)
            try:
                return await asyncio.gather(*(gateway.submit(request()) for _ in range(3)))
            finally:
                await gateway.close()

        async def uncoalesced():
            gateway = make_gateway(estimator, coalesce=False)
            try:
                return await asyncio.gather(*(gateway.submit(request()) for _ in range(3)))
            finally:
                await gateway.close()

        shared = asyncio.run(coalesced())
        independent = asyncio.run(uncoalesced())
        reference = independent[0].result.counts
        for response in shared + independent:
            assert response.status == "ok"
            assert np.array_equal(response.result.counts, reference)

    def test_different_regions_are_not_coalesced(self, estimator):
        gated = GatedEstimator(estimator)

        async def main():
            gateway = make_gateway(gated, workers=2)
            try:
                a = asyncio.ensure_future(gateway.submit(request(REGION)))
                b = asyncio.ensure_future(gateway.submit(request(OTHER_REGION)))
                await wait_for(gated.entered.is_set)
                gated.gate.set()
                await asyncio.gather(a, b)
                return gateway.stats.copy()
            finally:
                await gateway.close()

        stats = asyncio.run(main())
        assert stats["coalesced_leaders"] == 2
        assert stats["coalesced_followers"] == 0

    def test_coalescing_disabled_runs_each_request_alone(self, estimator):
        async def main():
            gateway = make_gateway(estimator, coalesce=False)
            try:
                await asyncio.gather(*(gateway.submit(request()) for _ in range(3)))
                return gateway.stats.copy()
            finally:
                await gateway.close()

        stats = asyncio.run(main())
        assert stats["coalesced_followers"] == 0
        assert stats["completed"] == 3

    def test_cancelled_leader_waiter_does_not_kill_followers(self, estimator):
        gated = GatedEstimator(estimator)

        async def main():
            gateway = make_gateway(gated)
            try:
                leader = asyncio.ensure_future(gateway.submit(request()))
                await wait_for(gated.entered.is_set)
                follower = asyncio.ensure_future(gateway.submit(request()))
                # Let the follower join the in-flight computation.
                await wait_for(lambda: gateway.stats["coalesced_followers"] == 1)
                leader.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await leader
                gated.gate.set()
                return await follower
            finally:
                await gateway.close()

        response = asyncio.run(main())
        assert response.status == "ok"
        assert response.coalesced
        assert response.result.is_complete


class TestQuota:
    def test_quota_exhaustion_is_a_structured_per_tenant_rejection(self, estimator):
        gated = GatedEstimator(estimator)

        async def main():
            gateway = make_gateway(
                gated, tenants=(("acme", 1), ("beta", 0)), workers=2
            )
            try:
                leader = asyncio.ensure_future(gateway.submit(request()))
                await wait_for(gated.entered.is_set)
                rejected = await gateway.submit(request(OTHER_REGION))
                # The neighbour tenant is untouched by acme's quota.
                neighbour = asyncio.ensure_future(
                    gateway.submit(request(OTHER_REGION, tenant="beta"))
                )
                await asyncio.sleep(0.01)
                gated.gate.set()
                return rejected, await leader, await neighbour
            finally:
                await gateway.close()

        rejected, leader, neighbour = asyncio.run(main())
        assert rejected.status == "error"
        assert rejected.error["code"] == "tenant_quota_exceeded"
        assert rejected.error["tenant"] == "acme"
        assert rejected.error["retry_after_s"] is not None
        assert rejected.shed
        assert leader.status == "ok"
        assert neighbour.status == "ok"

    def test_quota_slot_released_on_cancellation(self, estimator):
        gated = GatedEstimator(estimator)

        async def main():
            gateway = make_gateway(gated, tenants=(("acme", 1),))
            tenant = gateway.catalog.tenant("acme")
            try:
                waiter = asyncio.ensure_future(gateway.submit(request()))
                await wait_for(lambda: tenant.active == 1)
                waiter.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await waiter
                # The slot came back the moment the waiter died, while
                # the shared computation is still running.
                assert tenant.active == 0
                gated.gate.set()
                follow_up = await gateway.submit(request())
                return follow_up
            finally:
                await gateway.close()

        response = asyncio.run(main())
        assert response.status == "ok"

    def test_quota_slot_released_after_error(self, estimator):
        async def main():
            gateway = make_gateway(estimator, tenants=(("acme", 1),))
            tenant = gateway.catalog.tenant("acme")
            try:
                bad = TileRequest(
                    tenant="acme", dataset="main", region=REGION, rows=3, cols=3
                )  # 3 does not divide 16 -> invalid partition
                response = await gateway.submit(bad)
                return response, tenant.active
            finally:
                await gateway.close()

        response, active = asyncio.run(main())
        assert response.status == "error"
        assert active == 0


class TestSheddingAndDegradation:
    def test_queue_full_sheds_with_retry_hint(self, estimator):
        gated = GatedEstimator(estimator)

        async def main():
            gateway = make_gateway(gated, workers=1, max_pending=1)
            try:
                leader = asyncio.ensure_future(gateway.submit(request()))
                await wait_for(gated.entered.is_set)
                shed = await gateway.submit(request(OTHER_REGION))
                gated.gate.set()
                await leader
                return shed, gateway.stats.copy()
            finally:
                await gateway.close()

        shed, stats = asyncio.run(main())
        assert shed.status == "error"
        assert shed.error["code"] == "overloaded"
        assert shed.error["retry_after_s"] > 0
        assert stats["shed_queue_full"] == 1

    def test_budget_below_predicted_wait_is_shed_not_queued(self, estimator):
        gated = GatedEstimator(estimator)
        window = ServiceTimeWindow()
        window.observe(1.0)  # the regime: one second per request
        admission = AdmissionController(workers=1, max_pending=64, window=window)

        async def main():
            gateway = make_gateway(gated, workers=1, admission=admission)
            try:
                leader = asyncio.ensure_future(gateway.submit(request()))
                await wait_for(gated.entered.is_set)
                # Predicted wait is ~1s; a 0.2s budget cannot cover it.
                shed = await gateway.submit(request(OTHER_REGION, deadline=0.2))
                gated.gate.set()
                await leader
                return shed, gateway.stats.copy()
            finally:
                await gateway.close()

        shed, stats = asyncio.run(main())
        assert shed.error["code"] == "overloaded"
        assert stats["shed_deadline"] == 1
        assert stats["shed_dispatch"] == 0  # shed at triage, not after queueing

    def test_dispatch_backstop_sheds_instead_of_serving_expired(self, estimator):
        gated = GatedEstimator(estimator)

        async def main():
            gateway = make_gateway(gated, workers=1)
            try:
                leader = asyncio.ensure_future(gateway.submit(request()))
                await wait_for(gated.entered.is_set)
                # Admitted optimistically (cold window predicts ~20ms),
                # but the single worker stays blocked well past the
                # 0.15s budget.
                late = asyncio.ensure_future(
                    gateway.submit(request(OTHER_REGION, deadline=0.15))
                )
                await asyncio.sleep(0.3)
                gated.gate.set()
                return await late, await leader, gateway.stats.copy()
            finally:
                await gateway.close()

        late, leader, stats = asyncio.run(main())
        assert leader.status == "ok"
        assert late.status == "error"
        assert late.error["code"] == "overloaded"
        assert late.error["retry_after_s"] is not None
        assert stats["shed_dispatch"] == 1

    def test_degradation_kicks_in_before_shedding(self, estimator):
        window = ServiceTimeWindow()
        admission = AdmissionController(
            workers=2,
            max_pending=4,
            window=window,
            degrade_start=0.25,
            degrade_floor=0.25,
        )
        gated = GatedEstimator(estimator)

        async def main():
            gateway = make_gateway(gated, workers=2, admission=admission)
            try:
                # Occupy the gateway: two leaders block both workers, a
                # third computation queues (pending=3 of 4).
                leaders = [
                    asyncio.ensure_future(
                        gateway.submit(request(TileQuery(0, 16, 0, 4 * (i + 1))))
                    )
                    for i in range(3)
                ]
                await wait_for(gated.entered.is_set)
                await wait_for(lambda: gateway.pending == 3)
                degraded = asyncio.ensure_future(
                    gateway.submit(request(OTHER_REGION, deadline=60.0))
                )
                await wait_for(lambda: gateway.pending == 4)
                gated.gate.set()
                responses = await asyncio.gather(*leaders, degraded)
                return responses, gateway.stats.copy()
            finally:
                await gateway.close()

        responses, stats = asyncio.run(main())
        # Everything was served (possibly partial), nothing shed: the
        # pressure response was degradation, not rejection.
        assert stats["shed_queue_full"] == 0
        assert stats["shed_deadline"] == 0
        assert stats["degraded_admissions"] >= 1
        final = responses[-1]
        assert final.ok
        assert final.degrade_factor < 1.0

    def test_zero_deadline_served_from_cache_when_idle(self, estimator):
        cache = TileResultCache(1 << 20)

        async def main():
            gateway = make_gateway(estimator, cache=cache)
            try:
                warm = await gateway.submit(request(deadline=None))
                free = await gateway.submit(request(deadline=0.0))
                return warm, free, gateway.stats.copy()
            finally:
                await gateway.close()

        warm, free, stats = asyncio.run(main())
        assert warm.status == "ok"
        # Everything the zero-budget request needed was already free.
        assert free.ok
        assert free.result.valid_fraction == 1.0
        assert np.array_equal(free.result.counts, warm.result.counts)
        assert stats["shed_deadline"] == 0

    def test_zero_deadline_cold_returns_empty_partial_not_error(self, estimator):
        async def main():
            gateway = make_gateway(estimator)
            try:
                return await gateway.submit(request(deadline=0.0))
            finally:
                await gateway.close()

        response = asyncio.run(main())
        assert response.status == "degraded"
        assert response.result is not None
        assert response.result.valid_fraction == 0.0
        assert np.isnan(response.result.counts).all()

    def test_zero_deadline_while_busy_is_shed(self, estimator):
        gated = GatedEstimator(estimator)

        async def main():
            gateway = make_gateway(gated, workers=1)
            try:
                leader = asyncio.ensure_future(gateway.submit(request()))
                await wait_for(gated.entered.is_set)
                shed = await gateway.submit(request(OTHER_REGION, deadline=0.0))
                gated.gate.set()
                await leader
                return shed, gateway.stats.copy()
            finally:
                await gateway.close()

        shed, stats = asyncio.run(main())
        assert shed.error["code"] == "overloaded"
        assert stats["shed_deadline"] == 1


class TestShutdown:
    def test_close_is_idempotent_and_rejects_later_requests(self, estimator):
        async def main():
            gateway = make_gateway(estimator)
            await gateway.submit(request())
            await gateway.close()
            await gateway.close()
            return await gateway.submit(request())

        response = asyncio.run(main())
        assert response.status == "error"
        assert response.error["code"] == "overloaded"

    def test_close_cancels_inflight_waiters_with_structured_shutdown(self, estimator):
        gated = GatedEstimator(estimator)

        async def main():
            gateway = make_gateway(gated, workers=1)
            leader = asyncio.ensure_future(gateway.submit(request()))
            await wait_for(gated.entered.is_set)
            closer = asyncio.ensure_future(gateway.close())
            # The executor thread is stuck on the gate; the worker
            # cannot be interrupted, so release it and let close drain.
            await asyncio.sleep(0.02)
            gated.gate.set()
            await closer
            return await leader

        response = asyncio.run(main())
        # The in-flight task was cancelled by close (or finished if the
        # race went the other way); either way the waiter got a
        # structured response, not a bare CancelledError.
        assert response.status in ("ok", "error")
        if response.status == "error":
            assert response.error["code"] == "overloaded"


class TestPyramidDegradation:
    """Degrade-before-shed's second axis: coarse pyramid levels."""

    @pytest.fixture
    def pyramid_parts(self):
        from repro.euler.pyramid import HistogramPyramid

        data = random_dataset(np.random.default_rng(7), GRID, 300)
        estimator = SEulerApprox(EulerHistogram.from_dataset(data, GRID))
        # 16x16 -> 8x8 -> 4x4: coarsest level is 2.
        pyramid = HistogramPyramid(data, GRID, min_cells=4)
        return estimator, pyramid

    def make_pyramid_gateway(self, estimator, pyramid, **kwargs):
        catalog = TenantCatalog()
        catalog.register_dataset("main", estimator, GRID, pyramid=pyramid)
        catalog.add_tenant("acme", quota=0)
        return Gateway(catalog, **kwargs)

    def test_zero_budget_served_coarse_is_degraded_with_level(self, pyramid_parts):
        estimator, pyramid = pyramid_parts

        async def main():
            gateway = self.make_pyramid_gateway(estimator, pyramid)
            try:
                return await gateway.submit(request(rows=8, cols=8, deadline=0.0))
            finally:
                await gateway.close()

        response = asyncio.run(main())
        # Every tile has a value (the coarse prefill), but not at the
        # requested resolution: a complete raster, honestly degraded.
        assert response.status == "degraded"
        assert response.result.is_complete
        assert not response.result.full_resolution
        assert (response.result.levels == 2).all()
        doc = response.to_wire()
        assert doc["coarsest_level"] == 2
        assert doc["valid_fraction"] == 1.0

    def test_full_resolution_response_is_ok_without_level_annotation(self, pyramid_parts):
        estimator, pyramid = pyramid_parts

        async def main():
            gateway = self.make_pyramid_gateway(estimator, pyramid)
            try:
                return await gateway.submit(request(rows=8, cols=8))
            finally:
                await gateway.close()

        response = asyncio.run(main())
        assert response.status == "ok"
        assert response.result.full_resolution
        assert "coarsest_level" not in response.to_wire()

    def _slow_window_admission(self):
        window = ServiceTimeWindow()
        for _ in range(3):
            window.observe(1.0)  # predicted wait: 1s per queued request
        return AdmissionController(workers=1, max_pending=8, window=window)

    def test_coarse_capable_service_admits_where_shed_would_happen(self, pyramid_parts):
        estimator, pyramid = pyramid_parts
        gated = GatedEstimator(estimator)

        async def main():
            gateway = self.make_pyramid_gateway(
                gated, pyramid, workers=1, admission=self._slow_window_admission()
            )
            try:
                leader = asyncio.ensure_future(gateway.submit(request(rows=8, cols=8)))
                await wait_for(gated.entered.is_set)
                # pending=1 -> predicted wait 1s; a 1.5s budget fails the
                # fine-path triage (wait + p50 = 2s) but covers the wait,
                # so the pyramid-backed service is admitted coarse.
                follower = asyncio.ensure_future(
                    gateway.submit(
                        request(OTHER_REGION, rows=4, cols=4, deadline=1.5)
                    )
                )
                await asyncio.sleep(0.01)
                gated.gate.set()
                return await leader, await follower, gateway.stats.copy()
            finally:
                await gateway.close()

        leader, follower, stats = asyncio.run(main())
        assert leader.status == "ok"
        assert follower.ok
        assert stats["coarse_admissions"] == 1
        assert stats["shed_deadline"] == 0

    def test_same_pressure_sheds_without_a_pyramid(self, estimator):
        gated = GatedEstimator(estimator)

        async def main():
            gateway = make_gateway(
                gated, workers=1, admission=self._slow_window_admission()
            )
            try:
                leader = asyncio.ensure_future(gateway.submit(request()))
                await wait_for(gated.entered.is_set)
                follower = asyncio.ensure_future(
                    gateway.submit(
                        request(OTHER_REGION, rows=4, cols=4, deadline=1.5)
                    )
                )
                await asyncio.sleep(0.01)
                gated.gate.set()
                return await leader, await follower, gateway.stats.copy()
            finally:
                await gateway.close()

        leader, follower, stats = asyncio.run(main())
        assert follower.status == "error"
        assert follower.error["code"] == "overloaded"
        assert stats["shed_deadline"] == 1
        assert stats["coarse_admissions"] == 0
