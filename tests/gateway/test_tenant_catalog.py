"""Tenant catalog: registration, isolation, quotas, lifecycle."""

import numpy as np
import pytest

from repro.browse.resilience import ResilientBrowsingService
from repro.errors import InvalidRegionError
from repro.euler.histogram import EulerHistogram
from repro.euler.simple import SEulerApprox
from repro.gateway.catalog import TenantCatalog, TenantState
from repro.geometry.rect import Rect
from repro.grid.grid import Grid

from tests.conftest import random_dataset


@pytest.fixture(scope="module")
def estimator():
    grid = Grid(Rect(0.0, 16.0, 0.0, 16.0), 16, 16)
    data = random_dataset(np.random.default_rng(11), grid, 500)
    return SEulerApprox(EulerHistogram.from_dataset(data, grid)), grid


def make_catalog(estimator, grid, **kwargs) -> TenantCatalog:
    catalog = TenantCatalog(**kwargs)
    catalog.register_dataset("main", estimator, grid)
    return catalog


class TestRegistration:
    def test_duplicate_dataset_rejected(self, estimator):
        est, grid = estimator
        catalog = make_catalog(est, grid)
        with pytest.raises(ValueError, match="already registered"):
            catalog.register_dataset("main", est, grid)

    def test_duplicate_tenant_rejected(self, estimator):
        est, grid = estimator
        catalog = make_catalog(est, grid)
        catalog.add_tenant("acme")
        with pytest.raises(ValueError, match="already registered"):
            catalog.add_tenant("acme")

    def test_tenant_naming_unknown_dataset_rejected(self, estimator):
        est, grid = estimator
        catalog = make_catalog(est, grid)
        with pytest.raises(KeyError):
            catalog.add_tenant("acme", datasets=["nope"])

    def test_tenant_defaults_to_every_dataset(self, estimator):
        est, grid = estimator
        catalog = make_catalog(est, grid)
        catalog.register_dataset("other", est, grid)
        catalog.add_tenant("acme")
        assert isinstance(catalog.service("acme", "main"), ResilientBrowsingService)
        assert isinstance(catalog.service("acme", "other"), ResilientBrowsingService)
        assert catalog.tenants == ("acme",)
        assert set(catalog.datasets) == {"main", "other"}


class TestLookup:
    def test_unknown_tenant_is_a_malformed_request(self, estimator):
        est, grid = estimator
        catalog = make_catalog(est, grid)
        with pytest.raises(InvalidRegionError, match="unknown tenant"):
            catalog.service("ghost", "main")
        with pytest.raises(InvalidRegionError, match="unknown tenant"):
            catalog.tenant("ghost")

    def test_unauthorized_dataset_is_a_malformed_request(self, estimator):
        est, grid = estimator
        catalog = make_catalog(est, grid)
        catalog.register_dataset("private", est, grid)
        catalog.add_tenant("acme", datasets=["main"])
        with pytest.raises(InvalidRegionError, match="has no dataset"):
            catalog.service("acme", "private")


class TestIsolation:
    def test_each_tenant_gets_its_own_service_and_delta_tracker(self, estimator):
        est, grid = estimator
        catalog = make_catalog(est, grid)
        catalog.add_tenant("acme")
        catalog.add_tenant("beta")
        a = catalog.service("acme", "main")
        b = catalog.service("beta", "main")
        assert a is not b
        assert a.delta is not None
        assert a.delta is not b.delta
        # The breakers are per-tenant too: one tenant tripping a tier
        # open must not skip it for the neighbour.
        assert a.chain is not b.chain

    def test_shared_cache_is_the_same_object_across_tenants(self, estimator):
        from repro.cache import TileResultCache

        est, grid = estimator
        cache = TileResultCache(1 << 20)
        catalog = TenantCatalog()
        catalog.register_dataset("main", est, grid, cache=cache)
        catalog.add_tenant("acme")
        catalog.add_tenant("beta")
        assert catalog.service("acme", "main").cache is cache
        assert catalog.service("beta", "main").cache is cache


class TestQuota:
    def test_zero_quota_means_unlimited(self):
        state = TenantState("acme", quota=0)
        for _ in range(100):
            assert state.try_acquire()
        assert state.active == 100

    def test_quota_bounds_concurrency(self):
        state = TenantState("acme", quota=2)
        assert state.try_acquire()
        assert state.try_acquire()
        assert not state.try_acquire()
        state.release()
        assert state.try_acquire()

    def test_over_release_raises(self):
        state = TenantState("acme", quota=1)
        with pytest.raises(RuntimeError, match="never held"):
            state.release()

    def test_negative_quota_rejected(self):
        with pytest.raises(ValueError):
            TenantState("acme", quota=-1)


class TestLifecycle:
    def test_close_closes_every_service_and_is_idempotent(self, estimator):
        est, grid = estimator
        catalog = make_catalog(est, grid)
        catalog.add_tenant("acme")
        catalog.add_tenant("beta")
        services = [catalog.service(t, "main") for t in ("acme", "beta")]
        catalog.close()
        catalog.close()
        assert all(s.closed for s in services)
