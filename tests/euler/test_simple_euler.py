"""Tests for S-EulerApprox (Section 5.2)."""

import pytest

from repro.datasets.base import RectDataset
from repro.euler.histogram import EulerHistogram
from repro.euler.simple import SEulerApprox
from repro.geometry.rect import Rect
from repro.grid.grid import Grid
from repro.grid.tiles_math import TileQuery

from tests.conftest import brute_force_counts, random_dataset, random_query


@pytest.fixture
def grid():
    return Grid(Rect(0.0, 10.0, 0.0, 8.0), 10, 8)


def _estimator(grid, rects):
    data = RectDataset.from_rects(rects, grid.extent)
    return SEulerApprox(EulerHistogram.from_dataset(data, grid)), data


class TestExactCases:
    def test_exact_for_subcell_objects(self, grid, rng):
        """No object can contain or cross any query when every object fits
        inside one cell: S-EulerApprox is exact."""
        data = random_dataset(
            rng, grid, 200, max_size_cells=0.9, aligned_fraction=0.0, name="tiny"
        )
        estimator = SEulerApprox(EulerHistogram.from_dataset(data, grid))
        for _ in range(25):
            q = random_query(rng, grid)
            assert estimator.estimate(q) == brute_force_counts(data, grid, q)

    def test_single_contained_object(self, grid):
        estimator, _ = _estimator(grid, [Rect(2.3, 3.7, 2.3, 3.7)])
        counts = estimator.estimate(TileQuery(2, 4, 2, 4))
        assert (counts.n_d, counts.n_cs, counts.n_cd, counts.n_o) == (0, 1, 0, 0)

    def test_single_disjoint_object(self, grid):
        estimator, _ = _estimator(grid, [Rect(7.2, 7.8, 6.2, 6.8)])
        counts = estimator.estimate(TileQuery(0, 4, 0, 4))
        assert (counts.n_d, counts.n_cs, counts.n_cd, counts.n_o) == (1, 0, 0, 0)

    def test_single_overlapping_object(self, grid):
        estimator, _ = _estimator(grid, [Rect(3.5, 5.5, 3.5, 5.5)])
        counts = estimator.estimate(TileQuery(0, 4, 0, 4))
        assert (counts.n_d, counts.n_cs, counts.n_cd, counts.n_o) == (0, 0, 0, 1)

    def test_n_d_always_exact(self, grid, rng):
        data = random_dataset(rng, grid, 150)
        estimator = SEulerApprox(EulerHistogram.from_dataset(data, grid))
        for _ in range(25):
            q = random_query(rng, grid)
            assert estimator.estimate(q).n_d == brute_force_counts(data, grid, q).n_d


class TestFailureModes:
    def test_container_misattributed_to_contains(self, grid):
        """The documented N_cd = 0 failure: an object containing the query
        shows up in N_cs instead (loophole effect drops it from n_ei)."""
        estimator, data = _estimator(grid, [Rect(1.0, 9.0, 1.0, 7.0)])
        q = TileQuery(3, 6, 3, 5)
        truth = brute_force_counts(data, grid, q)
        assert truth.n_cd == 1 and truth.n_cs == 0
        counts = estimator.estimate(q)
        assert counts.n_cd == 0
        assert counts.n_cs == 1  # the container leaks into contains
        assert counts.n_o == truth.n_o == 0

    def test_crossover_inflates_overlap(self, grid):
        """A crossover object (Figure 9(b)) double counts in n_ei, pushing
        N_cs down by one and N_o up by one."""
        estimator, data = _estimator(grid, [Rect(0.5, 9.5, 3.2, 3.8)])
        q = TileQuery(3, 6, 0, 8)
        truth = brute_force_counts(data, grid, q)
        assert truth.n_o == 1
        counts = estimator.estimate(q)
        assert counts.n_o == 2
        assert counts.n_cs == -1

    def test_estimates_always_sum_to_dataset_size(self, grid, rng):
        data = random_dataset(rng, grid, 120)
        estimator = SEulerApprox(EulerHistogram.from_dataset(data, grid))
        for _ in range(25):
            counts = estimator.estimate(random_query(rng, grid))
            assert counts.total == len(data)


class TestProtocol:
    def test_name(self, grid):
        estimator, _ = _estimator(grid, [])
        assert estimator.name == "S-EulerApprox"

    def test_histogram_accessor(self, grid):
        estimator, _ = _estimator(grid, [])
        assert estimator.histogram.num_objects == 0
