"""Tests for the maintained (updatable) Euler histogram."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.datasets.base import RectDataset
from repro.euler.full import EulerApprox
from repro.euler.histogram import EulerHistogram
from repro.euler.maintained import (
    MaintainedEulerHistogram,
    _axis_factor,
    _axis_factor_batch,
)
from repro.euler.simple import SEulerApprox
from repro.geometry.rect import Rect
from repro.grid.grid import Grid
from repro.grid.tiles_math import TileQuery

from tests.conftest import random_dataset, random_query


@pytest.fixture
def grid():
    return Grid(Rect(0.0, 10.0, 0.0, 8.0), 10, 8)


class TestAxisFactor:
    def test_zero_for_even_overlap(self):
        assert _axis_factor(0, 5, 2, 3) == 0  # overlap [2,3], length 2

    def test_sign_of_first_coordinate(self):
        assert _axis_factor(0, 6, 2, 4) == 1   # [2,4] starts even
        assert _axis_factor(1, 5, 3, 5) == -1  # [3,5] starts odd

    def test_empty_overlap(self):
        assert _axis_factor(0, 2, 5, 8) == 0

    def test_matches_direct_sum(self):
        rng = np.random.default_rng(0)
        for _ in range(200):
            s_lo, s_hi = sorted(rng.integers(0, 12, size=2))
            b_lo, b_hi = sorted(rng.integers(0, 12, size=2))
            signs = np.array([1 if a % 2 == 0 else -1 for a in range(13)])
            lo, hi = max(s_lo, b_lo), min(s_hi, b_hi)
            direct = int(signs[lo : hi + 1].sum()) if hi >= lo else 0
            assert _axis_factor(s_lo, s_hi, b_lo, b_hi) == direct


class TestMaintenance:
    def test_matches_rebuilt_after_inserts(self, grid, rng):
        base = random_dataset(rng, grid, 80)
        extra = random_dataset(rng, grid, 25)
        maintained = MaintainedEulerHistogram(grid, base, merge_threshold=10_000)
        for rect in extra:
            maintained.insert(rect)
        assert maintained.pending_updates == 25

        full = EulerHistogram.from_dataset(base.concatenated(extra), grid)
        for _ in range(30):
            q = random_query(rng, grid)
            assert maintained.intersect_count(q) == full.intersect_count(q)
            assert maintained.outside_sum(q) == full.outside_sum(q)
            assert maintained.contained_count(q) == full.contained_count(q)

    def test_delete_reverses_insert(self, grid, rng):
        base = random_dataset(rng, grid, 60)
        maintained = MaintainedEulerHistogram(grid, base, merge_threshold=10_000)
        reference = EulerHistogram.from_dataset(base, grid)

        obj = Rect(1.3, 6.7, 2.1, 5.9)
        maintained.insert(obj)
        maintained.delete(obj)
        assert maintained.num_objects == 60
        for _ in range(20):
            q = random_query(rng, grid)
            assert maintained.intersect_count(q) == reference.intersect_count(q)
            assert maintained.outside_sum(q) == reference.outside_sum(q)

    def test_auto_merge_at_threshold(self, grid, rng):
        maintained = MaintainedEulerHistogram(grid, merge_threshold=5)
        for i in range(5):
            maintained.insert(Rect(0.5 + i, 1.2 + i, 0.5, 1.2))
        assert maintained.pending_updates == 0  # merged automatically
        assert maintained.num_objects == 5

    def test_queries_correct_across_merges(self, grid, rng):
        maintained = MaintainedEulerHistogram(grid, merge_threshold=7)
        inserted = []
        for i in range(23):
            rect = Rect(
                float(rng.uniform(0, 8)),
                float(rng.uniform(8, 10)),
                float(rng.uniform(0, 6)),
                float(rng.uniform(6, 8)),
            )
            maintained.insert(rect)
            inserted.append(rect)
        reference = EulerHistogram.from_dataset(
            RectDataset.from_rects(inserted, grid.extent), grid
        )
        for _ in range(20):
            q = random_query(rng, grid)
            assert maintained.intersect_count(q) == reference.intersect_count(q)
            assert maintained.outside_sum(q) == reference.outside_sum(q)

    def test_snapshot_is_plain_histogram(self, grid, rng):
        maintained = MaintainedEulerHistogram(grid, random_dataset(rng, grid, 30))
        maintained.insert(Rect(1.0, 2.0, 1.0, 2.0))
        snapshot = maintained.snapshot()
        assert isinstance(snapshot, EulerHistogram)
        assert snapshot.num_objects == 31
        assert maintained.pending_updates == 0

    def test_validation(self, grid):
        with pytest.raises(ValueError):
            MaintainedEulerHistogram(grid, merge_threshold=0)


class TestEstimatorCompatibility:
    def test_estimators_work_on_maintained_histogram(self, grid, rng):
        """S-EulerApprox and EulerApprox duck-type over the maintained
        histogram and answer as if it were freshly rebuilt."""
        base = random_dataset(rng, grid, 70)
        extra = random_dataset(rng, grid, 20)
        maintained = MaintainedEulerHistogram(grid, base, merge_threshold=10_000)
        for rect in extra:
            maintained.insert(rect)
        rebuilt = EulerHistogram.from_dataset(base.concatenated(extra), grid)

        for estimator_cls in (SEulerApprox, EulerApprox):
            live = estimator_cls(maintained)
            reference = estimator_cls(rebuilt)
            for _ in range(15):
                q = random_query(rng, grid)
                assert live.estimate(q) == reference.estimate(q)


class TestAxisFactorBatchParity:
    """Hypothesis parity: the vectorised _axis_factor_batch must agree
    with the scalar _axis_factor on every (span, box) combination."""

    @given(
        span=st.tuples(st.integers(0, 60), st.integers(0, 60)).map(sorted),
        boxes=st.lists(
            st.tuples(st.integers(0, 60), st.integers(0, 60)).map(sorted),
            min_size=1,
            max_size=30,
        ),
    )
    def test_batch_matches_scalar(self, span, boxes):
        span_lo, span_hi = span
        box_lo = np.array([b[0] for b in boxes], dtype=np.intp)
        box_hi = np.array([b[1] for b in boxes], dtype=np.intp)
        batch = _axis_factor_batch(span_lo, span_hi, box_lo, box_hi)
        scalar = [_axis_factor(span_lo, span_hi, lo, hi) for lo, hi in boxes]
        np.testing.assert_array_equal(batch, scalar)

    @given(
        span=st.tuples(st.integers(0, 40), st.integers(0, 40)).map(sorted),
        box=st.tuples(st.integers(0, 40), st.integers(0, 40)).map(sorted),
    )
    def test_disjoint_and_even_overlaps_are_zero(self, span, box):
        """The factor is nonzero only for odd-length overlaps, and then
        carries the lattice sign of the first overlapped coordinate."""
        (span_lo, span_hi), (box_lo, box_hi) = span, box
        value = _axis_factor(span_lo, span_hi, box_lo, box_hi)
        lo, hi = max(span_lo, box_lo), min(span_hi, box_hi)
        if hi < lo or (hi - lo + 1) % 2 == 0:
            assert value == 0
        else:
            assert value == (1 if lo % 2 == 0 else -1)


class TestMaintainedVerify:
    def test_verify_passes_through_inserts_deletes_and_merges(self, grid, rng):
        maintained = MaintainedEulerHistogram(
            grid, random_dataset(rng, grid, 50), merge_threshold=8
        )
        inserted = []
        for _ in range(20):
            rect = Rect(1.0, 3.0, 1.0, 2.0)
            maintained.insert(rect)
            inserted.append(rect)
            assert maintained.verify() is maintained
        for rect in inserted[:5]:
            maintained.delete(rect)
            maintained.verify()
        maintained.merge()
        assert maintained.pending_updates == 0
        maintained.verify()

    def test_verify_catches_forged_pending_count(self, grid, rng):
        from repro.errors import SummaryCorruptError

        maintained = MaintainedEulerHistogram(
            grid, random_dataset(rng, grid, 30), merge_threshold=10_000
        )
        maintained.insert(Rect(1.0, 2.0, 1.0, 2.0))
        maintained._pending_objects += 1  # corrupt the bookkeeping
        with pytest.raises(SummaryCorruptError):
            maintained.verify()

    def test_verify_catches_corrupt_base(self, grid, rng):
        from repro.errors import SummaryCorruptError

        maintained = MaintainedEulerHistogram(grid, random_dataset(rng, grid, 30))
        maintained._base._num_objects += 1  # corrupt the base histogram
        with pytest.raises(SummaryCorruptError):
            maintained.verify()
