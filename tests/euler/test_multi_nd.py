"""Tests for the d-dimensional M-EulerApprox."""

import numpy as np
import pytest

from repro.datasets.base import RectDataset
from repro.euler.full_nd import EulerApproxND
from repro.euler.histogram_nd import EulerHistogramND
from repro.euler.multi import MEulerApprox
from repro.euler.multi_nd import MEulerApproxND
from repro.exact.evaluator_nd import ExactEvaluatorND
from repro.geometry.rect import Rect
from repro.grid.grid import Grid
from repro.grid.grid_nd import BoxQuery, GridND

from tests.conftest import random_dataset


def _random_boxes(rng, grid, m, max_frac=0.5):
    d = grid.ndim
    lows = np.empty((m, d))
    highs = np.empty((m, d))
    for k in range(d):
        size = rng.uniform(0.0, grid.cells[k] * max_frac, size=m)
        lo = rng.uniform(0.0, grid.cells[k] - size)
        lows[:, k] = lo
        highs[:, k] = lo + size
    return lows, highs


def _random_query(rng, grid):
    lo = tuple(int(rng.integers(0, n)) for n in grid.cells)
    hi = tuple(int(rng.integers(a + 1, n + 1)) for a, n in zip(lo, grid.cells))
    return BoxQuery(lo=lo, hi=hi)


def test_2d_matches_specialised_m_euler(rng):
    grid_nd = GridND.unit_cells([8, 6])
    grid_2d = Grid(Rect(0.0, 8.0, 0.0, 6.0), 8, 6)
    data = random_dataset(rng, grid_2d, 150, degenerate_fraction=0.2)
    nd = MEulerApproxND(
        grid_nd,
        np.column_stack([data.x_lo, data.y_lo]),
        np.column_stack([data.x_hi, data.y_hi]),
        [1.0, 4.0, 16.0],
    )
    reference = MEulerApprox(data, grid_2d, [1.0, 4.0, 16.0])
    from repro.grid.tiles_math import TileQuery

    for _ in range(25):
        q = _random_query(rng, grid_nd)
        q2 = TileQuery(q.lo[0], q.hi[0], q.lo[1], q.hi[1])
        nd_counts = nd.estimate(q)
        ref_counts = reference.estimate(q2)
        # 2-d simple/full share one N_o equation, so the only dispatch
        # difference (case 1 using full) is invisible: exact agreement.
        assert nd_counts.n_d == ref_counts.n_d
        assert nd_counts.n_o == pytest.approx(ref_counts.n_o)
        assert nd_counts.n_cs == pytest.approx(ref_counts.n_cs)
        assert nd_counts.n_cd == pytest.approx(ref_counts.n_cd)


def test_3d_containers_and_smalls(rng):
    grid = GridND.unit_cells([6, 6, 6])
    small_lo, small_hi = _random_boxes(rng, grid, 50, max_frac=0.15)
    big_lo = np.full((4, 3), 0.4)
    big_hi = np.full((4, 3), 5.6)
    lows = np.vstack([small_lo, big_lo])
    highs = np.vstack([small_hi, big_hi])

    multi = MEulerApproxND(grid, lows, highs, [1.0, 27.0])
    exact = ExactEvaluatorND(grid, lows, highs)
    q = BoxQuery(lo=(2, 2, 2), hi=(4, 4, 4))  # volume 8 < 27
    truth = exact.estimate(q)
    counts = multi.estimate(q)
    assert truth.n_cd == 4
    assert counts.n_d == truth.n_d
    assert counts.n_cd == pytest.approx(truth.n_cd)
    assert counts.n_o == pytest.approx(truth.n_o)


def test_3d_invariants_on_random_queries(rng):
    grid = GridND.unit_cells([5, 4, 6])
    lows, highs = _random_boxes(rng, grid, 80)
    multi = MEulerApproxND(grid, lows, highs, [1.0, 8.0, 64.0])
    exact = ExactEvaluatorND(grid, lows, highs)
    for _ in range(15):
        q = _random_query(rng, grid)
        truth = exact.estimate(q)
        counts = multi.estimate(q)
        assert counts.n_d == truth.n_d
        assert counts.total == pytest.approx(80.0)


def test_m1_equals_full_nd(rng):
    grid = GridND.unit_cells([5, 5, 5])
    lows, highs = _random_boxes(rng, grid, 60)
    multi = MEulerApproxND(grid, lows, highs, [1.0])
    single = EulerApproxND(EulerHistogramND.from_boxes(grid, lows, highs))
    for _ in range(15):
        q = _random_query(rng, grid)
        assert multi.estimate(q) == single.estimate(q)


def test_validation(rng):
    grid = GridND.unit_cells([4, 4])
    with pytest.raises(ValueError, match="corner arrays"):
        MEulerApproxND(grid, np.zeros((3, 3)), np.zeros((3, 3)), [1.0])
    with pytest.raises(ValueError, match="unit cell"):
        MEulerApproxND(grid, np.zeros((0, 2)), np.zeros((0, 2)), [2.0])
    multi = MEulerApproxND(grid, np.zeros((0, 2)), np.zeros((0, 2)), [1.0, 4.0])
    assert multi.name == "M-EulerApprox2D(m=2)"
    assert multi.volume_thresholds == (1.0, 4.0)
    assert multi.num_objects == 0
