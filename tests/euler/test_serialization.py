"""Tests for Euler histogram persistence."""

import numpy as np
import pytest

from repro.euler.histogram import EulerHistogram
from repro.euler.simple import SEulerApprox
from repro.geometry.rect import Rect
from repro.grid.grid import Grid

from tests.conftest import random_dataset, random_query


@pytest.fixture
def grid():
    return Grid(Rect(-10.0, 30.0, 5.0, 25.0), 8, 10)


def test_save_load_roundtrip(grid, rng, tmp_path):
    data = random_dataset(rng, grid, 120)
    original = EulerHistogram.from_dataset(data, grid)
    path = tmp_path / "hist.npz"
    original.save(path)

    loaded = EulerHistogram.load(path)
    assert loaded.num_objects == original.num_objects
    assert loaded.grid == grid
    np.testing.assert_array_equal(loaded.buckets(), original.buckets())


def test_loaded_histogram_answers_queries(grid, rng, tmp_path):
    data = random_dataset(rng, grid, 90)
    original = EulerHistogram.from_dataset(data, grid)
    path = tmp_path / "hist.npz"
    original.save(path)
    loaded = EulerHistogram.load(path)

    live = SEulerApprox(original)
    revived = SEulerApprox(loaded)
    for _ in range(25):
        q = random_query(rng, grid)
        assert revived.estimate(q) == live.estimate(q)


def test_empty_histogram_roundtrip(grid, tmp_path):
    from repro.datasets.base import RectDataset

    original = EulerHistogram.from_dataset(RectDataset.empty(grid.extent), grid)
    path = tmp_path / "empty.npz"
    original.save(path)
    loaded = EulerHistogram.load(path)
    assert loaded.num_objects == 0
    assert loaded.total_sum == 0


class TestIntegrityVerification:
    """Hardened load: every corruption mode maps to SummaryCorruptError."""

    def _saved(self, grid, rng, tmp_path, n=80):
        data = random_dataset(rng, grid, n)
        hist = EulerHistogram.from_dataset(data, grid)
        path = tmp_path / "hist.npz"
        hist.save(path)
        return hist, path

    def test_verify_passes_on_a_healthy_histogram(self, grid, rng, tmp_path):
        hist, _ = self._saved(grid, rng, tmp_path)
        assert hist.verify() is hist

    def test_bit_flipped_bucket_rejected_at_load(self, grid, rng, tmp_path):
        """Acceptance: a bit-flipped saved histogram fails at load with
        SummaryCorruptError (checksum mismatch), not a cryptic error."""
        from repro.errors import SummaryCorruptError

        _, path = self._saved(grid, rng, tmp_path)
        with np.load(path) as f:
            payload = {k: f[k] for k in f.files}
        payload["buckets"] = payload["buckets"].copy()
        payload["buckets"][0, 0] ^= 1  # one flipped bit, checksum kept
        np.savez_compressed(path, **payload)
        with pytest.raises(SummaryCorruptError, match="checksum"):
            EulerHistogram.load(path)

    def test_flipped_byte_in_compressed_stream_rejected(self, grid, rng, tmp_path):
        import zipfile

        from repro.errors import SummaryCorruptError

        _, path = self._saved(grid, rng, tmp_path)
        raw = bytearray(path.read_bytes())
        with zipfile.ZipFile(path) as z:
            info = z.getinfo("buckets.npy")
        offset = info.header_offset + 30 + len(info.filename) + 120
        raw[offset] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(SummaryCorruptError, match="unreadable"):
            EulerHistogram.load(path)

    def test_truncated_file_rejected_with_clear_message(self, grid, rng, tmp_path):
        from repro.errors import SummaryCorruptError

        _, path = self._saved(grid, rng, tmp_path)
        path.write_bytes(path.read_bytes()[:64])
        with pytest.raises(SummaryCorruptError, match="unreadable"):
            EulerHistogram.load(path)

    def test_missing_key_rejected_with_key_named(self, grid, rng, tmp_path):
        from repro.errors import SummaryCorruptError

        _, path = self._saved(grid, rng, tmp_path)
        with np.load(path) as f:
            payload = {k: f[k] for k in f.files if k != "num_objects"}
        np.savez_compressed(path, **payload)
        with pytest.raises(SummaryCorruptError, match="num_objects"):
            EulerHistogram.load(path)

    def test_legacy_file_without_checksum_still_loads(self, grid, rng, tmp_path):
        """Pre-checksum files get structural validation only."""
        data = random_dataset(rng, grid, 40)
        hist = EulerHistogram.from_dataset(data, grid)
        path = tmp_path / "legacy.npz"
        np.savez_compressed(  # the pre-taxonomy save format
            path,
            buckets=hist.buckets(),
            extent=np.array(grid.extent.as_tuple(), dtype=np.float64),
            cells=np.array([grid.n1, grid.n2], dtype=np.int64),
            num_objects=np.int64(hist.num_objects),
        )
        loaded = EulerHistogram.load(path)
        np.testing.assert_array_equal(loaded.buckets(), hist.buckets())

    def test_inconsistent_object_count_fails_the_euler_invariant(
        self, grid, rng, tmp_path
    ):
        """Even a legacy file (no checksum) cannot smuggle in a bucket
        array whose corner sum disagrees with the object count."""
        from repro.errors import SummaryCorruptError

        data = random_dataset(rng, grid, 40)
        hist = EulerHistogram.from_dataset(data, grid)
        path = tmp_path / "legacy.npz"
        np.savez_compressed(
            path,
            buckets=hist.buckets(),
            extent=np.array(grid.extent.as_tuple(), dtype=np.float64),
            cells=np.array([grid.n1, grid.n2], dtype=np.int64),
            num_objects=np.int64(hist.num_objects + 7),
        )
        with pytest.raises(SummaryCorruptError, match="corner-bucket sum"):
            EulerHistogram.load(path)

    def test_summary_corrupt_is_a_value_error(self):
        from repro.errors import BrowseError, SummaryCorruptError

        assert issubclass(SummaryCorruptError, ValueError)
        assert issubclass(SummaryCorruptError, BrowseError)
