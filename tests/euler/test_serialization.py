"""Tests for Euler histogram persistence."""

import numpy as np
import pytest

from repro.euler.histogram import EulerHistogram
from repro.euler.simple import SEulerApprox
from repro.geometry.rect import Rect
from repro.grid.grid import Grid

from tests.conftest import random_dataset, random_query


@pytest.fixture
def grid():
    return Grid(Rect(-10.0, 30.0, 5.0, 25.0), 8, 10)


def test_save_load_roundtrip(grid, rng, tmp_path):
    data = random_dataset(rng, grid, 120)
    original = EulerHistogram.from_dataset(data, grid)
    path = tmp_path / "hist.npz"
    original.save(path)

    loaded = EulerHistogram.load(path)
    assert loaded.num_objects == original.num_objects
    assert loaded.grid == grid
    np.testing.assert_array_equal(loaded.buckets(), original.buckets())


def test_loaded_histogram_answers_queries(grid, rng, tmp_path):
    data = random_dataset(rng, grid, 90)
    original = EulerHistogram.from_dataset(data, grid)
    path = tmp_path / "hist.npz"
    original.save(path)
    loaded = EulerHistogram.load(path)

    live = SEulerApprox(original)
    revived = SEulerApprox(loaded)
    for _ in range(25):
        q = random_query(rng, grid)
        assert revived.estimate(q) == live.estimate(q)


def test_empty_histogram_roundtrip(grid, tmp_path):
    from repro.datasets.base import RectDataset

    original = EulerHistogram.from_dataset(RectDataset.empty(grid.extent), grid)
    path = tmp_path / "empty.npz"
    original.save(path)
    loaded = EulerHistogram.load(path)
    assert loaded.num_objects == 0
    assert loaded.total_sum == 0
