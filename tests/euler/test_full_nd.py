"""Tests for the d-dimensional EulerApprox and its parity algebra."""

import numpy as np
import pytest

from repro.datasets.base import RectDataset
from repro.euler.full import EulerApprox, QueryEdge
from repro.euler.full_nd import EulerApproxND
from repro.euler.histogram import EulerHistogram
from repro.euler.histogram_nd import EulerHistogramND
from repro.exact.evaluator_nd import ExactEvaluatorND
from repro.geometry.rect import Rect
from repro.grid.grid import Grid
from repro.grid.grid_nd import BoxQuery, GridND
from repro.grid.tiles_math import TileQuery

from tests.conftest import random_dataset


def _random_boxes(rng, grid, m, max_frac=0.6):
    d = grid.ndim
    lows = np.empty((m, d))
    highs = np.empty((m, d))
    for k in range(d):
        size = rng.uniform(0.0, grid.cells[k] * max_frac, size=m)
        lo = rng.uniform(0.0, grid.cells[k] - size)
        lows[:, k] = lo
        highs[:, k] = lo + size
    return lows, highs


def _random_query(rng, grid):
    lo = tuple(int(rng.integers(0, n)) for n in grid.cells)
    hi = tuple(int(rng.integers(a + 1, n + 1)) for a, n in zip(lo, grid.cells))
    return BoxQuery(lo=lo, hi=hi)


class TestTwoDEquivalence:
    def test_matches_specialised_euler_approx(self, rng):
        """At d=2 with the low-x facet, EulerApproxND must equal the 2-d
        EulerApprox with QueryEdge.LEFT, query for query."""
        grid_nd = GridND.unit_cells([8, 6])
        grid_2d = Grid(Rect(0.0, 8.0, 0.0, 6.0), 8, 6)
        data = random_dataset(rng, grid_2d, 150, degenerate_fraction=0.2)
        hist_nd = EulerHistogramND.from_boxes(
            grid_nd,
            np.column_stack([data.x_lo, data.y_lo]),
            np.column_stack([data.x_hi, data.y_hi]),
        )
        nd = EulerApproxND(hist_nd, axis=0, low_side=True)
        reference = EulerApprox(EulerHistogram.from_dataset(data, grid_2d), QueryEdge.LEFT)
        for _ in range(30):
            q = _random_query(rng, grid_nd)
            q2 = TileQuery(q.lo[0], q.hi[0], q.lo[1], q.hi[1])
            assert nd.estimate(q) == reference.estimate(q2)

    def test_bottom_edge_matches(self, rng):
        grid_nd = GridND.unit_cells([8, 6])
        grid_2d = Grid(Rect(0.0, 8.0, 0.0, 6.0), 8, 6)
        data = random_dataset(rng, grid_2d, 100)
        hist_nd = EulerHistogramND.from_boxes(
            grid_nd,
            np.column_stack([data.x_lo, data.y_lo]),
            np.column_stack([data.x_hi, data.y_hi]),
        )
        nd = EulerApproxND(hist_nd, axis=1, low_side=True)
        reference = EulerApprox(EulerHistogram.from_dataset(data, grid_2d), QueryEdge.BOTTOM)
        for _ in range(20):
            q = _random_query(rng, grid_nd)
            q2 = TileQuery(q.lo[0], q.hi[0], q.lo[1], q.hi[1])
            assert nd.estimate(q) == reference.estimate(q2)


class TestParityAlgebra:
    @pytest.mark.parametrize("cells", [(7,), (7, 7), (7, 7, 7), (5, 5, 5, 5)])
    def test_single_container_recovered_in_any_dimension(self, cells):
        grid = GridND.unit_cells(cells)
        d = len(cells)
        lows = np.full((1, d), 0.5)
        highs = np.array([[n - 0.5 for n in cells]])
        hist = EulerHistogramND.from_boxes(grid, lows, highs)
        estimator = EulerApproxND(hist)
        center = tuple(n // 2 for n in cells)
        q = BoxQuery(lo=center, hi=tuple(c + 1 for c in center))
        counts = estimator.estimate(q)
        assert counts.n_cd == 1.0
        assert counts.n_cs == 0.0
        assert counts.n_o == 0.0

    @pytest.mark.parametrize("cells", [(6, 6, 6), (6, 4, 5)])
    def test_3d_mixed_workload(self, cells, rng):
        """Sub-query objects + containers in 3-d: the odd-parity algebra
        must keep n_d exact, totals conserved, and containers counted."""
        grid = GridND.unit_cells(cells)
        lows, highs = _random_boxes(rng, grid, 60, max_frac=0.25)
        big_lo = np.full((3, len(cells)), 0.4)
        big_hi = np.array([[n - 0.4 for n in cells]] * 3)
        lows = np.vstack([lows, big_lo])
        highs = np.vstack([highs, big_hi])

        hist = EulerHistogramND.from_boxes(grid, lows, highs)
        estimator = EulerApproxND(hist)
        exact = ExactEvaluatorND(grid, lows, highs)
        for _ in range(10):
            q = _random_query(rng, grid)
            truth = exact.estimate(q)
            counts = estimator.estimate(q)
            assert counts.n_d == truth.n_d
            assert counts.total == pytest.approx(63.0)
            # The three deliberate containers must show when they apply.
            if truth.n_cd == 3 and truth.n_o == 0:
                assert counts.n_cd == pytest.approx(truth.n_cd)

    def test_axis_validation(self):
        grid = GridND.unit_cells([4, 4])
        hist = EulerHistogramND.from_boxes(grid, np.zeros((0, 2)), np.zeros((0, 2)))
        with pytest.raises(ValueError, match="axis"):
            EulerApproxND(hist, axis=2)

    def test_high_side_band(self, rng):
        grid = GridND.unit_cells([6, 6])
        lows, highs = _random_boxes(rng, grid, 50)
        hist = EulerHistogramND.from_boxes(grid, lows, highs)
        low = EulerApproxND(hist, axis=0, low_side=True)
        high = EulerApproxND(hist, axis=0, low_side=False)
        exact = ExactEvaluatorND(grid, lows, highs)
        for _ in range(10):
            q = _random_query(rng, grid)
            truth = exact.estimate(q)
            for estimator in (low, high):
                counts = estimator.estimate(q)
                assert counts.n_d == truth.n_d
                assert counts.total == pytest.approx(50.0)

    def test_name(self):
        grid = GridND.unit_cells([4, 4, 4])
        hist = EulerHistogramND.from_boxes(grid, np.zeros((0, 3)), np.zeros((0, 3)))
        assert EulerApproxND(hist).name == "EulerApprox3D"
