"""Stateful (model-based) property test of the maintained histogram.

Hypothesis drives random interleavings of inserts, deletes, merges and
queries against :class:`MaintainedEulerHistogram`, checking every query
against a trivially correct model (a plain list of live rectangles fed to
a freshly built histogram).  This covers interaction orders the scripted
tests cannot: delete-before-merge, query-merge-query, delete of a
pre-merge insert after the merge, etc.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.datasets.base import RectDataset
from repro.euler.histogram import EulerHistogram
from repro.euler.maintained import MaintainedEulerHistogram
from repro.geometry.rect import Rect
from repro.grid.grid import Grid
from repro.grid.tiles_math import TileQuery

GRID = Grid(Rect(0.0, 8.0, 0.0, 6.0), 8, 6)

coords_x = st.integers(0, 31).map(lambda k: k / 4.0)
coords_y = st.integers(0, 23).map(lambda k: k / 4.0)


@st.composite
def rects(draw):
    x_lo = draw(coords_x)
    x_hi = draw(st.integers(int(x_lo * 4), 32).map(lambda k: k / 4.0))
    y_lo = draw(coords_y)
    y_hi = draw(st.integers(int(y_lo * 4), 24).map(lambda k: k / 4.0))
    return Rect(x_lo, x_hi, y_lo, y_hi)


@st.composite
def queries(draw):
    x = sorted(draw(st.lists(st.integers(0, 8), min_size=2, max_size=2, unique=True)))
    y = sorted(draw(st.lists(st.integers(0, 6), min_size=2, max_size=2, unique=True)))
    return TileQuery(x[0], x[1], y[0], y[1])


class MaintainedHistogramMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.maintained = MaintainedEulerHistogram(GRID, merge_threshold=6)
        self.live: list[Rect] = []

    @rule(rect=rects())
    def insert(self, rect):
        self.maintained.insert(rect)
        self.live.append(rect)

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def delete(self, data):
        index = data.draw(st.integers(0, len(self.live) - 1))
        rect = self.live.pop(index)
        self.maintained.delete(rect)

    @rule()
    def merge(self):
        self.maintained.merge()

    @rule(query=queries())
    def query_matches_model(self, query):
        model = EulerHistogram.from_dataset(
            RectDataset.from_rects(self.live, GRID.extent), GRID
        )
        assert self.maintained.intersect_count(query) == model.intersect_count(query)
        assert self.maintained.outside_sum(query) == model.outside_sum(query)
        assert self.maintained.contained_count(query) == model.contained_count(query)

    @invariant()
    def object_count_matches(self):
        assert self.maintained.num_objects == len(self.live)
        assert self.maintained.total_sum == len(self.live)


MaintainedHistogramMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestMaintainedHistogramStateful = MaintainedHistogramMachine.TestCase
