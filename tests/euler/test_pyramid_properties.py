"""Property suite for the histogram pyramid's level invariants.

Two guarantees the refinement tier leans on, checked over randomly drawn
grids, ladders and datasets:

- **Bit parity per level.**  Every pyramid level is *exactly* the Euler
  histogram a caller would build directly on that level's grid -- same
  signed bucket array bit for bit, same estimates.  The pyramid is a
  packaging of per-grid builds, never an approximation of one (a coarse
  Euler histogram is not derivable from a fine one, so any shortcut here
  would show up as a parity break).
- **``level_for`` returns the coarsest aligned level.**  The chosen
  level must align the request, and no strictly coarser level may -- the
  alignment predicate is re-implemented here from the grid primitives so
  the test does not mirror the implementation's search loop.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.euler.histogram import EulerHistogram
from repro.euler.pyramid import HistogramPyramid, pyramid_level_grids
from repro.euler.simple import SEulerApprox
from repro.geometry.rect import Rect
from repro.grid.grid import Grid
from repro.grid.tiles_math import TileQuery

from tests.conftest import random_dataset

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _build(seed: int, n1: int, n2: int, num_objects: int, min_cells: int):
    grid = Grid(Rect(0.0, float(n1), 0.0, float(n2)), n1, n2)
    data = random_dataset(
        np.random.default_rng(seed), grid, num_objects, max_size_cells=5.0
    )
    return data, grid, HistogramPyramid(data, grid, min_cells=min_cells)


def _tiling_aligns(grid: Grid, region: Rect, rows: int, cols: int) -> bool:
    """Can ``grid`` answer a ``rows x cols`` tiling of ``region`` with
    aligned queries?  Re-derived from the grid primitives: the region
    must sit on cell boundaries and span whole multiples of the tiling
    in whole cells."""
    if not grid.is_aligned(region):
        return False
    x_lo, x_hi, y_lo, y_hi = grid.rect_to_cell_units(region)
    width = round(x_hi - x_lo)
    height = round(y_hi - y_lo)
    if width < cols or height < rows:
        return False
    return width % cols == 0 and height % rows == 0


@given(
    seed=st.integers(0, 2**32 - 1),
    n1=st.integers(6, 40),
    n2=st.integers(6, 40),
    num_objects=st.integers(0, 120),
    min_cells=st.integers(2, 6),
)
@_SETTINGS
def test_every_level_bit_identical_to_direct_build(seed, n1, n2, num_objects, min_cells):
    data, grid, pyramid = _build(seed, n1, n2, num_objects, min_cells)
    assert pyramid.num_levels == len(pyramid_level_grids(grid, min_cells))
    for level in range(pyramid.num_levels):
        level_grid = pyramid.grid(level)
        direct = EulerHistogram.from_dataset(data, level_grid)
        np.testing.assert_array_equal(
            pyramid.estimator(level).histogram.buckets(), direct.buckets()
        )
        q = TileQuery(0, max(1, level_grid.n1 // 2), 0, level_grid.n2)
        assert pyramid.estimator(level).estimate(q) == SEulerApprox(direct).estimate(q)


@given(
    seed=st.integers(0, 2**32 - 1),
    n1=st.integers(6, 48),
    n2=st.integers(6, 48),
    min_cells=st.integers(2, 6),
    data=st.data(),
)
@_SETTINGS
def test_level_for_returns_coarsest_aligned_level(seed, n1, n2, min_cells, data):
    dataset, grid, pyramid = _build(seed, n1, n2, 20, min_cells)
    # Draw a request aligned (at least) with some level k by building it
    # from whole level-k cells, with a tiling that divides its span.
    k = data.draw(st.integers(0, pyramid.num_levels - 1), label="level")
    grid_k = pyramid.grid(k)
    width = data.draw(st.integers(1, grid_k.n1), label="width")
    height = data.draw(st.integers(1, grid_k.n2), label="height")
    x0 = data.draw(st.integers(0, grid_k.n1 - width), label="x0")
    y0 = data.draw(st.integers(0, grid_k.n2 - height), label="y0")
    cols = data.draw(
        st.sampled_from([d for d in range(1, width + 1) if width % d == 0]),
        label="cols",
    )
    rows = data.draw(
        st.sampled_from([d for d in range(1, height + 1) if height % d == 0]),
        label="rows",
    )
    cw = (grid_k.extent.x_hi - grid_k.extent.x_lo) / grid_k.n1
    ch = (grid_k.extent.y_hi - grid_k.extent.y_lo) / grid_k.n2
    region = Rect(
        grid_k.extent.x_lo + x0 * cw,
        grid_k.extent.x_lo + (x0 + width) * cw,
        grid_k.extent.y_lo + y0 * ch,
        grid_k.extent.y_lo + (y0 + height) * ch,
    )

    chosen = pyramid.level_for(region, rows=rows, cols=cols)

    # The construction level can serve the request, so the coarsest
    # servable level is at least as coarse.
    assert chosen >= k
    assert _tiling_aligns(pyramid.grid(chosen), region, rows, cols)
    for coarser in range(chosen + 1, pyramid.num_levels):
        assert not _tiling_aligns(pyramid.grid(coarser), region, rows, cols)
