"""Tests for the multi-resolution histogram pyramid."""

import pytest

from repro.browse.service import GeoBrowsingService
from repro.euler.pyramid import HistogramPyramid
from repro.exact.evaluator import ExactEvaluator
from repro.geometry.rect import Rect
from repro.grid.grid import Grid
from repro.grid.tiles_math import TileQuery

from tests.conftest import random_dataset


@pytest.fixture
def grid():
    return Grid(Rect(0.0, 64.0, 0.0, 32.0), 64, 32)


@pytest.fixture
def pyramid(grid, rng):
    data = random_dataset(rng, grid, 200, max_size_cells=4.0)
    return HistogramPyramid(data, grid, min_cells=4)


class TestConstruction:
    def test_levels_halve(self, pyramid):
        # 64x32 -> 32x16 -> 16x8 -> 8x4.
        assert pyramid.num_levels == 4
        assert (pyramid.grid(0).n1, pyramid.grid(0).n2) == (64, 32)
        assert (pyramid.grid(3).n1, pyramid.grid(3).n2) == (8, 4)

    def test_every_level_covers_all_objects(self, pyramid):
        for level in range(pyramid.num_levels):
            estimator = pyramid.estimator(level)
            grid = pyramid.grid(level)
            counts = estimator.estimate(TileQuery(0, grid.n1, 0, grid.n2))
            assert counts.total == pyramid.num_objects

    def test_odd_cell_counts(self, rng):
        grid = Grid(Rect(0.0, 9.0, 0.0, 5.0), 9, 5)
        data = random_dataset(rng, grid, 40)
        pyramid = HistogramPyramid(data, grid, min_cells=2)
        assert (pyramid.grid(1).n1, pyramid.grid(1).n2) == (5, 3)

    def test_level_bounds_checked(self, pyramid):
        with pytest.raises(IndexError):
            pyramid.grid(99)
        with pytest.raises(IndexError):
            pyramid.estimator(-1)

    def test_nbytes_geometric(self, pyramid):
        # The pyramid costs less than 2x the finest level.
        finest = pyramid.estimator(0).histogram.nbytes
        assert finest < pyramid.nbytes < 2 * finest

    def test_validation(self, grid, rng):
        data = random_dataset(rng, grid, 10)
        with pytest.raises(ValueError):
            HistogramPyramid(data, grid, min_cells=0)


class TestLevelSelection:
    def test_coarse_request_served_coarse(self, pyramid):
        # Whole space split 4x8: the 8x4 level suffices (8 cols, 4 rows).
        level = pyramid.level_for(Rect(0.0, 64.0, 0.0, 32.0), rows=4, cols=8)
        assert level == pyramid.num_levels - 1

    def test_fine_request_served_fine(self, pyramid):
        level = pyramid.level_for(Rect(0.0, 64.0, 0.0, 32.0), rows=32, cols=64)
        assert level == 0

    def test_misaligned_at_coarse_falls_through(self, pyramid):
        # Region aligned only with the finest grid.
        level = pyramid.level_for(Rect(1.0, 5.0, 1.0, 3.0), rows=2, cols=4)
        assert level == 0

    def test_unservable_request_raises(self, pyramid):
        with pytest.raises(ValueError, match="no pyramid level"):
            pyramid.level_for(Rect(0.5, 1.75, 0.0, 1.0), rows=1, cols=5)
        with pytest.raises(ValueError):
            pyramid.level_for(Rect(0.0, 64.0, 0.0, 32.0), rows=0, cols=1)

    def test_browse_through_selected_level(self, pyramid, grid, rng):
        region = Rect(0.0, 64.0, 0.0, 32.0)
        level, estimator, level_grid = pyramid.browse_estimator(region, rows=4, cols=8)
        service = GeoBrowsingService(estimator, level_grid)
        result = service.browse(region, rows=4, cols=8, relation="intersect")
        assert result.counts.shape == (4, 8)
        assert result.counts.sum() > 0


class TestAccuracyPerLevel:
    def test_each_level_matches_its_grid_truth(self, grid, rng):
        data = random_dataset(rng, grid, 150, max_size_cells=0.9, aligned_fraction=0.0)
        pyramid = HistogramPyramid(data, grid, min_cells=4)
        for level in range(pyramid.num_levels):
            level_grid = pyramid.grid(level)
            exact = ExactEvaluator(data, level_grid)
            estimator = pyramid.estimator(level)
            q = TileQuery(0, level_grid.n1 // 2, 0, level_grid.n2 // 2)
            # Sub-cell objects at level 0 may span cells at coarse levels,
            # but S-Euler's intersect/disjoint stay exact at every level.
            assert estimator.estimate(q).n_d == exact.estimate(q).n_d
