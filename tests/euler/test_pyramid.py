"""Tests for the multi-resolution histogram pyramid."""

import numpy as np
import pytest

from repro.browse.service import GeoBrowsingService
from repro.errors import InvalidRegionError, SummaryCorruptError
from repro.euler.histogram import EulerHistogram
from repro.euler.pyramid import HistogramPyramid, pyramid_level_grids
from repro.euler.simple import SEulerApprox
from repro.exact.evaluator import ExactEvaluator
from repro.gateway.gateway import decode_error, encode_error
from repro.geometry.rect import Rect
from repro.grid.grid import Grid
from repro.grid.tiles_math import TileQuery
from repro.persistence import save_verified_npz

from tests.conftest import random_dataset


class _OpaqueEstimator:
    """A custom level estimator exposing neither ``.histogram`` nor
    ``.nbytes`` -- the shape that used to make ``nbytes`` crash."""

    name = "opaque"

    def __init__(self, inner):
        self._inner = inner

    def estimate(self, query):
        return self._inner.estimate(query)


def _opaque_factory(dataset, grid):
    return _OpaqueEstimator(SEulerApprox(EulerHistogram.from_dataset(dataset, grid)))


@pytest.fixture
def grid():
    return Grid(Rect(0.0, 64.0, 0.0, 32.0), 64, 32)


@pytest.fixture
def pyramid(grid, rng):
    data = random_dataset(rng, grid, 200, max_size_cells=4.0)
    return HistogramPyramid(data, grid, min_cells=4)


class TestConstruction:
    def test_levels_halve(self, pyramid):
        # 64x32 -> 32x16 -> 16x8 -> 8x4.
        assert pyramid.num_levels == 4
        assert (pyramid.grid(0).n1, pyramid.grid(0).n2) == (64, 32)
        assert (pyramid.grid(3).n1, pyramid.grid(3).n2) == (8, 4)

    def test_every_level_covers_all_objects(self, pyramid):
        for level in range(pyramid.num_levels):
            estimator = pyramid.estimator(level)
            grid = pyramid.grid(level)
            counts = estimator.estimate(TileQuery(0, grid.n1, 0, grid.n2))
            assert counts.total == pyramid.num_objects

    def test_odd_cell_counts(self, rng):
        grid = Grid(Rect(0.0, 9.0, 0.0, 5.0), 9, 5)
        data = random_dataset(rng, grid, 40)
        pyramid = HistogramPyramid(data, grid, min_cells=2)
        assert (pyramid.grid(1).n1, pyramid.grid(1).n2) == (5, 3)

    def test_level_bounds_checked(self, pyramid):
        with pytest.raises(IndexError):
            pyramid.grid(99)
        with pytest.raises(IndexError):
            pyramid.estimator(-1)

    def test_nbytes_geometric(self, pyramid):
        # The pyramid costs less than 2x the finest level.
        finest = pyramid.estimator(0).histogram.nbytes
        assert finest < pyramid.nbytes < 2 * finest

    def test_nbytes_with_opaque_factory_falls_back_to_grid(self, grid, rng):
        # Regression: a custom factory whose estimators expose no
        # .histogram used to break nbytes.  Each such level now
        # contributes its grid's bucket-array size instead of crashing
        # (or silently counting zero).
        data = random_dataset(rng, grid, 20)
        pyramid = HistogramPyramid(data, grid, factory=_opaque_factory)
        expected = sum(
            8 * rows * cols
            for rows, cols in (
                pyramid.grid(level).lattice_shape
                for level in range(pyramid.num_levels)
            )
        )
        assert pyramid.nbytes == expected > 0

    def test_nbytes_prefers_estimator_own_size(self, grid, rng):
        class Sized(_OpaqueEstimator):
            nbytes = 1000

        data = random_dataset(rng, grid, 20)
        pyramid = HistogramPyramid(
            data,
            grid,
            factory=lambda d, g: Sized(SEulerApprox(EulerHistogram.from_dataset(d, g))),
        )
        assert pyramid.nbytes == 1000 * pyramid.num_levels

    def test_validation(self, grid, rng):
        data = random_dataset(rng, grid, 10)
        with pytest.raises(ValueError):
            HistogramPyramid(data, grid, min_cells=0)


class TestLevelSelection:
    def test_coarse_request_served_coarse(self, pyramid):
        # Whole space split 4x8: the 8x4 level suffices (8 cols, 4 rows).
        level = pyramid.level_for(Rect(0.0, 64.0, 0.0, 32.0), rows=4, cols=8)
        assert level == pyramid.num_levels - 1

    def test_fine_request_served_fine(self, pyramid):
        level = pyramid.level_for(Rect(0.0, 64.0, 0.0, 32.0), rows=32, cols=64)
        assert level == 0

    def test_misaligned_at_coarse_falls_through(self, pyramid):
        # Region aligned only with the finest grid.
        level = pyramid.level_for(Rect(1.0, 5.0, 1.0, 3.0), rows=2, cols=4)
        assert level == 0

    def test_unservable_request_raises(self, pyramid):
        with pytest.raises(ValueError, match="no pyramid level"):
            pyramid.level_for(Rect(0.5, 1.75, 0.0, 1.0), rows=1, cols=5)
        with pytest.raises(ValueError):
            pyramid.level_for(Rect(0.0, 64.0, 0.0, 32.0), rows=0, cols=1)

    def test_browse_through_selected_level(self, pyramid, grid, rng):
        region = Rect(0.0, 64.0, 0.0, 32.0)
        level, estimator, level_grid = pyramid.browse_estimator(region, rows=4, cols=8)
        service = GeoBrowsingService(estimator, level_grid)
        result = service.browse(region, rows=4, cols=8, relation="intersect")
        assert result.counts.shape == (4, 8)
        assert result.counts.sum() > 0


class TestAccuracyPerLevel:
    def test_each_level_matches_its_grid_truth(self, grid, rng):
        data = random_dataset(rng, grid, 150, max_size_cells=0.9, aligned_fraction=0.0)
        pyramid = HistogramPyramid(data, grid, min_cells=4)
        for level in range(pyramid.num_levels):
            level_grid = pyramid.grid(level)
            exact = ExactEvaluator(data, level_grid)
            estimator = pyramid.estimator(level)
            q = TileQuery(0, level_grid.n1 // 2, 0, level_grid.n2 // 2)
            # Sub-cell objects at level 0 may span cells at coarse levels,
            # but S-Euler's intersect/disjoint stay exact at every level.
            assert estimator.estimate(q).n_d == exact.estimate(q).n_d


class TestErrorTaxonomy:
    def test_unservable_request_raises_invalid_region(self, pyramid):
        # Regression: an unalignable region used to raise a bare
        # ValueError, which the gateway's wire codec reported as a
        # generic server error.  InvalidRegionError subclasses
        # ValueError, so old call sites keep working.
        with pytest.raises(InvalidRegionError):
            pyramid.level_for(Rect(0.5, 1.75, 0.0, 1.0), rows=1, cols=5)

    def test_wire_codec_classifies_as_client_error(self, pyramid):
        with pytest.raises(InvalidRegionError) as excinfo:
            pyramid.level_for(Rect(0.25, 0.75, 0.0, 1.0), rows=1, cols=1)
        doc = encode_error(excinfo.value)
        assert doc["code"] == "invalid_region"
        rebuilt = decode_error(doc)
        assert isinstance(rebuilt, InvalidRegionError)
        assert "no pyramid level" in str(rebuilt)

    def test_degenerate_tiling_still_plain_value_error(self, pyramid):
        # rows/cols <= 0 is a caller bug, not a region problem.
        with pytest.raises(ValueError, match="positive"):
            pyramid.level_for(Rect(0.0, 64.0, 0.0, 32.0), rows=0, cols=1)


class TestMaintainedPyramid:
    def test_insert_delete_keep_every_level_consistent(self, grid, rng):
        data = random_dataset(rng, grid, 60, max_size_cells=3.0)
        pyramid = HistogramPyramid.maintained(data, grid, min_cells=4)
        rect = Rect(3.0, 6.0, 2.0, 5.0)
        pyramid.insert(rect)
        assert pyramid.num_objects == 61
        for level in range(pyramid.num_levels):
            g = pyramid.grid(level)
            q = TileQuery(0, g.n1, 0, g.n2)
            assert pyramid.estimator(level).estimate(q).total == 61
        pyramid.delete(rect)
        assert pyramid.num_objects == 60
        for level in range(pyramid.num_levels):
            g = pyramid.grid(level)
            q = TileQuery(0, g.n1, 0, g.n2)
            assert pyramid.estimator(level).estimate(q).total == 60

    def test_static_pyramid_rejects_updates(self, pyramid):
        with pytest.raises(TypeError, match="maintained"):
            pyramid.insert(Rect(0.0, 1.0, 0.0, 1.0))

    def test_opaque_levels_reject_updates_naming_the_level(self, grid, rng):
        data = random_dataset(rng, grid, 10)
        pyramid = HistogramPyramid(data, grid, factory=_opaque_factory)
        with pytest.raises(TypeError, match="level 0"):
            pyramid.delete(Rect(0.0, 1.0, 0.0, 1.0))


class TestPersistence:
    def _payload(self, path, *, strip_envelope):
        with np.load(path) as data:
            skip = ("checksum", "format_version") if strip_envelope else ()
            return {k: data[k] for k in data.files if k not in skip}

    def test_round_trip_bit_identical(self, pyramid, tmp_path):
        path = tmp_path / "pyramid.npz"
        pyramid.save(path)
        loaded = HistogramPyramid.load(path)
        assert loaded.num_levels == pyramid.num_levels
        assert loaded.num_objects == pyramid.num_objects
        for level in range(pyramid.num_levels):
            assert loaded.grid(level) == pyramid.grid(level)
            np.testing.assert_array_equal(
                loaded.estimator(level).histogram.buckets(),
                pyramid.estimator(level).histogram.buckets(),
            )
            g = loaded.grid(level)
            q = TileQuery(0, g.n1 // 2, 0, g.n2)
            assert (
                loaded.estimator(level).estimate(q)
                == pyramid.estimator(level).estimate(q)
            )

    def test_flipped_bucket_fails_checksum(self, pyramid, tmp_path):
        path = tmp_path / "pyramid.npz"
        pyramid.save(path)
        payload = self._payload(path, strip_envelope=False)
        buckets = payload["level0_buckets"].copy()
        buckets.flat[0] += 1
        payload["level0_buckets"] = buckets
        np.savez(path, **payload)  # stale checksum survives the rewrite
        with pytest.raises(SummaryCorruptError, match="checksum"):
            HistogramPyramid.load(path)

    def test_tampered_buckets_fail_level_verify(self, pyramid, tmp_path):
        # Recompute the envelope so the CRC passes: the per-level Euler
        # invariant (corner sum == object count) is the backstop.
        path = tmp_path / "pyramid.npz"
        pyramid.save(path)
        payload = self._payload(path, strip_envelope=True)
        buckets = payload["level1_buckets"].copy()
        buckets[0, 0] += 7
        payload["level1_buckets"] = buckets
        save_verified_npz(path, payload, kind="histogram pyramid")
        with pytest.raises(SummaryCorruptError):
            HistogramPyramid.load(path)

    def test_missing_level_key_detected(self, pyramid, tmp_path):
        path = tmp_path / "pyramid.npz"
        pyramid.save(path)
        payload = self._payload(path, strip_envelope=True)
        del payload["level2_buckets"]
        save_verified_npz(path, payload, kind="histogram pyramid")
        with pytest.raises(SummaryCorruptError, match="missing"):
            HistogramPyramid.load(path)

    def test_inconsistent_ladder_detected(self, pyramid, tmp_path):
        # Declaring fewer levels than level 0 + min_cells imply means the
        # file does not hold the ladder it claims to.
        path = tmp_path / "pyramid.npz"
        pyramid.save(path)
        payload = self._payload(path, strip_envelope=True)
        payload["num_levels"] = np.int64(2)
        save_verified_npz(path, payload, kind="histogram pyramid")
        with pytest.raises(SummaryCorruptError, match="ladder"):
            HistogramPyramid.load(path)

    def test_maintained_pyramid_snapshots_through_save(self, grid, rng, tmp_path):
        data = random_dataset(rng, grid, 30)
        pyramid = HistogramPyramid.maintained(data, grid)
        pyramid.insert(Rect(1.0, 2.0, 1.0, 2.0))
        path = tmp_path / "pyramid.npz"
        pyramid.save(path)
        loaded = HistogramPyramid.load(path)
        assert loaded.num_objects == 31
        for level in range(loaded.num_levels):
            g = loaded.grid(level)
            q = TileQuery(0, g.n1, 0, g.n2)
            assert loaded.estimator(level).estimate(q).total == 31

    def test_opaque_levels_cannot_persist(self, grid, rng, tmp_path):
        data = random_dataset(rng, grid, 10)
        pyramid = HistogramPyramid(data, grid, factory=_opaque_factory)
        with pytest.raises(ValueError, match="histogram"):
            pyramid.save(tmp_path / "pyramid.npz")


class TestLevelGridLadder:
    def test_helper_matches_construction(self, pyramid, grid):
        assert pyramid_level_grids(grid, 4) == tuple(
            pyramid.grid(level) for level in range(pyramid.num_levels)
        )

    def test_helper_validates_min_cells(self, grid):
        with pytest.raises(ValueError):
            pyramid_level_grids(grid, 0)
