"""Tests for the unaligned-query envelope and interpolation layer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exact.continuous import ContinuousExactEvaluator
from repro.exact.evaluator import ExactEvaluator
from repro.euler.unaligned import UnalignedEstimator, _aligned_boxes
from repro.geometry.rect import Rect
from repro.grid.grid import Grid
from repro.grid.tiles_math import TileQuery

from tests.conftest import random_dataset, random_query


@pytest.fixture
def grid():
    return Grid(Rect(0.0, 12.0, 0.0, 8.0), 12, 8)


@pytest.fixture
def data(grid, rng):
    return random_dataset(rng, grid, 200, degenerate_fraction=0.0, aligned_fraction=0.0)


@pytest.fixture
def unaligned(grid, data):
    # Exact aligned backend: envelopes become sound brackets.
    return UnalignedEstimator(ExactEvaluator(data, grid), grid, len(data))


class TestAlignedBoxes:
    def test_inner_and_outer(self, grid):
        inner, outer = _aligned_boxes(grid, Rect(1.2, 4.8, 2.1, 5.9))
        assert inner == TileQuery(2, 4, 3, 5)
        assert outer == TileQuery(1, 5, 2, 6)

    def test_aligned_query_collapses(self, grid):
        inner, outer = _aligned_boxes(grid, Rect(2.0, 5.0, 1.0, 6.0))
        assert inner == outer == TileQuery(2, 5, 1, 6)

    def test_subcell_query_has_no_inner(self, grid):
        inner, outer = _aligned_boxes(grid, Rect(3.2, 3.8, 4.1, 4.9))
        assert inner is None
        assert outer == TileQuery(3, 4, 4, 5)

    def test_outside_query_rejected(self, grid):
        with pytest.raises(ValueError, match="outside the data space"):
            _aligned_boxes(grid, Rect(-1.0, 3.0, 0.0, 2.0))


class TestEnvelope:
    def test_brackets_hold_on_random_queries(self, grid, data, unaligned, rng):
        truth = ContinuousExactEvaluator(data)
        for _ in range(50):
            x = np.sort(rng.uniform(0, 12, size=2))
            y = np.sort(rng.uniform(0, 8, size=2))
            if x[1] - x[0] < 0.05 or y[1] - y[0] < 0.05:
                continue
            query = Rect(float(x[0]), float(x[1]), float(y[0]), float(y[1]))
            exact = truth.estimate(query)
            env = unaligned.envelope(query)
            assert env.intersect_lo <= exact.n_intersect <= env.intersect_hi
            assert env.contains_lo <= exact.n_cs <= env.contains_hi
            assert env.contained_lo <= exact.n_cd <= env.contained_hi

    def test_envelope_tight_on_aligned_queries(self, grid, unaligned, rng):
        for _ in range(10):
            q = random_query(rng, grid)
            env = unaligned.envelope(q.to_world(grid))
            assert env.intersect_lo == env.intersect_hi
            assert env.contains_lo == env.contains_hi
            assert env.contained_lo == env.contained_hi


class TestInterpolation:
    def test_exact_on_aligned_queries(self, grid, data, unaligned, rng):
        lattice = ExactEvaluator(data, grid)
        for _ in range(15):
            q = random_query(rng, grid)
            assert unaligned.estimate(q.to_world(grid)) == lattice.estimate(q)

    def test_estimate_within_envelope(self, grid, unaligned, rng):
        for _ in range(30):
            x = np.sort(rng.uniform(0, 12, size=2))
            y = np.sort(rng.uniform(0, 8, size=2))
            if x[1] - x[0] < 0.05 or y[1] - y[0] < 0.05:
                continue
            query = Rect(float(x[0]), float(x[1]), float(y[0]), float(y[1]))
            counts = unaligned.estimate(query)
            env = unaligned.envelope(query)
            assert env.contains_lo - 1e-9 <= counts.n_cs <= env.contains_hi + 1e-9
            assert env.contained_lo - 1e-9 <= counts.n_cd <= env.contained_hi + 1e-9
            assert counts.total == pytest.approx(unaligned._num_objects)

    def test_reasonable_accuracy_on_small_objects(self, grid, rng):
        """With sub-cell objects the interpolation should land close to
        the continuous truth (objects straddling the frame are rare)."""
        data = random_dataset(
            rng, grid, 400, max_size_cells=0.6, degenerate_fraction=0.0, aligned_fraction=0.0
        )
        unaligned = UnalignedEstimator(ExactEvaluator(data, grid), grid, len(data))
        truth = ContinuousExactEvaluator(data)
        total_err = 0.0
        total = 0.0
        for _ in range(40):
            x = np.sort(rng.uniform(0, 12, size=2))
            y = np.sort(rng.uniform(0, 8, size=2))
            if x[1] - x[0] < 1.0 or y[1] - y[0] < 1.0:
                continue
            query = Rect(float(x[0]), float(x[1]), float(y[0]), float(y[1]))
            exact = truth.estimate(query)
            counts = unaligned.estimate(query)
            total_err += abs(exact.n_intersect - counts.n_intersect)
            total += exact.n_intersect
        assert total > 0
        assert total_err / total < 0.25

    def test_rejects_degenerate_query(self, unaligned):
        with pytest.raises(ValueError, match="positive area"):
            unaligned.estimate(Rect(1.0, 1.0, 0.0, 3.0))

    def test_name(self, unaligned):
        assert unaligned.name == "Unaligned[Exact]"


class TestScaledGrid:
    def test_works_with_non_unit_cells(self, rng):
        grid = Grid(Rect(-100.0, 100.0, 0.0, 50.0), 20, 10)  # 10x5 cells
        data = random_dataset(rng, grid, 150, degenerate_fraction=0.0)
        unaligned = UnalignedEstimator(ExactEvaluator(data, grid), grid, len(data))
        truth = ContinuousExactEvaluator(data)
        query = Rect(-47.0, 33.0, 7.0, 41.0)
        exact = truth.estimate(query)
        env = unaligned.envelope(query)
        assert env.intersect_lo <= exact.n_intersect <= env.intersect_hi
