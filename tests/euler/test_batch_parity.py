"""Batch == scalar parity for every estimator (the tentpole invariant).

The batch path is an execution strategy, not an approximation: for every
estimator, ``estimate_batch`` must produce *bit-identical* floats to
mapping ``estimate`` over the same queries.  Hypothesis drives random
grids, datasets and tile partitions -- including degenerate 1x1 tiles and
tiles touching the data-space boundary, which exercise the Region-B
masking of the EulerApprox edge split.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.euler.full import EulerApprox, QueryEdge
from repro.euler.histogram import EulerHistogram
from repro.euler.multi import MEulerApprox
from repro.euler.simple import SEulerApprox
from repro.exact.evaluator import ExactEvaluator
from repro.geometry.rect import Rect
from repro.grid.grid import Grid
from repro.grid.tiles_math import TileQuery, TileQueryBatch
from repro.workloads.tiles import browsing_tile_batch, browsing_tiles

from tests.conftest import random_dataset


def _assert_bit_identical(batch, scalars, label):
    assert len(batch) == len(scalars)
    for i, counts in enumerate(scalars):
        for field in ("n_d", "n_cs", "n_cd", "n_o"):
            got = getattr(batch, field)[i]
            want = getattr(counts, field)
            assert got == want, (
                f"{label}: query {i} field {field}: batch {got!r} != scalar {want!r}"
            )


def _estimators(data, grid, hist):
    yield SEulerApprox(hist)
    for edge in QueryEdge:
        yield EulerApprox(hist, edge)
    yield MEulerApprox(data, grid, [1.0, 4.0, 9.0])
    yield ExactEvaluator(data, grid)


@st.composite
def grid_and_partition(draw):
    n1 = draw(st.integers(min_value=2, max_value=14))
    n2 = draw(st.integers(min_value=2, max_value=10))
    grid = Grid(Rect(0.0, float(n1), 0.0, float(n2)), n1, n2)
    # An aligned region plus a (rows, cols) split dividing it evenly.
    x_lo = draw(st.integers(min_value=0, max_value=n1 - 1))
    width = draw(st.integers(min_value=1, max_value=n1 - x_lo))
    y_lo = draw(st.integers(min_value=0, max_value=n2 - 1))
    height = draw(st.integers(min_value=1, max_value=n2 - y_lo))
    region = TileQuery(x_lo, x_lo + width, y_lo, y_lo + height)
    cols = draw(st.sampled_from([d for d in range(1, width + 1) if width % d == 0]))
    rows = draw(st.sampled_from([d for d in range(1, height + 1) if height % d == 0]))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    num_objects = draw(st.integers(min_value=0, max_value=120))
    return grid, region, rows, cols, seed, num_objects


@settings(max_examples=25, deadline=None)
@given(grid_and_partition())
def test_every_estimator_batch_matches_scalar(case):
    grid, region, rows, cols, seed, num_objects = case
    rng = np.random.default_rng(seed)
    data = random_dataset(rng, grid, num_objects)
    hist = EulerHistogram.from_dataset(data, grid)

    batch_queries = browsing_tile_batch(region, rows, cols)
    tiles = [t for row in browsing_tiles(region, rows, cols) for t in row]
    assert list(batch_queries) == tiles  # same tiling, same order

    for estimator in _estimators(data, grid, hist):
        batch = estimator.estimate_batch(batch_queries)
        scalars = [estimator.estimate(t) for t in tiles]
        label = getattr(estimator, "edge", estimator.name)
        _assert_bit_identical(batch, scalars, f"{estimator.name}/{label}")


def test_degenerate_single_cell_tiles():
    """1x1 tiles over the whole grid: every tile touches a boundary case
    somewhere and the Region-B extension degenerates on each border."""
    grid = Grid(Rect(0.0, 5.0, 0.0, 4.0), 5, 4)
    rng = np.random.default_rng(99)
    data = random_dataset(rng, grid, 80)
    hist = EulerHistogram.from_dataset(data, grid)
    region = TileQuery(0, 5, 0, 4)
    batch_queries = browsing_tile_batch(region, rows=4, cols=5)

    for estimator in _estimators(data, grid, hist):
        batch = estimator.estimate_batch(batch_queries)
        scalars = [estimator.estimate(t) for t in batch_queries]
        _assert_bit_identical(batch, scalars, estimator.name)


def test_whole_grid_single_tile():
    """The 1x1 partition: one query covering the full data space, where
    every Region-B extension is empty for every edge."""
    grid = Grid(Rect(0.0, 6.0, 0.0, 3.0), 6, 3)
    rng = np.random.default_rng(5)
    data = random_dataset(rng, grid, 60)
    hist = EulerHistogram.from_dataset(data, grid)
    whole = TileQueryBatch.from_queries([TileQuery(0, 6, 0, 3)])

    for estimator in _estimators(data, grid, hist):
        batch = estimator.estimate_batch(whole)
        _assert_bit_identical(batch, [estimator.estimate(whole[0])], estimator.name)


def test_batch_respects_grid_bounds():
    grid = Grid(Rect(0.0, 4.0, 0.0, 4.0), 4, 4)
    data = random_dataset(np.random.default_rng(1), grid, 10)
    hist = EulerHistogram.from_dataset(data, grid)
    outside = TileQueryBatch.from_queries([TileQuery(0, 5, 0, 4)])
    for estimator in (SEulerApprox(hist), EulerApprox(hist), ExactEvaluator(data, grid)):
        with pytest.raises((ValueError, IndexError)):
            estimator.estimate_batch(outside)
