"""Tests for the pragmatic M-EulerApprox threshold tuner (Section 6.4)."""

import pytest

from repro.euler.tuning import tune_area_thresholds
from repro.exact.evaluator import ExactEvaluator
from repro.geometry.rect import Rect
from repro.grid.grid import Grid
from repro.workloads.tiles import query_set

from tests.conftest import random_dataset


@pytest.fixture
def grid():
    return Grid(Rect(0.0, 24.0, 0.0, 12.0), 24, 12)


@pytest.fixture
def mixed_dataset(grid, rng):
    small = random_dataset(rng, grid, 400, max_size_cells=1.0, aligned_fraction=0.0)
    big = random_dataset(rng, grid, 150, aligned_fraction=0.0)
    return small.concatenated(big, name="mixed")


@pytest.fixture
def query_sets(grid):
    return [query_set(grid, n) for n in (12, 6, 4, 3, 2)]


def test_tuner_returns_valid_schedule(grid, mixed_dataset, query_sets):
    oracle = ExactEvaluator(mixed_dataset, grid).estimate
    result = tune_area_thresholds(
        mixed_dataset, grid, oracle, query_sets, error_limit=0.02, max_histograms=5
    )
    assert result.thresholds[0] == 1.0
    assert all(a < b for a, b in zip(result.thresholds, result.thresholds[1:]))
    assert 2 <= result.num_histograms <= 5
    assert result.estimator.num_histograms == result.num_histograms
    assert len(result.history) >= 1


def test_tuner_improves_over_start(grid, mixed_dataset, query_sets):
    """The loop keeps the best configuration: the final worst-case error
    never exceeds the 2-histogram starting point's."""
    oracle = ExactEvaluator(mixed_dataset, grid).estimate
    result = tune_area_thresholds(
        mixed_dataset, grid, oracle, query_sets, error_limit=0.0, max_histograms=5
    )
    start_error = result.history[0][1]
    best_error = min(err for _, err in result.history)
    final_m = result.num_histograms
    # The returned estimator corresponds to the minimum seen.
    assert any(m == final_m and err == best_error for m, err in result.history)
    assert best_error <= start_error


def test_tuner_stops_as_soon_as_limit_is_met(grid, rng, query_sets):
    tiny = random_dataset(rng, grid, 300, max_size_cells=0.9, aligned_fraction=0.0)
    oracle = ExactEvaluator(tiny, grid).estimate
    result = tune_area_thresholds(tiny, grid, oracle, query_sets, error_limit=0.05)
    # The first configuration meeting the limit ends the loop.
    below = [i for i, (_, err) in enumerate(result.history) if err <= 0.05]
    if below:
        assert below[0] == len(result.history) - 1
        assert result.history[-1][1] <= 0.05
    assert result.num_histograms <= 5


def test_tuner_validates_inputs(grid, mixed_dataset, query_sets):
    oracle = ExactEvaluator(mixed_dataset, grid).estimate
    with pytest.raises(ValueError, match="2 histograms"):
        tune_area_thresholds(
            mixed_dataset, grid, oracle, query_sets, max_histograms=1
        )
    with pytest.raises(ValueError, match="query set"):
        tune_area_thresholds(mixed_dataset, grid, oracle, [])
