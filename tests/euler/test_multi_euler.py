"""Tests for M-EulerApprox (Section 5.4)."""

import numpy as np
import pytest

from repro.datasets.base import RectDataset
from repro.euler.full import EulerApprox
from repro.euler.histogram import EulerHistogram
from repro.euler.multi import MEulerApprox, area_partition, validate_thresholds
from repro.euler.simple import SEulerApprox
from repro.geometry.rect import Rect
from repro.grid.grid import Grid
from repro.grid.tiles_math import TileQuery

from tests.conftest import brute_force_counts, random_dataset, random_query


@pytest.fixture
def grid():
    return Grid(Rect(0.0, 12.0, 0.0, 8.0), 12, 8)


class TestThresholds:
    def test_valid(self):
        assert validate_thresholds([1, 9, 100]) == (1.0, 9.0, 100.0)

    def test_must_start_at_unit_cell(self):
        with pytest.raises(ValueError, match="unit cell"):
            validate_thresholds([2, 9])

    def test_must_increase(self):
        with pytest.raises(ValueError, match="increasing"):
            validate_thresholds([1, 9, 9])

    def test_non_empty(self):
        with pytest.raises(ValueError):
            validate_thresholds([])


class TestPartition:
    def test_partition_bands(self, grid, rng):
        data = random_dataset(rng, grid, 300, degenerate_fraction=0.2)
        groups = area_partition(data, grid, [1, 4, 16])
        assert sum(len(g) for g in groups) == len(data)
        areas = data.areas_in_cells(grid.cell_width, grid.cell_height)
        assert len(groups[0]) == int(np.count_nonzero(areas < 4))
        assert len(groups[1]) == int(np.count_nonzero((areas >= 4) & (areas < 16)))
        assert len(groups[2]) == int(np.count_nonzero(areas >= 16))

    def test_partition_is_disjoint_union(self, grid, rng):
        data = random_dataset(rng, grid, 100)
        groups = area_partition(data, grid, [1, 2, 8, 32])
        merged = sorted(
            (r.x_lo, r.x_hi, r.y_lo, r.y_hi) for g in groups for r in g
        )
        original = sorted((r.x_lo, r.x_hi, r.y_lo, r.y_hi) for r in data)
        assert merged == original

    def test_group_names(self, grid, rng):
        data = random_dataset(rng, grid, 10, name="mydata")
        groups = area_partition(data, grid, [1, 4])
        assert groups[0].name == "mydata[H_0]"
        assert groups[1].name == "mydata[H_1]"


class TestEstimation:
    def test_m1_equals_euler_approx(self, grid, rng):
        """With a single histogram every query takes the EulerApprox path,
        so M-EulerApprox(m=1) must agree with EulerApprox exactly."""
        data = random_dataset(rng, grid, 150)
        multi = MEulerApprox(data, grid, [1])
        single = EulerApprox(EulerHistogram.from_dataset(data, grid))
        for _ in range(25):
            q = random_query(rng, grid)
            assert multi.estimate(q) == single.estimate(q)

    def test_n_d_and_n_o_match_s_euler(self, grid, rng):
        """Group-wise N_d / N_o sums telescope to the single-histogram
        values: M-Euler's overlap estimate is schedule-invariant."""
        data = random_dataset(rng, grid, 150)
        multi = MEulerApprox(data, grid, [1, 4, 25])
        simple = SEulerApprox(EulerHistogram.from_dataset(data, grid))
        for _ in range(25):
            q = random_query(rng, grid)
            a, b = multi.estimate(q), simple.estimate(q)
            assert a.n_d == pytest.approx(b.n_d)
            assert a.n_o == pytest.approx(b.n_o)

    def test_exact_when_bands_separate_objects_from_queries(self, grid):
        """Small objects plus one giant container, thresholds separating
        them: each group takes its safe path and the answer is exact."""
        rects = [
            Rect(1.2, 1.8, 1.2, 1.8),
            Rect(5.3, 5.9, 3.1, 3.7),
            Rect(6.4, 6.9, 4.2, 4.8),
            Rect(0.5, 11.5, 0.5, 7.5),  # area 77 cells
        ]
        data = RectDataset.from_rects(rects, grid.extent)
        multi = MEulerApprox(data, grid, [1, 36])
        q = TileQuery(5, 8, 3, 6)  # area 9: below 36, above the small band
        truth = brute_force_counts(data, grid, q)
        assert multi.estimate(q) == truth

    def test_sums_to_dataset_size(self, grid, rng):
        data = random_dataset(rng, grid, 130)
        multi = MEulerApprox(data, grid, [1, 4, 16, 64])
        for _ in range(25):
            counts = multi.estimate(random_query(rng, grid))
            assert counts.total == pytest.approx(len(data))

    def test_empty_groups_are_skipped(self, grid):
        # All objects tiny: the upper bands are empty and must not
        # perturb the result.
        rects = [Rect(1.2, 1.6, 1.2, 1.6), Rect(3.1, 3.5, 2.2, 2.6)]
        data = RectDataset.from_rects(rects, grid.extent)
        multi = MEulerApprox(data, grid, [1, 9, 49])
        q = TileQuery(0, 4, 0, 4)
        assert multi.estimate(q) == brute_force_counts(data, grid, q)

    def test_more_histograms_never_hurt_on_adversarial_mix(self, grid, rng):
        """The paper's Figure 18 claim in miniature: on a size-mixed
        dataset the worst N_cs error is non-increasing as thresholds are
        refined (for nested schedules)."""
        small = random_dataset(rng, grid, 150, max_size_cells=1.0, aligned_fraction=0.0)
        big = random_dataset(rng, grid, 60, max_size_cells=None, aligned_fraction=0.0)
        data = small.concatenated(big, name="mix")

        queries = [random_query(rng, grid) for _ in range(40)]
        worst = []
        for thresholds in ([1], [1, 16], [1, 4, 16], [1, 4, 16, 36]):
            multi = MEulerApprox(data, grid, thresholds)
            err = 0.0
            for q in queries:
                truth = brute_force_counts(data, grid, q)
                err += abs(multi.estimate(q).n_cs - truth.n_cs)
            worst.append(err)
        assert worst[-1] <= worst[0]

    def test_properties(self, grid, rng):
        data = random_dataset(rng, grid, 50)
        multi = MEulerApprox(data, grid, [1, 9])
        assert multi.num_histograms == 2
        assert multi.name == "M-EulerApprox(m=2)"
        assert multi.area_thresholds == (1.0, 9.0)
        assert multi.num_objects == 50
        assert multi.nbytes > 0
        assert len(multi.histograms) == 2
