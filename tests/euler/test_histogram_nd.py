"""Tests for the d-dimensional Euler histogram against brute force."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.euler.histogram import EulerHistogram
from repro.euler.histogram_nd import EulerHistogramND, SEulerApproxND, _sign_array
from repro.datasets.base import RectDataset
from repro.geometry.rect import Rect
from repro.grid.grid import Grid
from repro.grid.grid_nd import BoxQuery, GridND
from repro.grid.tiles_math import TileQuery


def _random_boxes(rng, grid: GridND, m: int):
    """(M, d) open boxes inside the grid (cell units == world units)."""
    d = grid.ndim
    lows = np.empty((m, d))
    highs = np.empty((m, d))
    for k in range(d):
        size = rng.uniform(0.0, grid.cells[k], size=m)
        lo = rng.uniform(0.0, grid.cells[k] - size)
        lows[:, k] = lo
        highs[:, k] = lo + size
    return lows, highs


def _brute_counts(lows, highs, grid: GridND, query: BoxQuery):
    """Scalar per-axis predicates on snapped cell blocks."""
    n_int = n_cs = n_cd = 0
    for obj in range(lows.shape[0]):
        inter = within = covers = True
        for k in range(grid.ndim):
            lo, hi = lows[obj, k], highs[obj, k]
            c_lo = min(int(np.floor(lo)), grid.cells[k] - 1)
            c_hi = max(int(np.ceil(hi)) - 1, c_lo)
            q_lo, q_hi = query.lo[k], query.hi[k]
            inter &= c_lo <= q_hi - 1 and c_hi >= q_lo
            within &= c_lo >= q_lo and c_hi <= q_hi - 1
            covers &= c_lo < q_lo and c_hi >= q_hi
        n_int += inter
        n_cs += inter and within
        n_cd += inter and covers
    return n_int, n_cs, n_cd


class TestSignArray:
    def test_2d_matches_lattice_sign_matrix(self):
        from repro.grid.lattice import lattice_sign_matrix

        np.testing.assert_array_equal(_sign_array((7, 5)), lattice_sign_matrix(4, 3))

    def test_3d_alternation(self):
        sign = _sign_array((3, 3, 3))
        assert sign[0, 0, 0] == 1   # cell
        assert sign[1, 0, 0] == -1  # face
        assert sign[1, 1, 0] == 1   # edge
        assert sign[1, 1, 1] == -1  # vertex

    def test_total_is_one(self):
        # Interior Euler characteristic of the full grid block is 1 in
        # any dimension.
        for shape in [(5,), (5, 7), (3, 5, 7), (3, 3, 3, 3)]:
            assert int(_sign_array(shape).sum()) == 1


class TestAgainstBruteForce:
    @pytest.mark.parametrize("cells", [(8,), (6, 4), (4, 3, 3)])
    def test_intersect_exact(self, cells):
        rng = np.random.default_rng(42)
        grid = GridND.unit_cells(cells)
        lows, highs = _random_boxes(rng, grid, 80)
        hist = EulerHistogramND.from_boxes(grid, lows, highs)
        assert hist.total_sum == 80

        for _ in range(20):
            lo = tuple(int(rng.integers(0, n)) for n in cells)
            hi = tuple(int(rng.integers(a + 1, n + 1)) for a, n in zip(lo, cells))
            q = BoxQuery(lo=lo, hi=hi)
            n_int, _, _ = _brute_counts(lows, highs, grid, q)
            assert hist.intersect_count(q) == n_int

    @pytest.mark.parametrize("cells", [(8,), (6, 4), (4, 3, 3)])
    def test_s_euler_exact_for_subcell_objects(self, cells):
        rng = np.random.default_rng(7)
        grid = GridND.unit_cells(cells)
        d = grid.ndim
        m = 60
        lows = np.empty((m, d))
        highs = np.empty((m, d))
        for k in range(d):
            lo = rng.uniform(0.0, grid.cells[k] - 0.9, size=m)
            lows[:, k] = lo
            highs[:, k] = lo + rng.uniform(0.0, 0.9, size=m)
        estimator = SEulerApproxND(EulerHistogramND.from_boxes(grid, lows, highs))

        for _ in range(15):
            lo = tuple(int(rng.integers(0, n)) for n in cells)
            hi = tuple(int(rng.integers(a + 1, n + 1)) for a, n in zip(lo, cells))
            q = BoxQuery(lo=lo, hi=hi)
            n_int, n_cs, n_cd = _brute_counts(lows, highs, grid, q)
            assert n_cd == 0
            counts = estimator.estimate(q)
            assert counts.n_cs == n_cs
            assert counts.n_d == m - n_int
            assert counts.n_o == n_int - n_cs

    def test_2d_agrees_with_specialised_histogram(self):
        rng = np.random.default_rng(3)
        grid_nd = GridND.unit_cells([6, 4])
        grid_2d = Grid(Rect(0.0, 6.0, 0.0, 4.0), 6, 4)
        lows, highs = _random_boxes(rng, grid_nd, 100)
        hist_nd = EulerHistogramND.from_boxes(grid_nd, lows, highs)
        data = RectDataset(lows[:, 0], highs[:, 0], lows[:, 1], highs[:, 1], grid_2d.extent)
        hist_2d = EulerHistogram.from_dataset(data, grid_2d)

        np.testing.assert_array_equal(hist_nd.buckets(), hist_2d.buckets())
        for qx_lo, qy_lo in itertools.product(range(6), range(4)):
            for qx_hi, qy_hi in itertools.product(range(qx_lo + 1, 7), range(qy_lo + 1, 5)):
                q2 = TileQuery(qx_lo, qx_hi, qy_lo, qy_hi)
                qn = BoxQuery(lo=(qx_lo, qy_lo), hi=(qx_hi, qy_hi))
                assert hist_nd.intersect_count(qn) == hist_2d.intersect_count(q2)
                assert hist_nd.outside_sum(qn) == hist_2d.outside_sum(q2)


class TestLoopholeInHigherDimensions:
    @pytest.mark.parametrize(
        "cells,expected_outside",
        [
            ((9,), 2),          # 1-d: container = two exterior segments
            ((9, 9), 0),        # 2-d: the paper's loophole (annulus -> 0)
            ((9, 9, 9), 2),     # 3-d shell sums to 2
            ((5, 5, 5, 5), 0),  # 4-d: even dimension -> 0 again
        ],
    )
    def test_container_contribution_alternates_with_dimension(
        self, cells, expected_outside
    ):
        """A containing object's contribution to the outside sum is
        ``1 - (-1)^d``: the closed query region's signed sum under full
        coverage telescopes per axis to ``-1``, giving ``(-1)^d`` overall.
        The paper's loophole effect (contribution 0) is thus specific to
        even dimensions; in odd dimensions containers are *double*
        counted instead of dropped."""
        grid = GridND.unit_cells(cells)
        d = len(cells)
        lows = np.full((1, d), 0.5)
        highs = np.array([[n - 0.5 for n in cells]])
        hist = EulerHistogramND.from_boxes(grid, lows, highs)
        center = tuple(n // 2 for n in cells)
        q = BoxQuery(lo=center, hi=tuple(c + 1 for c in center))
        assert hist.intersect_count(q) == 1
        assert hist.outside_sum(q) == expected_outside


class TestValidation:
    def test_shape_mismatch(self):
        grid = GridND.unit_cells([4, 4])
        with pytest.raises(ValueError, match="lattice"):
            EulerHistogramND(grid, np.zeros((3, 3)), 0)

    def test_bad_corner_arrays(self):
        grid = GridND.unit_cells([4, 4])
        with pytest.raises(ValueError, match="corner arrays"):
            EulerHistogramND.from_boxes(grid, np.zeros((3, 3)), np.zeros((3, 3)))

    def test_name(self):
        grid = GridND.unit_cells([4, 4, 4])
        hist = EulerHistogramND.from_boxes(grid, np.zeros((0, 3)), np.zeros((0, 3)))
        assert SEulerApproxND(hist).name == "S-EulerApprox3D"
        assert hist.num_buckets == 7 * 7 * 7
