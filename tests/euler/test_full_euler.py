"""Tests for EulerApprox and the Region A/B containment estimate."""

import pytest

from repro.datasets.base import RectDataset
from repro.euler.full import EulerApprox, QueryEdge
from repro.euler.histogram import EulerHistogram
from repro.geometry.rect import Rect
from repro.grid.grid import Grid
from repro.grid.tiles_math import TileQuery

from tests.conftest import brute_force_counts, random_dataset, random_query


@pytest.fixture
def grid():
    return Grid(Rect(0.0, 10.0, 0.0, 8.0), 10, 8)


def _estimator(grid, rects, edge=QueryEdge.LEFT):
    data = RectDataset.from_rects(rects, grid.extent)
    return EulerApprox(EulerHistogram.from_dataset(data, grid), edge), data


CENTER_QUERY = TileQuery(4, 6, 3, 5)


class TestContainerRecovery:
    @pytest.mark.parametrize("edge", list(QueryEdge))
    def test_single_container_recovered(self, grid, edge):
        """An object containing the query wraps Region A once and is
        counted exactly once by N_i(A) + N_cs(B) - n'_ei -- for every
        split edge."""
        estimator, data = _estimator(grid, [Rect(1.0, 9.0, 1.0, 7.0)], edge)
        truth = brute_force_counts(data, grid, CENTER_QUERY)
        assert truth.n_cd == 1
        counts = estimator.estimate(CENTER_QUERY)
        assert counts.n_cd == 1
        assert counts.n_cs == 0
        assert counts.n_o == 0

    def test_stacked_containers(self, grid):
        rects = [
            Rect(1.0, 9.0, 1.0, 7.0),
            Rect(2.0, 8.0, 2.0, 6.0),
            Rect(3.0, 7.0, 2.5, 5.5),
        ]
        estimator, data = _estimator(grid, rects)
        counts = estimator.estimate(CENTER_QUERY)
        assert counts.n_cd == brute_force_counts(data, grid, CENTER_QUERY).n_cd == 3

    def test_container_mixed_with_small_objects(self, grid, rng):
        small = random_dataset(rng, grid, 100, max_size_cells=0.9, aligned_fraction=0.0)
        # Drop O2 candidates: sub-cell objects straddling the query's left
        # edge inside the band would legitimately perturb N_cd by -1 each
        # (the documented approximation error); this test isolates the
        # container-recovery path.
        q = CENTER_QUERY
        o2 = (
            (small.x_lo < q.qx_lo)
            & (small.x_hi > q.qx_lo)
            & (small.y_hi > q.qy_lo)
            & (small.y_lo < q.qy_hi)
        )
        small = small.select(~o2)
        container = RectDataset.from_rects([Rect(0.5, 9.5, 0.5, 7.5)], grid.extent)
        data = small.concatenated(container)
        estimator = EulerApprox(EulerHistogram.from_dataset(data, grid))
        truth = brute_force_counts(data, grid, CENTER_QUERY)
        counts = estimator.estimate(CENTER_QUERY)
        assert counts.n_cd == truth.n_cd == 1
        assert counts.n_cs == truth.n_cs
        assert counts.n_o == truth.n_o


class TestErrorModes:
    def test_o2_object_missed(self, grid):
        """An object overlapping only the split edge, confined to the band
        (O2), is invisible to both N_i(A) and N_cs(B): N_cd comes out -1
        and N_cs +1."""
        estimator, data = _estimator(grid, [Rect(2.5, 4.5, 3.2, 4.8)])  # pokes left
        truth = brute_force_counts(data, grid, CENTER_QUERY)
        assert truth.n_o == 1
        counts = estimator.estimate(CENTER_QUERY)
        assert counts.n_cd == -1
        assert counts.n_cs == 1
        assert counts.n_o == truth.n_o  # N_o itself is unaffected

    def test_o1_object_double_counted(self, grid):
        """An object containing the split edge but not the query (O1)
        meets Region A twice: N_cd comes out +1."""
        estimator, data = _estimator(grid, [Rect(3.0, 5.0, 1.0, 7.0)])
        truth = brute_force_counts(data, grid, CENTER_QUERY)
        assert truth.n_cd == 0 and truth.n_o == 1
        counts = estimator.estimate(CENTER_QUERY)
        assert counts.n_cd == 1
        assert counts.n_cs == -1

    def test_opposite_edge_poker_is_fine(self, grid):
        """An object poking out the edge OPPOSITE the split is handled
        exactly (it reaches Region A)."""
        estimator, data = _estimator(grid, [Rect(5.5, 7.5, 3.2, 4.8)])  # pokes right
        truth = brute_force_counts(data, grid, CENTER_QUERY)
        counts = estimator.estimate(CENTER_QUERY)
        assert counts == truth

    def test_left_vertical_crosser_cancels(self, grid):
        """A tall object left of the query crossing the band vertically
        double counts in A but also in B's outside sum; the errors cancel
        and N_cd stays 0."""
        estimator, data = _estimator(grid, [Rect(1.2, 1.8, 0.5, 7.5)])
        truth = brute_force_counts(data, grid, CENTER_QUERY)
        assert truth.n_d == 1
        counts = estimator.estimate(CENTER_QUERY)
        assert counts == truth


class TestBandGeometry:
    def test_query_touching_split_boundary(self, grid):
        # Query touching the left data-space boundary: Region B is empty.
        estimator, data = _estimator(grid, [Rect(2.0, 4.0, 1.0, 7.0)])
        q = TileQuery(0, 3, 3, 5)
        counts = estimator.estimate(q)
        truth = brute_force_counts(data, grid, q)
        assert counts.total == len(data)
        assert counts.n_o == truth.n_o

    def test_full_space_query(self, grid, rng):
        data = random_dataset(rng, grid, 60)
        estimator = EulerApprox(EulerHistogram.from_dataset(data, grid))
        q = TileQuery(0, 10, 0, 8)
        counts = estimator.estimate(q)
        # Everything is contained in the full-space query.
        assert counts.n_cs == len(data)
        assert counts.n_cd == 0 and counts.n_d == 0 and counts.n_o == 0

    def test_estimates_sum_to_dataset_size(self, grid, rng):
        data = random_dataset(rng, grid, 120)
        for edge in QueryEdge:
            estimator = EulerApprox(EulerHistogram.from_dataset(data, grid), edge)
            for _ in range(15):
                counts = estimator.estimate(random_query(rng, grid))
                assert counts.total == pytest.approx(len(data))

    def test_n_d_and_n_o_match_s_euler(self, grid, rng):
        """EulerApprox and S-EulerApprox share the N_d / N_o equations."""
        from repro.euler.simple import SEulerApprox

        data = random_dataset(rng, grid, 120)
        hist = EulerHistogram.from_dataset(data, grid)
        full = EulerApprox(hist)
        simple = SEulerApprox(hist)
        for _ in range(20):
            q = random_query(rng, grid)
            a, b = full.estimate(q), simple.estimate(q)
            assert a.n_d == b.n_d
            assert a.n_o == b.n_o


class TestProtocol:
    def test_name_and_edge(self, grid):
        estimator, _ = _estimator(grid, [], QueryEdge.TOP)
        assert estimator.name == "EulerApprox"
        assert estimator.edge is QueryEdge.TOP
