"""Tests for Euler histogram construction and region sums."""

import numpy as np
import pytest

from repro.datasets.base import RectDataset
from repro.euler.histogram import EulerHistogram, EulerHistogramBuilder
from repro.geometry.rect import Rect
from repro.grid.grid import Grid
from repro.grid.tiles_math import TileQuery

from tests.conftest import brute_force_counts, random_dataset, random_query


@pytest.fixture
def grid():
    return Grid(Rect(0.0, 6.0, 0.0, 4.0), 6, 4)


def _dataset(grid, rects):
    return RectDataset.from_rects(rects, grid.extent)


class TestConstruction:
    def test_figure_6_one_big_object(self, grid):
        # One object spanning cells [1,3) x [1,3): the 3x3 lattice block
        # around the crossed lines gets filled, edges negated.
        hist = EulerHistogram.from_dataset(_dataset(grid, [Rect(1.0, 3.0, 1.0, 3.0)]), grid)
        buckets = hist.buckets()
        block = buckets[2:5, 2:5]
        expected = np.array([[1, -1, 1], [-1, 1, -1], [1, -1, 1]])
        np.testing.assert_array_equal(block, expected)
        assert buckets.sum() == 1
        assert np.count_nonzero(buckets) == 9

    def test_figure_6_four_small_objects(self, grid):
        # Four per-cell objects in the same 2x2 cell block: only faces are
        # touched -- the histogram differs from the one-big-object case,
        # which is the whole point of keeping edge/vertex buckets.
        rects = [
            Rect(1.2, 1.8, 1.2, 1.8),
            Rect(2.2, 2.8, 1.2, 1.8),
            Rect(1.2, 1.8, 2.2, 2.8),
            Rect(2.2, 2.8, 2.2, 2.8),
        ]
        hist = EulerHistogram.from_dataset(_dataset(grid, rects), grid)
        buckets = hist.buckets()
        assert buckets.sum() == 4
        assert (buckets[3, :] == 0).all()  # the grid line x=2 is untouched
        assert buckets[2, 2] == 1 and buckets[4, 4] == 1

    def test_total_sum_counts_objects(self, grid, rng):
        data = random_dataset(rng, grid, 300)
        hist = EulerHistogram.from_dataset(data, grid)
        assert hist.total_sum == 300
        assert hist.num_objects == 300

    def test_empty_dataset(self, grid):
        hist = EulerHistogram.from_dataset(RectDataset.empty(grid.extent), grid)
        assert hist.total_sum == 0
        assert hist.intersect_count(TileQuery(0, 6, 0, 4)) == 0

    def test_num_buckets(self, grid):
        hist = EulerHistogram.from_dataset(RectDataset.empty(grid.extent), grid)
        assert hist.num_buckets == 11 * 7

    def test_shape_mismatch_rejected(self, grid):
        with pytest.raises(ValueError, match="lattice"):
            EulerHistogram(grid, np.zeros((3, 3)), 0)

    def test_buckets_view_is_read_only(self, grid):
        hist = EulerHistogram.from_dataset(RectDataset.empty(grid.extent), grid)
        with pytest.raises(ValueError):
            hist.buckets()[0, 0] = 5


class TestBuilder:
    def test_incremental_matches_batch(self, grid, rng):
        data = random_dataset(rng, grid, 120)
        batch = EulerHistogram.from_dataset(data, grid)
        builder = EulerHistogramBuilder(grid)
        for rect in data:
            builder.add(rect)
        incremental = builder.build()
        np.testing.assert_array_equal(batch.buckets(), incremental.buckets())
        assert incremental.num_objects == 120

    def test_remove_restores_state(self, grid):
        builder = EulerHistogramBuilder(grid)
        obj = Rect(0.5, 3.5, 0.5, 3.5)
        builder.add(Rect(1.0, 2.0, 1.0, 2.0))
        before = builder.build().buckets().copy()
        builder.add(obj)
        builder.add(obj, weight=-1)
        np.testing.assert_array_equal(builder.build().buckets(), before)
        assert builder.num_objects == 1

    def test_builder_usable_after_build(self, grid):
        builder = EulerHistogramBuilder(grid)
        builder.add(Rect(0.5, 1.5, 0.5, 1.5))
        first = builder.build()
        builder.add(Rect(2.5, 3.5, 2.5, 3.5))
        second = builder.build()
        assert first.total_sum == 1
        assert second.total_sum == 2

    def test_remove_from_empty_builder_rejected(self, grid):
        builder = EulerHistogramBuilder(grid)
        with pytest.raises(ValueError, match="negative"):
            builder.add(Rect(0.5, 1.5, 0.5, 1.5), weight=-1)
        # The guard fires before the accumulator is touched: the builder
        # still produces a pristine empty histogram.
        hist = builder.build()
        assert builder.num_objects == 0
        assert hist.total_sum == 0
        assert np.count_nonzero(hist.buckets()) == 0

    def test_over_removal_rejected(self, grid):
        builder = EulerHistogramBuilder(grid)
        builder.add(Rect(0.5, 1.5, 0.5, 1.5))
        builder.add(Rect(0.5, 1.5, 0.5, 1.5), weight=-1)
        with pytest.raises(ValueError, match="negative"):
            builder.add(Rect(2.5, 3.5, 2.5, 3.5), weight=-1)
        assert builder.num_objects == 0

    def test_negative_bulk_weight_rejected(self, grid):
        builder = EulerHistogramBuilder(grid)
        builder.add(Rect(0.5, 1.5, 0.5, 1.5))
        builder.add(Rect(1.5, 2.5, 1.5, 2.5))
        with pytest.raises(ValueError, match="negative"):
            builder.add(Rect(0.5, 1.5, 0.5, 1.5), weight=-3)
        assert builder.num_objects == 2
        assert builder.build().total_sum == 2


class TestRegionSums:
    def test_intersect_count_is_exact(self, grid, rng):
        data = random_dataset(rng, grid, 150)
        hist = EulerHistogram.from_dataset(data, grid)
        for _ in range(30):
            q = random_query(rng, grid)
            expected = brute_force_counts(data, grid, q).n_intersect
            assert hist.intersect_count(q) == expected

    def test_outside_sum_without_containers_or_crossovers(self, grid):
        # Small objects, none containing or crossing the query: the
        # outside sum is exactly the number of objects meeting the
        # query's exterior.
        rects = [
            Rect(0.2, 0.8, 0.2, 0.8),     # disjoint, fully outside
            Rect(1.5, 2.5, 1.5, 2.5),     # overlaps the query boundary
            Rect(2.2, 2.8, 2.2, 2.8),     # inside the query
        ]
        hist = EulerHistogram.from_dataset(_dataset(grid, rects), grid)
        q = TileQuery(2, 5, 2, 4)
        assert hist.outside_sum(q) == 2

    def test_loophole_effect(self, grid):
        # An object containing the query contributes 0 to the outside sum
        # (Figure 10): its exterior footprint is an annulus.
        hist = EulerHistogram.from_dataset(_dataset(grid, [Rect(0.5, 5.5, 0.5, 3.5)]), grid)
        q = TileQuery(2, 4, 1, 3)
        assert hist.intersect_count(q) == 1
        assert hist.outside_sum(q) == 0

    def test_crossover_double_count(self, grid):
        # An object crossing the query horizontally (Figure 9(b)) counts
        # twice in the outside sum.
        hist = EulerHistogram.from_dataset(_dataset(grid, [Rect(0.5, 5.5, 1.2, 1.8)]), grid)
        q = TileQuery(2, 4, 0, 4)
        assert hist.intersect_count(q) == 1
        assert hist.outside_sum(q) == 2

    def test_contained_count_on_boundary_region(self, grid):
        rects = [Rect(0.2, 0.8, 0.2, 0.8), Rect(0.5, 2.5, 0.5, 2.5), Rect(4.0, 5.0, 1.0, 2.0)]
        hist = EulerHistogram.from_dataset(_dataset(grid, rects), grid)
        # Region touching the data-space corner: contained counts exact.
        region = TileQuery(0, 3, 0, 3)
        assert hist.contained_count(region) == 2

    def test_closed_region_sum_full_space(self, grid, rng):
        data = random_dataset(rng, grid, 80)
        hist = EulerHistogram.from_dataset(data, grid)
        q = TileQuery(0, 6, 0, 4)
        assert hist.closed_region_sum(q) == hist.total_sum
        assert hist.outside_sum(q) == 0

    def test_empty_lattice_range_sums_zero(self, grid):
        hist = EulerHistogram.from_dataset(_dataset(grid, [Rect(1.0, 2.0, 1.0, 2.0)]), grid)
        assert hist.lattice_range_sum(5, 4, 0, 3) == 0


class TestDegenerateObjects:
    def test_point_counts_in_its_cell(self, grid):
        hist = EulerHistogram.from_dataset(_dataset(grid, [Rect.point(2.5, 1.5)]), grid)
        assert hist.intersect_count(TileQuery(2, 3, 1, 2)) == 1
        assert hist.intersect_count(TileQuery(0, 2, 0, 4)) == 0

    def test_point_on_grid_line_lower_cell(self, grid):
        hist = EulerHistogram.from_dataset(_dataset(grid, [Rect.point(2.0, 1.0)]), grid)
        assert hist.intersect_count(TileQuery(2, 3, 1, 2)) == 1
        assert hist.intersect_count(TileQuery(1, 2, 1, 2)) == 0

    def test_segment_spanning_cells(self, grid):
        hist = EulerHistogram.from_dataset(_dataset(grid, [Rect(0.5, 3.5, 1.5, 1.5)]), grid)
        assert hist.intersect_count(TileQuery(0, 6, 1, 2)) == 1
        # The segment crosses lines x=1,2,3; its footprint is cells 0..3.
        assert hist.intersect_count(TileQuery(3, 4, 1, 2)) == 1
        assert hist.intersect_count(TileQuery(4, 5, 1, 2)) == 0
