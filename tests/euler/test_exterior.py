"""Tests for the exterior histogram H_e -- Section 5.3's omitted analysis.

``n_ie`` truth for these tests: the number of objects whose exterior
intersects the query's interior = all objects except those whose closure
covers the query = ``|S| - N_cd_closed`` where ``N_cd_closed`` counts
objects whose (snapped, closed) footprint covers the open query.  Under
the shrinking convention that is ``N_d + N_o + N_cs`` plus the containers
whose interiors cover the query -- for the snapped semantics used here,
``n_ie = |S| - N_cd`` (a contained-in-object query is exactly one whose
interior the object's interior covers).
"""

import pytest

from repro.datasets.base import RectDataset
from repro.euler.exterior import ExteriorHistogram
from repro.exact.evaluator import ExactEvaluator
from repro.geometry.rect import Rect
from repro.grid.grid import Grid
from repro.grid.tiles_math import TileQuery

from tests.conftest import random_dataset


@pytest.fixture
def grid():
    return Grid(Rect(0.0, 10.0, 0.0, 8.0), 10, 8)


def _n_ie_truth(data, grid, query):
    counts = ExactEvaluator(data, grid).estimate(query)
    return len(data) - counts.n_cd


class TestUnitCellExactness:
    def test_exact_on_every_unit_cell(self, grid, rng):
        """The paper's claim: H_e answers n_ie exactly when the query is
        one unit cell."""
        data = random_dataset(rng, grid, 200, degenerate_fraction=0.2, aligned_fraction=0.3)
        exterior = ExteriorHistogram(data, grid)
        for cx in range(grid.n1):
            for cy in range(grid.n2):
                q = TileQuery(cx, cx + 1, cy, cy + 1)
                assert exterior.n_ie_unit_cell(cx, cy) == _n_ie_truth(data, grid, q), (cx, cy)

    def test_empty_dataset(self, grid):
        exterior = ExteriorHistogram(RectDataset.empty(grid.extent), grid)
        assert exterior.n_ie_unit_cell(0, 0) == 0


class TestLargerQueriesBreak:
    def test_interior_object_causes_loophole(self, grid):
        """An object strictly inside the query leaves a hole in the
        exterior footprint within the query: it contributes 0 instead of
        1, so H_e underestimates n_ie -- the loophole effect again."""
        data = RectDataset.from_rects([Rect(3.2, 4.8, 3.2, 4.8)], grid.extent)
        exterior = ExteriorHistogram(data, grid)
        q = TileQuery(2, 6, 2, 6)
        assert _n_ie_truth(data, grid, q) == 1
        assert exterior.inside_sum(q) == 0  # loophole

    def test_crossing_object_double_counts(self, grid):
        """An object crossing the query splits the query-interior
        exterior into two pieces: +2 instead of +1."""
        data = RectDataset.from_rects([Rect(0.5, 9.5, 3.2, 4.8)], grid.extent)
        exterior = ExteriorHistogram(data, grid)
        q = TileQuery(2, 6, 0, 8)
        assert _n_ie_truth(data, grid, q) == 1
        assert exterior.inside_sum(q) == 2  # two exterior pieces

    def test_container_handled_correctly_though(self, grid):
        """Ironically, the case H (the interior histogram) cannot see --
        an object containing the query -- is fine for H_e: the exterior
        misses the query interior entirely and contributes 0 = truth."""
        data = RectDataset.from_rects([Rect(0.5, 9.5, 0.5, 7.5)], grid.extent)
        exterior = ExteriorHistogram(data, grid)
        q = TileQuery(3, 6, 3, 5)
        assert _n_ie_truth(data, grid, q) == 0
        assert exterior.inside_sum(q) == 0


class TestStructure:
    def test_disjoint_and_overlap_count_once(self, grid):
        rects = [
            Rect(0.2, 0.8, 0.2, 0.8),   # disjoint from the query
            Rect(1.5, 2.5, 1.5, 2.5),   # overlaps the query's corner
        ]
        data = RectDataset.from_rects(rects, grid.extent)
        exterior = ExteriorHistogram(data, grid)
        q = TileQuery(2, 5, 2, 5)
        assert exterior.inside_sum(q) == _n_ie_truth(data, grid, q) == 2

    def test_out_of_grid_query_rejected(self, grid, rng):
        data = random_dataset(rng, grid, 10)
        with pytest.raises(ValueError):
            ExteriorHistogram(data, grid).inside_sum(TileQuery(0, 11, 0, 8))
