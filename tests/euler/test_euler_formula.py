"""Tests for Euler's formula and Corollaries 4.1/4.2 on grid regions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp
from scipy import ndimage

from repro.euler.euler_formula import (
    euler_characteristic,
    interior_counts,
    region_euler_sum,
)


class TestPaperExamples:
    def test_figure_5b_full_3x3_grid(self):
        # The 3x3 grid region: 4 interior vertices, 12 interior edges,
        # 9 interior faces -> V - E + F = 1 (Corollary 4.1).
        mask = np.ones((3, 3), dtype=bool)
        assert interior_counts(mask) == (4, 12, 9)
        assert euler_characteristic(mask) == 1

    def test_figure_5c_grid_with_hole(self):
        # Remove the center cell: 0 interior vertices, 8 interior edges,
        # 8 interior faces -> V - E + F = 0 (Corollary 4.2 with k=2).
        mask = np.ones((3, 3), dtype=bool)
        mask[1, 1] = False
        assert interior_counts(mask) == (0, 8, 8)
        assert euler_characteristic(mask) == 0

    def test_single_cell(self):
        assert euler_characteristic(np.ones((1, 1), dtype=bool)) == 1

    def test_two_disjoint_components(self):
        mask = np.zeros((5, 5), dtype=bool)
        mask[0, 0] = True
        mask[3:5, 3:5] = True
        assert euler_characteristic(mask) == 2

    def test_empty_region(self):
        assert euler_characteristic(np.zeros((4, 4), dtype=bool)) == 0

    def test_two_holes(self):
        # A 5x5 frame region with two separate holes -> 2 - k = 1 - 2 = -1.
        mask = np.ones((5, 5), dtype=bool)
        mask[1, 1] = False
        mask[3, 3] = False
        assert euler_characteristic(mask) == -1

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            interior_counts(np.ones(5, dtype=bool))


def _components_minus_holes(mask: np.ndarray) -> int:
    """Independent topology oracle via scipy labelling.

    Components are 4-connected cell regions; holes are 4-connected
    background regions not touching the array border (background must be
    8-connected... for polyomino regions, holes of a 4-connected region
    are the 4-connected background components fully enclosed; using
    8-connectivity for the background is the topologically correct dual).
    """
    components, _ = ndimage.label(mask, structure=np.array([[0, 1, 0], [1, 1, 1], [0, 1, 0]]))
    num_components = components.max()
    background, num_bg = ndimage.label(~mask, structure=np.ones((3, 3), dtype=int))
    border_labels = set(np.unique(background[0, :])) | set(np.unique(background[-1, :]))
    border_labels |= set(np.unique(background[:, 0])) | set(np.unique(background[:, -1]))
    border_labels.discard(0)
    holes = num_bg - len(border_labels)
    return int(num_components - holes)


@settings(max_examples=200)
@given(hnp.arrays(bool, (6, 6), elements=st.booleans()))
def test_characteristic_equals_components_minus_holes(mask):
    """Corollary 4.2, generalised: V_i - E_i + F_i = components - holes."""
    assert euler_characteristic(mask) == _components_minus_holes(mask)


class TestRegionEulerSum:
    def test_single_object_footprint_sums_to_characteristic(self):
        from repro.datasets.base import RectDataset
        from repro.euler.histogram import EulerHistogram
        from repro.geometry.rect import Rect
        from repro.grid.grid import Grid

        grid = Grid(Rect(0.0, 6.0, 0.0, 6.0), 6, 6)
        # One object covering cells [1,4) x [1,4).
        data = RectDataset.from_rects([Rect(1.2, 3.8, 1.2, 3.8)], grid.extent)
        hist = EulerHistogram.from_dataset(data, grid)

        # Region = whole space: the object footprint is one hole-free
        # region -> sum 1.
        full = np.ones((6, 6), dtype=bool)
        assert region_euler_sum(hist.buckets(), full) == 1

        # Region with a hole over the object's middle: intersection is an
        # annulus -> 0 (the loophole effect).
        holed = np.ones((6, 6), dtype=bool)
        holed[2, 2] = False
        assert region_euler_sum(hist.buckets(), holed) == 0

        # Region meeting the object in two pieces -> 2 (crossover effect).
        split = np.ones((6, 6), dtype=bool)
        split[2, :] = False
        assert region_euler_sum(hist.buckets(), split) == 2

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            region_euler_sum(np.zeros((5, 5)), np.ones((4, 4), dtype=bool))
