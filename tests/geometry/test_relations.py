"""Tests for the 9-intersection / interior-exterior relation models."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.rect import Rect
from repro.geometry.relations import (
    LEVEL2_TO_LEVEL1,
    LEVEL3_TO_LEVEL2,
    Level1Relation,
    Level2Relation,
    Level3Relation,
    classify_level1,
    classify_level2,
    classify_level2_shrunk,
    classify_level3,
    interior_exterior_matrix,
    nine_intersection_matrix,
)

Q = Rect(2.0, 6.0, 2.0, 6.0)


# One representative rectangle pair per Level-3 relation against Q.
LEVEL3_CASES = {
    Level3Relation.DISJOINT: Rect(8.0, 9.0, 8.0, 9.0),
    Level3Relation.MEET: Rect(6.0, 8.0, 2.0, 6.0),
    Level3Relation.OVERLAP: Rect(4.0, 8.0, 4.0, 8.0),
    Level3Relation.EQUAL: Rect(2.0, 6.0, 2.0, 6.0),
    Level3Relation.INSIDE: Rect(3.0, 5.0, 3.0, 5.0),
    Level3Relation.COVERED_BY: Rect(2.0, 5.0, 3.0, 5.0),
    Level3Relation.CONTAINS: Rect(1.0, 7.0, 1.0, 7.0),
    Level3Relation.COVERS: Rect(2.0, 7.0, 1.0, 7.0),
}


@pytest.mark.parametrize("expected,p", LEVEL3_CASES.items(), ids=[r.value for r in LEVEL3_CASES])
def test_level3_classification(expected, p):
    assert classify_level3(p, Q) is expected


@pytest.mark.parametrize("expected,p", LEVEL3_CASES.items(), ids=[r.value for r in LEVEL3_CASES])
def test_level3_coarsens_to_level2(expected, p):
    # Figure 3's vertical arrows.
    assert classify_level2(p, Q) is LEVEL3_TO_LEVEL2[expected]


@pytest.mark.parametrize("expected,p", LEVEL3_CASES.items(), ids=[r.value for r in LEVEL3_CASES])
def test_level2_coarsens_to_level1(expected, p):
    level2 = classify_level2(p, Q)
    assert classify_level1(p, Q) is LEVEL2_TO_LEVEL1[level2]


@pytest.mark.parametrize("expected,p", LEVEL3_CASES.items(), ids=[r.value for r in LEVEL3_CASES])
def test_dropping_boundaries_reduces_9im_to_interior_exterior(expected, p):
    # Equation 2: the interior-exterior matrix is the 9-intersection matrix
    # with the boundary row/column removed.
    assert nine_intersection_matrix(p, Q).drop_boundaries() == interior_exterior_matrix(p, Q)


def test_exteriors_always_intersect():
    for p in LEVEL3_CASES.values():
        assert interior_exterior_matrix(p, Q).entries[1][1] is True


def test_degenerate_rect_rejected_by_region_models():
    point = Rect.point(3.0, 3.0)
    with pytest.raises(ValueError):
        classify_level3(point, Q)
    with pytest.raises(ValueError):
        nine_intersection_matrix(point, Q)
    with pytest.raises(ValueError):
        interior_exterior_matrix(point, Q)
    # The shrunk classifier must accept them: point records are data.
    assert classify_level2_shrunk(point, Q) is Level2Relation.CONTAINS


class TestShrunkConvention:
    """The open-object/closed-query semantics of Section 4.2."""

    def test_equals_becomes_contains(self):
        # A boundary-aligned object shrinks, so "equals" collapses into
        # the query containing the object.
        assert classify_level2(Q, Q) is Level2Relation.EQUALS
        assert classify_level2_shrunk(Q, Q) is Level2Relation.CONTAINS

    def test_meet_becomes_disjoint(self):
        p = Rect(6.0, 8.0, 2.0, 6.0)
        assert classify_level2_shrunk(p, Q) is Level2Relation.DISJOINT

    def test_covers_becomes_overlap(self):
        # Object sharing the query's left edge does not strictly cover the
        # closed query -> overlap (the paper's Figure 4 point).
        p = Rect(2.0, 7.0, 1.0, 7.0)
        assert classify_level2(p, Q) is Level2Relation.CONTAINED
        assert classify_level2_shrunk(p, Q) is Level2Relation.OVERLAP

    def test_covered_by_becomes_contains(self):
        p = Rect(2.0, 5.0, 3.0, 5.0)
        assert classify_level2_shrunk(p, Q) is Level2Relation.CONTAINS

    def test_strict_container_still_contained(self):
        p = Rect(1.0, 7.0, 1.0, 7.0)
        assert classify_level2_shrunk(p, Q) is Level2Relation.CONTAINED


coords = st.integers(min_value=0, max_value=12)


@st.composite
def proper_rects(draw):
    x = sorted(draw(st.lists(coords, min_size=2, max_size=2, unique=True)))
    y = sorted(draw(st.lists(coords, min_size=2, max_size=2, unique=True)))
    return Rect(float(x[0]), float(x[1]), float(y[0]), float(y[1]))


@given(proper_rects(), proper_rects())
def test_refinement_chain_holds_for_random_pairs(p, q):
    level3 = classify_level3(p, q)
    level2 = classify_level2(p, q)
    level1 = classify_level1(p, q)
    assert LEVEL3_TO_LEVEL2[level3] is level2
    assert LEVEL2_TO_LEVEL1[level2] is level1


@given(proper_rects(), proper_rects())
def test_level3_symmetry(p, q):
    """contains/inside and covers/coveredBy are converses; the symmetric
    relations are their own converse."""
    converse = {
        Level3Relation.CONTAINS: Level3Relation.INSIDE,
        Level3Relation.INSIDE: Level3Relation.CONTAINS,
        Level3Relation.COVERS: Level3Relation.COVERED_BY,
        Level3Relation.COVERED_BY: Level3Relation.COVERS,
        Level3Relation.DISJOINT: Level3Relation.DISJOINT,
        Level3Relation.MEET: Level3Relation.MEET,
        Level3Relation.OVERLAP: Level3Relation.OVERLAP,
        Level3Relation.EQUAL: Level3Relation.EQUAL,
    }
    assert classify_level3(q, p) is converse[classify_level3(p, q)]


@given(proper_rects(), proper_rects())
def test_shrunk_never_returns_equals(p, q):
    assert classify_level2_shrunk(p, q) is not Level2Relation.EQUALS


@given(proper_rects(), proper_rects())
def test_shrunk_contains_and_contained_are_exclusive(p, q):
    rel = classify_level2_shrunk(p, q)
    if rel is Level2Relation.CONTAINED:
        assert p.area > q.area
    if rel is Level2Relation.CONTAINS:
        assert p.area <= q.area
