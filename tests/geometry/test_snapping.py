"""Snapping tests, including the losslessness theorem of the module
docstring: lattice predicates == continuous open/closed predicates for
grid-aligned queries."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.intervals import (
    interval_contained,
    interval_contains,
    interval_interiors_intersect,
)
from repro.geometry.snapping import (
    LatticeSpan,
    snap_axis,
    snap_axis_arrays,
    snap_rect,
    snap_rects,
)

N = 10  # cells per axis in these tests


class TestSnapAxis:
    def test_interior_interval(self):
        # (1.5, 3.5): cells 1,2,3 and lines 2,3 -> lattice 2..6.
        assert snap_axis(1.5, 3.5, N) == (2, 6)

    def test_aligned_open_interval(self):
        # (2, 5): cells 2,3,4 and lines 3,4 -> lattice 4..8; the aligned
        # endpoints are NOT touched (open interval).
        assert snap_axis(2.0, 5.0, N) == (4, 8)

    def test_subcell_interval(self):
        assert snap_axis(3.1, 3.9, N) == (6, 6)

    def test_interval_crossing_one_line(self):
        # (2.5, 3.5): cells 2,3 and line 3 -> lattice 4..6.
        assert snap_axis(2.5, 3.5, N) == (4, 6)

    def test_degenerate_inside_cell(self):
        assert snap_axis(4.25, 4.25, N) == (8, 8)

    def test_degenerate_on_grid_line_goes_to_lower_cell(self):
        # Documented convention: a point exactly on x=4 belongs to cell 4.
        assert snap_axis(4.0, 4.0, N) == (8, 8)

    def test_degenerate_at_data_space_end_clipped(self):
        assert snap_axis(float(N), float(N), N) == (2 * N - 2, 2 * N - 2)

    def test_full_axis(self):
        assert snap_axis(0.0, float(N), N) == (0, 2 * N - 2)

    def test_clipping_outside_coordinates(self):
        assert snap_axis(-0.5, 2.5, N) == (0, 4)

    def test_fully_outside_raises(self):
        with pytest.raises(ValueError, match="outside the data space"):
            snap_axis(11.0, 12.0, N)
        with pytest.raises(ValueError, match="outside the data space"):
            snap_axis(-3.0, -1.0, N)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            snap_axis(0.0, 1.0, 0)


class TestLatticeSpan:
    def test_cell_properties(self):
        span = LatticeSpan(2, 6, 0, 4)
        assert (span.cell_lo_x, span.cell_hi_x) == (1, 3)
        assert (span.cell_lo_y, span.cell_hi_y) == (0, 2)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            LatticeSpan(4, 2, 0, 0)

    def test_snap_rect(self):
        span = snap_rect(1.5, 3.5, 0.5, 1.5, N, N)
        assert (span.a_lo, span.a_hi, span.b_lo, span.b_hi) == (2, 6, 0, 2)


unit = st.floats(min_value=0.0, max_value=float(N), allow_nan=False)


@st.composite
def open_intervals(draw):
    lo = draw(unit)
    hi = draw(st.floats(min_value=lo, max_value=float(N), allow_nan=False))
    return lo, hi


@given(open_intervals())
def test_vectorised_matches_scalar(interval):
    lo, hi = interval
    a_lo, a_hi = snap_axis_arrays(np.array([lo]), np.array([hi]), N)
    assert (int(a_lo[0]), int(a_hi[0])) == snap_axis(lo, hi, N)


@given(st.lists(open_intervals(), min_size=1, max_size=30))
def test_snap_rects_matches_snap_rect(intervals):
    xs = intervals
    ys = list(reversed(intervals))
    a_lo, a_hi, b_lo, b_hi = snap_rects(
        np.array([x[0] for x in xs]),
        np.array([x[1] for x in xs]),
        np.array([y[0] for y in ys]),
        np.array([y[1] for y in ys]),
        N,
        N,
    )
    for k, (x, y) in enumerate(zip(xs, ys)):
        span = snap_rect(x[0], x[1], y[0], y[1], N, N)
        assert (a_lo[k], a_hi[k], b_lo[k], b_hi[k]) == (
            span.a_lo,
            span.a_hi,
            span.b_lo,
            span.b_hi,
        )


@st.composite
def aligned_queries(draw):
    lo = draw(st.integers(min_value=0, max_value=N - 1))
    hi = draw(st.integers(min_value=lo + 1, max_value=N))
    return lo, hi


@given(open_intervals(), aligned_queries())
def test_lattice_predicates_match_continuous(interval, query):
    """The losslessness claim: for aligned queries, the three lattice-span
    predicates coincide with the continuous open-object/closed-query
    interval predicates.

    The only excluded case is a degenerate object sitting exactly on a
    grid line, where the library's convention (point belongs to its lower
    cell) intentionally resolves the continuous semantics' ambiguity.
    """
    lo, hi = interval
    q_lo, q_hi = query
    if lo == hi and lo == round(lo):
        return  # the documented convention case, asserted in unit tests
    a_lo, a_hi = snap_axis(lo, hi, N)

    lattice_intersects = a_lo <= 2 * q_hi - 2 and a_hi >= 2 * q_lo
    lattice_within = a_lo >= 2 * q_lo and a_hi <= 2 * q_hi - 2
    lattice_covers = a_lo <= 2 * q_lo - 1 and a_hi >= 2 * q_hi - 1

    assert lattice_intersects == interval_interiors_intersect(lo, hi, q_lo, q_hi)
    assert lattice_within == interval_contains(lo, hi, q_lo, q_hi)
    assert lattice_covers == interval_contained(lo, hi, q_lo, q_hi)


@given(open_intervals())
def test_snapped_footprint_covers_interval(interval):
    """The snapped cell block always covers the original interval."""
    lo, hi = interval
    a_lo, a_hi = snap_axis(lo, hi, N)
    cell_lo, cell_hi = a_lo // 2, a_hi // 2
    assert cell_lo <= lo or lo == float(N)
    assert cell_hi + 1 >= hi
    # And it never over-reaches by more than a full cell on either side
    # (the boundary value 1.0 is reachable for near-degenerate intervals
    # hugging a cell's lower edge, where 1 - eps rounds to 1.0).
    assert lo - cell_lo < 1.0 or (lo == hi == float(N))
    assert (cell_hi + 1) - hi <= 1.0
