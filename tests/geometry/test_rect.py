"""Unit tests for the Rect value object."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.rect import Rect


class TestConstruction:
    def test_basic(self):
        r = Rect(1.0, 3.0, 2.0, 5.0)
        assert r.width == 2.0
        assert r.height == 3.0
        assert r.area == 6.0
        assert r.center == (2.0, 3.5)

    def test_rejects_inverted_x(self):
        with pytest.raises(ValueError, match="x_lo"):
            Rect(3.0, 1.0, 0.0, 1.0)

    def test_rejects_inverted_y(self):
        with pytest.raises(ValueError, match="y_lo"):
            Rect(0.0, 1.0, 3.0, 1.0)

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            Rect(math.nan, 1.0, 0.0, 1.0)

    def test_from_center(self):
        r = Rect.from_center(5.0, 5.0, 2.0, 4.0)
        assert r == Rect(4.0, 6.0, 3.0, 7.0)

    def test_from_center_rejects_negative_sides(self):
        with pytest.raises(ValueError):
            Rect.from_center(0.0, 0.0, -1.0, 1.0)

    def test_point(self):
        p = Rect.point(2.0, 3.0)
        assert p.is_degenerate
        assert p.area == 0.0

    def test_segment_is_degenerate(self):
        assert Rect(0.0, 5.0, 2.0, 2.0).is_degenerate

    def test_frozen(self):
        r = Rect(0.0, 1.0, 0.0, 1.0)
        with pytest.raises(AttributeError):
            r.x_lo = 5.0  # type: ignore[misc]


class TestOperations:
    def test_translated(self):
        assert Rect(0.0, 1.0, 0.0, 1.0).translated(2.0, 3.0) == Rect(2.0, 3.0, 3.0, 4.0)

    def test_clipped(self):
        a = Rect(0.0, 5.0, 0.0, 5.0)
        b = Rect(3.0, 8.0, -2.0, 2.0)
        assert a.clipped(b) == Rect(3.0, 5.0, 0.0, 2.0)

    def test_clipped_disjoint_raises(self):
        with pytest.raises(ValueError, match="does not intersect"):
            Rect(0.0, 1.0, 0.0, 1.0).clipped(Rect(5.0, 6.0, 5.0, 6.0))

    def test_intersects_closed_boundary_touch(self):
        assert Rect(0.0, 1.0, 0.0, 1.0).intersects_closed(Rect(1.0, 2.0, 0.0, 1.0))

    def test_covers_closed(self):
        outer = Rect(0.0, 10.0, 0.0, 10.0)
        assert outer.covers_closed(Rect(0.0, 10.0, 0.0, 10.0))
        assert outer.covers_closed(Rect(2.0, 3.0, 2.0, 3.0))
        assert not outer.covers_closed(Rect(2.0, 11.0, 2.0, 3.0))

    def test_as_tuple_and_iter(self):
        r = Rect(1.0, 2.0, 3.0, 4.0)
        assert r.as_tuple() == (1.0, 2.0, 3.0, 4.0)
        assert list(r) == [1.0, 2.0, 3.0, 4.0]


# Half-unit coordinates keep every arithmetic step in the properties exact.
coords = st.integers(min_value=-2000, max_value=2000).map(lambda k: k / 2.0)


@st.composite
def rects(draw):
    x_lo = draw(coords)
    x_hi = draw(st.integers(min_value=int(x_lo * 2), max_value=2002).map(lambda k: k / 2.0))
    y_lo = draw(coords)
    y_hi = draw(st.integers(min_value=int(y_lo * 2), max_value=2002).map(lambda k: k / 2.0))
    return Rect(x_lo, x_hi, y_lo, y_hi)


@given(rects(), rects())
def test_clip_is_covered_by_both(a, b):
    if a.intersects_closed(b):
        clipped = a.clipped(b)
        assert a.covers_closed(clipped)
        assert b.covers_closed(clipped)


@given(rects(), rects())
def test_cover_implies_closed_intersection(a, b):
    if a.covers_closed(b):
        assert a.intersects_closed(b)
        assert a.area >= b.area


@given(rects())
def test_translate_roundtrip(r):
    assert r.translated(3.5, -2.0).translated(-3.5, 2.0) == r
