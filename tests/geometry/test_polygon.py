"""Tests for polygon/polyline MBR extraction."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.datasets.base import RectDataset
from repro.geometry.polygon import Polygon, Polyline, dataset_from_geometries
from repro.geometry.rect import Rect

SQUARE = Polygon(((0.0, 0.0), (4.0, 0.0), (4.0, 4.0), (0.0, 4.0)))
TRIANGLE = Polygon(((0.0, 0.0), (4.0, 0.0), (0.0, 3.0)))


class TestPolygon:
    def test_mbr(self):
        assert TRIANGLE.mbr() == Rect(0.0, 4.0, 0.0, 3.0)

    def test_area_shoelace(self):
        assert SQUARE.area == 16.0
        assert TRIANGLE.area == 6.0

    def test_signed_area_orientation(self):
        ccw = SQUARE.signed_area()
        cw = Polygon(tuple(reversed(SQUARE.points))).signed_area()
        assert ccw == -cw == 16.0

    def test_mbr_coverage(self):
        assert SQUARE.mbr_coverage() == 1.0
        assert TRIANGLE.mbr_coverage() == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            Polygon(((0.0, 0.0), (1.0, 1.0)))
        with pytest.raises(ValueError):
            Polygon(((0.0, 0.0), (1.0,), (2.0, 2.0)))  # type: ignore[arg-type]
        with pytest.raises(ValueError):
            Polygon(((0.0, 0.0), (np.inf, 1.0), (2.0, 2.0)))


class TestPolyline:
    ROAD = Polyline(((0.0, 0.0), (3.0, 4.0), (3.0, 8.0)))

    def test_length(self):
        assert self.ROAD.length == pytest.approx(9.0)

    def test_mbr(self):
        assert self.ROAD.mbr() == Rect(0.0, 3.0, 0.0, 8.0)

    def test_segment_mbrs(self):
        mbrs = self.ROAD.segment_mbrs()
        assert mbrs == [Rect(0.0, 3.0, 0.0, 4.0), Rect(3.0, 3.0, 4.0, 8.0)]
        assert self.ROAD.num_segments == 2

    def test_degenerate_segment_mbr(self):
        vertical = Polyline(((1.0, 0.0), (1.0, 5.0)))
        assert vertical.segment_mbrs()[0].is_degenerate

    def test_validation(self):
        with pytest.raises(ValueError):
            Polyline(((0.0, 0.0),))


class TestDatasetConversion:
    EXTENT = Rect(0.0, 10.0, 0.0, 10.0)

    def test_mixed_geometries(self):
        road = Polyline(((0.0, 0.0), (2.0, 2.0), (4.0, 2.0)))
        data = dataset_from_geometries([TRIANGLE, road], self.EXTENT, name="mixed")
        assert len(data) == 3  # 1 polygon MBR + 2 segment MBRs
        assert data.name == "mixed"

    def test_unsplit_polylines(self):
        road = Polyline(((0.0, 0.0), (2.0, 2.0), (4.0, 2.0)))
        data = dataset_from_geometries([road], self.EXTENT, split_polylines=False)
        assert len(data) == 1
        assert data[0] == Rect(0.0, 4.0, 0.0, 2.0)

    def test_roundtrip_through_histogram(self):
        """Geometries -> MBR dataset -> histogram is a working pipeline."""
        from repro.euler.histogram import EulerHistogram
        from repro.grid.grid import Grid

        data = dataset_from_geometries([SQUARE, TRIANGLE], self.EXTENT)
        grid = Grid(self.EXTENT, 10, 10)
        hist = EulerHistogram.from_dataset(data, grid)
        assert hist.num_objects == 2


coord = st.floats(min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False)


@given(st.lists(st.tuples(coord, coord), min_size=3, max_size=12, unique=True))
def test_polygon_mbr_covers_all_vertices(points):
    polygon = Polygon(tuple(points))
    mbr = polygon.mbr()
    for x, y in points:
        assert mbr.x_lo <= x <= mbr.x_hi
        assert mbr.y_lo <= y <= mbr.y_hi


@given(st.lists(st.tuples(coord, coord), min_size=2, max_size=12))
def test_polyline_segment_mbrs_within_line_mbr(points):
    line = Polyline(tuple(points))
    outer = line.mbr()
    for segment in line.segment_mbrs():
        assert outer.covers_closed(segment)
