"""Unit and property tests for the open/closed interval algebra."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.intervals import (
    IntervalRelation,
    interval_contained,
    interval_contains,
    interval_interiors_intersect,
    interval_relation,
)

# The paper's Figure 4 example, the convention everything rests on.


def test_open_object_overlaps_closed_query_at_shared_boundary():
    # Object (1, 3) merely overlaps the query [1, 2]: the query's boundary
    # point x=1 is outside the open object.
    assert interval_interiors_intersect(1.0, 3.0, 1.0, 2.0)
    assert not interval_contained(1.0, 3.0, 1.0, 2.0)
    assert interval_relation(1.0, 3.0, 1.0, 2.0) is IntervalRelation.OVERLAP


def test_strictly_covering_object_covers_query():
    assert interval_contained(0.5, 3.0, 1.0, 2.0)
    assert interval_relation(0.5, 3.0, 1.0, 2.0) is IntervalRelation.COVERS


def test_object_touching_query_boundary_is_within():
    # Open object (1, 3) inside closed query [1, 3].
    assert interval_contains(1.0, 3.0, 1.0, 3.0)
    assert interval_relation(1.0, 3.0, 1.0, 3.0) is IntervalRelation.WITHIN


def test_boundary_touch_is_not_intersection():
    # Object (2, 3) against query [1, 2]: interiors meet only at x=2,
    # which neither open set contains.
    assert not interval_interiors_intersect(2.0, 3.0, 1.0, 2.0)
    assert interval_relation(2.0, 3.0, 1.0, 2.0) is IntervalRelation.DISJOINT


def test_disjoint_far_apart():
    assert interval_relation(5.0, 6.0, 1.0, 2.0) is IntervalRelation.DISJOINT


class TestDegenerateObjects:
    def test_point_inside_query_intersects(self):
        assert interval_interiors_intersect(1.5, 1.5, 1.0, 2.0)

    def test_point_on_query_boundary_intersects_closed_query(self):
        assert interval_interiors_intersect(2.0, 2.0, 1.0, 2.0)
        assert interval_interiors_intersect(1.0, 1.0, 1.0, 2.0)

    def test_point_outside_query_disjoint(self):
        assert not interval_interiors_intersect(3.0, 3.0, 1.0, 2.0)

    def test_point_is_within_but_never_covers(self):
        assert interval_contains(1.5, 1.5, 1.0, 2.0)
        assert not interval_contained(1.5, 1.5, 1.0, 2.0)
        assert interval_relation(1.5, 1.5, 1.0, 2.0) is IntervalRelation.WITHIN


# ------------------------------------------------------------------ #
# property tests
# ------------------------------------------------------------------ #

# Quarter-unit coordinates: exactly representable, so shifted comparisons
# in the translation property stay exact.
finite = st.integers(min_value=-400, max_value=400).map(lambda k: k / 4.0)


@st.composite
def object_and_query(draw):
    lo = draw(finite)
    hi = draw(st.integers(min_value=int(lo * 4), max_value=404).map(lambda k: k / 4.0))
    qlo = draw(finite)
    qhi = draw(
        st.integers(min_value=int(qlo * 4) + 1, max_value=405).map(lambda k: k / 4.0)
    )
    return lo, hi, qlo, qhi


@given(object_and_query())
def test_relations_are_mutually_exclusive_and_exhaustive(parts):
    lo, hi, qlo, qhi = parts
    flags = [
        not interval_interiors_intersect(lo, hi, qlo, qhi),
        interval_interiors_intersect(lo, hi, qlo, qhi)
        and interval_contains(lo, hi, qlo, qhi),
        interval_interiors_intersect(lo, hi, qlo, qhi)
        and interval_contained(lo, hi, qlo, qhi),
    ]
    # WITHIN and COVERS cannot hold together for a proper query interval.
    assert not (flags[1] and flags[2])
    relation = interval_relation(lo, hi, qlo, qhi)
    assert isinstance(relation, IntervalRelation)


@given(object_and_query())
def test_within_implies_intersect(parts):
    lo, hi, qlo, qhi = parts
    if interval_contains(lo, hi, qlo, qhi):
        assert interval_interiors_intersect(lo, hi, qlo, qhi)


@given(object_and_query())
def test_covers_implies_intersect(parts):
    lo, hi, qlo, qhi = parts
    if interval_contained(lo, hi, qlo, qhi):
        assert interval_interiors_intersect(lo, hi, qlo, qhi)


@given(object_and_query())
def test_covering_object_is_strictly_larger(parts):
    lo, hi, qlo, qhi = parts
    if interval_contained(lo, hi, qlo, qhi):
        assert hi - lo > qhi - qlo


@given(object_and_query())
def test_translation_invariance(parts):
    lo, hi, qlo, qhi = parts
    shift = 7.25
    assert interval_relation(lo, hi, qlo, qhi) == interval_relation(
        lo + shift, hi + shift, qlo + shift, qhi + shift
    )


@pytest.mark.parametrize(
    "lo,hi,qlo,qhi,expected",
    [
        (0.0, 1.0, 2.0, 3.0, IntervalRelation.DISJOINT),
        (2.5, 2.75, 2.0, 3.0, IntervalRelation.WITHIN),
        (1.0, 4.0, 2.0, 3.0, IntervalRelation.COVERS),
        (2.5, 3.5, 2.0, 3.0, IntervalRelation.OVERLAP),
        (2.0, 3.0, 2.0, 3.0, IntervalRelation.WITHIN),
        (2.0, 4.0, 2.0, 3.0, IntervalRelation.OVERLAP),  # shares left bound
    ],
)
def test_relation_table(lo, hi, qlo, qhi, expected):
    assert interval_relation(lo, hi, qlo, qhi) is expected
