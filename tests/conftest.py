"""Shared fixtures and reference oracles for the test suite.

The oracles here deliberately take *different code paths* from the library
internals they check: brute-force per-object classification goes through
the scalar interval logic of :mod:`repro.geometry`, while the library's
evaluators are vectorised lattice computations.  Agreement between the two
is the core correctness evidence.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.base import RectDataset
from repro.euler.estimates import Level2Counts
from repro.geometry.rect import Rect
from repro.geometry.relations import Level2Relation, classify_level2_shrunk
from repro.geometry.snapping import snap_rect
from repro.grid.grid import Grid
from repro.grid.tiles_math import TileQuery


@pytest.fixture
def small_grid() -> Grid:
    """A 12x8 grid over [0,12]x[0,8]: cell units == world units."""
    return Grid(Rect(0.0, 12.0, 0.0, 8.0), 12, 8)


@pytest.fixture
def world_grid() -> Grid:
    """The paper's 360x180 1-degree grid."""
    return Grid.world_1deg()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


def random_dataset(
    rng: np.random.Generator,
    grid: Grid,
    n: int,
    *,
    max_size_cells: float | None = None,
    degenerate_fraction: float = 0.1,
    aligned_fraction: float = 0.2,
    name: str = "random",
) -> RectDataset:
    """Random rectangles inside the grid extent, with a controllable mix of
    degenerate objects and grid-aligned coordinates (the tricky cases)."""
    extent = grid.extent
    if max_size_cells is None:
        max_w, max_h = extent.width, extent.height
    else:
        max_w = min(extent.width, max_size_cells * grid.cell_width)
        max_h = min(extent.height, max_size_cells * grid.cell_height)

    w = rng.uniform(0.0, max_w, size=n)
    h = rng.uniform(0.0, max_h, size=n)
    degenerate = rng.random(n) < degenerate_fraction
    w[degenerate] = 0.0
    h[degenerate] = 0.0
    x_lo = rng.uniform(extent.x_lo, extent.x_hi - w)
    y_lo = rng.uniform(extent.y_lo, extent.y_hi - h)

    # Snap a fraction of coordinates onto grid lines to exercise the
    # shrinking convention.
    aligned = rng.random(n) < aligned_fraction
    x_lo[aligned] = grid.to_world_x(np.round(grid.to_cell_units_x(x_lo[aligned])))
    y_lo[aligned] = grid.to_world_y(np.round(grid.to_cell_units_y(y_lo[aligned])))

    x_hi = np.minimum(x_lo + w, extent.x_hi)
    y_hi = np.minimum(y_lo + h, extent.y_hi)
    return RectDataset(x_lo, x_hi, y_lo, y_hi, extent, name)


def snapped_open_rect(grid: Grid, rect: Rect) -> Rect:
    """The object's lattice footprint as an open rectangle in cell units:
    the canonical resolution-level view of the object."""
    span = snap_rect(*grid.rect_to_cell_units(rect), grid.n1, grid.n2)
    return Rect(
        float(span.cell_lo_x),
        float(span.cell_hi_x + 1),
        float(span.cell_lo_y),
        float(span.cell_hi_y + 1),
    )


def brute_force_counts(dataset: RectDataset, grid: Grid, query: TileQuery) -> Level2Counts:
    """Ground truth via scalar classification of every object's lattice
    footprint -- the reference for every evaluator and estimator."""
    q = Rect(float(query.qx_lo), float(query.qx_hi), float(query.qy_lo), float(query.qy_hi))
    tally = {rel: 0 for rel in Level2Relation}
    for obj in dataset:
        footprint = snapped_open_rect(grid, obj)
        tally[classify_level2_shrunk(footprint, q)] += 1
    assert tally[Level2Relation.EQUALS] == 0  # shrinking kills equals
    return Level2Counts(
        n_d=float(tally[Level2Relation.DISJOINT]),
        n_cs=float(tally[Level2Relation.CONTAINS]),
        n_cd=float(tally[Level2Relation.CONTAINED]),
        n_o=float(tally[Level2Relation.OVERLAP]),
    )


def random_query(rng: np.random.Generator, grid: Grid) -> TileQuery:
    """A uniformly random aligned query on the grid."""
    x = np.sort(rng.choice(grid.n1 + 1, size=2, replace=False))
    y = np.sort(rng.choice(grid.n2 + 1, size=2, replace=False))
    return TileQuery(int(x[0]), int(x[1]), int(y[0]), int(y[1]))
