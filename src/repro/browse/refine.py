"""Progressive pyramid refinement: coarse-first rasters for browsing.

The paper frames browsing as summary information "at various resolutions"
(Section 1); GeoBlocks-style block hierarchies show why that matters
operationally: a zoomed-out viewport answered from a pre-aggregated
coarse level costs a fraction of the fine-grid work, and the answer can
then *refine* level-by-level as budget allows.  This module is the
serving-path face of :class:`~repro.euler.pyramid.HistogramPyramid`:

- :meth:`PyramidSource.plan` turns one browse request into a ladder of
  :class:`RefinementStep`\\ s, coarsest first -- for each pyramid level
  that aligns the requested region, the finest ``rows_k x cols_k`` tiling
  that still divides the requested ``rows x cols`` raster evenly (so a
  coarse tile's count broadcasts onto a whole block of fine tiles).
  Steps at the full requested resolution are excluded on purpose: the
  authoritative answer always comes from the service's primary chain on
  the finest grid, never from the pyramid.
- :meth:`PyramidSource.raster` answers one step: a vectorised tile batch
  on the step's level, broadcast up to the requested raster shape, plus a
  per-tile error bound (the coarse tile's intersect count -- no fine tile
  it covers can differ from the broadcast value by more than the number
  of objects touching the coarse tile).

:class:`~repro.browse.resilience.ResilientBrowsingService` uses the plan
as a *degradation tier*: under a deadline the coarsest step gives a
complete, valid raster almost immediately, finer steps replace it while
budget remains, and the fine chunk path overwrites whatever it reaches in
time.  Pyramid-served tiles are coarse-but-valid: they are never written
to the tile cache and never reused by viewport deltas (the same rule
degraded fallback tiers follow), because a coarse count must not outlive
the interaction that produced it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.euler.base import Level2BatchEstimator, as_batch_estimator
from repro.euler.pyramid import HistogramPyramid
from repro.grid.grid import Grid
from repro.grid.tiles_math import TileQuery
from repro.workloads.tiles import browsing_tile_batch

__all__ = ["PyramidSource", "RefinementStep"]

#: Entries kept per request-shape memo (ladders, step tile batches).
_MEMO_CAP = 128


@dataclass(frozen=True)
class RefinementStep:
    """One rung of a refinement ladder: serve the requested region as a
    ``rows x cols`` tiling of level-``level`` cells.

    ``region`` is the requested region re-expressed as a cell span on the
    step's level grid; ``rows``/``cols`` is the coarse tiling answered at
    this step (always dividing the requested raster evenly, so each
    coarse tile broadcasts onto a rectangular block of fine tiles).
    """

    level: int
    rows: int
    cols: int
    region: TileQuery

    @property
    def tiles(self) -> int:
        """Number of coarse tiles this step estimates."""
        return self.rows * self.cols


class PyramidSource:
    """Serves browse rasters from a histogram pyramid's coarse levels.

    Parameters
    ----------
    pyramid:
        The multi-resolution summary.  Its level-0 grid is the resolution
        contract: when ``grid`` is given it must equal the pyramid's
        finest grid, which is how the resilient service guarantees the
        pyramid summarises the same space it serves.
    grid:
        The owning service's evaluation grid, for validation (optional).
    """

    def __init__(self, pyramid: HistogramPyramid, *, grid: Grid | None = None) -> None:
        self._pyramid = pyramid
        finest = pyramid.grid(0)
        if grid is not None and grid != finest:
            raise ValueError(
                f"pyramid finest grid {finest.n1}x{finest.n2} over {finest.extent} "
                f"does not match the service grid {grid.n1}x{grid.n2} over {grid.extent}"
            )
        # Batch adapters per level, built once: the hot path must not
        # re-wrap estimators per request.
        self._batches: tuple[Level2BatchEstimator, ...] = tuple(
            as_batch_estimator(pyramid.estimator(level))
            for level in range(pyramid.num_levels)
        )
        # Request-shaped memos.  Browsing traffic repeats the same
        # (viewport, raster) shapes across pans, zoom bounces and
        # refinement rounds, and both the ladder and a step's coarse tile
        # batch are pure functions of those shapes -- only the *estimates*
        # depend on the (possibly maintained) histograms, so only those
        # are recomputed per call.  Bounded FIFO; safe under the GIL (a
        # racing miss merely recomputes the same immutable value).
        self._plan_memo: dict[tuple[TileQuery, int, int], tuple[RefinementStep, ...]] = {}
        self._step_memo: dict[RefinementStep, object] = {}

    @property
    def pyramid(self) -> HistogramPyramid:
        """The backing multi-resolution summary."""
        return self._pyramid

    @property
    def grid(self) -> Grid:
        """The pyramid's finest (level-0) grid."""
        return self._pyramid.grid(0)

    def plan(self, region: TileQuery, rows: int, cols: int) -> tuple[RefinementStep, ...]:
        """The refinement ladder for one browse request, coarsest first.

        ``region`` is the requested region as a cell span on the finest
        grid.  For every pyramid level whose grid aligns the region, the
        step tiles it ``gcd(rows, height_k) x gcd(cols, width_k)`` -- the
        finest tiling that both the level can answer with aligned queries
        and the requested raster can absorb by block broadcast.  Steps
        are kept only when strictly coarser than the requested resolution
        (the primary chain owns the finest answer) and strictly finer
        than the previous kept step (each round must add information).
        Returns an empty ladder when no level helps.
        """
        if rows < 1 or cols < 1:
            raise ValueError("rows and cols must be positive")
        memo_key = (region, rows, cols)
        cached = self._plan_memo.get(memo_key)
        if cached is not None:
            return cached
        world = region.to_world(self.grid)
        steps: list[RefinementStep] = []
        last_tiles = 0
        for level in range(self._pyramid.num_levels - 1, -1, -1):
            grid_k = self._pyramid.grid(level)
            if not grid_k.is_aligned(world):
                continue
            x_lo, x_hi, y_lo, y_hi = grid_k.rect_to_cell_units(world)
            width = round(x_hi - x_lo)
            height = round(y_hi - y_lo)
            rows_k = math.gcd(rows, height)
            cols_k = math.gcd(cols, width)
            tiles_k = rows_k * cols_k
            if tiles_k >= rows * cols or tiles_k <= last_tiles:
                continue
            steps.append(
                RefinementStep(
                    level=level,
                    rows=rows_k,
                    cols=cols_k,
                    region=TileQuery(
                        round(x_lo), round(x_hi), round(y_lo), round(y_hi)
                    ),
                )
            )
            last_tiles = tiles_k
        if len(self._plan_memo) >= _MEMO_CAP:
            self._plan_memo.pop(next(iter(self._plan_memo)), None)
        ladder = tuple(steps)
        self._plan_memo[memo_key] = ladder
        return ladder

    def raster(
        self, step: RefinementStep, rows: int, cols: int, field_name: str
    ) -> tuple[np.ndarray, np.ndarray]:
        """Answer one refinement step at the requested raster shape.

        Returns ``(counts, bound)``, both ``rows x cols`` float64: the
        coarse counts broadcast onto the fine tiles each coarse tile
        covers, and the per-tile error bound -- the coarse tile's
        intersect count, since a fine tile's count for any relation can
        differ from the broadcast value by at most the number of objects
        touching the covering coarse tile (for *disjoint* the same bound
        follows from the total identity ``n_d = |S| - n_intersect``).
        The bound is on the pyramid's estimates, which inherit the level
        histogram's aligned-query guarantees.
        """
        batch = self._step_memo.get(step)
        if batch is None:
            batch = browsing_tile_batch(step.region, step.rows, step.cols)
            if len(self._step_memo) >= _MEMO_CAP:
                self._step_memo.pop(next(iter(self._step_memo)), None)
            self._step_memo[step] = batch
        estimates = self._batches[step.level].estimate_batch(batch)
        coarse = np.asarray(
            getattr(estimates, field_name), dtype=np.float64
        ).reshape(step.rows, step.cols)
        coarse_bound = np.maximum(
            np.asarray(estimates.n_intersect, dtype=np.float64), 0.0
        ).reshape(step.rows, step.cols)
        # Project the estimate into its feasible interval: a count of
        # objects *touching* the tile cannot leave [0, n_intersect], so
        # clamping only improves the estimate -- and it is what makes the
        # published bound hold unconditionally (two values in [0, B]
        # differ by at most B) even when the level estimator's raw answer
        # drifts a unit outside the interval.  Disjoint counts live near
        # |S| via the identity n_d = |S| - n_intersect, not inside the
        # interval, so they are exempt (their bound follows from the
        # identity and the exactness of aligned intersect counts).
        if field_name != "n_d":
            np.clip(coarse, 0.0, coarse_bound, out=coarse)
        r_factor = rows // step.rows
        c_factor = cols // step.cols
        counts = np.repeat(np.repeat(coarse, r_factor, axis=0), c_factor, axis=1)
        bound = np.repeat(np.repeat(coarse_bound, r_factor, axis=0), c_factor, axis=1)
        return counts, bound
