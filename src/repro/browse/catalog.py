"""Attribute-filtered browsing: histograms per category.

GeoBrowsing queries combine the spatial constraint with "other attributes
such as date and subject type" (Section 1).  A histogram summarises only
geometry, so attribute filters are supported the standard way: partition
the collection by the categorical attribute and keep one summary per
category.  A browse with a category filter sums the selected categories'
estimates -- counts over disjoint partitions are additive, so accuracy is
whatever the per-category estimators deliver.

:class:`AttributeCatalog` owns the partitioning and the per-category
estimators; :meth:`AttributeCatalog.service` yields a
:class:`~repro.browse.service.GeoBrowsingService` scoped to any category
subset.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from typing import Mapping

from repro.browse.service import GeoBrowsingService
from repro.datasets.base import RectDataset
from repro.euler.base import Level2Estimator, as_batch_estimator
from repro.euler.estimates import Level2Counts, Level2CountsBatch
from repro.euler.histogram import BatchRegionSums, EulerHistogram
from repro.euler.simple import SEulerApprox
from repro.grid.grid import Grid
from repro.grid.tiles_math import TileQuery, TileQueryBatch

__all__ = ["AttributeCatalog", "SummedEstimator", "ZoneScatterGatherSummary"]

#: Builds one estimator for one category's objects.
EstimatorFactory = Callable[[RectDataset, Grid], Level2Estimator]


def _default_factory(dataset: RectDataset, grid: Grid) -> Level2Estimator:
    return SEulerApprox(EulerHistogram.from_dataset(dataset, grid))


class SummedEstimator:
    """Sums the estimates of several estimators (disjoint partitions)."""

    def __init__(self, estimators: Sequence[Level2Estimator], label: str) -> None:
        if not estimators:
            raise ValueError("at least one estimator is required")
        self._estimators = tuple(estimators)
        self._label = label

    @property
    def name(self) -> str:
        return self._label

    def estimate(self, query: TileQuery) -> Level2Counts:
        """Sum of the member estimators' counts for one query."""
        total = Level2Counts(0.0, 0.0, 0.0, 0.0)
        for estimator in self._estimators:
            total = total + estimator.estimate(query)
        return total

    def estimate_batch(self, queries: TileQueryBatch) -> Level2CountsBatch:
        """Sum of the member estimators' batch results, member order
        matching the scalar path (bit-identical accumulation)."""
        n = len(queries)
        n_d = np.zeros(n, dtype=np.float64)
        n_cs = np.zeros(n, dtype=np.float64)
        n_cd = np.zeros(n, dtype=np.float64)
        n_o = np.zeros(n, dtype=np.float64)
        for estimator in self._estimators:
            part = as_batch_estimator(estimator).estimate_batch(queries)
            n_d = n_d + part.n_d
            n_cs = n_cs + part.n_cs
            n_cd = n_cd + part.n_cd
            n_o = n_o + part.n_o
        return Level2CountsBatch(n_d=n_d, n_cs=n_cs, n_cd=n_cd, n_o=n_o)


class ZoneScatterGatherSummary(BatchRegionSums):
    """The query surface of one Euler histogram, scatter-gathered over
    per-zone summaries.

    A zoned out-of-core build (:func:`repro.ingest.build_zoned` with
    ``keep_zone_summaries=True``) partitions the objects into zones, each
    with its own histogram.  Bucket arrays over disjoint object sets are
    additive, so every lattice-box sum of the (never materialised) global
    histogram is exactly the int64 sum of the zones' lattice-box sums --
    which makes this class *bit-identical* to querying a direct
    single-builder histogram, not an approximation.  The whole
    Section-5.2/5.3 region-sum surface follows via the shared
    :class:`~repro.euler.histogram.BatchRegionSums` mixin, so estimators
    like :class:`~repro.euler.simple.SEulerApprox` accept this summary
    anywhere they accept a histogram.
    """

    def __init__(self, zone_histograms: Mapping[int, EulerHistogram], grid: Grid) -> None:
        self._zones = {int(z): zone_histograms[z] for z in sorted(zone_histograms)}
        for zone, hist in self._zones.items():
            if hist.grid != grid:
                raise ValueError(
                    f"zone {zone}'s histogram was built over a different grid "
                    f"({hist.grid} vs {grid})"
                )
        self._grid = grid
        self._num_objects = sum(h.num_objects for h in self._zones.values())

    @property
    def grid(self) -> Grid:
        return self._grid

    @property
    def num_objects(self) -> int:
        """Total objects across all zones."""
        return self._num_objects

    @property
    def num_zones(self) -> int:
        """Non-empty zones participating in the gather."""
        return len(self._zones)

    @property
    def generation(self) -> int:
        """Scatter-gather summaries are immutable; generation is fixed."""
        return 0

    @property
    def total_sum(self) -> int:
        """Sum of all buckets across zones (= :attr:`num_objects`)."""
        return sum(h.total_sum for h in self._zones.values())

    def lattice_range_sum(self, a_lo: int, a_hi: int, b_lo: int, b_hi: int) -> int:
        """Inclusive lattice-box sum, gathered over the zones."""
        return sum(h.lattice_range_sum(a_lo, a_hi, b_lo, b_hi) for h in self._zones.values())

    def lattice_range_sum_batch(
        self,
        a_lo: np.ndarray,
        a_hi: np.ndarray,
        b_lo: np.ndarray,
        b_hi: np.ndarray,
    ) -> np.ndarray:
        """Batch lattice-box sums: one int64 gather per zone, summed."""
        total = np.zeros(np.asarray(a_lo).shape, dtype=np.int64)
        for hist in self._zones.values():
            total = total + hist.lattice_range_sum_batch(a_lo, a_hi, b_lo, b_hi)
        return total

    def intersect_count(self, region: TileQuery) -> int:
        """``n_ii`` over all zones (Equation 12/14)."""
        return sum(h.intersect_count(region) for h in self._zones.values())

    def closed_region_sum(self, region: TileQuery) -> int:
        """Closed-region bucket sum over all zones."""
        return sum(h.closed_region_sum(region) for h in self._zones.values())

    def outside_sum(self, region: TileQuery) -> int:
        """``n'_ei`` over all zones (Equation 15/19)."""
        return self.total_sum - self.closed_region_sum(region)

    def contained_count(self, region: TileQuery) -> int:
        """S-Euler contains estimate over all zones."""
        return self.num_objects - self.outside_sum(region)

    def estimator(self) -> Level2Estimator:
        """An S-EulerApprox over the gathered surface (accepts this
        summary like a plain histogram)."""
        return SEulerApprox(self)

    def service(self) -> GeoBrowsingService:
        """A browsing service answering from the zone summaries."""
        return GeoBrowsingService(self.estimator(), self._grid)


class AttributeCatalog:
    """Per-category summaries of one collection.

    Parameters
    ----------
    dataset, grid:
        The collection and its grid.
    categories:
        One label per object (any hashable values; e.g. subject types).
    factory:
        Builds the per-category estimator; defaults to S-EulerApprox.
        Pass e.g. ``lambda d, g: MEulerApprox(d, g, [1, 9, 100])`` for
        Level-2-heavy catalogues.
    """

    def __init__(
        self,
        dataset: RectDataset,
        grid: Grid,
        categories: Sequence,
        factory: EstimatorFactory = _default_factory,
    ) -> None:
        labels = np.asarray(categories)
        if labels.shape != (len(dataset),):
            raise ValueError(
                f"need one category per object: {labels.shape} vs {len(dataset)} objects"
            )
        self._grid = grid
        self._estimators: dict[object, Level2Estimator] = {}
        self._sizes: dict[object, int] = {}
        for value in np.unique(labels):
            mask = labels == value
            subset = dataset.select(mask, name=f"{dataset.name}[{value}]")
            key = value.item() if hasattr(value, "item") else value
            self._estimators[key] = factory(subset, grid)
            self._sizes[key] = len(subset)

    @property
    def grid(self) -> Grid:
        return self._grid

    @property
    def categories(self) -> tuple:
        return tuple(self._estimators)

    def category_size(self, category) -> int:
        """Number of objects in one category."""
        return self._sizes[self._validate(category)]

    def _validate(self, category):
        if category not in self._estimators:
            raise KeyError(
                f"unknown category {category!r}; have {sorted(map(str, self.categories))}"
            )
        return category

    def estimator(self, categories: Sequence | None = None) -> Level2Estimator:
        """A (possibly filtered) estimator over the selected categories;
        None selects the whole collection."""
        if categories is None:
            selected = list(self.categories)
            if not selected:
                raise ValueError(
                    "catalog has no categories (built over an empty collection); "
                    "nothing to estimate over"
                )
        else:
            selected = [self._validate(c) for c in categories]
            if not selected:
                raise ValueError("category filter must select at least one category")
        label = "all" if categories is None else "+".join(str(c) for c in selected)
        return SummedEstimator(
            [self._estimators[c] for c in selected], f"Catalog[{label}]"
        )

    def service(self, categories: Sequence | None = None) -> GeoBrowsingService:
        """A browsing service scoped to the selected categories."""
        return GeoBrowsingService(self.estimator(categories), self._grid)

    def estimate(self, query: TileQuery, categories: Sequence | None = None) -> Level2Counts:
        """One tile's counts under a category filter."""
        return self.estimator(categories).estimate(query)
