"""Attribute-filtered browsing: histograms per category.

GeoBrowsing queries combine the spatial constraint with "other attributes
such as date and subject type" (Section 1).  A histogram summarises only
geometry, so attribute filters are supported the standard way: partition
the collection by the categorical attribute and keep one summary per
category.  A browse with a category filter sums the selected categories'
estimates -- counts over disjoint partitions are additive, so accuracy is
whatever the per-category estimators deliver.

:class:`AttributeCatalog` owns the partitioning and the per-category
estimators; :meth:`AttributeCatalog.service` yields a
:class:`~repro.browse.service.GeoBrowsingService` scoped to any category
subset.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.browse.service import GeoBrowsingService
from repro.datasets.base import RectDataset
from repro.euler.base import Level2Estimator, as_batch_estimator
from repro.euler.estimates import Level2Counts, Level2CountsBatch
from repro.euler.histogram import EulerHistogram
from repro.euler.simple import SEulerApprox
from repro.grid.grid import Grid
from repro.grid.tiles_math import TileQuery, TileQueryBatch

__all__ = ["AttributeCatalog", "SummedEstimator"]

#: Builds one estimator for one category's objects.
EstimatorFactory = Callable[[RectDataset, Grid], Level2Estimator]


def _default_factory(dataset: RectDataset, grid: Grid) -> Level2Estimator:
    return SEulerApprox(EulerHistogram.from_dataset(dataset, grid))


class SummedEstimator:
    """Sums the estimates of several estimators (disjoint partitions)."""

    def __init__(self, estimators: Sequence[Level2Estimator], label: str) -> None:
        if not estimators:
            raise ValueError("at least one estimator is required")
        self._estimators = tuple(estimators)
        self._label = label

    @property
    def name(self) -> str:
        return self._label

    def estimate(self, query: TileQuery) -> Level2Counts:
        """Sum of the member estimators' counts for one query."""
        total = Level2Counts(0.0, 0.0, 0.0, 0.0)
        for estimator in self._estimators:
            total = total + estimator.estimate(query)
        return total

    def estimate_batch(self, queries: TileQueryBatch) -> Level2CountsBatch:
        """Sum of the member estimators' batch results, member order
        matching the scalar path (bit-identical accumulation)."""
        n = len(queries)
        n_d = np.zeros(n, dtype=np.float64)
        n_cs = np.zeros(n, dtype=np.float64)
        n_cd = np.zeros(n, dtype=np.float64)
        n_o = np.zeros(n, dtype=np.float64)
        for estimator in self._estimators:
            part = as_batch_estimator(estimator).estimate_batch(queries)
            n_d = n_d + part.n_d
            n_cs = n_cs + part.n_cs
            n_cd = n_cd + part.n_cd
            n_o = n_o + part.n_o
        return Level2CountsBatch(n_d=n_d, n_cs=n_cs, n_cd=n_cd, n_o=n_o)


class AttributeCatalog:
    """Per-category summaries of one collection.

    Parameters
    ----------
    dataset, grid:
        The collection and its grid.
    categories:
        One label per object (any hashable values; e.g. subject types).
    factory:
        Builds the per-category estimator; defaults to S-EulerApprox.
        Pass e.g. ``lambda d, g: MEulerApprox(d, g, [1, 9, 100])`` for
        Level-2-heavy catalogues.
    """

    def __init__(
        self,
        dataset: RectDataset,
        grid: Grid,
        categories: Sequence,
        factory: EstimatorFactory = _default_factory,
    ) -> None:
        labels = np.asarray(categories)
        if labels.shape != (len(dataset),):
            raise ValueError(
                f"need one category per object: {labels.shape} vs {len(dataset)} objects"
            )
        self._grid = grid
        self._estimators: dict[object, Level2Estimator] = {}
        self._sizes: dict[object, int] = {}
        for value in np.unique(labels):
            mask = labels == value
            subset = dataset.select(mask, name=f"{dataset.name}[{value}]")
            key = value.item() if hasattr(value, "item") else value
            self._estimators[key] = factory(subset, grid)
            self._sizes[key] = len(subset)

    @property
    def grid(self) -> Grid:
        return self._grid

    @property
    def categories(self) -> tuple:
        return tuple(self._estimators)

    def category_size(self, category) -> int:
        """Number of objects in one category."""
        return self._sizes[self._validate(category)]

    def _validate(self, category):
        if category not in self._estimators:
            raise KeyError(
                f"unknown category {category!r}; have {sorted(map(str, self.categories))}"
            )
        return category

    def estimator(self, categories: Sequence | None = None) -> Level2Estimator:
        """A (possibly filtered) estimator over the selected categories;
        None selects the whole collection."""
        if categories is None:
            selected = list(self.categories)
            if not selected:
                raise ValueError(
                    "catalog has no categories (built over an empty collection); "
                    "nothing to estimate over"
                )
        else:
            selected = [self._validate(c) for c in categories]
            if not selected:
                raise ValueError("category filter must select at least one category")
        label = "all" if categories is None else "+".join(str(c) for c in selected)
        return SummedEstimator(
            [self._estimators[c] for c in selected], f"Catalog[{label}]"
        )

    def service(self, categories: Sequence | None = None) -> GeoBrowsingService:
        """A browsing service scoped to the selected categories."""
        return GeoBrowsingService(self.estimator(categories), self._grid)

    def estimate(self, query: TileQuery, categories: Sequence | None = None) -> Level2Counts:
        """One tile's counts under a category filter."""
        return self.estimator(categories).estimate(query)
