"""A resilient serving layer over the browsing stack.

:class:`~repro.browse.service.GeoBrowsingService` is the fast path: one
vectorised batch per raster, nothing between an estimator exception and
the client.  In a production GeoBrowsing deployment (hundreds of trial
queries per interaction, Section 1) that is not acceptable: one flaky
estimator, one pathologically large raster or one corrupt summary must
degrade the answer, not kill the session.  :class:`ResilientBrowsingService`
adds that failure story:

- **Deadlines.**  A raster is answered in *row chunks* with a deadline
  check between chunks.  When the budget runs out, the remaining chunks
  are left NaN and the returned :class:`~repro.browse.service.BrowseResult`
  carries a validity mask -- a partial choropleth beats a timeout page.
- **Fallback chain.**  Estimators are tried in order per chunk (e.g. the
  exact evaluator first, S-EulerApprox as the cheap degradation; append
  ``ScalarBatchFallback(primary)`` to degrade the batch path to the
  scalar loop).  A chunk answer containing non-finite counts is treated
  as a failure, so NaN corruption falls through to the next tier instead
  of reaching the client.
- **Circuit breaker.**  Each tier trips open after ``failure_threshold``
  consecutive failures and is skipped while open; after ``cooldown``
  seconds (on the injected clock) a half-open probe is allowed, and a
  success closes the breaker again.
- **Retries.**  Transient faults are retried per tier with deterministic
  exponential backoff before falling through the chain.

All failures surface through the structured taxonomy of
:mod:`repro.errors`; if every tier fails a chunk the service raises
:class:`~repro.errors.EstimatorFailedError` carrying the per-tier causes
-- never a bare ``ValueError``.  The clock and sleep functions are
injectable so the whole layer is deterministic under test (see
:mod:`repro.testing.faults`).
"""

from __future__ import annotations

import threading
import time
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.browse.delta import DeltaPlan, DeltaSource, DeltaTracker, plan_delta
from repro.browse.refine import PyramidSource, RefinementStep
from repro.browse.service import BrowseResult, resolve_browse_request
from repro.browse.sharding import ShardPool, batch_subset
from repro.cache import CacheKey, TileResultCache, backing_summary, summary_generation, summary_token
from repro.errors import (
    DeadlineExceededError,
    EstimatorFailedError,
    InvalidRegionError,
)
from repro.euler.base import Level2BatchEstimator, Level2Estimator, as_batch_estimator
from repro.euler.pyramid import HistogramPyramid
from repro.geometry.rect import Rect
from repro.grid.grid import Grid
from repro.grid.tiles_math import TileQuery, TileQueryBatch
from repro.obs.instruments import BrowseInstrumentation, classify_failure
from repro.obs.trace import RequestTrace
from repro.parallel.executor import (
    ParallelConfig,
    ParallelExecutor,
    ProcessBackedEstimator,
)
from repro.workloads.tiles import browsing_tile_batch, validate_browsing_tiling

__all__ = [
    "CircuitBreaker",
    "EstimatorTier",
    "FallbackChain",
    "ResilientBrowsingService",
    "RetryPolicy",
]

#: ``clock()`` -> seconds; monotonic in production, fake under test.
Clock = Callable[[], float]


@dataclass(frozen=True)
class RetryPolicy:
    """Per-tier retry discipline: ``attempts`` total tries per chunk,
    with deterministic exponential backoff between them.

    The delay before retry ``i`` (0-based) is
    ``backoff_base * backoff_multiplier ** i`` seconds -- deterministic
    by design so fault-injection tests can assert the exact schedule.
    """

    attempts: int = 2
    backoff_base: float = 0.0
    backoff_multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be at least 1")
        if self.backoff_base < 0:
            raise ValueError("backoff_base must be non-negative")

    def delay(self, retry_index: int) -> float:
        """Backoff before the ``retry_index``-th retry, in seconds."""
        return self.backoff_base * self.backoff_multiplier**retry_index


class CircuitBreaker:
    """A per-estimator circuit breaker with half-open recovery probes.

    States: ``closed`` (normal), ``open`` (skipped after
    ``failure_threshold`` consecutive failures), ``half_open`` (one probe
    allowed once ``cooldown`` seconds have elapsed on ``clock``).  A
    successful probe closes the breaker; a failed probe re-opens it with
    a fresh ``opened_at``, restarting the cooldown.

    The breaker trips on exactly the K-th consecutive failure (K =
    ``failure_threshold``), and while half-open admits exactly one
    probe: ``allows()`` returns ``True`` at the open-to-half-open
    transition and ``False`` until the probe's outcome is recorded, so
    concurrent callers cannot pile onto a recovering tier.  All state is
    lock-guarded; ``on_transition(old, new)`` fires on every state
    change (the observability layer wires it to a transition counter).
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        cooldown: float = 1.0,
        clock: Clock = time.monotonic,
        on_transition: Callable[[str, str], None] | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        self._failure_threshold = failure_threshold
        self._cooldown = cooldown
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at = 0.0
        #: Optional ``(old_state, new_state)`` observer; assignable after
        #: construction so chains can wire instrumentation to named tiers.
        self.on_transition = on_transition

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"`` or ``"half_open"``."""
        with self._lock:
            return self._state

    @property
    def consecutive_failures(self) -> int:
        """Failures recorded since the last success."""
        with self._lock:
            return self._consecutive_failures

    def _set_state(self, new_state: str) -> None:
        """Transition (callers hold the lock) and notify the observer."""
        old_state = self._state
        if old_state == new_state:
            return
        self._state = new_state
        if self.on_transition is not None:
            self.on_transition(old_state, new_state)

    def allows(self) -> bool:
        """Whether a call may be attempted now.

        In the open state this is where the cooldown expiry transitions
        the breaker to half-open, admitting one recovery probe; while
        that probe is outstanding (state half-open), further calls are
        rejected until :meth:`record_success` or :meth:`record_failure`
        resolves it.
        """
        with self._lock:
            if self._state == "open":
                if self._clock() - self._opened_at >= self._cooldown:
                    self._set_state("half_open")
                    return True
                return False
            if self._state == "half_open":
                return False
            return True

    def record_success(self) -> None:
        """Note a successful call: closes the breaker, resets the count."""
        with self._lock:
            self._set_state("closed")
            self._consecutive_failures = 0

    def record_failure(self) -> None:
        """Note a failed call: a failed half-open probe or the K-th
        consecutive failure trips the breaker open with a fresh
        ``opened_at``."""
        with self._lock:
            self._consecutive_failures += 1
            if (
                self._state == "half_open"
                or self._consecutive_failures >= self._failure_threshold
            ):
                self._opened_at = self._clock()
                self._set_state("open")


class EstimatorTier:
    """One estimator in a fallback chain, with its breaker and stats.

    Stat updates go through :meth:`note_attempt`/:meth:`note_failure`/
    :meth:`note_success`, which are lock-guarded so chunks executing on
    shard threads never lose increments; the counters themselves stay
    plain ints for cheap reads.
    """

    def __init__(self, estimator: Level2Estimator, breaker: CircuitBreaker) -> None:
        self._batch: Level2BatchEstimator = as_batch_estimator(estimator)
        self.breaker = breaker
        self._stats_lock = threading.Lock()
        #: Chunk attempts routed to this tier (including retries).
        self.attempts = 0
        #: Attempts that failed (exception, timeout overrun, or NaN).
        self.failures = 0
        #: Chunks this tier answered.
        self.successes = 0

    def note_attempt(self) -> None:
        """Count one attempt (thread-safe)."""
        with self._stats_lock:
            self.attempts += 1

    def note_failure(self) -> None:
        """Count one failed attempt (thread-safe)."""
        with self._stats_lock:
            self.failures += 1

    def note_success(self) -> None:
        """Count one answered chunk (thread-safe)."""
        with self._stats_lock:
            self.successes += 1

    @property
    def name(self) -> str:
        """The wrapped estimator's label."""
        return self._batch.name

    @property
    def estimator(self) -> Level2BatchEstimator:
        """The wrapped (batch-adapted) estimator."""
        return self._batch


class FallbackChain:
    """Answers tile-batch chunks through an ordered estimator chain.

    Each chunk walks the tiers in order: closed (or half-open) breakers
    are attempted up to ``retry.attempts`` times with deterministic
    backoff; an exception, a non-finite count, or an attempt overrunning
    ``attempt_timeout`` counts as a failure and eventually falls through
    to the next tier.  When every tier fails, the chunk raises
    :class:`~repro.errors.EstimatorFailedError` with the per-tier causes.
    """

    def __init__(
        self,
        estimators: Sequence[Level2Estimator],
        *,
        failure_threshold: int = 3,
        cooldown: float = 1.0,
        retry: RetryPolicy | None = None,
        attempt_timeout: float | None = None,
        clock: Clock = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        instruments: BrowseInstrumentation | None = None,
    ) -> None:
        if not estimators:
            raise ValueError("a fallback chain needs at least one estimator")
        if attempt_timeout is not None and attempt_timeout <= 0:
            raise ValueError("attempt_timeout must be positive when given")
        self._retry = retry if retry is not None else RetryPolicy()
        self._attempt_timeout = attempt_timeout
        self._clock = clock
        self._sleep = sleep
        self._obs = instruments
        self.tiers = tuple(
            EstimatorTier(
                estimator,
                CircuitBreaker(
                    failure_threshold=failure_threshold, cooldown=cooldown, clock=clock
                ),
            )
            for estimator in estimators
        )
        if instruments is not None:
            for tier in self.tiers:
                tier.breaker.on_transition = instruments.breaker_hook(tier.name)

    @property
    def names(self) -> tuple[str, ...]:
        """Tier labels, primary first."""
        return tuple(tier.name for tier in self.tiers)

    def _attempt(
        self,
        tier: EstimatorTier,
        batch: TileQueryBatch,
        field_name: str,
        timeout: float | None = None,
    ) -> np.ndarray:
        """One attempt on one tier; raises on any injected/real failure.

        ``timeout`` is the request budget remaining when the attempt
        started.  Tiers that can bound their own execution (the
        process-backed primary exposes ``estimate_batch_within``)
        receive it so a slow worker wave degrades inside the pool
        instead of blocking past the deadline; plain tiers ignore it and
        rely on the post-hoc ``attempt_timeout`` check.
        """
        started = self._clock()
        estimator = tier.estimator
        if timeout is not None and hasattr(estimator, "estimate_batch_within"):
            estimates = estimator.estimate_batch_within(batch, timeout)
        else:
            estimates = estimator.estimate_batch(batch)
        elapsed = self._clock() - started
        if self._attempt_timeout is not None and elapsed > self._attempt_timeout:
            raise TimeoutError(
                f"estimator {tier.name!r} took {elapsed:.3f}s for a "
                f"{len(batch)}-tile chunk (limit {self._attempt_timeout:.3f}s)"
            )
        values = np.asarray(getattr(estimates, field_name), dtype=np.float64)
        if values.shape != (len(batch),):
            raise ValueError(
                f"estimator {tier.name!r} returned shape {values.shape} "
                f"for a {len(batch)}-query chunk"
            )
        if not np.isfinite(values).all():
            bad = int(np.count_nonzero(~np.isfinite(values)))
            raise ValueError(
                f"estimator {tier.name!r} returned {bad} non-finite count(s)"
            )
        return values

    def estimate_chunk(
        self,
        batch: TileQueryBatch,
        field_name: str,
        *,
        trace: RequestTrace | None = None,
        timeout: float | None = None,
    ) -> np.ndarray:
        """Answer one chunk of tile queries, falling through the chain.

        Returns the float64 counts for ``field_name``, one per query.
        Raises :class:`~repro.errors.EstimatorFailedError` when no tier
        can answer.  When a trace is given, every tier attempt is
        recorded as an ``attempt:<tier>`` span with its outcome.
        ``timeout`` is forwarded to deadline-aware tiers (see
        :meth:`_attempt`).
        """
        values, _tier = self.estimate_chunk_tiered(
            batch, field_name, trace=trace, timeout=timeout
        )
        return values

    def estimate_chunk_tiered(
        self,
        batch: TileQueryBatch,
        field_name: str,
        *,
        trace: RequestTrace | None = None,
        timeout: float | None = None,
    ) -> tuple[np.ndarray, EstimatorTier]:
        """Like :meth:`estimate_chunk`, but also returns the tier that
        answered -- callers caching results need to know whether the
        answer is authoritative (primary tier) or degraded."""
        causes: list[BaseException] = []
        obs = self._obs
        for depth, tier in enumerate(self.tiers):
            if not tier.breaker.allows():
                if obs is not None:
                    obs.tier_skips.labels(tier=tier.name).inc()
                causes.append(
                    RuntimeError(f"circuit open for estimator {tier.name!r}")
                )
                continue
            last_exc: BaseException | None = None
            for attempt in range(self._retry.attempts):
                tier.note_attempt()
                if obs is not None:
                    obs.tier_attempts.labels(tier=tier.name).inc()
                    if attempt:
                        obs.tier_retries.labels(tier=tier.name).inc()
                attempt_started = self._clock()
                span_cm = (
                    trace.span(f"attempt:{tier.name}", attempt=attempt)
                    if trace is not None
                    else nullcontext()
                )
                try:
                    with span_cm:
                        values = self._attempt(tier, batch, field_name, timeout)
                except Exception as exc:
                    tier.note_failure()
                    tier.breaker.record_failure()
                    if obs is not None:
                        obs.tier_seconds.labels(tier=tier.name).observe(
                            self._clock() - attempt_started
                        )
                        obs.tier_failures.labels(
                            tier=tier.name, reason=classify_failure(exc)
                        ).inc()
                    last_exc = exc
                    # A pure state read, on purpose: ``allows()`` has the
                    # side effect of admitting the half-open probe, so
                    # using it as a mid-retry check would burn the probe
                    # the moment a zero-cooldown breaker tripped.
                    if tier.breaker.state == "open":
                        break  # tripped open mid-chunk: stop retrying this tier
                    if attempt + 1 < self._retry.attempts:
                        delay = self._retry.delay(attempt)
                        if delay > 0:
                            self._sleep(delay)
                else:
                    tier.note_success()
                    tier.breaker.record_success()
                    if obs is not None:
                        obs.tier_seconds.labels(tier=tier.name).observe(
                            self._clock() - attempt_started
                        )
                        obs.tier_successes.labels(tier=tier.name).inc()
                        obs.fallback_depth.observe(depth)
                    return values, tier
            if last_exc is not None:
                causes.append(last_exc)
        raise EstimatorFailedError(
            f"all {len(self.tiers)} estimator tier(s) failed for a "
            f"{len(batch)}-tile chunk: "
            + "; ".join(f"{t.name}: {c}" for t, c in zip(self.tiers, causes)),
            causes=tuple(causes),
        )


class ResilientBrowsingService:
    """A browsing service with deadlines, fallbacks and partial answers.

    Drop-in alternative to
    :class:`~repro.browse.service.GeoBrowsingService`: same
    ``browse(region, rows, cols, relation)`` surface, same
    :class:`~repro.browse.service.BrowseResult`, but the raster is
    answered in row chunks through a :class:`FallbackChain` with a
    per-request deadline.  See the module docstring for the semantics.

    Parameters
    ----------
    estimators:
        The fallback chain, primary first (a single estimator works
        too); or pass a prebuilt :class:`FallbackChain` via ``chain``.
    grid:
        The service's evaluation grid.
    chunk_rows:
        Raster rows answered per chunk -- the deadline-check granularity.
    clock, sleep:
        Injectable time sources (monotonic seconds / backoff sleeper);
        tests substitute fakes for determinism.
    instruments:
        An optional :class:`~repro.obs.instruments.BrowseInstrumentation`;
        when given, every request is traced (the trace rides on
        ``BrowseResult.telemetry``), tier/breaker/tile outcomes are
        recorded, and its accuracy probe (if any) samples each answered
        raster.  ``None`` (the default) keeps the path uninstrumented.
    cache:
        An optional :class:`~repro.cache.TileResultCache`.  The raster is
        probed once, vectorised, before any chunk runs; hit tiles are
        answered immediately (they survive even a zero deadline) and
        only miss tiles reach the fallback chain.  Only *primary-tier*
        answers are cached -- a degraded (fallback) answer must not keep
        serving after the primary recovers.  Keys carry the primary
        summary's generation, so maintained-histogram updates invalidate
        stale entries for free.
    num_shards:
        When > 1, up to this many row chunks are dispatched concurrently
        per *wave* on a :class:`~repro.browse.sharding.ShardPool`.  The
        deadline is checked between waves (a wave in flight is never
        abandoned), which generalises the sequential per-chunk check;
        with the default 1 the behaviour is exactly the sequential one.
    delta:
        An optional :class:`~repro.browse.delta.DeltaTracker`.  Tiles of
        the session's previous raster that coincide with this request's
        tiles (same scope/generation, tile extents and lattice-aligned
        offset) are copied and marked valid *before* any deadline check
        runs, so a pan's overlap survives even a zero budget; only the
        fresh band walks the cache-probe/fallback-chain path.  Only tiles
        answered by the primary tier (or copied from ones that were) are
        ever reused -- a degraded tier's counts must not outlive the
        interaction that produced them.
    pyramid:
        An optional :class:`~repro.euler.pyramid.HistogramPyramid` (or a
        prebuilt :class:`~repro.browse.refine.PyramidSource`) whose
        finest grid must equal the service grid.  It becomes a new
        degradation tier: under a deadline, every tile not already
        answered by delta/cache is first served from the coarsest
        aligned pyramid level -- a complete, coarse-but-valid raster
        almost immediately -- then refined level-by-level while elapsed
        time stays under ``refine_fraction`` of the budget, and the fine
        chunk path overwrites whatever it reaches in time.  A chunk whose
        fallback chain is exhausted is likewise rescued from the coarsest
        level instead of failing the request.  Pyramid-served tiles carry
        their level and error bound on the result (``levels`` /
        ``error_bound``) and are *never* written to the tile cache or
        reused by viewport deltas.
    refine_fraction:
        Fraction of the deadline budget the refinement ladder may spend
        before yielding to the fine chunk path (default 0.35).
    """

    def __init__(
        self,
        estimators: Level2Estimator | Sequence[Level2Estimator],
        grid: Grid,
        *,
        chunk_rows: int = 4,
        failure_threshold: int = 3,
        cooldown: float = 1.0,
        retry: RetryPolicy | None = None,
        attempt_timeout: float | None = None,
        clock: Clock = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        chain: FallbackChain | None = None,
        instruments: BrowseInstrumentation | None = None,
        cache: TileResultCache | None = None,
        num_shards: int = 1,
        delta: DeltaTracker | None = None,
        parallel: ParallelConfig | str | None = None,
        pyramid: HistogramPyramid | PyramidSource | None = None,
        refine_fraction: float = 0.35,
    ) -> None:
        if chunk_rows < 1:
            raise ValueError("chunk_rows must be at least 1")
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        if not 0.0 < refine_fraction <= 1.0:
            raise ValueError("refine_fraction must be in (0, 1]")
        if pyramid is not None and not isinstance(pyramid, PyramidSource):
            pyramid = PyramidSource(pyramid, grid=grid)
        elif isinstance(pyramid, PyramidSource) and pyramid.grid != grid:
            raise ValueError(
                "the pyramid source's finest grid must equal the service grid"
            )
        self._pyramid = pyramid
        self._refine_fraction = refine_fraction
        # Process parallelism wraps the *primary* estimator in a
        # ProcessBackedEstimator before the chain is built, so it only
        # composes with the estimators form of construction.
        self._parallel: ParallelExecutor | None = None
        if parallel is not None:
            if chain is not None:
                raise ValueError(
                    "parallel cannot be combined with a prebuilt chain; "
                    "pass the estimators sequence instead"
                )
            if isinstance(estimators, Level2Estimator):
                estimators = [estimators]
            estimators = list(estimators)
            self._parallel = ParallelExecutor(
                estimators[0],
                parallel,
                num_shards=num_shards,
                instruments=instruments,
                service="resilient",
            )
            estimators[0] = ProcessBackedEstimator(estimators[0], self._parallel)
        if chain is None:
            if isinstance(estimators, Level2Estimator):
                estimators = [estimators]
            chain = FallbackChain(
                estimators,
                failure_threshold=failure_threshold,
                cooldown=cooldown,
                retry=retry,
                attempt_timeout=attempt_timeout,
                clock=clock,
                sleep=sleep,
                instruments=instruments,
            )
        self._chain = chain
        self._grid = grid
        self._chunk_rows = chunk_rows
        self._clock = clock
        self._obs = instruments
        self._cache = cache
        self._pool = ShardPool(num_shards) if num_shards > 1 else None
        self._delta = delta
        self._summary = backing_summary(chain.tiers[0].estimator)
        self._summary_token = summary_token(self._summary)
        self._close_lock = threading.Lock()
        self._closed = False

    @property
    def grid(self) -> Grid:
        """The service's evaluation grid."""
        return self._grid

    @property
    def chain(self) -> FallbackChain:
        """The fallback chain answering chunks (stats live on its tiers)."""
        return self._chain

    @property
    def estimator_name(self) -> str:
        """The primary tier's label."""
        return self._chain.tiers[0].name

    @property
    def cache(self) -> TileResultCache | None:
        """The tile-result cache, when one was configured."""
        return self._cache

    @property
    def num_shards(self) -> int:
        """Row chunks dispatched concurrently per wave (1 = sequential)."""
        return self._pool.num_shards if self._pool is not None else 1

    @property
    def delta(self) -> DeltaTracker | None:
        """The viewport-delta tracker, when one was configured."""
        return self._delta

    @property
    def pyramid(self) -> PyramidSource | None:
        """The pyramid refinement source, when one was configured."""
        return self._pyramid

    def cache_key(self, field_name: str) -> CacheKey:
        """The cache key for this service's *primary-tier* answers: the
        primary summary's identity token and current generation plus the
        primary estimator's label."""
        return CacheKey(
            summary_id=self._summary_token,
            generation=summary_generation(self._summary),
            estimator_key=self._chain.tiers[0].name,
            field=field_name,
        )

    @property
    def parallel_executor(self) -> "ParallelExecutor | None":
        """The primary tier's parallel router, when ``parallel`` was
        configured (tests and diagnostics)."""
        return self._parallel

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run (or is running)."""
        with self._close_lock:
            return self._closed

    def close(self) -> None:
        """Release the wave pool's threads and, when process
        parallelism is configured, the primary tier's worker processes
        and shared segments (no-op when unsharded).

        Idempotent and safe to race: gateway shutdown paths close the
        service from the event loop while executor threads may still be
        inside :meth:`browse`, and double-close (e.g. an explicit close
        followed by a ``finally`` close) must not error.  The first
        caller performs the teardown; every later or concurrent caller
        returns immediately.  In-flight waves survive the race because
        :class:`~repro.browse.sharding.ShardPool` degrades to inline
        execution after close and the process pool drains its dispatch
        lock before releasing segments.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        if self._pool is not None:
            self._pool.close()
        if self._parallel is not None:
            self._parallel.close()

    def browse(
        self,
        region: Rect | TileQuery,
        rows: int,
        cols: int,
        relation: str = "overlap",
        *,
        deadline: float | None = None,
        on_deadline: str = "partial",
        previous: BrowseResult | None = None,
        session: str = "default",
    ) -> BrowseResult:
        """Run one browsing interaction with resilience semantics.

        Parameters
        ----------
        region, rows, cols, relation:
            As in :meth:`GeoBrowsingService.browse
            <repro.browse.service.GeoBrowsingService.browse>`; malformed
            requests raise :class:`~repro.errors.InvalidRegionError`.
        deadline:
            Per-request budget in seconds on the service clock; ``None``
            means unbounded.  The budget is checked before each row
            chunk, so a chunk in flight is never abandoned.
        on_deadline:
            ``"partial"`` (default) returns whatever was answered, with
            unanswered tiles NaN and marked ``False`` in the result's
            validity mask; ``"raise"`` raises
            :class:`~repro.errors.DeadlineExceededError` instead.
        previous:
            An explicit viewport-delta hint (see
            :mod:`repro.browse.delta`); overrides the tracker.
        session:
            The session key under the service's
            :class:`~repro.browse.delta.DeltaTracker`, when configured.
        """
        if on_deadline not in ("partial", "raise"):
            raise ValueError(
                f"on_deadline must be 'partial' or 'raise', got {on_deadline!r}"
            )
        obs = self._obs
        trace = obs.new_trace() if obs is not None else None

        def span(name: str, **attrs):
            return trace.span(name, **attrs) if trace is not None else nullcontext()

        expired = False
        started = self._clock()
        with span("browse", relation=relation, rows=rows, cols=cols, deadline=deadline):
            with span("resolve"):
                region, field_name = resolve_browse_request(self._grid, region, relation)
            with span("validate_tiling"):
                try:
                    validate_browsing_tiling(region, rows, cols)
                except ValueError as exc:
                    raise InvalidRegionError(str(exc)) from exc

            # The fine tiling's corner arrays, materialised on first
            # need: a request fully answered by deltas, cache hits or a
            # coarse pyramid raster never pays for them.
            batch: TileQueryBatch | None = None

            def tile_batch() -> TileQueryBatch:
                nonlocal batch
                if batch is None:
                    with span("build_batch"):
                        batch = browsing_tile_batch(region, rows, cols)
                return batch

            counts = np.full((rows, cols), np.nan, dtype=np.float64)
            valid = np.zeros((rows, cols), dtype=bool)
            counts_flat = counts.reshape(-1)
            valid_flat = valid.reshape(-1)
            # Tiles whose value the primary path stands behind (cache
            # hits, delta copies, primary-tier chunks): only these are
            # reusable by later viewport deltas.
            primary_flat = np.zeros(rows * cols, dtype=bool)
            miss_flat = np.ones(rows * cols, dtype=bool)
            scope = self.cache_key(field_name)

            # Viewport-delta probe: tiles coinciding with the session's
            # previous raster are copied and marked valid before any
            # deadline check runs, so a pan's overlap survives even a
            # zero budget.
            candidate = previous
            if candidate is None and self._delta is not None:
                candidate = self._delta.lookup(session)
            plan: DeltaPlan | None = None
            if candidate is not None:
                plan = plan_delta(candidate, region, rows, cols, scope)
            if plan is not None:
                with span("delta_fill", tiles=plan.n_reused):
                    plan.fill(counts_flat, candidate.counts)
                    valid_flat[plan.reused] = True
                    primary_flat[plan.reused] = True
                    miss_flat[plan.reused] = False
            if obs is not None and (previous is not None or self._delta is not None):
                if plan is not None:
                    outcome = "reused"
                    obs.delta_tiles_reused.labels(service="resilient").inc(plan.n_reused)
                else:
                    outcome = "incompatible" if candidate is not None else "cold"
                obs.delta_rasters.labels(service="resilient", outcome=outcome).inc()

            # Vectorised cache probe over the tiles the delta could not
            # cover: one gather answers every previously-seen tile before
            # any chunk (or deadline) runs.
            cache = self._cache
            cache_key = scope if cache is not None else None
            if cache is not None:
                remaining = np.flatnonzero(miss_flat)
                if remaining.size:
                    probe_batch = (
                        tile_batch()
                        if remaining.size == rows * cols
                        else batch_subset(tile_batch(), remaining)
                    )
                    with span("cache_probe"):
                        cached_values, hit = cache.probe(cache_key, probe_batch)
                    n_hit = int(np.count_nonzero(hit))
                    if obs is not None:
                        obs.cache_hits.labels(service="resilient").inc(n_hit)
                        obs.cache_misses.labels(service="resilient").inc(
                            remaining.size - n_hit
                        )
                    if n_hit:
                        pos = remaining[hit]
                        counts_flat[pos] = cached_values[hit]
                        valid_flat[pos] = True
                        primary_flat[pos] = True
                        miss_flat[pos] = False

            # Pyramid prefill: under a deadline, every tile the delta and
            # cache could not answer is first served from the coarsest
            # aligned pyramid level -- a complete, coarse-but-valid
            # raster almost immediately -- then refined level-by-level
            # while elapsed time stays inside the refinement budget.
            # ``miss_flat`` is deliberately left untouched: the fine
            # chunk path still owns those tiles, and because
            # ``primary_flat`` stays False here, pyramid-served counts
            # can never reach the tile cache or a later viewport delta.
            psource = self._pyramid
            steps: tuple[RefinementStep, ...] = (
                psource.plan(region, rows, cols) if psource is not None else ()
            )
            levels_flat: np.ndarray | None = None
            bound_flat: np.ndarray | None = None
            refine_rounds = 0
            if steps and deadline is not None:
                pending = np.flatnonzero(miss_flat)
                whole_raster = pending.size == rows * cols
                if pending.size:
                    levels_flat = np.full(rows * cols, -1, dtype=np.int64)
                    bound_flat = np.zeros(rows * cols, dtype=np.float64)
                    for step in steps:
                        if refine_rounds and (
                            self._clock() - started
                            >= deadline * self._refine_fraction
                        ):
                            break
                        with span(f"pyramid[level={step.level}]", tiles=step.tiles):
                            step_counts, step_bound = psource.raster(
                                step, rows, cols, field_name
                            )
                        if whole_raster:
                            # The common cold-viewport case: full-array
                            # writes instead of a 4x fancy-index gather.
                            np.copyto(counts, step_counts)
                            valid_flat[:] = True
                            levels_flat[:] = step.level
                            np.copyto(bound_flat, step_bound.reshape(-1))
                        else:
                            counts_flat[pending] = step_counts.reshape(-1)[pending]
                            valid_flat[pending] = True
                            levels_flat[pending] = step.level
                            bound_flat[pending] = step_bound.reshape(-1)[pending]
                        refine_rounds += 1
                        if obs is not None:
                            obs.pyramid_level_served.labels(
                                service="resilient", level=str(step.level)
                            ).inc()
                            if refine_rounds == 1:
                                obs.pyramid_first_raster.labels(
                                    service="resilient"
                                ).observe(self._clock() - started)
                if obs is not None:
                    obs.pyramid_refine_rounds.labels(service="resilient").observe(
                        refine_rounds
                    )

            # The coarsest step's raster doubles as the rescue source for
            # chunks whose fallback chain is exhausted; computed at most
            # once, under a lock because chunks run on shard threads.
            rescue_lock = threading.Lock()
            rescue_state: list = []

            def coarse_rescue():
                """(level, counts, bounds) of the coarsest planned step,
                flattened; ``None`` when no pyramid level aligns."""
                with rescue_lock:
                    if not rescue_state:
                        if not steps:
                            rescue_state.append(None)
                        else:
                            step = steps[0]
                            values2d, bound2d = psource.raster(
                                step, rows, cols, field_name
                            )
                            rescue_state.append(
                                (step.level, values2d.reshape(-1), bound2d.reshape(-1))
                            )
                    return rescue_state[0]

            # Row chunks that still have unanswered tiles, answered in
            # waves of up to ``num_shards`` concurrent chunks.  The
            # deadline is checked before each wave, so work in flight is
            # never abandoned; with one shard this is exactly the
            # sequential per-chunk check.
            def plan_chunks() -> list[tuple[int, int, np.ndarray]]:
                jobs: list[tuple[int, int, np.ndarray]] = []
                unanswered = np.flatnonzero(miss_flat)
                if unanswered.size:
                    blocks = unanswered // (cols * self._chunk_rows)
                    splits = np.flatnonzero(np.diff(blocks)) + 1
                    for idx in np.split(unanswered, splits):
                        row_lo = (
                            int(idx[0] // cols) // self._chunk_rows * self._chunk_rows
                        )
                        row_hi = min(row_lo + self._chunk_rows, rows)
                        jobs.append((row_lo, row_hi, idx))
                return jobs

            def run_chunk(job: tuple[int, int, np.ndarray]):
                row_lo, row_hi, idx = job
                sub = batch_subset(tile_batch(), idx)
                chunk_started = self._clock()
                # Budget remaining at chunk start, for deadline-aware
                # tiers (the process-backed primary): a slow worker wave
                # degrades inside the pool instead of overrunning the
                # request deadline.  Floored so a chunk admitted just
                # before expiry still gets a sliver rather than a
                # nonsensical non-positive budget.
                remaining = (
                    None
                    if deadline is None
                    else max(deadline - (chunk_started - started), 0.01)
                )
                rescue: tuple[int, np.ndarray] | None = None
                with span(f"chunk[{row_lo}:{row_hi})", tiles=len(idx)):
                    try:
                        values, tier = self._chain.estimate_chunk_tiered(
                            sub, field_name, trace=trace, timeout=remaining
                        )
                    except EstimatorFailedError:
                        # Exhausted chain: rescue the chunk's tiles from
                        # the coarsest pyramid level when one aligns --
                        # coarse-but-valid beats failing the request.
                        source = coarse_rescue() if psource is not None else None
                        if source is None:
                            raise
                        level, rescue_counts, rescue_bounds = source
                        values = rescue_counts[idx]
                        tier = None
                        rescue = (level, rescue_bounds[idx])
                return idx, sub, values, tier, self._clock() - chunk_started, rescue

            wave_size = self._pool.num_shards if self._pool is not None else 1
            position = 0
            chunks: list[tuple[int, int, np.ndarray]] | None = None
            while True:
                # Chunk jobs are planned only when the deadline still has
                # room: an expired budget with a (coarse-)complete raster
                # exits before paying for the fine path's bookkeeping.
                if chunks is None and not miss_flat.any():
                    break
                if deadline is not None and self._clock() - started >= deadline:
                    expired = True
                    if obs is not None:
                        obs.deadline_expirations.labels(service="resilient").inc()
                    # A pyramid-prefilled raster is complete (coarse but
                    # valid everywhere), so even ``on_deadline="raise"``
                    # degrades instead of raising.
                    if on_deadline == "raise" and not valid.all():
                        answered = int(valid.all(axis=1).sum())
                        raise DeadlineExceededError(
                            f"deadline of {deadline:.3f}s expired after answering "
                            f"{answered} of {rows} raster rows",
                            answered_rows=answered,
                            total_rows=rows,
                        )
                    break
                if chunks is None:
                    with span("plan_chunks"):
                        chunks = plan_chunks()
                if position >= len(chunks):
                    break
                # Materialised here (idempotent, main thread) so shard
                # threads in the wave below never race the lazy build.
                tile_batch()
                wave = chunks[position : position + wave_size]
                position += len(wave)
                if self._pool is not None and len(wave) > 1:
                    outcomes = self._pool.map(run_chunk, wave)
                else:
                    outcomes = [run_chunk(job) for job in wave]
                for idx, sub, values, tier, chunk_seconds, rescue in outcomes:
                    if obs is not None:
                        obs.stage_seconds.labels(
                            service="resilient", stage="chunk"
                        ).observe(chunk_seconds)
                    counts_flat[idx] = values
                    valid_flat[idx] = True
                    if rescue is not None:
                        # Pyramid-rescued: coarse-but-valid, never
                        # primary, never cached.
                        level, bounds = rescue
                        if levels_flat is None:
                            levels_flat = np.full(rows * cols, -1, dtype=np.int64)
                            bound_flat = np.zeros(rows * cols, dtype=np.float64)
                        levels_flat[idx] = level
                        bound_flat[idx] = bounds
                        if obs is not None:
                            obs.pyramid_rescues.labels(service="resilient").inc()
                        continue
                    if levels_flat is not None:
                        levels_flat[idx] = -1
                        bound_flat[idx] = 0.0
                    # Only authoritative answers are cached or reused by
                    # later viewport deltas: a degraded tier's counts
                    # must not keep serving once the primary recovers.
                    if tier is self._chain.tiers[0]:
                        primary_flat[idx] = True
                        if cache_key is not None:
                            cache.store(cache_key, sub, values)

        if obs is not None:
            elapsed = self._clock() - started
            answered = int(valid.sum())
            obs.requests.labels(service="resilient", relation=relation).inc()
            obs.request_seconds.labels(service="resilient").observe(elapsed)
            obs.tiles.labels(service="resilient", outcome="answered").inc(answered)
            obs.tiles.labels(service="resilient", outcome="nan").inc(rows * cols - answered)
            if deadline is not None:
                obs.deadline_margin.labels(service="resilient").set(deadline - elapsed)
        if trace is not None:
            trace_attrs = trace.spans[0].attrs
            trace_attrs["valid_fraction"] = float(valid.mean()) if valid.size else 1.0
            trace_attrs["deadline_expired"] = expired
        reusable = (valid_flat & primary_flat).reshape(rows, cols)
        delta_source = DeltaSource(
            scope=scope, reusable=None if bool(reusable.all()) else reusable
        )
        # The refinement annotation rides the result only when a pyramid
        # level actually answered a tile the fine path never overwrote.
        levels_arr = error_bound_arr = None
        if levels_flat is not None and bool((levels_flat >= 0).any()):
            levels_arr = levels_flat.reshape(rows, cols)
            error_bound_arr = bound_flat.reshape(rows, cols)
        if valid.all():
            result = BrowseResult(
                region=region,
                relation=relation,
                counts=counts,
                telemetry=trace,
                delta=delta_source,
                levels=levels_arr,
                error_bound=error_bound_arr,
            )
        else:
            result = BrowseResult(
                region=region,
                relation=relation,
                counts=counts,
                valid=valid,
                telemetry=trace,
                delta=delta_source,
                levels=levels_arr,
                error_bound=error_bound_arr,
            )
        if self._delta is not None:
            self._delta.remember(session, result)
        if obs is not None and obs.accuracy is not None:
            obs.accuracy.observe(result, trace=trace)
        return result
