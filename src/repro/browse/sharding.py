"""Sharded execution of raster estimate batches.

A browse raster is one long :class:`~repro.grid.tiles_math.TileQueryBatch`
in row-major order; splitting it into contiguous *row-band shards* and
estimating each shard separately wins twice:

- **Parallelism.**  The estimators' batch kernels are numpy gathers and
  elementwise arithmetic, which release the GIL for their inner loops,
  so shards dispatched onto a :class:`~concurrent.futures.ThreadPoolExecutor`
  overlap on multi-core hosts.
- **Locality.**  Even on one core, a shard's intermediate arrays fit the
  CPU caches where a monolithic 360x180 raster's do not; band-blocked
  execution measures ~1.3x faster single-threaded on the full world grid
  (``BENCH_browse_cache.json``).

:class:`ShardPool` sizes its worker pool to ``min(shards, cpu_count)``
and bypasses the pool entirely when only one worker is useful -- the
single-core case keeps the blocking win without paying thread dispatch.
Because every shard is answered by a pure batch-estimator call and the
results are concatenated in order, a sharded raster is bit-identical to
the monolithic one.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import FIRST_EXCEPTION, ThreadPoolExecutor, wait
from typing import Callable, Sequence, TypeVar

import numpy as np

from repro.grid.tiles_math import TileQueryBatch

__all__ = ["ShardPool", "band_slices", "batch_subset"]

T = TypeVar("T")
R = TypeVar("R")


def band_slices(n: int, num_shards: int, *, min_shard: int = 256) -> list[slice]:
    """Split ``n`` row-major tiles into up to ``num_shards`` contiguous
    bands of near-equal size, none smaller than ``min_shard`` (so tiny
    rasters are not shredded into overhead).  Always returns at least one
    slice covering everything."""
    if n <= 0:
        return [slice(0, 0)]
    shards = max(1, min(num_shards, n // max(min_shard, 1) or 1))
    bounds = np.linspace(0, n, shards + 1, dtype=int)
    return [slice(int(lo), int(hi)) for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo]


def batch_subset(batch: TileQueryBatch, index) -> TileQueryBatch:
    """The sub-batch selected by a slice, an index array or a boolean
    mask, preserving order (so shard results concatenate back in place)."""
    return TileQueryBatch(
        batch.qx_lo[index], batch.qx_hi[index], batch.qy_lo[index], batch.qy_hi[index]
    )


class ShardPool:
    """A lazily-created thread pool for shard execution.

    ``num_shards`` is the requested fan-out; the actual worker count is
    capped at the host's CPU count, and a one-worker pool degenerates to
    inline sequential execution (same results, no thread overhead).  The
    underlying executor is created on first parallel use and shut down by
    :meth:`close` (also a context manager exit).
    """

    def __init__(self, num_shards: int, *, max_workers: int | None = None) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        self.num_shards = num_shards
        if max_workers is None:
            max_workers = os.cpu_count() or 1
        self._workers = max(1, min(num_shards, max_workers))
        self._executor: ThreadPoolExecutor | None = None
        self._closed = False
        self._lock = threading.Lock()

    @property
    def workers(self) -> int:
        """Concurrent workers this pool will actually use."""
        return self._workers

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        """Run ``fn`` over ``items``, in order, using the pool when it
        helps.

        On failure the *first* exception (in submission order) is
        re-raised as soon as it is observed: still-pending shards are
        cancelled rather than run to completion, and shards already
        executing are awaited so no work is in flight when this returns.

        Safe to race with :meth:`close`: shards the executor refuses to
        accept mid-shutdown (and every ``map`` after close) run inline
        on the calling thread, so callers always get their results.
        """
        if self._workers <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        executor = self._get_executor()
        if executor is None:  # closed: degrade to inline execution
            return [fn(item) for item in items]
        futures = []
        submitted = len(items)
        for i, item in enumerate(items):
            try:
                futures.append(executor.submit(fn, item))
            except RuntimeError:
                # close() won the race and shut the executor down after
                # we fetched it; whatever did not get in runs inline.
                submitted = i
                break
        done, not_done = wait(futures, return_when=FIRST_EXCEPTION)
        first_exc: BaseException | None = None
        for future in futures:
            if future in done and (exc := future.exception()) is not None:
                first_exc = exc
                break
        if first_exc is not None:
            for future in not_done:
                future.cancel()
            wait(not_done)  # let already-running shards settle
            raise first_exc
        results: list[R] = [future.result() for future in futures]
        results.extend(fn(item) for item in items[submitted:])
        return results

    def _get_executor(self) -> ThreadPoolExecutor | None:
        with self._lock:
            if self._closed:
                return None
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self._workers, thread_name_prefix="repro-shard"
                )
            return self._executor

    def close(self) -> None:
        """Shut the pool down (idempotent).  Shards already submitted
        finish first; ``map`` calls racing or following the close fall
        back to inline execution instead of erroring."""
        with self._lock:
            self._closed = True
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
