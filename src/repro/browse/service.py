"""A GeoBrowsing-style browsing service over the estimators.

The paper's motivating application (Section 1): a user selects a region,
grids it into rows x columns of tiles, picks a spatial relation
(*contains*, *contained* or *overlap*), and gets back per-tile counts to
render as a choropleth -- hundreds of trial queries in one interaction.

:class:`GeoBrowsingService` is that application built on the library's
public API: it owns a dataset summary (any Level-2 estimator) and turns a
``browse`` call into a count raster.  The exact evaluator plugs in the
same way, which is how the examples show estimate-vs-exact side by side.

Serving path: the raster's tile corners are materialised once as a
:class:`~repro.grid.tiles_math.TileQueryBatch` and the whole interaction
is answered through the estimator's vectorised ``estimate_batch`` -- a
constant number of numpy gathers regardless of ``rows x cols``.  The
original per-tile scalar loop is kept behind ``use_batch=False`` for
parity testing and for profiling the two paths against each other;
estimators without a native batch path are adapted transparently via
:func:`~repro.euler.base.as_batch_estimator`.
"""

from __future__ import annotations

import math
from contextlib import nullcontext
from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.errors import InvalidRegionError
from repro.euler.base import Level2BatchEstimator, Level2Estimator, as_batch_estimator
from repro.euler.estimates import Level2Counts
from repro.geometry.rect import Rect
from repro.grid.grid import Grid
from repro.grid.tiles_math import TileQuery, aligned_query_cells
from repro.obs.instruments import BrowseInstrumentation
from repro.obs.trace import RequestTrace
from repro.workloads.tiles import browsing_tile_batch, browsing_tiles

__all__ = ["GeoBrowsingService", "BrowseResult", "RELATION_FIELDS"]

#: Browsable relation name -> Level2Counts field.
RELATION_FIELDS: dict[str, str] = {
    "contains": "n_cs",
    "contained": "n_cd",
    "overlap": "n_o",
    "disjoint": "n_d",
    "intersect": "n_intersect",
}


@dataclass(frozen=True)
class BrowseResult:
    """One browsing interaction's result raster.

    ``counts[r, c]`` is the (possibly estimated) number of objects in the
    requested relation with tile ``(r, c)``; row 0 is the bottom row of the
    region.

    ``valid`` is the per-tile validity mask: ``None`` (the common case)
    means every tile was answered; a boolean array of the raster's shape
    marks tiles the resilient serving path could not answer before its
    deadline -- those ``counts`` entries are NaN.

    ``telemetry`` is the request's span trace when the answering service
    was instrumented (``None`` otherwise): per-stage timings, per-chunk
    estimator attempts and outcomes, readable via
    ``result.telemetry.render()``.  It is excluded from equality so
    result comparison stays about the raster.
    """

    region: TileQuery
    relation: str
    counts: np.ndarray
    valid: np.ndarray | None = field(default=None)
    telemetry: RequestTrace | None = field(default=None, compare=False, repr=False)

    @property
    def rows(self) -> int:
        """Number of tile rows in the raster."""
        return self.counts.shape[0]

    @property
    def cols(self) -> int:
        """Number of tile columns in the raster."""
        return self.counts.shape[1]

    @cached_property
    def tiles(self) -> list[list[TileQuery]]:
        """The per-tile queries behind the raster, ``tiles[r][c]``
        matching ``counts[r, c]``.  Derived lazily from the region and the
        raster shape so the batch serving path never pays for building
        ``rows x cols`` Python objects unless a client drills down."""
        return browsing_tiles(self.region, self.rows, self.cols)

    @property
    def total(self) -> float:
        """Sum of the raster's counts."""
        return float(self.counts.sum())

    @property
    def is_complete(self) -> bool:
        """Whether every tile of the raster was answered."""
        return self.valid is None or bool(self.valid.all())

    @property
    def valid_fraction(self) -> float:
        """Fraction of tiles answered (1.0 for a complete raster)."""
        if self.valid is None:
            return 1.0
        return float(self.valid.mean()) if self.valid.size else 1.0

    def render_ascii(self, *, width: int = 4) -> str:
        """A terminal-friendly rendering of the raster (top row first),
        for the examples: rounded counts, right-aligned columns.  Tiles
        whose count is non-finite (NaN from a missed deadline, or
        corruption upstream) render as ``"?"`` instead of crashing
        ``int(round())``.

        ``width`` is a *minimum* column width: when any rendered count
        needs more characters, every column expands to the widest cell,
        so the raster always stays grid-aligned (a too-small ``width``
        used to misalign only the wide columns).
        """
        cells = [
            ["?" if not math.isfinite(v) else str(int(round(v))) for v in self.counts[r]]
            for r in range(self.rows - 1, -1, -1)
        ]
        cell_width = max(
            [width] + [len(cell) for row in cells for cell in row]
        )
        return "\n".join(
            " ".join(cell.rjust(cell_width) for cell in row) for row in cells
        )


def resolve_browse_request(
    grid: Grid, region: Rect | TileQuery, relation: str
) -> tuple[TileQuery, str]:
    """Validate one browse request against ``grid``.

    Returns the region as a cell span plus the
    :class:`~repro.euler.estimates.Level2Counts` field backing
    ``relation``.  Every way the request can be malformed -- unknown
    relation, misaligned or out-of-space world rectangle, span exceeding
    the grid -- raises :class:`~repro.errors.InvalidRegionError` (a
    ``ValueError`` subclass, so pre-taxonomy callers keep working).
    """
    if relation not in RELATION_FIELDS:
        raise InvalidRegionError(
            f"unknown relation {relation!r}; expected one of {sorted(RELATION_FIELDS)}"
        )
    if isinstance(region, Rect):
        try:
            region = aligned_query_cells(grid, region)
        except ValueError as exc:
            raise InvalidRegionError(str(exc)) from exc
    try:
        region.validate_against(grid)
    except ValueError as exc:
        raise InvalidRegionError(str(exc)) from exc
    return region, RELATION_FIELDS[relation]


class GeoBrowsingService:
    """Browse a dataset summary with tiled relation queries.

    Pass a :class:`~repro.obs.instruments.BrowseInstrumentation` as
    ``instruments`` to record request counts, per-stage timings and tile
    outcomes, and to get a span trace on every result's ``telemetry``;
    the default ``None`` keeps the fast path uninstrumented.
    """

    def __init__(
        self,
        estimator: Level2Estimator,
        grid: Grid,
        *,
        instruments: BrowseInstrumentation | None = None,
    ) -> None:
        self._estimator = estimator
        self._batch: Level2BatchEstimator = as_batch_estimator(estimator)
        self._grid = grid
        self._obs = instruments

    @property
    def grid(self) -> Grid:
        """The service's evaluation grid."""
        return self._grid

    @property
    def estimator_name(self) -> str:
        """The backing estimator's label."""
        return self._estimator.name

    def browse(
        self,
        region: Rect | TileQuery,
        rows: int,
        cols: int,
        relation: str = "overlap",
        *,
        use_batch: bool = True,
    ) -> BrowseResult:
        """Run one browsing interaction.

        Parameters
        ----------
        region:
            The selected region, either as a world rectangle (must be
            grid-aligned) or directly as a cell span.
        rows, cols:
            The tile partitioning the user requested.
        relation:
            One of ``contains``, ``contained``, ``overlap``, ``disjoint``,
            ``intersect``.
        use_batch:
            ``True`` (default) answers the whole raster through the
            vectorised ``estimate_batch`` path; ``False`` forces the
            legacy per-tile scalar loop.  Both produce bit-identical
            rasters -- the flag exists for parity tests and benchmarks.
        """
        obs = self._obs
        trace = obs.new_trace() if obs is not None else None

        def span(name: str, **attrs):
            return trace.span(name, **attrs) if trace is not None else nullcontext()

        started = obs.clock() if obs is not None else 0.0
        with span("browse", relation=relation, rows=rows, cols=cols):
            with span("resolve"):
                region, field_name = resolve_browse_request(self._grid, region, relation)

            if use_batch:
                with span("build_batch"):
                    batch = browsing_tile_batch(region, rows, cols)
                with span("estimate", tier=self._batch.name):
                    estimates = self._batch.estimate_batch(batch)
                counts = np.asarray(
                    getattr(estimates, field_name), dtype=np.float64
                ).reshape(rows, cols)
            else:
                with span("estimate", tier=self._estimator.name, path="scalar"):
                    tiles = browsing_tiles(region, rows, cols)
                    counts = np.zeros((rows, cols), dtype=np.float64)
                    for r, row in enumerate(tiles):
                        for c, tile in enumerate(row):
                            estimate: Level2Counts = self._estimator.estimate(tile)
                            counts[r, c] = getattr(estimate, field_name)
        if obs is not None:
            elapsed = obs.clock() - started
            obs.requests.labels(service="plain", relation=relation).inc()
            obs.request_seconds.labels(service="plain").observe(elapsed)
            for stage_span in (trace.spans if trace is not None else ()):
                if stage_span.name in ("resolve", "build_batch", "estimate"):
                    obs.stage_seconds.labels(
                        service="plain", stage=stage_span.name
                    ).observe(stage_span.seconds)
            obs.tiles.labels(service="plain", outcome="answered").inc(rows * cols)
        return BrowseResult(
            region=region, relation=relation, counts=counts, telemetry=trace
        )
