"""A GeoBrowsing-style browsing service over the estimators.

The paper's motivating application (Section 1): a user selects a region,
grids it into rows x columns of tiles, picks a spatial relation
(*contains*, *contained* or *overlap*), and gets back per-tile counts to
render as a choropleth -- hundreds of trial queries in one interaction.

:class:`GeoBrowsingService` is that application built on the library's
public API: it owns a dataset summary (any Level-2 estimator) and turns a
``browse`` call into a count raster.  The exact evaluator plugs in the
same way, which is how the examples show estimate-vs-exact side by side.

Serving path: the raster's tile corners are materialised once as a
:class:`~repro.grid.tiles_math.TileQueryBatch` and the whole interaction
is answered through the estimator's vectorised ``estimate_batch`` -- a
constant number of numpy gathers regardless of ``rows x cols``.  The
original per-tile scalar loop is kept behind ``use_batch=False`` for
parity testing and for profiling the two paths against each other;
estimators without a native batch path are adapted transparently via
:func:`~repro.euler.base.as_batch_estimator`.

Two optional accelerations layer onto the batch path, both producing
bit-identical rasters:

- a :class:`~repro.cache.TileResultCache` (``cache=``) is probed once
  per raster -- one vectorised gather answers every previously-seen tile
  -- and only the miss-set reaches the estimator; results are keyed by
  the backing summary's identity *and generation*, so maintained
  histograms invalidate stale entries for free;
- a shard count (``num_shards=``) splits the miss-set into contiguous
  row bands dispatched through a
  :class:`~repro.parallel.executor.ParallelExecutor` -- thread bands by
  default (numpy kernels release the GIL, so shards overlap on
  multi-core hosts and band-blocking keeps the single-core case ahead
  too), or true process parallelism over shared-memory summaries via
  ``parallel="process"``/``"auto"`` (:mod:`repro.parallel`);
- a :class:`~repro.browse.delta.DeltaTracker` (``delta=``, or an explicit
  ``previous=`` hint per call) overlays *viewport deltas*: when the new
  raster is tile-compatible with the session's previous one (same
  scope/generation, same tile extents, lattice-aligned offset -- see
  :mod:`repro.browse.delta`), the overlapping tiles are copied from the
  previous result and only the fresh band reaches the cache/estimator
  path at all.
"""

from __future__ import annotations

import math
from contextlib import nullcontext
from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.browse.delta import DeltaPlan, DeltaSource, DeltaTracker, plan_delta
from repro.browse.sharding import batch_subset
from repro.cache import CacheKey, TileResultCache, backing_summary, summary_generation, summary_token
from repro.errors import InvalidRegionError
from repro.euler.base import Level2BatchEstimator, Level2Estimator, as_batch_estimator
from repro.euler.estimates import Level2Counts
from repro.geometry.rect import Rect
from repro.grid.grid import Grid
from repro.grid.tiles_math import TileQuery, aligned_query_cells
from repro.obs.instruments import BrowseInstrumentation
from repro.obs.trace import RequestTrace
from repro.parallel.executor import ParallelConfig, ParallelExecutor
from repro.workloads.tiles import (
    browsing_tile_batch,
    browsing_tile_batch_subset,
    browsing_tiles,
)

__all__ = ["GeoBrowsingService", "BrowseResult", "RELATION_FIELDS"]

#: Browsable relation name -> Level2Counts field.
RELATION_FIELDS: dict[str, str] = {
    "contains": "n_cs",
    "contained": "n_cd",
    "overlap": "n_o",
    "disjoint": "n_d",
    "intersect": "n_intersect",
}


@dataclass(frozen=True)
class BrowseResult:
    """One browsing interaction's result raster.

    ``counts[r, c]`` is the (possibly estimated) number of objects in the
    requested relation with tile ``(r, c)``; row 0 is the bottom row of the
    region.

    ``valid`` is the per-tile validity mask: ``None`` (the common case)
    means every tile was answered; a boolean array of the raster's shape
    marks tiles the resilient serving path could not answer before its
    deadline -- those ``counts`` entries are NaN.

    ``telemetry`` is the request's span trace when the answering service
    was instrumented (``None`` otherwise): per-stage timings, per-chunk
    estimator attempts and outcomes, readable via
    ``result.telemetry.render()``.  It is excluded from equality so
    result comparison stays about the raster.

    ``delta`` records the scope this raster was answered under (summary
    identity and generation, estimator, relation field) plus which tiles
    are safe to copy, enabling :mod:`repro.browse.delta` reuse when the
    result is passed back as the ``previous=`` hint of a later browse.
    Like ``telemetry`` it is excluded from equality.

    ``levels`` and ``error_bound`` are the pyramid-refinement annotation
    (:mod:`repro.browse.refine`): per tile, the pyramid level that
    answered it (``-1`` = authoritative full-resolution answer) and an
    upper bound on how far the broadcast coarse count can sit from the
    tile's full-resolution estimate.  ``None`` -- the common case -- means
    no tile was pyramid-served.  Excluded from equality like the other
    serving metadata.
    """

    region: TileQuery
    relation: str
    counts: np.ndarray
    valid: np.ndarray | None = field(default=None)
    telemetry: RequestTrace | None = field(default=None, compare=False, repr=False)
    delta: DeltaSource | None = field(default=None, compare=False, repr=False)
    levels: np.ndarray | None = field(default=None, compare=False, repr=False)
    error_bound: np.ndarray | None = field(default=None, compare=False, repr=False)

    @property
    def rows(self) -> int:
        """Number of tile rows in the raster."""
        return self.counts.shape[0]

    @property
    def cols(self) -> int:
        """Number of tile columns in the raster."""
        return self.counts.shape[1]

    @cached_property
    def tiles(self) -> list[list[TileQuery]]:
        """The per-tile queries behind the raster, ``tiles[r][c]``
        matching ``counts[r, c]``.  Derived lazily from the region and the
        raster shape so the batch serving path never pays for building
        ``rows x cols`` Python objects unless a client drills down."""
        return browsing_tiles(self.region, self.rows, self.cols)

    @property
    def total(self) -> float:
        """Sum of the raster's counts."""
        return float(self.counts.sum())

    @property
    def is_complete(self) -> bool:
        """Whether every tile of the raster was answered."""
        return self.valid is None or bool(self.valid.all())

    @property
    def full_resolution(self) -> bool:
        """Whether every answered tile carries its full-resolution count
        (``True`` for rasters untouched by pyramid refinement).  A
        complete raster can still be coarse: under a tight deadline the
        resilient service answers every tile from a coarse pyramid level,
        giving ``is_complete`` without ``full_resolution``."""
        return self.levels is None or bool((self.levels < 0).all())

    @property
    def valid_fraction(self) -> float:
        """Fraction of tiles answered (1.0 for a complete raster)."""
        if self.valid is None:
            return 1.0
        return float(self.valid.mean()) if self.valid.size else 1.0

    def render_ascii(self, *, width: int = 4) -> str:
        """A terminal-friendly rendering of the raster (top row first),
        for the examples: rounded counts, right-aligned columns.  Tiles
        whose count is non-finite (NaN from a missed deadline, or
        corruption upstream) render as ``"?"`` instead of crashing
        ``int(round())``.

        ``width`` is a *minimum* column width: when any rendered count
        needs more characters, every column expands to the widest cell,
        so the raster always stays grid-aligned (a too-small ``width``
        used to misalign only the wide columns).
        """
        cells = [
            ["?" if not math.isfinite(v) else str(int(round(v))) for v in self.counts[r]]
            for r in range(self.rows - 1, -1, -1)
        ]
        cell_width = max(
            [width] + [len(cell) for row in cells for cell in row]
        )
        return "\n".join(
            " ".join(cell.rjust(cell_width) for cell in row) for row in cells
        )


def resolve_browse_request(
    grid: Grid, region: Rect | TileQuery, relation: str
) -> tuple[TileQuery, str]:
    """Validate one browse request against ``grid``.

    Returns the region as a cell span plus the
    :class:`~repro.euler.estimates.Level2Counts` field backing
    ``relation``.  Every way the request can be malformed -- unknown
    relation, misaligned or out-of-space world rectangle, span exceeding
    the grid -- raises :class:`~repro.errors.InvalidRegionError` (a
    ``ValueError`` subclass, so pre-taxonomy callers keep working).
    """
    if relation not in RELATION_FIELDS:
        raise InvalidRegionError(
            f"unknown relation {relation!r}; expected one of {sorted(RELATION_FIELDS)}"
        )
    if isinstance(region, Rect):
        try:
            region = aligned_query_cells(grid, region)
        except ValueError as exc:
            raise InvalidRegionError(str(exc)) from exc
    try:
        region.validate_against(grid)
    except ValueError as exc:
        raise InvalidRegionError(str(exc)) from exc
    return region, RELATION_FIELDS[relation]


class GeoBrowsingService:
    """Browse a dataset summary with tiled relation queries.

    Pass a :class:`~repro.obs.instruments.BrowseInstrumentation` as
    ``instruments`` to record request counts, per-stage timings and tile
    outcomes, and to get a span trace on every result's ``telemetry``;
    the default ``None`` keeps the fast path uninstrumented.

    Pass a :class:`~repro.cache.TileResultCache` as ``cache`` to reuse
    tile counts across requests (hit/miss counts are recorded when
    instrumented), ``num_shards > 1`` to execute large rasters as
    row-band shards on a thread pool, and a
    :class:`~repro.browse.delta.DeltaTracker` as ``delta`` to answer each
    session's overlapping tiles by copying them from the session's
    previous raster.  All default off, leaving the single-batch fast path
    untouched; all are exact -- cached, sharded, delta-assembled and
    plain rasters are bit-identical.
    """

    def __init__(
        self,
        estimator: Level2Estimator,
        grid: Grid,
        *,
        instruments: BrowseInstrumentation | None = None,
        cache: TileResultCache | None = None,
        num_shards: int = 1,
        delta: DeltaTracker | None = None,
        parallel: ParallelConfig | str | None = None,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        self._estimator = estimator
        self._batch: Level2BatchEstimator = as_batch_estimator(estimator)
        self._grid = grid
        self._obs = instruments
        self._cache = cache
        self._delta = delta
        self._summary = backing_summary(estimator)
        self._summary_token = summary_token(self._summary)
        # ``parallel`` selects the shard execution strategy ("thread",
        # "process", "auto" or a full ParallelConfig); the default thread
        # mode reproduces the pre-executor behaviour exactly.
        if num_shards > 1 or parallel is not None:
            self._parallel: ParallelExecutor | None = ParallelExecutor(
                estimator,
                parallel,
                num_shards=num_shards,
                instruments=instruments,
                service="plain",
            )
        else:
            self._parallel = None

    @property
    def grid(self) -> Grid:
        """The service's evaluation grid."""
        return self._grid

    @property
    def estimator_name(self) -> str:
        """The backing estimator's label."""
        return self._estimator.name

    @property
    def cache(self) -> TileResultCache | None:
        """The tile-result cache, when one was configured."""
        return self._cache

    @property
    def num_shards(self) -> int:
        """Requested raster fan-out (1 = monolithic batches)."""
        return self._parallel.num_shards if self._parallel is not None else 1

    @property
    def parallel_executor(self) -> ParallelExecutor | None:
        """The shard-execution router, when sharding is configured."""
        return self._parallel

    @property
    def delta(self) -> DeltaTracker | None:
        """The viewport-delta tracker, when one was configured."""
        return self._delta

    def cache_key(self, field_name: str) -> CacheKey:
        """The cache key scoping this service's answers for one relation
        field: the backing summary's identity token and *current*
        generation plus the estimator's label."""
        return CacheKey(
            summary_id=self._summary_token,
            generation=summary_generation(self._summary),
            estimator_key=self._batch.name,
            field=field_name,
        )

    def close(self) -> None:
        """Release the shard pools (threads and, when process
        parallelism is configured, worker processes plus their shared
        segments; no-op when unsharded)."""
        if self._parallel is not None:
            self._parallel.close()

    def browse(
        self,
        region: Rect | TileQuery,
        rows: int,
        cols: int,
        relation: str = "overlap",
        *,
        use_batch: bool = True,
        previous: BrowseResult | None = None,
        session: str = "default",
    ) -> BrowseResult:
        """Run one browsing interaction.

        Parameters
        ----------
        region:
            The selected region, either as a world rectangle (must be
            grid-aligned) or directly as a cell span.
        rows, cols:
            The tile partitioning the user requested.
        relation:
            One of ``contains``, ``contained``, ``overlap``, ``disjoint``,
            ``intersect``.
        use_batch:
            ``True`` (default) answers the whole raster through the
            vectorised ``estimate_batch`` path; ``False`` forces the
            legacy per-tile scalar loop.  Both produce bit-identical
            rasters -- the flag exists for parity tests and benchmarks.
        previous:
            An explicit viewport-delta hint: a result whose overlapping
            tiles are copied when it is tile-compatible with this request
            (see :mod:`repro.browse.delta`).  Overrides the tracker.
        session:
            The session key under the service's
            :class:`~repro.browse.delta.DeltaTracker` (when one is
            configured): the session's last raster is the implicit
            ``previous``, and this result replaces it.  Delta reuse rides
            the batch path only; ``use_batch=False`` always recomputes.
        """
        obs = self._obs
        trace = obs.new_trace() if obs is not None else None

        def span(name: str, **attrs):
            return trace.span(name, **attrs) if trace is not None else nullcontext()

        started = obs.clock() if obs is not None else 0.0
        with span("browse", relation=relation, rows=rows, cols=cols):
            with span("resolve"):
                region, field_name = resolve_browse_request(self._grid, region, relation)
            scope = self.cache_key(field_name)

            if use_batch:
                candidate = previous
                if candidate is None and self._delta is not None:
                    candidate = self._delta.lookup(session)
                plan: DeltaPlan | None = None
                if candidate is not None:
                    plan = plan_delta(candidate, region, rows, cols, scope)
                if plan is not None:
                    # Copy the overlap and build tile queries for the
                    # fresh band only -- never materialise the full batch
                    # for tiles answered from the previous raster.
                    with span("delta_fill", tiles=plan.n_reused):
                        counts_flat = np.empty(rows * cols, dtype=np.float64)
                        plan.fill(counts_flat, candidate.counts)
                    fresh = np.flatnonzero(~plan.reused)
                    if fresh.size:
                        with span("build_batch"):
                            fresh_batch = browsing_tile_batch_subset(
                                region, rows, cols, fresh
                            )
                        counts_flat[fresh] = self._answer_batch(
                            fresh_batch, field_name, span
                        )
                    counts = counts_flat.reshape(rows, cols)
                else:
                    with span("build_batch"):
                        batch = browsing_tile_batch(region, rows, cols)
                    counts = self._answer_batch(batch, field_name, span).reshape(rows, cols)
                if obs is not None and (previous is not None or self._delta is not None):
                    if plan is not None:
                        outcome = "reused"
                        obs.delta_tiles_reused.labels(service="plain").inc(plan.n_reused)
                    else:
                        outcome = "incompatible" if candidate is not None else "cold"
                    obs.delta_rasters.labels(service="plain", outcome=outcome).inc()
            else:
                with span("estimate", tier=self._estimator.name, path="scalar"):
                    tiles = browsing_tiles(region, rows, cols)
                    counts = np.zeros((rows, cols), dtype=np.float64)
                    for r, row in enumerate(tiles):
                        for c, tile in enumerate(row):
                            estimate: Level2Counts = self._estimator.estimate(tile)
                            counts[r, c] = getattr(estimate, field_name)
        if obs is not None:
            elapsed = obs.clock() - started
            obs.requests.labels(service="plain", relation=relation).inc()
            obs.request_seconds.labels(service="plain").observe(elapsed)
            for stage_span in (trace.spans if trace is not None else ()):
                if stage_span.name in (
                    "resolve", "build_batch", "cache_probe", "delta_fill", "estimate"
                ):
                    obs.stage_seconds.labels(
                        service="plain", stage=stage_span.name
                    ).observe(stage_span.seconds)
            obs.tiles.labels(service="plain", outcome="answered").inc(rows * cols)
        result = BrowseResult(
            region=region,
            relation=relation,
            counts=counts,
            telemetry=trace,
            delta=DeltaSource(scope=scope),
        )
        if self._delta is not None:
            self._delta.remember(session, result)
        return result

    # ------------------------------------------------------------------ #
    # batch execution (cache probe + sharded estimation)
    # ------------------------------------------------------------------ #

    def _answer_batch(self, batch, field_name: str, span) -> np.ndarray:
        """Answer one raster batch: probe the cache (one gather for all
        hits), estimate only the miss-set -- sharded when configured --
        and back-fill the cache.  Bit-identical to a monolithic
        ``estimate_batch`` because every tile's value is the same
        elementwise arithmetic either way."""
        obs = self._obs
        cache = self._cache
        if cache is None:
            with span("estimate", tier=self._batch.name):
                return self._estimate_field(batch, field_name)
        key = self.cache_key(field_name)
        with span("cache_probe"):
            values, hit = cache.probe(key, batch)
        n_miss = len(batch) - int(np.count_nonzero(hit))
        if obs is not None:
            obs.cache_hits.labels(service="plain").inc(len(batch) - n_miss)
            obs.cache_misses.labels(service="plain").inc(n_miss)
        if n_miss == 0:
            return values
        miss_mask = ~hit
        miss_batch = batch_subset(batch, miss_mask)
        with span("estimate", tier=self._batch.name, tiles=n_miss):
            miss_values = self._estimate_field(miss_batch, field_name)
        cache.store(key, miss_batch, miss_values)
        values[miss_mask] = miss_values
        return values

    def _estimate_field(self, batch, field_name: str) -> np.ndarray:
        """The requested field's counts for ``batch``, routed through
        the parallel executor when sharding is configured (thread bands,
        process workers or the auto policy -- all bit-identical to the
        monolithic batch)."""
        if self._parallel is not None:
            return self._parallel.estimate_field(batch, field_name)
        estimates = self._batch.estimate_batch(batch)
        return np.asarray(getattr(estimates, field_name), dtype=np.float64)
