"""A GeoBrowsing-style browsing service over the estimators.

The paper's motivating application (Section 1): a user selects a region,
grids it into rows x columns of tiles, picks a spatial relation
(*contains*, *contained* or *overlap*), and gets back per-tile counts to
render as a choropleth -- hundreds of trial queries in one interaction.

:class:`GeoBrowsingService` is that application built on the library's
public API: it owns a dataset summary (any Level-2 estimator) and turns a
``browse`` call into a count raster.  The exact evaluator plugs in the
same way, which is how the examples show estimate-vs-exact side by side.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.euler.base import Level2Estimator
from repro.euler.estimates import Level2Counts
from repro.geometry.rect import Rect
from repro.grid.grid import Grid
from repro.grid.tiles_math import TileQuery, aligned_query_cells
from repro.workloads.tiles import browsing_tiles

__all__ = ["GeoBrowsingService", "BrowseResult", "RELATION_FIELDS"]

#: Browsable relation name -> Level2Counts field.
RELATION_FIELDS: dict[str, str] = {
    "contains": "n_cs",
    "contained": "n_cd",
    "overlap": "n_o",
    "disjoint": "n_d",
    "intersect": "n_intersect",
}


@dataclass(frozen=True)
class BrowseResult:
    """One browsing interaction's result raster.

    ``counts[r, c]`` is the (possibly estimated) number of objects in the
    requested relation with tile ``(r, c)``; row 0 is the bottom row of the
    region.
    """

    region: TileQuery
    relation: str
    counts: np.ndarray
    tiles: list[list[TileQuery]]

    @property
    def rows(self) -> int:
        return self.counts.shape[0]

    @property
    def cols(self) -> int:
        return self.counts.shape[1]

    @property
    def total(self) -> float:
        return float(self.counts.sum())

    def render_ascii(self, *, width: int = 4) -> str:
        """A terminal-friendly rendering of the raster (top row first),
        for the examples: rounded counts, right-aligned columns."""
        lines = []
        for r in range(self.rows - 1, -1, -1):
            lines.append(
                " ".join(f"{int(round(v)):>{width}d}" for v in self.counts[r])
            )
        return "\n".join(lines)


class GeoBrowsingService:
    """Browse a dataset summary with tiled relation queries."""

    def __init__(self, estimator: Level2Estimator, grid: Grid) -> None:
        self._estimator = estimator
        self._grid = grid

    @property
    def grid(self) -> Grid:
        return self._grid

    @property
    def estimator_name(self) -> str:
        return self._estimator.name

    def browse(
        self, region: Rect | TileQuery, rows: int, cols: int, relation: str = "overlap"
    ) -> BrowseResult:
        """Run one browsing interaction.

        Parameters
        ----------
        region:
            The selected region, either as a world rectangle (must be
            grid-aligned) or directly as a cell span.
        rows, cols:
            The tile partitioning the user requested.
        relation:
            One of ``contains``, ``contained``, ``overlap``, ``disjoint``,
            ``intersect``.
        """
        if relation not in RELATION_FIELDS:
            raise ValueError(
                f"unknown relation {relation!r}; expected one of {sorted(RELATION_FIELDS)}"
            )
        if isinstance(region, Rect):
            region = aligned_query_cells(self._grid, region)
        region.validate_against(self._grid)

        tiles = browsing_tiles(region, rows, cols)
        counts = np.zeros((rows, cols), dtype=np.float64)
        field = RELATION_FIELDS[relation]
        for r, row in enumerate(tiles):
            for c, tile in enumerate(row):
                estimate: Level2Counts = self._estimator.estimate(tile)
                counts[r, c] = getattr(estimate, field)
        return BrowseResult(region=region, relation=relation, counts=counts, tiles=tiles)
