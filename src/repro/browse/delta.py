"""Incremental viewport deltas: reuse overlapping tiles across interactions.

A browsing *session* (Figure 1's loop) is a sequence of rasters whose
viewports overlap heavily: the user pans by a few tile rows, re-tiles the
same region, or bounces back to a previous view.  Recomputing every tile
of every raster throws that overlap away; the tile cache (PR 4) recovers
exact tile revisits but still pays a probe-and-merge round trip through
the shared cache for what is, per session, a purely local phenomenon --
*this* raster is almost the same as *the previous one*.

This module answers the overlap directly.  Given the previous
:class:`~repro.browse.service.BrowseResult` and a new request, it decides
whether the two rasters are **tile-compatible** and, when they are, maps
every new tile that coincides with a previously answered tile onto its
source so the service can copy those counts and estimate only the fresh
band.  The predicate is deliberately strict -- reuse must be *bit
identical* to full recomputation, never approximate:

- **Same answering scope.**  The previous raster must have been answered
  by the same estimator over the same summary object *at the same
  generation* and for the same relation field.  The scope rides on every
  result as a :class:`~repro.cache.CacheKey` (``BrowseResult.delta``), so
  a maintained histogram's insert/delete bumps the generation and
  disables reuse -- stale counts are never copied, exactly like the tile
  cache's generation invalidation.
- **Same tile extents in cell units.**  Both rasters' tiles must span
  ``tile_w x tile_h`` cells.  Counts of coarser or finer tiles cannot be
  derived from each other (the Level-2 relations are not additive over
  tile unions), so only identical tile geometry is ever reused.
- **Lattice-aligned offset.**  The new region's origin must differ from
  the previous one by whole tiles (``k * tile_w`` / ``k * tile_h``
  cells).  Then new tile ``(r, c)`` occupies exactly the cells of
  previous tile ``(r + dr, c + dc)`` -- the same :class:`TileQuery` --
  and a deterministic estimator gives it the same count by definition.

Tiles outside the overlap, tiles the previous raster never answered
(deadline NaNs) and tiles answered by a degraded fallback tier are
excluded from the mapping; they fall through to the normal serving path
(cache probe, then estimation).

:class:`DeltaTracker` is the per-service memory that makes this
hands-free: it remembers the last result per *session key* so a service
can answer ``browse(..., session="user-42")`` incrementally without the
client threading results back in.  An explicit ``previous=`` hint
overrides the tracker, for clients that manage their own history.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.cache.keys import CacheKey
from repro.grid.tiles_math import TileQuery

__all__ = ["DeltaPlan", "DeltaSource", "DeltaTracker", "plan_delta"]


@dataclass(frozen=True)
class DeltaSource:
    """What makes a result's tiles reusable by a later raster.

    ``scope`` is the answering scope (summary identity *and generation*,
    estimator label, relation field) -- the same quadruple the tile cache
    keys on.  ``reusable`` optionally restricts reuse to a subset of the
    raster's tiles: the resilient service marks tiles answered by a
    degraded fallback tier non-reusable, because delta reuse must stay
    bit-identical to what the *primary* path would answer.  ``None``
    means every finite tile may be copied.
    """

    scope: CacheKey
    reusable: np.ndarray | None = None


@dataclass(frozen=True)
class DeltaPlan:
    """The tile mapping from a previous raster onto a new one.

    ``reused`` is the new raster's flat (row-major) boolean mask of tiles
    answerable by copying.  Two copy representations exist:

    - ``block`` (the common case -- every overlapping tile of the
      previous raster is reusable): the overlap is one contiguous
      rectangle, recorded as ``(r0, r1, c0, c1, dr, dc)`` -- new raster
      rows ``r0:r1`` x cols ``c0:c1`` copy from the previous raster
      shifted by ``(dr, dc)``.  :meth:`fill` is then two strided slice
      views and one memcpy, no index arrays.
    - ``source`` (set when reuse is restricted to a tile subset, e.g.
      fallback-degraded tiles of a resilient raster): for each flat
      position the flat index of the matching previous tile, applied by
      fancy indexing where ``reused`` is ``True``.
    """

    shape: tuple[int, int]
    reused: np.ndarray
    source: np.ndarray | None = None
    block: tuple[int, int, int, int, int, int] | None = None

    @property
    def n_reused(self) -> int:
        """Number of tiles the plan copies from the previous raster."""
        if self.block is not None:
            r0, r1, c0, c1, _, _ = self.block
            return (r1 - r0) * (c1 - c0)
        return int(np.count_nonzero(self.reused))

    def fill(self, counts_flat: np.ndarray, previous_counts: np.ndarray) -> None:
        """Copy the reused tiles' counts out of ``previous_counts`` (the
        previous raster, 2-D) into the new flat counts array."""
        if self.block is not None:
            r0, r1, c0, c1, dr, dc = self.block
            counts_flat.reshape(self.shape)[r0:r1, c0:c1] = previous_counts[
                r0 + dr : r1 + dr, c0 + dc : c1 + dc
            ]
        else:
            counts_flat[self.reused] = previous_counts.reshape(-1)[
                self.source[self.reused]
            ]


def _tile_extent(region: TileQuery, rows: int, cols: int) -> tuple[int, int] | None:
    """The raster's per-tile cell extent, or ``None`` when the partition
    does not divide the region (the batch builder raises for those)."""
    if rows < 1 or cols < 1 or region.width % cols or region.height % rows:
        return None
    return region.width // cols, region.height // rows


def plan_delta(
    previous,
    region: TileQuery,
    rows: int,
    cols: int,
    scope: CacheKey,
) -> DeltaPlan | None:
    """Plan tile reuse from ``previous`` (a ``BrowseResult``) for a new
    ``rows x cols`` raster over ``region`` answered under ``scope``.

    Returns ``None`` when the rasters are not tile-compatible (different
    scope, tile extents or a misaligned offset) or when no previously
    answered tile lands inside the new raster; otherwise the
    :class:`DeltaPlan` mapping every reusable tile to its source.
    """
    source_info: DeltaSource | None = getattr(previous, "delta", None)
    if source_info is None or source_info.scope != scope:
        return None
    extent = _tile_extent(region, rows, cols)
    prev_rows, prev_cols = previous.counts.shape
    prev_extent = _tile_extent(previous.region, prev_rows, prev_cols)
    if extent is None or prev_extent is None or extent != prev_extent:
        return None
    tile_w, tile_h = extent
    dx_cells = region.qx_lo - previous.region.qx_lo
    dy_cells = region.qy_lo - previous.region.qy_lo
    if dx_cells % tile_w or dy_cells % tile_h:
        return None

    # New tile (r, c) covers the cells of previous tile (r + dr, c + dc);
    # the tiles with an in-bounds source form one contiguous rectangle.
    dr = dy_cells // tile_h
    dc = dx_cells // tile_w
    r0, r1 = max(0, -dr), min(rows, prev_rows - dr)
    c0, c1 = max(0, -dc), min(cols, prev_cols - dc)
    if r0 >= r1 or c0 >= c1:
        return None

    # Only copy tiles the previous raster actually answered: finite
    # counts, marked valid, and (when restricted) answered by a path
    # whose values the primary would reproduce.  When nothing restricts
    # the previous raster, the whole overlap rectangle is reusable and
    # the plan is a pure block copy -- no per-tile index arrays.
    if (
        previous.valid is None
        and source_info.reusable is None
        and bool(np.isfinite(previous.counts).all())
    ):
        reused = np.zeros((rows, cols), dtype=bool)
        reused[r0:r1, c0:c1] = True
        return DeltaPlan(
            shape=(rows, cols),
            reused=reused.reshape(-1),
            block=(r0, r1, c0, c1, dr, dc),
        )

    src_r = np.arange(rows, dtype=np.intp) + dr
    src_c = np.arange(cols, dtype=np.intp) + dc
    reused = np.logical_and.outer(
        (src_r >= 0) & (src_r < prev_rows), (src_c >= 0) & (src_c < prev_cols)
    )
    source = (
        np.clip(src_r, 0, prev_rows - 1)[:, None] * prev_cols
        + np.clip(src_c, 0, prev_cols - 1)[None, :]
    )
    answered = np.isfinite(previous.counts.reshape(-1))
    if previous.valid is not None:
        answered &= previous.valid.reshape(-1)
    if source_info.reusable is not None:
        answered &= source_info.reusable.reshape(-1)
    reused &= answered[source]
    if not reused.any():
        return None
    return DeltaPlan(
        shape=(rows, cols), reused=reused.reshape(-1), source=source.reshape(-1)
    )


class DeltaTracker:
    """Thread-safe per-session memory of the last answered raster.

    A browsing service holding a tracker remembers each session's most
    recent :class:`~repro.browse.service.BrowseResult` and plans delta
    reuse against it on the session's next request.  Sessions are
    LRU-bounded: once ``max_sessions`` distinct keys are live, the least
    recently touched session's history is dropped (its next request is
    simply answered cold).
    """

    def __init__(self, max_sessions: int = 256) -> None:
        if max_sessions < 1:
            raise ValueError("max_sessions must be at least 1")
        self._max_sessions = max_sessions
        self._lock = threading.Lock()
        self._last: OrderedDict[str, object] = OrderedDict()

    def __len__(self) -> int:
        """Number of sessions with a remembered raster."""
        with self._lock:
            return len(self._last)

    def lookup(self, session: str):
        """The session's last result (refreshing its LRU slot), or
        ``None`` for a new or evicted session."""
        with self._lock:
            result = self._last.get(session)
            if result is not None:
                self._last.move_to_end(session)
            return result

    def remember(self, session: str, result) -> None:
        """Record the session's newest result, evicting the least
        recently used session over the bound."""
        with self._lock:
            self._last[session] = result
            self._last.move_to_end(session)
            while len(self._last) > self._max_sessions:
                self._last.popitem(last=False)

    def forget(self, session: str) -> None:
        """Drop one session's history (no-op when absent)."""
        with self._lock:
            self._last.pop(session, None)

    def clear(self) -> None:
        """Drop every session's history."""
        with self._lock:
            self._last.clear()
