"""The GeoBrowsing-style service facade, attribute catalog and the
resilient serving layer."""

from repro.browse.catalog import AttributeCatalog, SummedEstimator, ZoneScatterGatherSummary
from repro.browse.delta import DeltaPlan, DeltaSource, DeltaTracker, plan_delta
from repro.browse.refine import PyramidSource, RefinementStep
from repro.browse.resilience import (
    CircuitBreaker,
    EstimatorTier,
    FallbackChain,
    ResilientBrowsingService,
    RetryPolicy,
)
from repro.browse.service import (
    BrowseResult,
    GeoBrowsingService,
    resolve_browse_request,
)
from repro.browse.sharding import ShardPool, band_slices, batch_subset

__all__ = [
    "GeoBrowsingService",
    "BrowseResult",
    "AttributeCatalog",
    "SummedEstimator",
    "ZoneScatterGatherSummary",
    "ResilientBrowsingService",
    "FallbackChain",
    "CircuitBreaker",
    "EstimatorTier",
    "RetryPolicy",
    "resolve_browse_request",
    "ShardPool",
    "band_slices",
    "batch_subset",
    "DeltaPlan",
    "DeltaSource",
    "DeltaTracker",
    "plan_delta",
    "PyramidSource",
    "RefinementStep",
]
