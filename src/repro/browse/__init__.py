"""The GeoBrowsing-style service facade and attribute catalog."""

from repro.browse.catalog import AttributeCatalog, SummedEstimator
from repro.browse.service import BrowseResult, GeoBrowsingService

__all__ = ["GeoBrowsingService", "BrowseResult", "AttributeCatalog", "SummedEstimator"]
