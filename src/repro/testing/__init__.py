"""Deterministic test doubles for the serving stack."""

from repro.testing.faults import (
    FaultSchedule,
    FaultyBatchEstimator,
    FaultyEstimator,
    InjectedFault,
)

__all__ = ["FaultSchedule", "FaultyBatchEstimator", "FaultyEstimator", "InjectedFault"]
