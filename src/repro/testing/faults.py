"""Deterministic fault injection for resilience testing.

The resilience layer (:mod:`repro.browse.resilience`) promises specific
degradation behaviour -- fallback after failures, breakers tripping after
K consecutive errors, NaN corruption never reaching a client.  Those
promises are only testable against an estimator that fails *on cue*:
:class:`FaultyEstimator` wraps any real estimator and injects exceptions,
latency and NaN-corrupted counts according to a :class:`FaultSchedule`,
either scripted call-by-call or drawn from a seeded RNG.  Everything is
deterministic given the schedule, so the test suite exercises every
degradation path end to end without flakes or real sleeps (latency is
"injected" through a caller-supplied ``sleep``/clock-advancing hook).

This module lives in the library (not under ``tests/``) on purpose:
operators staging a deployment can wrap production estimators the same
way to rehearse failure drills.
"""

from __future__ import annotations

import math
import os
import threading
import time
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.euler.base import Level2BatchEstimator, Level2Estimator, as_batch_estimator
from repro.euler.estimates import Level2Counts, Level2CountsBatch
from repro.grid.tiles_math import TileQuery, TileQueryBatch

__all__ = [
    "FaultSchedule",
    "FaultyBatchEstimator",
    "FaultyEstimator",
    "InjectedFault",
    "WorkerCrashSpec",
    "WorkerLatencySpec",
]

#: The fault kinds a schedule can emit.
FAULT_KINDS = ("none", "error", "latency", "nan")


class InjectedFault(RuntimeError):
    """The transient failure :class:`FaultyEstimator` raises on cue."""


class FaultSchedule:
    """Decides, deterministically, which fault each successive call gets.

    Two modes:

    - **Scripted**: pass ``script=("error", "none", "nan", ...)``; faults
      are consumed in order, then ``"none"`` forever (or cycled with
      ``cycle=True``).  Tests use this for exact choreography.
    - **Seeded**: pass per-kind rates; each call draws once from a
      ``numpy`` generator seeded with ``seed``, so a given seed always
      produces the same fault sequence.

    ``latency`` is the injected delay in seconds for ``"latency"``
    faults.  The schedule also owns the RNG used to pick *which* batch
    entries a ``"nan"`` fault corrupts (:meth:`corrupt_mask`), keeping
    the whole fault stream reproducible from one seed.

    The cursor and RNG are lock-guarded, so one schedule can drive an
    estimator shared across shard threads: the *set* of faults drawn is
    still the scripted/seeded sequence, though which thread receives
    which fault depends on scheduling.
    """

    def __init__(
        self,
        *,
        script: Sequence[str] | None = None,
        cycle: bool = False,
        seed: int = 0,
        error_rate: float = 0.0,
        latency_rate: float = 0.0,
        nan_rate: float = 0.0,
        latency: float = 0.05,
    ) -> None:
        if script is not None:
            unknown = sorted(set(script) - set(FAULT_KINDS))
            if unknown:
                raise ValueError(f"unknown fault kind(s) {unknown}; expected {FAULT_KINDS}")
        for name, rate in (
            ("error_rate", error_rate),
            ("latency_rate", latency_rate),
            ("nan_rate", nan_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if error_rate + latency_rate + nan_rate > 1.0:
            raise ValueError("fault rates must sum to at most 1")
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self._script = list(script) if script is not None else None
        self._cycle = cycle
        self._cursor = 0
        self._rates = (error_rate, latency_rate, nan_rate)
        self._rng = np.random.default_rng(seed)
        self._lock = threading.Lock()
        #: Injected delay, in seconds, for ``"latency"`` faults.
        self.latency = latency

    def next_fault(self) -> str:
        """The fault kind for the next call (one of :data:`FAULT_KINDS`)."""
        with self._lock:
            if self._script is not None:
                if self._cursor >= len(self._script):
                    if not self._cycle or not self._script:
                        return "none"
                    self._cursor = 0
                fault = self._script[self._cursor]
                self._cursor += 1
                return fault
            draw = float(self._rng.random())
        error_rate, latency_rate, nan_rate = self._rates
        if draw < error_rate:
            return "error"
        if draw < error_rate + latency_rate:
            return "latency"
        if draw < error_rate + latency_rate + nan_rate:
            return "nan"
        return "none"

    def corrupt_mask(self, n: int) -> np.ndarray:
        """A boolean mask choosing which of ``n`` batch entries a
        ``"nan"`` fault corrupts -- always at least one entry."""
        if n < 1:
            return np.zeros(0, dtype=bool)
        with self._lock:
            mask = self._rng.random(n) < 0.5
            if not mask.any():
                mask[int(self._rng.integers(n))] = True
        return mask


class FaultyEstimator:
    """A scalar estimator wrapper that injects faults on schedule.

    Wraps any :class:`~repro.euler.base.Level2Estimator`; each
    ``estimate`` call first consults the schedule:

    - ``"error"``: raises :class:`InjectedFault` (the wrapped estimator
      is never called);
    - ``"latency"``: calls ``sleep(schedule.latency)`` -- pass a fake
      that advances a test clock -- then answers normally;
    - ``"nan"``: answers, then corrupts every count to NaN;
    - ``"none"``: transparent passthrough.

    ``calls`` and the per-kind ``injected`` counters let tests assert
    exactly what was exercised.
    """

    def __init__(
        self,
        estimator: Level2Estimator,
        schedule: FaultSchedule,
        *,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self._inner = estimator
        self._schedule = schedule
        self._sleep = sleep
        self._counter_lock = threading.Lock()
        #: Total estimate calls received (batch calls count once).
        self.calls = 0
        #: Faults injected so far, keyed by kind.
        self.injected = {"error": 0, "latency": 0, "nan": 0}

    @property
    def name(self) -> str:
        """The wrapped estimator's label, marked as faulty."""
        return f"Faulty({self._inner.name})"

    @property
    def wrapped(self) -> Level2Estimator:
        """The estimator being wrapped."""
        return self._inner

    def _begin_call(self) -> str:
        """Advance the schedule, bump counters, apply error/latency."""
        with self._counter_lock:
            self.calls += 1
            call_number = self.calls
        fault = self._schedule.next_fault()
        if fault == "error":
            self._note_injected("error")
            raise InjectedFault(
                f"injected failure on call {call_number} of {self.name}"
            )
        if fault == "latency":
            self._note_injected("latency")
            self._sleep(self._schedule.latency)
        return fault

    def _note_injected(self, kind: str) -> None:
        """Count one injected fault (thread-safe)."""
        with self._counter_lock:
            self.injected[kind] += 1

    def estimate(self, query: TileQuery) -> Level2Counts:
        """Answer one query, subject to the schedule's next fault."""
        fault = self._begin_call()
        counts = self._inner.estimate(query)
        if fault == "nan":
            self._note_injected("nan")
            return Level2Counts(math.nan, math.nan, math.nan, math.nan)
        return counts


class FaultyBatchEstimator(FaultyEstimator):
    """A batch-capable :class:`FaultyEstimator`.

    ``estimate_batch`` draws **one** fault per batch call (a chunk is the
    serving layer's unit of failure); a ``"nan"`` fault corrupts a
    seeded subset of the batch entries via
    :meth:`FaultSchedule.corrupt_mask`, modelling partial corruption
    rather than a wholly-poisoned answer.
    """

    def __init__(
        self,
        estimator: Level2Estimator,
        schedule: FaultSchedule,
        *,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        super().__init__(estimator, schedule, sleep=sleep)
        self._inner_batch: Level2BatchEstimator = as_batch_estimator(estimator)

    def estimate_batch(self, queries: TileQueryBatch) -> Level2CountsBatch:
        """Answer a whole batch, subject to one scheduled fault."""
        fault = self._begin_call()
        counts = self._inner_batch.estimate_batch(queries)
        if fault == "nan":
            self._note_injected("nan")
            mask = self._schedule.corrupt_mask(len(queries))
            corrupted = {}
            for field_name in ("n_d", "n_cs", "n_cd", "n_o"):
                column = np.array(getattr(counts, field_name), dtype=np.float64)
                column[mask] = np.nan
                corrupted[field_name] = column
            return Level2CountsBatch(**corrupted)
        return counts


# --------------------------------------------------------------------- #
# process-pool fault specs
# --------------------------------------------------------------------- #
#
# The :class:`~repro.parallel.pool.ProcessShardPool` accepts a
# ``spec_transform`` hook that rewrites the exported estimator spec
# before workers receive it.  These wrapper specs ride that hook: they
# pickle into real worker processes (spec classes only need to be
# importable, and this module is part of the library) and misbehave on
# the *worker* side, which is the only honest way to drive the pool's
# crash-detection, respawn and inline-fallback machinery.


class _CrashingEstimator:
    """Worker-side proxy that hard-kills the process on the N-th batch.

    ``os._exit`` on purpose: a Python exception would surface through
    the worker loop's orderly ``("error", ...)`` reply, which is a
    *different* failure mode than the process-death path under test.
    """

    def __init__(self, inner, crash_on_call: int) -> None:
        self._inner = as_batch_estimator(inner)
        self._crash_on_call = crash_on_call
        self._calls = 0

    @property
    def name(self) -> str:
        return f"Crashing({self._inner.name})"

    def estimate(self, query: TileQuery) -> Level2Counts:
        return self._inner.estimate(query)

    def estimate_batch(self, queries: TileQueryBatch) -> Level2CountsBatch:
        self._calls += 1
        if self._calls >= self._crash_on_call:
            os._exit(17)
        return self._inner.estimate_batch(queries)


@dataclass(frozen=True)
class WorkerCrashSpec:
    """A spec wrapper whose built estimator kills its worker process.

    ``crash_on_call`` is 1-based: 1 crashes on the first dispatched
    band, 2 lets one band succeed first, and so on.  Each worker counts
    its own calls, so with N workers the first N-1 dispatches can be
    answered while one worker dies mid-raster -- exactly the
    crash-recovery scenario the pool must survive.
    """

    inner: object
    crash_on_call: int = 1

    def build(self, arrays: Mapping[str, np.ndarray]) -> _CrashingEstimator:
        return _CrashingEstimator(self.inner.build(arrays), self.crash_on_call)


class _SleepyEstimator:
    """Worker-side proxy that sleeps before every batch (timeout tests)."""

    def __init__(self, inner, delay: float) -> None:
        self._inner = as_batch_estimator(inner)
        self._delay = delay

    @property
    def name(self) -> str:
        return f"Sleepy({self._inner.name})"

    def estimate(self, query: TileQuery) -> Level2Counts:
        return self._inner.estimate(query)

    def estimate_batch(self, queries: TileQueryBatch) -> Level2CountsBatch:
        time.sleep(self._delay)
        return self._inner.estimate_batch(queries)


@dataclass(frozen=True)
class WorkerLatencySpec:
    """A spec wrapper that delays every worker-side batch by ``delay``
    seconds -- a real ``time.sleep`` in a real worker process, for
    exercising the pool's dispatch-timeout path (straggler termination,
    respawn, inline recomputation)."""

    inner: object
    delay: float

    def build(self, arrays: Mapping[str, np.ndarray]) -> _SleepyEstimator:
        return _SleepyEstimator(self.inner.build(arrays), self.delay)
