"""repro: Euler-histogram spatial browsing.

A complete reproduction of Sun, Agrawal & El Abbadi, *Exploring Spatial
Datasets with Histograms* (ICDE 2002): the interior-exterior relation
model, the Theorem 3.1 storage bound, the Euler histogram, and the
S-EulerApprox / EulerApprox / M-EulerApprox Level-2 estimators, together
with exact evaluators, Level-1 baselines, the paper's datasets and query
workloads, and a GeoBrowsing-style service.

Quickstart::

    from repro import (
        Grid, sp_skew, EulerHistogram, SEulerApprox, ExactEvaluator, query_set,
    )

    grid = Grid.world_1deg()
    data = sp_skew(100_000, seed=7)
    estimator = SEulerApprox(EulerHistogram.from_dataset(data, grid))
    exact = ExactEvaluator(data, grid)
    tile = query_set(grid, 10)[42]
    print(estimator.estimate(tile), exact.estimate(tile))
"""

from repro.baselines import (
    BeigelTaninIntersect,
    CellCountHistogram,
    CumulativeDensity,
    MinskewHistogram,
)
from repro.browse import (
    AttributeCatalog,
    BrowseResult,
    ZoneScatterGatherSummary,
    CircuitBreaker,
    DeltaSource,
    DeltaTracker,
    FallbackChain,
    GeoBrowsingService,
    PyramidSource,
    ResilientBrowsingService,
    RetryPolicy,
    ShardPool,
)
from repro.cache import CacheKey, TileResultCache
from repro.datasets import (
    DATASET_NAMES,
    RectDataset,
    adl_like,
    by_name,
    ca_road_like,
    sp_skew,
    sz_skew,
)
from repro.euler import (
    EulerApprox,
    EulerHistogram,
    EulerHistogramBuilder,
    EulerHistogramND,
    HistogramPyramid,
    Level2BatchEstimator,
    Level2Counts,
    Level2CountsBatch,
    Level2Estimator,
    MaintainedEulerHistogram,
    MEulerApprox,
    QueryEdge,
    SEulerApprox,
    SEulerApproxND,
    UnalignedEstimator,
    as_batch_estimator,
    tune_area_thresholds,
)
from repro.exact import (
    ContinuousExactEvaluator,
    ExactContainsStore1D,
    ExactEvaluator,
    ExactLevel2Store2D,
    exact_contains_bucket_count,
    exact_contains_storage_bytes,
    exact_tiling_counts,
)
from repro.errors import (
    BrowseError,
    CatalogAlignmentError,
    DeadlineExceededError,
    EstimatorFailedError,
    InvalidRegionError,
    OverloadedError,
    SummaryCorruptError,
    TenantQuotaExceededError,
)
from repro.gateway import (
    AdmissionController,
    Gateway,
    GatewayResponse,
    GatewayServer,
    ServiceTimeWindow,
    TenantCatalog,
    TileRequest,
)
from repro.geometry import (
    Level1Relation,
    Level2Relation,
    Level3Relation,
    Polygon,
    Polyline,
    Rect,
    dataset_from_geometries,
)
from repro.grid import BoxQuery, Grid, GridND, TileQuery, TileQueryBatch, aligned_query_cells
from repro.index import GridBucketIndex
from repro.ingest import (
    SyntheticChunkSource,
    ZoneMap,
    build_zoned,
    open_chunk_source,
)
from repro.joins import JoinSearchEngine, JoinSearchResult, JoinSketch, SummaryCatalog
from repro.metrics import average_relative_error
from repro.selectivity import SelectivityEstimator, SpatialQueryPlanner
from repro.workloads import (
    PAPER_QUERY_SET_SIZES,
    browsing_tile_batch,
    browsing_tiles,
    generate_catalog_sources,
    paper_query_sets,
    query_set,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # geometry & grid
    "Rect",
    "Polygon",
    "Polyline",
    "dataset_from_geometries",
    "Level1Relation",
    "Level2Relation",
    "Level3Relation",
    "Grid",
    "GridND",
    "TileQuery",
    "TileQueryBatch",
    "BoxQuery",
    "aligned_query_cells",
    # datasets
    "RectDataset",
    "sp_skew",
    "sz_skew",
    "adl_like",
    "ca_road_like",
    "by_name",
    "DATASET_NAMES",
    # core estimators
    "EulerHistogram",
    "EulerHistogramBuilder",
    "EulerHistogramND",
    "SEulerApproxND",
    "MaintainedEulerHistogram",
    "HistogramPyramid",
    "UnalignedEstimator",
    "SEulerApprox",
    "EulerApprox",
    "QueryEdge",
    "MEulerApprox",
    "tune_area_thresholds",
    "Level2Counts",
    "Level2CountsBatch",
    "Level2Estimator",
    "Level2BatchEstimator",
    "as_batch_estimator",
    # exact
    "ExactEvaluator",
    "ContinuousExactEvaluator",
    "exact_tiling_counts",
    "ExactContainsStore1D",
    "ExactLevel2Store2D",
    "exact_contains_bucket_count",
    "exact_contains_storage_bytes",
    # baselines
    "CellCountHistogram",
    "CumulativeDensity",
    "BeigelTaninIntersect",
    "MinskewHistogram",
    # workloads & metrics
    "PAPER_QUERY_SET_SIZES",
    "query_set",
    "paper_query_sets",
    "browsing_tiles",
    "browsing_tile_batch",
    "average_relative_error",
    # browsing service
    "GeoBrowsingService",
    "BrowseResult",
    "AttributeCatalog",
    # resilient serving layer
    "ResilientBrowsingService",
    "FallbackChain",
    "CircuitBreaker",
    "RetryPolicy",
    "PyramidSource",
    # cache, sharding & viewport deltas
    "TileResultCache",
    "CacheKey",
    "ShardPool",
    "DeltaTracker",
    "DeltaSource",
    "BrowseError",
    "CatalogAlignmentError",
    "InvalidRegionError",
    "DeadlineExceededError",
    "EstimatorFailedError",
    "SummaryCorruptError",
    "OverloadedError",
    "TenantQuotaExceededError",
    # serving gateway
    "Gateway",
    "GatewayResponse",
    "GatewayServer",
    "TileRequest",
    "TenantCatalog",
    "AdmissionController",
    "ServiceTimeWindow",
    # index & query optimization
    "GridBucketIndex",
    "SelectivityEstimator",
    "SpatialQueryPlanner",
    # cross-dataset join search
    "SummaryCatalog",
    "JoinSketch",
    "JoinSearchEngine",
    "JoinSearchResult",
    "generate_catalog_sources",
    # out-of-core construction
    "build_zoned",
    "ZoneMap",
    "SyntheticChunkSource",
    "open_chunk_source",
    "ZoneScatterGatherSummary",
]
