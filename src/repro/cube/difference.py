"""2-d difference-array accumulator.

Adding ``+1`` to every array element inside a box, for millions of boxes,
is the construction workload of every histogram in this library (Euler,
cell-count, exact tilings).  The classic difference-array trick makes the
whole batch cost ``O(M + buckets)``: each box contributes four corner
updates to a scratch array whose 2-d prefix sum is the final result.

Corner updates are applied with ``np.add.at`` on the flattened scratch so a
vectorised batch of a million boxes is four scatter-adds.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DifferenceArray2D"]


class DifferenceArray2D:
    """Accumulates "+w over inclusive box [a_lo..a_hi] x [b_lo..b_hi]"
    updates and materialises the dense result on demand."""

    def __init__(self, shape: tuple[int, int], dtype: np.dtype | type = np.int64) -> None:
        if len(shape) != 2 or shape[0] < 1 or shape[1] < 1:
            raise ValueError(f"shape must be 2-d and positive, got {shape}")
        self._shape = (int(shape[0]), int(shape[1]))
        # One extra row/column catches the "past the end" corner updates.
        self._scratch = np.zeros((self._shape[0] + 1, self._shape[1] + 1), dtype=dtype)

    @property
    def shape(self) -> tuple[int, int]:
        return self._shape

    @property
    def nbytes(self) -> int:
        """Bytes held by the scratch array (the accumulator's whole
        footprint; the out-of-core builder budgets against this)."""
        return int(self._scratch.nbytes)

    def merge(self, other: "DifferenceArray2D") -> None:
        """Fold another accumulator's updates into this one.

        Box additions are linear in the scratch array, so summing two
        scratch arrays element-wise is exactly equivalent to replaying
        every ``add_box``/``add_boxes`` call of ``other`` on ``self`` --
        the primitive behind merging partial histogram builds.  Both
        accumulators must share shape and dtype; ``other`` is left
        untouched.
        """
        if other._shape != self._shape:
            raise ValueError(
                f"cannot merge accumulators of different shapes "
                f"{self._shape} vs {other._shape}"
            )
        if other._scratch.dtype != self._scratch.dtype:
            raise ValueError(
                f"cannot merge accumulators of different dtypes "
                f"{self._scratch.dtype} vs {other._scratch.dtype}"
            )
        self._scratch += other._scratch

    def patch(self, a_lo: int, a_hi: int, b_lo: int, b_hi: int) -> np.ndarray:
        """A copy of the scratch region covering the inclusive element box
        ``[a_lo..a_hi] x [b_lo..b_hi]``.

        The returned patch has shape ``(a_hi - a_lo + 2, b_hi - b_lo + 2)``:
        one extra row/column beyond the box catches the "past the end"
        corner updates of boxes ending at ``a_hi``/``b_hi``.  If every box
        ever added lies inside the element box, the patch carries the
        accumulator's *entire* state -- this is what the out-of-core
        builder spills for a zone whose spans stay inside its bounding
        box.
        """
        self._check_bounds(
            np.asarray([a_lo]), np.asarray([a_hi]), np.asarray([b_lo]), np.asarray([b_hi])
        )
        return self._scratch[a_lo : a_hi + 2, b_lo : b_hi + 2].copy()

    def add_patch(self, a_lo: int, b_lo: int, patch: np.ndarray) -> None:
        """Add a scratch patch (from :meth:`patch`) at element offset
        ``(a_lo, b_lo)``.

        The inverse of :meth:`patch`: pasting a partial accumulator's
        patch into a full-size accumulator replays the partial's updates
        exactly (difference-domain addition is linear).  Float patches
        are rejected like float spans -- silent truncation would corrupt
        the counts.
        """
        patch = np.asarray(patch)
        if patch.ndim != 2:
            raise ValueError(f"patch must be 2-d, got {patch.ndim}-d")
        if not np.issubdtype(patch.dtype, np.integer):
            raise ValueError(
                f"patch must hold integers, got dtype {patch.dtype}; "
                "refusing to truncate"
            )
        if a_lo < 0 or b_lo < 0:
            raise IndexError(f"patch offset ({a_lo}, {b_lo}) is negative")
        a_end = a_lo + patch.shape[0]
        b_end = b_lo + patch.shape[1]
        if a_end > self._scratch.shape[0] or b_end > self._scratch.shape[1]:
            raise IndexError(
                f"patch of shape {patch.shape} at ({a_lo}, {b_lo}) exceeds "
                f"the accumulator shape {self._shape}"
            )
        self._scratch[a_lo:a_end, b_lo:b_end] += patch

    def add_box(self, a_lo: int, a_hi: int, b_lo: int, b_hi: int, weight: int = 1) -> None:
        """Add ``weight`` to every element of the inclusive box."""
        self._check_bounds(np.asarray([a_lo]), np.asarray([a_hi]), np.asarray([b_lo]), np.asarray([b_hi]))
        s = self._scratch
        s[a_lo, b_lo] += weight
        s[a_hi + 1, b_lo] -= weight
        s[a_lo, b_hi + 1] -= weight
        s[a_hi + 1, b_hi + 1] += weight

    def add_boxes(
        self,
        a_lo: np.ndarray,
        a_hi: np.ndarray,
        b_lo: np.ndarray,
        b_hi: np.ndarray,
        weights: np.ndarray | int = 1,
    ) -> None:
        """Vectorised :meth:`add_box` over arrays of inclusive boxes."""
        a_lo = np.asarray(a_lo, dtype=np.int64)
        a_hi = np.asarray(a_hi, dtype=np.int64)
        b_lo = np.asarray(b_lo, dtype=np.int64)
        b_hi = np.asarray(b_hi, dtype=np.int64)
        if not (a_lo.shape == a_hi.shape == b_lo.shape == b_hi.shape):
            raise ValueError("box corner arrays must share one shape")
        self._check_bounds(a_lo, a_hi, b_lo, b_hi)

        if np.isscalar(weights):
            w = np.broadcast_to(np.int64(weights), a_lo.shape)
        else:
            w = np.asarray(weights)
            if w.shape != a_lo.shape:
                raise ValueError("weights must match the box arrays' shape")

        cols = self._shape[1] + 1
        flat = self._scratch.reshape(-1)
        np.add.at(flat, a_lo * cols + b_lo, w)
        np.subtract.at(flat, (a_hi + 1) * cols + b_lo, w)
        np.subtract.at(flat, a_lo * cols + (b_hi + 1), w)
        np.add.at(flat, (a_hi + 1) * cols + (b_hi + 1), w)

    def _check_bounds(
        self, a_lo: np.ndarray, a_hi: np.ndarray, b_lo: np.ndarray, b_hi: np.ndarray
    ) -> None:
        if a_lo.size == 0:
            return
        if (
            int(a_lo.min()) < 0
            or int(b_lo.min()) < 0
            or int(a_hi.max()) >= self._shape[0]
            or int(b_hi.max()) >= self._shape[1]
        ):
            raise IndexError(f"some boxes exceed the array shape {self._shape}")
        if np.any(a_hi < a_lo) or np.any(b_hi < b_lo):
            raise ValueError("boxes must be non-empty (hi >= lo on both axes)")

    def materialize(self) -> np.ndarray:
        """Dense result array of :attr:`shape`.

        The accumulator remains usable; further updates compose with the
        boxes already added.
        """
        dense = np.cumsum(np.cumsum(self._scratch, axis=0), axis=1)
        return dense[: self._shape[0], : self._shape[1]].copy()
