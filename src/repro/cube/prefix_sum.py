"""The prefix-sum data cube of Ho, Agrawal, Megiddo & Srikant (SIGMOD'97).

This is the query-side substrate of every histogram in the library: given a
d-dimensional array ``A``, the cube stores ``P[i] = sum(A[0..i])`` (with a
zero-padded border) so that the sum of any axis-aligned box of ``A`` costs
``2^d`` lookups and ``2^d - 1`` additions -- constant time per query, the
property the paper leans on for its "constant query response time" claims
(Sections 2 and 5.2).

The implementation is dimension-generic; the library uses d=2 for Euler
histograms and d=1 in a few tests, and the d-generic form keeps the HAMS97
reproduction honest.
"""

from __future__ import annotations

import itertools
from typing import Sequence

import numpy as np

__all__ = ["PrefixSumCube"]


class PrefixSumCube:
    """Immutable prefix-sum cube over a dense d-dimensional array.

    Parameters
    ----------
    values:
        The source array ``A``.  A copy is cumulated; the source is not
        retained.  Integer inputs are widened to int64 to make overflow a
        non-issue for realistic dataset sizes (sums of at most ~2^63).
    """

    def __init__(self, values: np.ndarray) -> None:
        values = np.asarray(values)
        if values.ndim < 1:
            raise ValueError("PrefixSumCube requires an array of dimension >= 1")
        dtype = np.int64 if np.issubdtype(values.dtype, np.integer) else np.float64
        # Zero-pad one layer at the low end of every axis so that range-sum
        # corner lookups never need boundary special cases.
        padded_shape = tuple(s + 1 for s in values.shape)
        cum = np.zeros(padded_shape, dtype=dtype)
        cum[tuple(slice(1, None) for _ in values.shape)] = values
        for axis in range(values.ndim):
            np.cumsum(cum, axis=axis, out=cum)
        self._cum = cum
        self._shape = values.shape
        # The dtype-correct zero returned for empty boxes, built once here
        # rather than per call (the scalar range sums are hot paths).
        self._zero: int | float = cum.dtype.type(0).item()

    @classmethod
    def from_cumulative(cls, cum: np.ndarray, shape: Sequence[int]) -> "PrefixSumCube":
        """Wrap an existing zero-padded cumulative array without copying.

        ``cum`` must be exactly what :meth:`cumulative` exposes for a cube
        over a ``shape``-shaped source: one zero-padded layer at the low
        end of every axis, already cumulated along every axis.  The array
        is adopted as-is (no copy, no re-validation of its sums), which is
        what lets process-pool workers rebuild a queryable cube over a
        shared-memory mapping in O(1) (:mod:`repro.parallel.shm`).
        """
        cum = np.asarray(cum)
        shape = tuple(int(s) for s in shape)
        if not shape:
            raise ValueError("PrefixSumCube requires an array of dimension >= 1")
        if cum.shape != tuple(s + 1 for s in shape):
            raise ValueError(
                f"cumulative array shape {cum.shape} does not match source "
                f"shape {shape} (expected one zero-padded layer per axis)"
            )
        cube = cls.__new__(cls)
        cube._cum = cum
        cube._shape = shape
        cube._zero = cum.dtype.type(0).item()
        return cube

    @property
    def cumulative(self) -> np.ndarray:
        """The zero-padded cumulative array itself.

        Treat as read-only: mutating it corrupts every future range sum.
        This is the array :meth:`from_cumulative` adopts on the other side
        of a shared-memory export.
        """
        return self._cum

    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the source array."""
        return self._shape

    @property
    def ndim(self) -> int:
        return len(self._shape)

    @property
    def nbytes(self) -> int:
        """Storage footprint of the cumulative array."""
        return int(self._cum.nbytes)

    @property
    def total(self) -> int | float:
        """Sum of the entire source array."""
        return self._cum[tuple(-1 for _ in self._shape)].item()

    def range_sum(self, lo: Sequence[int], hi: Sequence[int]) -> int | float:
        """Sum of the source box ``[lo, hi]`` (inclusive on both ends).

        An empty box (any ``hi[k] < lo[k]``) sums to zero, which lets
        callers pass degenerate regions (e.g. a Region-A slab of height 0
        when the query touches the data-space boundary) without guards.
        """
        lo = tuple(int(v) for v in lo)
        hi = tuple(int(v) for v in hi)
        ndim = self.ndim
        shape = self._shape
        if len(lo) != ndim or len(hi) != ndim:
            raise ValueError(f"expected {ndim}-d corners, got {lo} / {hi}")
        for k, (lo_k, hi_k) in enumerate(zip(lo, hi)):
            if hi_k < lo_k:
                return self._zero
            if lo_k < 0 or hi_k >= shape[k]:
                raise IndexError(f"box [{lo}, {hi}] exceeds array shape {shape}")

        # Inclusion-exclusion over the 2^d corners of the padded cube,
        # accumulated in Python scalars (exact for int64; identical IEEE
        # order for float64) -- cheaper than a chain of numpy scalar ops.
        cum = self._cum
        total = self._zero
        for corner in itertools.product((0, 1), repeat=ndim):
            idx = tuple(hi[k] + 1 if bit else lo[k] for k, bit in enumerate(corner))
            sign = 1 if (ndim - sum(corner)) % 2 == 0 else -1
            total = total + sign * cum[idx].item()
        return total

    def range_sum_2d(self, a_lo: int, a_hi: int, b_lo: int, b_hi: int) -> int | float:
        """Specialised 2-d inclusive range sum (the hot path).

        Identical to ``range_sum((a_lo, b_lo), (a_hi, b_hi))`` but without
        the generic corner loop: four lookups and three additions, exactly
        the operation count quoted in Section 5.2.
        """
        shape = self._shape
        if len(shape) != 2:
            raise ValueError("range_sum_2d requires a 2-d cube")
        if a_hi < a_lo or b_hi < b_lo:
            return self._zero
        if a_lo < 0 or b_lo < 0 or a_hi >= shape[0] or b_hi >= shape[1]:
            raise IndexError(
                f"box [({a_lo},{b_lo}), ({a_hi},{b_hi})] exceeds array shape {shape}"
            )
        # Pull the four corners into Python scalars once and combine them
        # with Python arithmetic (exact for int64, IEEE-identical for
        # float64) -- measurably faster than numpy-scalar chaining.
        cum = self._cum
        a1 = a_hi + 1
        b1 = b_hi + 1
        return (
            cum[a1, b1].item() - cum[a_lo, b1].item() - cum[a1, b_lo].item() + cum[a_lo, b_lo].item()
        )

    def range_sum_2d_batch(
        self,
        a_lo: np.ndarray,
        a_hi: np.ndarray,
        b_lo: np.ndarray,
        b_hi: np.ndarray,
    ) -> np.ndarray:
        """Vectorised :meth:`range_sum_2d` over arrays of box corners.

        All four operands are broadcast against each other; the result has
        the broadcast shape and the cube's dtype.  Empty boxes
        (``a_hi < a_lo`` or ``b_hi < b_lo``) sum to zero, mirroring the
        scalar method, and bounds are validated once for the whole batch
        (only non-empty boxes constrain the bounds).  The whole batch is
        answered with four fancy-indexed gathers -- no per-query Python
        work -- which is what makes a browse raster O(1) numpy calls.
        """
        shape = self._shape
        if len(shape) != 2:
            raise ValueError("range_sum_2d_batch requires a 2-d cube")
        a_lo, a_hi, b_lo, b_hi = np.broadcast_arrays(
            np.asarray(a_lo, dtype=np.intp),
            np.asarray(a_hi, dtype=np.intp),
            np.asarray(b_lo, dtype=np.intp),
            np.asarray(b_hi, dtype=np.intp),
        )
        empty = (a_hi < a_lo) | (b_hi < b_lo)
        nonempty = ~empty
        if (
            a_lo.min(where=nonempty, initial=0) < 0
            or b_lo.min(where=nonempty, initial=0) < 0
            or a_hi.max(where=nonempty, initial=-1) >= shape[0]
            or b_hi.max(where=nonempty, initial=-1) >= shape[1]
        ):
            raise IndexError(f"batch contains a box exceeding array shape {shape}")
        # Collapse empty boxes onto the padded cube's zero corner so the
        # inclusion-exclusion below yields exactly 0 for them without a
        # masking pass afterwards.
        a0 = np.where(empty, 0, a_lo)
        a1 = np.where(empty, 0, a_hi + 1)
        b0 = np.where(empty, 0, b_lo)
        b1 = np.where(empty, 0, b_hi + 1)
        cum = self._cum
        return cum[a1, b1] - cum[a0, b1] - cum[a1, b0] + cum[a0, b0]
