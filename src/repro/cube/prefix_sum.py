"""The prefix-sum data cube of Ho, Agrawal, Megiddo & Srikant (SIGMOD'97).

This is the query-side substrate of every histogram in the library: given a
d-dimensional array ``A``, the cube stores ``P[i] = sum(A[0..i])`` (with a
zero-padded border) so that the sum of any axis-aligned box of ``A`` costs
``2^d`` lookups and ``2^d - 1`` additions -- constant time per query, the
property the paper leans on for its "constant query response time" claims
(Sections 2 and 5.2).

The implementation is dimension-generic; the library uses d=2 for Euler
histograms and d=1 in a few tests, and the d-generic form keeps the HAMS97
reproduction honest.
"""

from __future__ import annotations

import itertools
from typing import Sequence

import numpy as np

__all__ = ["PrefixSumCube"]


class PrefixSumCube:
    """Immutable prefix-sum cube over a dense d-dimensional array.

    Parameters
    ----------
    values:
        The source array ``A``.  A copy is cumulated; the source is not
        retained.  Integer inputs are widened to int64 to make overflow a
        non-issue for realistic dataset sizes (sums of at most ~2^63).
    """

    def __init__(self, values: np.ndarray) -> None:
        values = np.asarray(values)
        if values.ndim < 1:
            raise ValueError("PrefixSumCube requires an array of dimension >= 1")
        dtype = np.int64 if np.issubdtype(values.dtype, np.integer) else np.float64
        # Zero-pad one layer at the low end of every axis so that range-sum
        # corner lookups never need boundary special cases.
        padded_shape = tuple(s + 1 for s in values.shape)
        cum = np.zeros(padded_shape, dtype=dtype)
        cum[tuple(slice(1, None) for _ in values.shape)] = values
        for axis in range(values.ndim):
            np.cumsum(cum, axis=axis, out=cum)
        self._cum = cum
        self._shape = values.shape

    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the source array."""
        return self._shape

    @property
    def ndim(self) -> int:
        return len(self._shape)

    @property
    def nbytes(self) -> int:
        """Storage footprint of the cumulative array."""
        return int(self._cum.nbytes)

    @property
    def total(self) -> int | float:
        """Sum of the entire source array."""
        return self._cum[tuple(-1 for _ in self._shape)].item()

    def range_sum(self, lo: Sequence[int], hi: Sequence[int]) -> int | float:
        """Sum of the source box ``[lo, hi]`` (inclusive on both ends).

        An empty box (any ``hi[k] < lo[k]``) sums to zero, which lets
        callers pass degenerate regions (e.g. a Region-A slab of height 0
        when the query touches the data-space boundary) without guards.
        """
        lo = tuple(int(v) for v in lo)
        hi = tuple(int(v) for v in hi)
        if len(lo) != self.ndim or len(hi) != self.ndim:
            raise ValueError(f"expected {self.ndim}-d corners, got {lo} / {hi}")
        for k, (lo_k, hi_k) in enumerate(zip(lo, hi)):
            if hi_k < lo_k:
                return self._cum.dtype.type(0).item()
            if lo_k < 0 or hi_k >= self._shape[k]:
                raise IndexError(f"box [{lo}, {hi}] exceeds array shape {self._shape}")

        # Inclusion-exclusion over the 2^d corners of the padded cube.
        total = self._cum.dtype.type(0)
        for corner in itertools.product((0, 1), repeat=self.ndim):
            idx = tuple(hi[k] + 1 if bit else lo[k] for k, bit in enumerate(corner))
            sign = 1 if (self.ndim - sum(corner)) % 2 == 0 else -1
            total = total + sign * self._cum[idx]
        return total.item()

    def range_sum_2d(self, a_lo: int, a_hi: int, b_lo: int, b_hi: int) -> int | float:
        """Specialised 2-d inclusive range sum (the hot path).

        Identical to ``range_sum((a_lo, b_lo), (a_hi, b_hi))`` but without
        the generic corner loop: four lookups and three additions, exactly
        the operation count quoted in Section 5.2.
        """
        if self.ndim != 2:
            raise ValueError("range_sum_2d requires a 2-d cube")
        if a_hi < a_lo or b_hi < b_lo:
            return self._cum.dtype.type(0).item()
        if a_lo < 0 or b_lo < 0 or a_hi >= self._shape[0] or b_hi >= self._shape[1]:
            raise IndexError(
                f"box [({a_lo},{b_lo}), ({a_hi},{b_hi})] exceeds array shape {self._shape}"
            )
        c = self._cum
        return (
            c[a_hi + 1, b_hi + 1] - c[a_lo, b_hi + 1] - c[a_hi + 1, b_lo] + c[a_lo, b_lo]
        ).item()
