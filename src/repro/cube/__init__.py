"""Aggregate-cube substrate: prefix-sum cubes and difference-array builders.

The paper's histograms are query-answered through the prefix-sum technique
of Ho et al. (HAMS97): a cumulative cube turns any axis-aligned range sum
into a constant number of lookups.  The same machinery, run in reverse, is
the difference-array accumulator used to *build* histograms from millions
of rectangles in O(M + buckets) time.
"""

from repro.cube.difference import DifferenceArray2D
from repro.cube.prefix_sum import PrefixSumCube

__all__ = ["PrefixSumCube", "DifferenceArray2D"]
