"""d-dimensional difference-array accumulator.

The d-dimensional generalisation of :class:`repro.cube.difference.
DifferenceArray2D`: every inclusive box update becomes ``2^d`` signed
corner updates on a scratch array one element larger per axis, and the
dense result is the d-fold prefix sum.  Used by the d-dimensional Euler
histogram (:mod:`repro.euler.histogram_nd`).
"""

from __future__ import annotations

import itertools
from typing import Sequence

import numpy as np

__all__ = ["DifferenceArrayND"]


class DifferenceArrayND:
    """Accumulates "+w over inclusive box" updates in d dimensions."""

    def __init__(self, shape: Sequence[int], dtype: np.dtype | type = np.int64) -> None:
        shape = tuple(int(s) for s in shape)
        if not shape or any(s < 1 for s in shape):
            raise ValueError(f"shape must be non-empty and positive, got {shape}")
        self._shape = shape
        self._scratch = np.zeros(tuple(s + 1 for s in shape), dtype=dtype)
        # Flat strides of the scratch array, for vectorised corner updates.
        self._strides = np.array(
            [int(np.prod([s + 1 for s in shape[k + 1 :]], dtype=np.int64)) for k in range(len(shape))],
            dtype=np.int64,
        )

    @property
    def shape(self) -> tuple[int, ...]:
        return self._shape

    @property
    def ndim(self) -> int:
        return len(self._shape)

    def add_boxes(self, lo: np.ndarray, hi: np.ndarray, weights: np.ndarray | int = 1) -> None:
        """Vectorised batch update.

        ``lo`` and ``hi`` are ``(M, d)`` integer arrays of inclusive box
        corners; ``weights`` a scalar or ``(M,)`` array.
        """
        lo = np.asarray(lo, dtype=np.int64)
        hi = np.asarray(hi, dtype=np.int64)
        if lo.ndim != 2 or lo.shape[1] != self.ndim or lo.shape != hi.shape:
            raise ValueError(
                f"expected (M, {self.ndim}) corner arrays, got {lo.shape} / {hi.shape}"
            )
        if lo.size == 0:
            return
        if np.any(lo < 0) or np.any(hi >= np.array(self._shape)):
            raise IndexError(f"some boxes exceed the array shape {self._shape}")
        if np.any(hi < lo):
            raise ValueError("boxes must be non-empty (hi >= lo on every axis)")

        if np.isscalar(weights):
            w = np.full(lo.shape[0], weights, dtype=self._scratch.dtype)
        else:
            w = np.asarray(weights).astype(self._scratch.dtype)
            if w.shape != (lo.shape[0],):
                raise ValueError("weights must be scalar or shaped (M,)")

        flat = self._scratch.reshape(-1)
        for corner in itertools.product((0, 1), repeat=self.ndim):
            # Corner bit 1 on axis k -> use hi[k] + 1, sign flips per bit.
            idx = np.zeros(lo.shape[0], dtype=np.int64)
            for k, bit in enumerate(corner):
                coord = hi[:, k] + 1 if bit else lo[:, k]
                idx += coord * self._strides[k]
            sign = -1 if sum(corner) % 2 else 1
            np.add.at(flat, idx, sign * w)

    def add_box(self, lo: Sequence[int], hi: Sequence[int], weight: int = 1) -> None:
        """Scalar convenience wrapper around :meth:`add_boxes`."""
        self.add_boxes(
            np.asarray([lo], dtype=np.int64), np.asarray([hi], dtype=np.int64), weight
        )

    def materialize(self) -> np.ndarray:
        """Dense result array of :attr:`shape` (accumulator stays usable)."""
        dense = self._scratch
        for axis in range(self.ndim):
            dense = np.cumsum(dense, axis=axis)
        return dense[tuple(slice(0, s) for s in self._shape)].copy()
