"""The async multi-tenant serving gateway (DESIGN.md §15).

:mod:`repro.gateway` is the layer that turns the single-caller
browsing library into a shared service: a
:class:`~repro.gateway.catalog.TenantCatalog` isolating per-tenant
serving state over shared summaries, an
:class:`~repro.gateway.admission.AdmissionController` that degrades
before it sheds, an asyncio :class:`~repro.gateway.gateway.Gateway`
coalescing identical in-flight computations, and a stdlib JSON-lines
:class:`~repro.gateway.server.GatewayServer` for real concurrent
clients.  Pure stdlib + the existing stack; no new dependencies.
"""

from repro.gateway.admission import (
    AdmissionController,
    AdmissionDecision,
    ServiceTimeWindow,
)
from repro.gateway.catalog import DatasetBlueprint, TenantCatalog, TenantState
from repro.gateway.gateway import (
    Gateway,
    GatewayResponse,
    TileRequest,
    decode_error,
    encode_error,
)
from repro.gateway.server import GatewayServer, parse_request

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "DatasetBlueprint",
    "Gateway",
    "GatewayResponse",
    "GatewayServer",
    "ServiceTimeWindow",
    "TenantCatalog",
    "TenantState",
    "TileRequest",
    "decode_error",
    "encode_error",
    "parse_request",
]
