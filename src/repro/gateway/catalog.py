"""The gateway's tenant catalog: who may browse what, and with how much.

A multi-tenant gateway serves many organisations from the same summary
artifacts.  The catalog separates what is *shared* from what must be
*isolated*:

- **Shared: the summaries and estimator chains.**  A dataset is
  registered once as a blueprint (estimator chain + grid + optional
  tile cache).  Estimators are immutable readers over the summary
  arrays and the :class:`~repro.cache.TileResultCache` is keyed by
  summary identity and generation, so sharing them across tenants is
  safe and collapses memory to one copy per dataset.
- **Isolated: serving state.**  Every ``(tenant, dataset)`` pair gets
  its *own* :class:`~repro.browse.resilience.ResilientBrowsingService`
  -- its own circuit breakers (one tenant's faulty traffic cannot trip
  another tenant's tiers open) and its own session-keyed
  :class:`~repro.browse.delta.DeltaTracker` with a per-tenant session
  bound, so one tenant's pan storm evicts only its own reuse state,
  never a neighbour's.
- **Quotas.**  Each tenant carries a concurrency quota: the number of
  requests it may have in flight through the gateway at once.  The
  quota is enforced by the gateway *before* admission triage, so a
  single tenant flooding the front door exhausts its own allowance and
  bounces with :class:`~repro.errors.TenantQuotaExceededError` while
  the shared queue keeps serving everyone else.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Sequence

from repro.browse.delta import DeltaTracker
from repro.browse.resilience import ResilientBrowsingService
from repro.cache import TileResultCache
from repro.errors import InvalidRegionError
from repro.euler.base import Level2Estimator
from repro.grid.grid import Grid
from repro.obs.instruments import BrowseInstrumentation

__all__ = ["DatasetBlueprint", "TenantCatalog", "TenantState"]


@dataclass(frozen=True)
class DatasetBlueprint:
    """One registered dataset: the shared ingredients of its services.

    ``estimators`` is the fallback chain (primary first) every tenant's
    service is built from; ``cache`` is the shared tile-result cache
    (``None`` disables caching); ``service_kwargs`` is forwarded to each
    :class:`~repro.browse.resilience.ResilientBrowsingService`
    (``chunk_rows``, ``num_shards``, retry/breaker knobs, ...).
    """

    name: str
    estimators: tuple[Level2Estimator, ...]
    grid: Grid
    cache: TileResultCache | None = None
    service_kwargs: dict = field(default_factory=dict)


class TenantState:
    """One tenant's quota accounting (thread-safe).

    ``quota`` is the maximum number of concurrently in-flight requests
    (0 = unlimited).  The gateway brackets every request between
    :meth:`try_acquire` and :meth:`release`; acquisition never blocks --
    an exhausted quota is an immediate structured rejection, not a
    second queue.
    """

    def __init__(self, name: str, *, quota: int = 0) -> None:
        if quota < 0:
            raise ValueError("quota must be non-negative (0 = unlimited)")
        self.name = name
        self.quota = quota
        self._lock = threading.Lock()
        self._active = 0

    @property
    def active(self) -> int:
        """Requests currently holding a quota slot."""
        with self._lock:
            return self._active

    def try_acquire(self) -> bool:
        """Take one quota slot if available; never blocks."""
        with self._lock:
            if self.quota and self._active >= self.quota:
                return False
            self._active += 1
            return True

    def release(self) -> None:
        """Return one quota slot (must pair with a successful acquire)."""
        with self._lock:
            if self._active <= 0:
                raise RuntimeError(
                    f"tenant {self.name!r} released a quota slot it never held"
                )
            self._active -= 1


class TenantCatalog:
    """Maps ``(tenant, dataset)`` to an isolated serving handle.

    Datasets are registered first (:meth:`register_dataset`), tenants
    after (:meth:`add_tenant`), naming the datasets they may browse.
    Services are built eagerly at tenant registration -- construction is
    cheap (the estimators are shared; only breakers and trackers are
    per-tenant) and eager failure beats a 500 at request time.

    ``close()`` closes every service exactly once and is idempotent;
    the services' own close methods are race-safe, so a gateway
    shutdown may overlap in-flight requests without error.
    """

    def __init__(
        self,
        *,
        instruments: BrowseInstrumentation | None = None,
        delta_sessions_per_tenant: int = 64,
    ) -> None:
        if delta_sessions_per_tenant < 1:
            raise ValueError("delta_sessions_per_tenant must be at least 1")
        self._instruments = instruments
        self._delta_sessions = delta_sessions_per_tenant
        self._blueprints: dict[str, DatasetBlueprint] = {}
        self._tenants: dict[str, TenantState] = {}
        self._services: dict[tuple[str, str], ResilientBrowsingService] = {}
        self._lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #

    def register_dataset(
        self,
        name: str,
        estimators: Level2Estimator | Sequence[Level2Estimator],
        grid: Grid,
        *,
        cache: TileResultCache | None = None,
        **service_kwargs,
    ) -> DatasetBlueprint:
        """Register one dataset's shared serving ingredients."""
        if isinstance(estimators, Level2Estimator):
            estimators = (estimators,)
        blueprint = DatasetBlueprint(
            name=name,
            estimators=tuple(estimators),
            grid=grid,
            cache=cache,
            service_kwargs=dict(service_kwargs),
        )
        with self._lock:
            if name in self._blueprints:
                raise ValueError(f"dataset {name!r} is already registered")
            self._blueprints[name] = blueprint
        return blueprint

    def add_tenant(
        self,
        name: str,
        *,
        quota: int = 0,
        datasets: Sequence[str] | None = None,
    ) -> TenantState:
        """Register a tenant and build its per-dataset services.

        ``datasets`` defaults to every registered dataset.  ``quota`` is
        the tenant's concurrent-request allowance (0 = unlimited).
        """
        with self._lock:
            if name in self._tenants:
                raise ValueError(f"tenant {name!r} is already registered")
            wanted = tuple(datasets) if datasets is not None else tuple(self._blueprints)
            for dataset in wanted:
                if dataset not in self._blueprints:
                    raise KeyError(f"dataset {dataset!r} is not registered")
            state = TenantState(name, quota=quota)
            self._tenants[name] = state
            for dataset in wanted:
                bp = self._blueprints[dataset]
                self._services[(name, dataset)] = ResilientBrowsingService(
                    list(bp.estimators),
                    bp.grid,
                    cache=bp.cache,
                    delta=DeltaTracker(max_sessions=self._delta_sessions),
                    instruments=self._instruments,
                    **bp.service_kwargs,
                )
        return state

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #

    @property
    def tenants(self) -> tuple[str, ...]:
        """Registered tenant names."""
        with self._lock:
            return tuple(self._tenants)

    @property
    def datasets(self) -> tuple[str, ...]:
        """Registered dataset names."""
        with self._lock:
            return tuple(self._blueprints)

    def tenant(self, name: str) -> TenantState:
        """The tenant's quota state; unknown tenants raise
        :class:`~repro.errors.InvalidRegionError` (a malformed request,
        in taxonomy terms -- the gateway maps it to a structured
        response)."""
        with self._lock:
            state = self._tenants.get(name)
        if state is None:
            raise InvalidRegionError(f"unknown tenant {name!r}")
        return state

    def service(self, tenant: str, dataset: str) -> ResilientBrowsingService:
        """The isolated serving handle for ``(tenant, dataset)``."""
        with self._lock:
            known_tenant = tenant in self._tenants
            service = self._services.get((tenant, dataset))
        if not known_tenant:
            raise InvalidRegionError(f"unknown tenant {tenant!r}")
        if service is None:
            raise InvalidRegionError(
                f"tenant {tenant!r} has no dataset {dataset!r}"
            )
        return service

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Close every service (idempotent; safe against double-close)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            services = list(self._services.values())
        for service in services:
            service.close()
