"""Admission control for the serving gateway: triage, degrade, shed.

The gateway's front door decides, per request and *before* any work is
queued, one of three things:

- **Admit at full quality.**  The queue is short and the request's
  deadline budget comfortably covers the estimated queue wait plus one
  observed service time.
- **Admit degraded.**  The gateway is under pressure (the admission
  queue is filling) but the request can still be started in time.  The
  request is admitted with a *shrunken effective deadline*, so the
  resilience layer underneath answers what it can and returns a partial
  raster with a validity mask -- coarse-but-valid beats rejected, the
  GeoBlocks trade of accuracy for time under load.
- **Shed.**  The queue is full, or the remaining budget cannot cover
  the predicted wait: admitting the request would only let it time out
  in queue, burning a worker slot every other request needs.  Shedding
  happens immediately, with a ``retry_after_s`` backpressure hint, via
  :class:`~repro.errors.OverloadedError`.

Everything here is pure synchronous logic on an injectable clock -- no
asyncio, no threads -- so the triage rules are unit-testable with a fake
clock, exactly like the circuit breakers in
:mod:`repro.browse.resilience`.  The gateway calls it from the event
loop, which serialises all state access.
"""

from __future__ import annotations

import statistics
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "ServiceTimeWindow",
]

Clock = Callable[[], float]


class ServiceTimeWindow:
    """A sliding window of recent service times, for wait prediction.

    Samples older than ``window_s`` on the injected clock (and beyond
    the newest ``max_samples``) are dropped, so the percentile tracks
    the *current* service-time regime -- a slow spell ages out instead
    of pessimising triage forever.  Before any sample lands, ``p50()``
    returns ``default_p50``: a small optimistic prior, so a cold gateway
    admits rather than sheds while it learns.
    """

    def __init__(
        self,
        *,
        window_s: float = 30.0,
        max_samples: int = 512,
        default_p50: float = 0.02,
        clock: Clock = time.monotonic,
    ) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        if max_samples < 1:
            raise ValueError("max_samples must be at least 1")
        if default_p50 <= 0:
            raise ValueError("default_p50 must be positive")
        self._window_s = window_s
        self._default_p50 = default_p50
        self._clock = clock
        self._samples: deque[tuple[float, float]] = deque(maxlen=max_samples)

    def _trim(self, now: float) -> None:
        horizon = now - self._window_s
        samples = self._samples
        while samples and samples[0][0] < horizon:
            samples.popleft()

    def observe(self, seconds: float) -> None:
        """Record one completed request's service time."""
        if seconds < 0:
            raise ValueError("service time must be non-negative")
        now = self._clock()
        self._samples.append((now, seconds))
        self._trim(now)

    def __len__(self) -> int:
        """Samples currently inside the window."""
        self._trim(self._clock())
        return len(self._samples)

    def p50(self) -> float:
        """Median service time over the window (the prior when empty)."""
        self._trim(self._clock())
        if not self._samples:
            return self._default_p50
        return statistics.median(s for _, s in self._samples)

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (nearest-rank) over the window."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        self._trim(self._clock())
        if not self._samples:
            return self._default_p50
        ordered = sorted(s for _, s in self._samples)
        rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[rank]


@dataclass(frozen=True)
class AdmissionDecision:
    """One triage outcome.

    ``admitted`` tells the gateway whether to enqueue at all.  When
    admitted, ``effective_deadline`` is the (possibly degraded) budget
    the serving layer should run under -- ``None`` means unbounded --
    and ``degrade_factor`` records how much of the client budget
    survived (1.0 = full quality).  When shed, ``reason`` is the wire
    label (``queue_full`` or ``deadline``) and ``retry_after_s`` the
    backpressure hint.  ``estimated_wait_s`` is the queue-wait estimate
    either way, for telemetry.
    """

    admitted: bool
    effective_deadline: float | None = None
    degrade_factor: float = 1.0
    estimated_wait_s: float = 0.0
    reason: str = ""
    retry_after_s: float | None = None
    #: The admission relied on the target service's pyramid tier: the
    #: budget cannot cover fine-grid work, but a coarse raster fits.
    coarse: bool = False


class AdmissionController:
    """Deadline-aware triage over a bounded admission queue.

    Parameters
    ----------
    workers:
        Executor threads draining the queue; the divisor of the wait
        estimate.
    max_pending:
        Bound on concurrently admitted computations.  At the bound every
        arrival is shed (``queue_full``); the *approach* to the bound is
        the pressure signal that drives degradation.
    window:
        The :class:`ServiceTimeWindow` supplying the observed p50.
    degrade_start:
        Pressure (``pending / max_pending``) at which degradation
        begins; below it requests run at full quality.
    degrade_floor:
        The minimum fraction of the client budget an admitted request
        keeps at full pressure.  Linear in between: quality degrades
        smoothly as the queue fills, instead of falling off a cliff.
    triage_margin:
        Safety multiplier on the p50 when predicting whether a budget
        covers the wait: admit only when
        ``budget > wait + triage_margin * p50``.  Larger margins shed
        earlier but make "admitted then timed out in queue" rarer; the
        dispatch-time backstop in the gateway catches the residue.
    """

    def __init__(
        self,
        *,
        workers: int,
        max_pending: int,
        window: ServiceTimeWindow,
        degrade_start: float = 0.5,
        degrade_floor: float = 0.25,
        triage_margin: float = 1.0,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        if not 0.0 < degrade_start <= 1.0:
            raise ValueError("degrade_start must be in (0, 1]")
        if not 0.0 < degrade_floor <= 1.0:
            raise ValueError("degrade_floor must be in (0, 1]")
        if triage_margin <= 0:
            raise ValueError("triage_margin must be positive")
        self.workers = workers
        self.max_pending = max_pending
        self.window = window
        self.degrade_start = degrade_start
        self.degrade_floor = degrade_floor
        self.triage_margin = triage_margin

    def estimated_wait(self, pending: int) -> float:
        """Predicted queue wait for a new arrival with ``pending``
        computations already admitted: the requests that must retire
        before a worker frees up, each costing the windowed p50."""
        queued_ahead = max(0, pending - self.workers + 1)
        return queued_ahead * self.window.p50() / self.workers

    def degrade_factor(self, pending: int) -> float:
        """The budget fraction surviving at the current pressure:
        1.0 below ``degrade_start``, linearly down to ``degrade_floor``
        as pressure reaches 1."""
        pressure = pending / self.max_pending
        if pressure <= self.degrade_start:
            return 1.0
        if self.degrade_start >= 1.0:
            return self.degrade_floor
        span = 1.0 - self.degrade_start
        slope = (pressure - self.degrade_start) / span
        return max(self.degrade_floor, 1.0 - slope * (1.0 - self.degrade_floor))

    def triage(
        self, *, budget: float | None, pending: int, coarse_capable: bool = False
    ) -> AdmissionDecision:
        """Decide one arrival's fate (see the class docstring).

        ``budget`` is the client's remaining deadline in seconds
        (``None`` = unbounded, ``0.0`` = "whatever is free right now":
        admitted only when a worker is idle, and served with a zero
        effective deadline so the resilience layer answers from cache
        and viewport deltas alone).

        ``coarse_capable`` marks the target service as pyramid-backed
        (:mod:`repro.browse.refine`): before shedding on ``deadline``,
        a budget that at least covers the predicted queue wait is
        admitted anyway -- degrade-before-shed gains a second axis,
        since the service can answer a complete raster from a coarse
        pyramid level in a sliver of the fine-grid time.
        """
        if budget is not None and budget < 0:
            raise ValueError("budget must be non-negative when given")
        p50 = self.window.p50()
        wait = self.estimated_wait(pending)
        if pending >= self.max_pending:
            return AdmissionDecision(
                admitted=False,
                estimated_wait_s=wait,
                reason="queue_full",
                retry_after_s=round(max(wait, p50), 4),
            )
        factor = self.degrade_factor(pending)
        if budget is None:
            return AdmissionDecision(
                admitted=True,
                effective_deadline=None,
                degrade_factor=factor,
                estimated_wait_s=wait,
            )
        if budget == 0.0:
            if wait > 0.0:
                return AdmissionDecision(
                    admitted=False,
                    estimated_wait_s=wait,
                    reason="deadline",
                    retry_after_s=round(max(wait, p50), 4),
                )
            return AdmissionDecision(
                admitted=True,
                effective_deadline=0.0,
                degrade_factor=factor,
                estimated_wait_s=0.0,
            )
        if wait + self.triage_margin * p50 >= budget:
            if coarse_capable and budget > wait:
                # The fine path cannot finish, but whatever budget
                # survives the queue buys a complete coarse raster from
                # the service's pyramid tier: degrade to a coarser
                # level instead of shedding.
                return AdmissionDecision(
                    admitted=True,
                    effective_deadline=budget,
                    degrade_factor=self.degrade_floor,
                    estimated_wait_s=wait,
                    coarse=True,
                )
            # The budget cannot cover the wait plus one service time:
            # admitting would only let the request expire in queue.
            return AdmissionDecision(
                admitted=False,
                estimated_wait_s=wait,
                reason="deadline",
                retry_after_s=round(max(wait - budget, 0.0) + p50, 4),
            )
        # Degrade the *service* portion of the budget, never the queue
        # portion: an effective deadline below the predicted wait would
        # admit a request that reaches its worker already expired.
        effective = wait + (budget - wait) * factor
        return AdmissionDecision(
            admitted=True,
            effective_deadline=effective,
            degrade_factor=factor,
            estimated_wait_s=wait,
        )
