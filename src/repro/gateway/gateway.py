"""The asyncio multi-tenant serving gateway.

Everything below this module is a synchronous in-process library with
exactly one caller; :class:`Gateway` is the front door that keeps the
library's guarantees when thousands of concurrent sessions contend for
the same summaries.  One request's life:

1. **Resolve + validate.**  The tenant/dataset pair is looked up in the
   :class:`~repro.gateway.catalog.TenantCatalog` and the region is
   validated against the dataset's grid -- malformed requests bounce
   with :class:`~repro.errors.InvalidRegionError` before they cost a
   queue slot.
2. **Quota.**  The tenant's concurrency quota is taken (non-blocking);
   exhaustion raises :class:`~repro.errors.TenantQuotaExceededError`
   with a retry hint, leaving other tenants untouched.
3. **Admission triage.**  The
   :class:`~repro.gateway.admission.AdmissionController` predicts the
   queue wait from a sliding window of observed service times.  Requests
   whose budget cannot cover it are shed *now* with
   :class:`~repro.errors.OverloadedError` (retry-after hint attached)
   instead of being admitted to time out; under pressure short of
   shedding, the effective deadline is shrunk so the resilience layer
   degrades (partial rasters with validity masks) rather than rejects.
4. **Coalescing.**  Concurrent identical computations -- same answering
   scope (summary identity *and generation*, estimator, relation field),
   same region cells, same tiling -- share one in-flight task via keyed
   futures.  Followers ride the leader's computation; estimators are
   deterministic, so the shared raster is bit-identical to what each
   follower would have computed.  The shared task is owned by the
   gateway, not by any single waiter: a cancelled (or shed) leader never
   tears the computation out from under its followers.
5. **Dispatch backstop.**  Queue-wait prediction can be wrong; when a
   request reaches its worker with its client budget already spent, it
   is shed there (still a structured ``OverloadedError``) rather than
   allowed to run to a result nobody is waiting for.  "Admitted, then
   timed out in queue" is therefore not an outcome this gateway has.

The blocking ``browse`` calls run on a bounded thread-pool executor;
all gateway bookkeeping (pending counts, coalescing map, stats) is
touched only from the event loop, so it needs no locks.  The clock is
injectable, like the rest of the serving stack.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.browse.resilience import ResilientBrowsingService
from repro.browse.service import BrowseResult, resolve_browse_request
from repro.errors import (
    BrowseError,
    DeadlineExceededError,
    EstimatorFailedError,
    InvalidRegionError,
    OverloadedError,
    SummaryCorruptError,
    TenantQuotaExceededError,
)
from repro.gateway.admission import AdmissionController, AdmissionDecision, ServiceTimeWindow
from repro.gateway.catalog import TenantCatalog
from repro.geometry.rect import Rect
from repro.grid.tiles_math import TileQuery
from repro.obs.instruments import BrowseInstrumentation

__all__ = [
    "Gateway",
    "GatewayResponse",
    "TileRequest",
    "decode_error",
    "encode_error",
]

Clock = Callable[[], float]


@dataclass(frozen=True)
class TileRequest:
    """One client request: a tenant's tiled relation query.

    ``deadline_s`` is the client's *total* budget in seconds, queue wait
    included (``None`` = unbounded; ``0.0`` = answer only what is free
    -- cache hits and viewport-delta copies).  ``session`` keys the
    viewport-delta tracker; the gateway namespaces it per tenant, so two
    tenants' ``"default"`` sessions never share reuse state.
    """

    tenant: str
    dataset: str
    region: Rect | TileQuery
    rows: int
    cols: int
    relation: str = "overlap"
    deadline_s: float | None = None
    session: str = "default"


@dataclass(frozen=True)
class GatewayResponse:
    """The gateway's structured answer to one :class:`TileRequest`.

    ``status`` is ``"ok"`` (complete raster at full resolution),
    ``"degraded"`` (partial raster -- some tiles NaN under the validity
    mask -- or a complete raster with some tiles served from a coarse
    pyramid level) or ``"error"`` (no raster; ``error`` holds the wire
    form of the taxonomy failure, see :func:`encode_error`).  ``coalesced`` marks responses served by
    another request's in-flight computation.  ``degrade_factor`` is the
    fraction of the client budget admission control preserved (1.0 =
    full quality), ``queue_wait_s``/``service_s`` the dispatch split,
    and ``total_s`` the end-to-end gateway latency.
    """

    status: str
    request: TileRequest
    result: BrowseResult | None = None
    error: dict | None = field(default=None)
    coalesced: bool = False
    degrade_factor: float = 1.0
    estimated_wait_s: float = 0.0
    queue_wait_s: float = 0.0
    service_s: float = 0.0
    total_s: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether a raster came back (complete or degraded)."""
        return self.error is None

    @property
    def shed(self) -> bool:
        """Whether the request was rejected by load-shedding or quota."""
        return self.error is not None and self.error.get("code") in (
            "overloaded",
            "tenant_quota_exceeded",
        )

    @property
    def valid_fraction(self) -> float:
        """Fraction of tiles answered (0.0 for error responses)."""
        if self.result is None:
            return 0.0
        return self.result.valid_fraction

    def to_wire(self) -> dict:
        """A JSON-safe rendering (the TCP server's response line)."""
        doc: dict = {
            "status": self.status,
            "coalesced": self.coalesced,
            "degrade_factor": round(self.degrade_factor, 4),
            "queue_wait_s": round(self.queue_wait_s, 6),
            "service_s": round(self.service_s, 6),
            "total_s": round(self.total_s, 6),
        }
        if self.result is not None:
            counts = self.result.counts
            doc["counts"] = [
                [None if not np.isfinite(v) else float(v) for v in row]
                for row in counts
            ]
            doc["valid_fraction"] = round(self.result.valid_fraction, 4)
            if self.result.levels is not None:
                # Pyramid-refined raster: surface the coarsest level any
                # tile was served at, so clients can render a "refining
                # ..." affordance.
                doc["coarsest_level"] = int(self.result.levels.max())
        if self.error is not None:
            doc["error"] = self.error
        return doc


# --------------------------------------------------------------------- #
# the error wire codec (taxonomy <-> structured responses)
# --------------------------------------------------------------------- #

#: Wire code -> taxonomy class, most specific first (encode walks this
#: with ``isinstance``, so a subclass never degrades to its parent code).
_WIRE_CODES: tuple[tuple[str, type[BrowseError]], ...] = (
    ("tenant_quota_exceeded", TenantQuotaExceededError),
    ("overloaded", OverloadedError),
    ("deadline_exceeded", DeadlineExceededError),
    ("estimator_failed", EstimatorFailedError),
    ("summary_corrupt", SummaryCorruptError),
    ("invalid_region", InvalidRegionError),
    ("browse_error", BrowseError),
)


def encode_error(exc: BrowseError) -> dict:
    """The taxonomy failure as a JSON-safe wire document.

    Carries the code, the message, and the subclass's structured fields
    (``retry_after_s``, ``tenant``, ``answered_rows``/``total_rows``);
    :func:`decode_error` reverses it exactly, which is what lets a
    remote client re-raise the same taxonomy type the gateway caught.
    """
    for code, cls in _WIRE_CODES:
        if isinstance(exc, cls):
            break
    else:  # pragma: no cover - BrowseError is the universal fallback
        code = "browse_error"
    doc: dict = {"code": code, "message": str(exc)}
    if isinstance(exc, OverloadedError):
        doc["retry_after_s"] = exc.retry_after_s
    if isinstance(exc, TenantQuotaExceededError):
        doc["tenant"] = exc.tenant
    if isinstance(exc, DeadlineExceededError):
        doc["answered_rows"] = exc.answered_rows
        doc["total_rows"] = exc.total_rows
    return doc


def decode_error(doc: dict) -> BrowseError:
    """Rebuild the taxonomy exception a wire document encodes."""
    code = doc.get("code", "browse_error")
    message = doc.get("message", "")
    if code == "tenant_quota_exceeded":
        return TenantQuotaExceededError(
            message,
            retry_after_s=doc.get("retry_after_s"),
            tenant=doc.get("tenant", ""),
        )
    if code == "overloaded":
        return OverloadedError(message, retry_after_s=doc.get("retry_after_s"))
    if code == "deadline_exceeded":
        return DeadlineExceededError(
            message,
            answered_rows=doc.get("answered_rows", 0),
            total_rows=doc.get("total_rows", 0),
        )
    if code == "estimator_failed":
        return EstimatorFailedError(message)
    if code == "summary_corrupt":
        return SummaryCorruptError(message)
    if code == "invalid_region":
        return InvalidRegionError(message)
    return BrowseError(message)


class Gateway:
    """The asyncio serving gateway (see the module docstring).

    Parameters
    ----------
    catalog:
        The tenant catalog supplying per-``(tenant, dataset)`` services
        and per-tenant quotas.
    workers:
        Executor threads running the blocking ``browse`` calls; also the
        divisor of the admission controller's wait estimates.
    max_pending:
        Bound on concurrently admitted computations (the admission
        queue); arrivals beyond it are shed.
    coalesce:
        Share one in-flight computation between concurrent identical
        requests (on by default).
    instruments:
        Optional :class:`~repro.obs.instruments.BrowseInstrumentation`;
        records the ``repro_gateway_*`` metric families.
    clock:
        Injectable monotonic seconds.
    admission:
        A prebuilt controller (tests); overrides ``max_pending`` and the
        default window.
    """

    def __init__(
        self,
        catalog: TenantCatalog,
        *,
        workers: int = 2,
        max_pending: int = 64,
        coalesce: bool = True,
        instruments: BrowseInstrumentation | None = None,
        clock: Clock = time.monotonic,
        admission: AdmissionController | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self._catalog = catalog
        self._workers = workers
        self._clock = clock
        self._obs = instruments
        self._coalesce = coalesce
        if admission is None:
            window = ServiceTimeWindow(clock=clock)
            admission = AdmissionController(
                workers=workers, max_pending=max_pending, window=window
            )
        self._admission = admission
        self._window = admission.window
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-gateway"
        )
        self._pending = 0
        self._inflight: dict[tuple, asyncio.Task] = {}
        self._closed = False
        #: Plain counters for the load generator and benchmarks (event
        #: loop only, so no locking): admissions, sheds by site, etc.
        self.stats: dict[str, int] = {
            "requests": 0,
            "admitted": 0,
            "completed": 0,
            "shed_queue_full": 0,
            "shed_deadline": 0,
            "shed_dispatch": 0,
            "shed_shutdown": 0,
            "quota_rejections": 0,
            "coalesced_leaders": 0,
            "coalesced_followers": 0,
            "degraded_admissions": 0,
            "coarse_admissions": 0,
            "errors": 0,
        }

    @property
    def catalog(self) -> TenantCatalog:
        """The tenant catalog behind this gateway."""
        return self._catalog

    @property
    def pending(self) -> int:
        """Computations admitted and not yet completed."""
        return self._pending

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run (or is running)."""
        return self._closed

    # ------------------------------------------------------------------ #
    # the serving surface
    # ------------------------------------------------------------------ #

    async def submit(self, request: TileRequest) -> GatewayResponse:
        """Serve one request, always returning a structured response.

        Taxonomy failures (invalid requests, shedding, quota, estimator
        exhaustion) come back as ``status="error"`` responses with the
        wire-encoded exception -- they never raise.  Anything *outside*
        the taxonomy escaping here is a bug, exactly as for the layers
        below.
        """
        started = self._clock()
        self.stats["requests"] += 1
        obs = self._obs
        try:
            result, meta = await self._browse(request)
        except asyncio.CancelledError:
            raise
        except BrowseError as exc:
            self._note_error(exc)
            if obs is not None:
                obs.gateway_requests.labels(
                    tenant=request.tenant, outcome=self._outcome_of(exc)
                ).inc()
            return GatewayResponse(
                status="error",
                request=request,
                error=encode_error(exc),
                total_s=self._clock() - started,
            )
        total = self._clock() - started
        # A raster that is complete but pyramid-coarse somewhere is
        # still a degraded answer: every tile has a value, not every
        # tile is at the requested resolution.
        status = "ok" if result.is_complete and result.full_resolution else "degraded"
        if obs is not None:
            obs.gateway_requests.labels(
                tenant=request.tenant, outcome=status
            ).inc()
        return GatewayResponse(
            status=status,
            request=request,
            result=result,
            coalesced=meta["coalesced"],
            degrade_factor=meta["degrade_factor"],
            estimated_wait_s=meta["estimated_wait_s"],
            queue_wait_s=meta["queue_wait_s"],
            service_s=meta["service_s"],
            total_s=total,
        )

    def _outcome_of(self, exc: BrowseError) -> str:
        if isinstance(exc, TenantQuotaExceededError):
            return "quota"
        if isinstance(exc, OverloadedError):
            return "shed"
        return "error"

    def _note_error(self, exc: BrowseError) -> None:
        if isinstance(exc, TenantQuotaExceededError):
            self.stats["quota_rejections"] += 1
        elif not isinstance(exc, OverloadedError):
            self.stats["errors"] += 1
        # OverloadedError shed sites are counted where they are raised.

    async def _browse(self, request: TileRequest) -> tuple[BrowseResult, dict]:
        """The raising core of :meth:`submit` (tests drive it directly
        to assert taxonomy types)."""
        if self._closed:
            raise OverloadedError("gateway is shut down", retry_after_s=None)
        service = self._catalog.service(request.tenant, request.dataset)
        region, field_name = resolve_browse_request(
            service.grid, request.region, request.relation
        )
        tenant = self._catalog.tenant(request.tenant)
        if not tenant.try_acquire():
            p50 = self._window.p50()
            raise TenantQuotaExceededError(
                f"tenant {request.tenant!r} is at its quota of "
                f"{tenant.quota} concurrent request(s)",
                retry_after_s=round(p50, 4),
                tenant=request.tenant,
            )
        try:
            return await self._admit_and_run(request, service, region, field_name)
        finally:
            tenant.release()

    async def _admit_and_run(
        self,
        request: TileRequest,
        service: ResilientBrowsingService,
        region: TileQuery,
        field_name: str,
    ) -> tuple[BrowseResult, dict]:
        obs = self._obs
        decision = self._admission.triage(
            budget=request.deadline_s,
            pending=self._pending,
            # A pyramid-backed service gives triage a second axis of
            # degradation: a budget too short for fine-grid work can
            # still buy a complete coarse raster, so degrade to a
            # coarser level before shedding on "deadline".
            coarse_capable=service.pyramid is not None,
        )
        if not decision.admitted:
            self.stats[f"shed_{decision.reason}"] += 1
            if obs is not None:
                obs.gateway_shed.labels(reason=decision.reason).inc()
            raise OverloadedError(
                f"request shed at admission ({decision.reason}): estimated "
                f"queue wait {decision.estimated_wait_s:.3f}s exceeds the "
                f"budget of "
                + (
                    "0s"
                    if request.deadline_s is None
                    else f"{request.deadline_s:.3f}s"
                ),
                retry_after_s=decision.retry_after_s,
            )
        self.stats["admitted"] += 1
        if decision.degrade_factor < 1.0:
            self.stats["degraded_admissions"] += 1
        if decision.coarse:
            self.stats["coarse_admissions"] += 1
        if obs is not None:
            obs.gateway_degrade_factor.set(decision.degrade_factor)

        # Coalescing: identical in-flight computations share one task.
        # The key is the full answering scope (summary identity and
        # generation, estimator, relation field -- via the service's
        # cache key) plus the canonical region cells and the tiling, so
        # a maintained summary's generation bump splits the key and two
        # tenants over the *same* summary may legitimately share work.
        key = (
            service.cache_key(field_name),
            region,
            request.rows,
            request.cols,
            request.relation,
        )
        task = self._inflight.get(key) if self._coalesce else None
        if task is None or task.done():
            coalesced = False
            task = asyncio.get_running_loop().create_task(
                self._run(request, service, region, decision)
            )
            self._pending += 1
            if obs is not None:
                obs.gateway_queue_depth.set(self._pending)
            task.add_done_callback(lambda t, k=key: self._on_done(k, t))
            if self._coalesce:
                self._inflight[key] = task
                self.stats["coalesced_leaders"] += 1
                if obs is not None:
                    obs.gateway_coalesced.labels(role="leader").inc()
        else:
            coalesced = True
            self.stats["coalesced_followers"] += 1
            if obs is not None:
                obs.gateway_coalesced.labels(role="follower").inc()

        # Shield: the computation belongs to the gateway, not to any one
        # waiter.  Cancelling this request (client gone) must not cancel
        # a leader computation other followers are riding.
        try:
            result, queue_wait, service_s = await asyncio.shield(task)
        except asyncio.CancelledError:
            if task.cancelled():
                # The *task* was cancelled (gateway shutdown), not us.
                self.stats["shed_shutdown"] += 1
                raise OverloadedError(
                    "gateway shut down while the request was in flight",
                    retry_after_s=None,
                ) from None
            raise
        return result, {
            "coalesced": coalesced,
            "degrade_factor": decision.degrade_factor,
            "estimated_wait_s": decision.estimated_wait_s,
            "queue_wait_s": queue_wait,
            "service_s": service_s,
        }

    async def _run(
        self,
        request: TileRequest,
        service: ResilientBrowsingService,
        region: TileQuery,
        decision: AdmissionDecision,
    ) -> tuple[BrowseResult, float, float]:
        """The shared (leader) computation: one executor dispatch."""
        admitted_at = self._clock()
        clock = self._clock

        def work() -> tuple[BrowseResult, float, float]:
            started = clock()
            queue_wait = started - admitted_at
            budget = request.deadline_s
            if budget is not None and budget > 0 and queue_wait >= budget:
                # Backstop for wrong wait estimates: shed at dispatch
                # instead of computing a raster whose deadline already
                # passed.  Admission triage makes this rare; the bench
                # gates on it staying at zero in steady state.
                raise OverloadedError(
                    f"budget of {budget:.3f}s expired after "
                    f"{queue_wait:.3f}s in queue",
                    retry_after_s=round(self._window.p50(), 4),
                )
            remaining = None
            if decision.effective_deadline is not None:
                remaining = max(0.0, decision.effective_deadline - queue_wait)
            result = service.browse(
                region,
                request.rows,
                request.cols,
                request.relation,
                deadline=remaining,
                session=f"{request.tenant}/{request.session}",
            )
            return result, queue_wait, clock() - started

        loop = asyncio.get_running_loop()
        try:
            result, queue_wait, service_s = await loop.run_in_executor(
                self._executor, work
            )
        except OverloadedError:
            self.stats["shed_dispatch"] += 1
            if self._obs is not None:
                self._obs.gateway_shed.labels(reason="dispatch_expired").inc()
            raise
        self._window.observe(service_s)
        self.stats["completed"] += 1
        if self._obs is not None:
            self._obs.gateway_queue_wait.observe(queue_wait)
            self._obs.gateway_service_seconds.observe(service_s)
        return result, queue_wait, service_s

    def _on_done(self, key: tuple, task: asyncio.Task) -> None:
        self._pending -= 1
        if self._obs is not None:
            self._obs.gateway_queue_depth.set(self._pending)
        if self._inflight.get(key) is task:
            del self._inflight[key]
        # Consume the exception so a computation whose waiters were all
        # cancelled never logs "exception was never retrieved".
        if not task.cancelled():
            task.exception()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    async def close(self) -> None:
        """Shut the gateway down: stop admitting, cancel in-flight
        shared computations, drain the executor, close the catalog's
        services.  Idempotent; waiters of cancelled computations receive
        a structured shutdown :class:`~repro.errors.OverloadedError`."""
        if self._closed:
            return
        self._closed = True
        tasks = list(self._inflight.values())
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        # Executor jobs already running cannot be interrupted; wait for
        # them so catalog close never races a browse mid-chunk.
        await asyncio.get_running_loop().run_in_executor(
            None, self._executor.shutdown, True
        )
        self._catalog.close()
