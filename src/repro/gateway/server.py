"""A JSON-lines TCP surface over the gateway (stdlib asyncio only).

One connection carries many requests: the client writes one JSON object
per line, the server answers with one JSON line per request, in order.
The protocol exists so the gateway can be exercised by real concurrent
clients (the ``repro loadgen`` tool, smoke tests, a curl-equivalent
``python -c`` one-liner) without taking a web-framework dependency.

Request line::

    {"tenant": "acme", "dataset": "gauss", "region": [x_lo, x_hi, y_lo, y_hi],
     "rows": 4, "cols": 4, "relation": "overlap", "deadline_s": 0.5,
     "session": "u1"}

``region`` is a world rectangle (``[x_lo, x_hi, y_lo, y_hi]``) or a cell
span (``{"cells": [qx_lo, qx_hi, qy_lo, qy_hi]}``).  The response line
is :meth:`~repro.gateway.gateway.GatewayResponse.to_wire`.  A line that
is not valid JSON (or not an object) yields an ``invalid_region`` error
response rather than dropping the connection -- one bad request must not
kill a session multiplexing many.
"""

from __future__ import annotations

import asyncio
import json

from repro.errors import InvalidRegionError
from repro.gateway.gateway import Gateway, TileRequest, encode_error
from repro.geometry.rect import Rect
from repro.grid.tiles_math import TileQuery

__all__ = ["GatewayServer", "parse_request"]

#: Cap on one request line; a run-on line without a newline would
#: otherwise buffer without bound.
MAX_LINE_BYTES = 1 << 20


def parse_request(doc: dict) -> TileRequest:
    """Build a :class:`TileRequest` from one decoded request line.

    Every malformed shape raises
    :class:`~repro.errors.InvalidRegionError`, keeping protocol errors
    inside the taxonomy the gateway already maps to structured
    responses.
    """
    if not isinstance(doc, dict):
        raise InvalidRegionError("request line must be a JSON object")
    try:
        tenant = doc["tenant"]
        dataset = doc["dataset"]
        raw_region = doc["region"]
        rows = int(doc["rows"])
        cols = int(doc["cols"])
    except (KeyError, TypeError, ValueError) as exc:
        raise InvalidRegionError(f"malformed request line: {exc!r}") from exc
    region: Rect | TileQuery
    try:
        if isinstance(raw_region, dict):
            cells = raw_region["cells"]
            region = TileQuery(int(cells[0]), int(cells[1]), int(cells[2]), int(cells[3]))
        else:
            region = Rect(
                float(raw_region[0]),
                float(raw_region[1]),
                float(raw_region[2]),
                float(raw_region[3]),
            )
    except InvalidRegionError:
        raise
    except (KeyError, IndexError, TypeError, ValueError) as exc:
        raise InvalidRegionError(f"malformed region: {exc!r}") from exc
    deadline_s = doc.get("deadline_s")
    if deadline_s is not None:
        try:
            deadline_s = float(deadline_s)
        except (TypeError, ValueError) as exc:
            raise InvalidRegionError(f"malformed deadline_s: {exc!r}") from exc
    return TileRequest(
        tenant=str(tenant),
        dataset=str(dataset),
        region=region,
        rows=rows,
        cols=cols,
        relation=str(doc.get("relation", "overlap")),
        deadline_s=deadline_s,
        session=str(doc.get("session", "default")),
    )


class GatewayServer:
    """The JSON-lines listener; owns the socket, never the gateway.

    The gateway is passed in so tests and the CLI can share one across
    a server plus in-process clients; closing the server stops the
    listener and outstanding connection handlers but leaves the gateway
    serving.
    """

    def __init__(self, gateway: Gateway, *, host: str = "127.0.0.1", port: int = 0) -> None:
        self._gateway = gateway
        self._host = host
        self._port = port
        self._server: asyncio.AbstractServer | None = None

    @property
    def port(self) -> int:
        """The bound port (useful when constructed with ``port=0``)."""
        if self._server is None:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Bind and start accepting connections."""
        if self._server is not None:
            raise RuntimeError("server is already started")
        self._server = await asyncio.start_server(
            self._handle, self._host, self._port, limit=MAX_LINE_BYTES
        )

    async def close(self) -> None:
        """Stop listening and wait for connection handlers to finish."""
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None

    async def serve_forever(self) -> None:
        """Block serving until cancelled (the CLI's foreground mode)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # A run-on line past the buffer limit: the framing is
                    # broken beyond recovery for this connection.
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                doc = await self._respond(line)
                writer.write(json.dumps(doc).encode() + b"\n")
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _respond(self, line: bytes) -> dict:
        try:
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as exc:
                raise InvalidRegionError(f"request line is not JSON: {exc}") from exc
            request = parse_request(doc)
        except InvalidRegionError as exc:
            return {"status": "error", "error": encode_error(exc)}
        response = await self._gateway.submit(request)
        return response.to_wire()
