"""CSV export of experiment results.

The text tables of :mod:`repro.experiments.report` are for reading; these
writers emit the same series as CSV so users can re-plot the paper's
figures with their tool of choice (``python -m repro.experiments`` keeps
printing text; benchmarks call these when an output directory is given).
"""

from __future__ import annotations

import csv
import os
from pathlib import Path

from repro.experiments.figures import ErrorCurves, ScatterResult, TimingResult

__all__ = [
    "write_error_curves_csv",
    "write_scatter_csv",
    "write_timing_csv",
]


def _open_writer(path: str | os.PathLike):
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    return path.open("w", newline="")


def write_error_curves_csv(result: ErrorCurves, path: str | os.PathLike) -> None:
    """Long-format CSV: figure, curve label, relation, tile size, ARE."""
    with _open_writer(path) as handle:
        writer = csv.writer(handle)
        writer.writerow(["figure", "algorithm", "label", "relation", "tile_size", "are"])
        for label, relations in result.curves.items():
            for relation, by_size in relations.items():
                for tile_size in result.tile_sizes:
                    writer.writerow(
                        [
                            result.figure,
                            result.algorithm,
                            label,
                            relation,
                            tile_size,
                            by_size[tile_size],
                        ]
                    )


def write_scatter_csv(result: ScatterResult, path: str | os.PathLike) -> None:
    """Long-format CSV of every (exact, estimated) scatter point."""
    with _open_writer(path) as handle:
        writer = csv.writer(handle)
        writer.writerow(["figure", "algorithm", "dataset", "relation", "exact", "estimated"])
        for dataset, relations in result.points.items():
            for relation, points in relations.items():
                for exact, estimated in points:
                    writer.writerow(
                        [result.figure, result.algorithm, dataset, relation, exact, estimated]
                    )


def write_timing_csv(result: TimingResult, path: str | os.PathLike) -> None:
    """Long-format CSV: algorithm, tile size, #queries, seconds."""
    with _open_writer(path) as handle:
        writer = csv.writer(handle)
        writer.writerow(["figure", "algorithm", "tile_size", "num_queries", "seconds"])
        for algorithm, by_size in result.seconds.items():
            for tile_size, seconds in by_size.items():
                writer.writerow(
                    [
                        result.figure,
                        algorithm,
                        tile_size,
                        result.num_queries[tile_size],
                        seconds,
                    ]
                )
