"""Experiment harness: one function per paper table/figure.

Every figure of Section 6 has a generator here that returns a structured
result (and can render it as a text table).  ``python -m repro.experiments``
runs the full evaluation and prints every figure; the per-figure benchmark
files under ``benchmarks/`` call the same functions.

Scale: the paper uses 1M-2.6M-object datasets.  The harness scales them by
the ``REPRO_SCALE`` environment variable (default 0.1, i.e. 100k-260k
objects); relative-error results are size-stable, so the figures' shapes
are unaffected (set ``REPRO_SCALE=1`` to run the paper's full sizes).
"""

from repro.experiments.config import ExperimentConfig, Workbench
from repro.experiments.figures import (
    fig13_s_euler_scatter,
    fig14_s_euler_errors,
    fig15_euler_scatter,
    fig16_euler_errors,
    fig17_multi2_errors,
    fig18_multi_m_errors,
    fig19_query_times,
    storage_bound_table,
)
from repro.experiments.runner import estimate_tiling, tiling_errors

__all__ = [
    "ExperimentConfig",
    "Workbench",
    "estimate_tiling",
    "tiling_errors",
    "fig13_s_euler_scatter",
    "fig14_s_euler_errors",
    "fig15_euler_scatter",
    "fig16_euler_errors",
    "fig17_multi2_errors",
    "fig18_multi_m_errors",
    "fig19_query_times",
    "storage_bound_table",
]
