"""Shared experiment plumbing: run an estimator over a whole tiling and
score it against the exact tiling counts."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.euler.base import Level2Estimator, as_batch_estimator
from repro.exact.tiling import TilingCounts
from repro.grid.grid import Grid
from repro.grid.tiles_math import TileQueryBatch
from repro.metrics.errors import average_relative_error

__all__ = ["EstimatedTiling", "estimate_tiling", "tiling_errors"]

#: Level2Counts field per reported relation.
FIELDS = ("n_d", "n_cs", "n_cd", "n_o")


@dataclass(frozen=True)
class EstimatedTiling:
    """An estimator's answers over a complete tiling, field arrays shaped
    like the matching :class:`TilingCounts`."""

    tile_size: int
    n_d: np.ndarray
    n_cs: np.ndarray
    n_cd: np.ndarray
    n_o: np.ndarray


def estimate_tiling(estimator: Level2Estimator, grid: Grid, tile_size: int) -> EstimatedTiling:
    """Run ``estimator`` over every tile of the complete ``Q_n`` tiling.

    All ``tiles_x * tiles_y`` queries go through one ``estimate_batch``
    call (the batch kernels are per-query-independent elementwise
    arithmetic, so the answers are bit-identical to the scalar loop this
    replaces), laid out tx-outer / ty-inner to match the ``(tx, ty)``
    array shape.
    """
    if grid.n1 % tile_size or grid.n2 % tile_size:
        raise ValueError(f"tile size {tile_size} does not divide the grid")
    tiles_x, tiles_y = grid.n1 // tile_size, grid.n2 // tile_size
    tx, ty = np.meshgrid(np.arange(tiles_x), np.arange(tiles_y), indexing="ij")
    tx = tx.reshape(-1)
    ty = ty.reshape(-1)
    batch = TileQueryBatch(
        tx * tile_size, (tx + 1) * tile_size, ty * tile_size, (ty + 1) * tile_size
    )
    counts = as_batch_estimator(estimator).estimate_batch(batch)
    arrays = {
        f: np.asarray(getattr(counts, f), dtype=np.float64).reshape(tiles_x, tiles_y)
        for f in FIELDS
    }
    return EstimatedTiling(tile_size=tile_size, **arrays)


def tiling_errors(truth: TilingCounts, estimated: EstimatedTiling) -> dict[str, float]:
    """Average relative error per relation over the whole tiling."""
    if truth.shape != estimated.n_d.shape:
        raise ValueError("truth and estimate cover different tilings")
    return {
        f: average_relative_error(getattr(truth, f), getattr(estimated, f)) for f in FIELDS
    }
