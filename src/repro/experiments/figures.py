"""Per-figure experiment generators for Section 6 of the paper.

Each ``figNN_*`` function runs the corresponding experiment on a
:class:`~repro.experiments.config.Workbench` and returns a plain result
object; :mod:`repro.experiments.report` renders them as text tables and
``python -m repro.experiments`` runs them all.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.config import MULTI_THRESHOLD_SCHEDULES, Workbench
from repro.experiments.runner import estimate_tiling, tiling_errors
from repro.exact.storage import storage_comparison_row
from repro.metrics.errors import scatter_points
from repro.metrics.timing import time_query_batch
from repro.workloads.tiles import query_set

__all__ = [
    "ScatterResult",
    "ErrorCurves",
    "TimingResult",
    "fig12_dataset_profiles",
    "fig13_s_euler_scatter",
    "fig14_s_euler_errors",
    "fig15_euler_scatter",
    "fig16_euler_errors",
    "fig17_multi2_errors",
    "fig18_multi_m_errors",
    "fig19_query_times",
    "storage_bound_table",
]

#: Datasets of the full evaluation (Section 6.1.1).
ALL_DATASETS = ("sp_skew", "sz_skew", "adl", "ca_road")
#: Datasets retained for the Level-2-stress experiments (Sections 6.3/6.4).
LARGE_OBJECT_DATASETS = ("adl", "sz_skew")


@dataclass(frozen=True)
class ScatterResult:
    """A Figure 13/15-style experiment: per-dataset (exact, estimated)
    point clouds for selected relations on one query set."""

    figure: str
    algorithm: str
    tile_size: int
    #: ``points[dataset][relation] -> [(exact, estimated), ...]``
    points: dict[str, dict[str, list[tuple[float, float]]]]
    #: ``are[dataset][relation] -> average relative error`` (the scalar
    #: summary of how far the cloud sits from the y = x line).
    are: dict[str, dict[str, float]]


@dataclass(frozen=True)
class ErrorCurves:
    """A Figure 14/16/17/18-style experiment: ARE as a function of query
    size, per dataset (or per configuration) and relation.

    ``curves[label][relation][tile_size] -> ARE``.
    """

    figure: str
    algorithm: str
    tile_sizes: tuple[int, ...]
    curves: dict[str, dict[str, dict[int, float]]]


@dataclass(frozen=True)
class TimingResult:
    """Figure 19: wall-clock seconds per complete query set.

    ``seconds[algorithm][tile_size] -> seconds`` and
    ``num_queries[tile_size]`` for per-query normalisation.
    """

    figure: str
    seconds: dict[str, dict[int, float]]
    num_queries: dict[int, int]


def _scatter(
    bench: Workbench,
    figure: str,
    algorithm_of,
    datasets: tuple[str, ...],
    relations: tuple[str, ...],
    tile_size: int,
) -> ScatterResult:
    points: dict[str, dict[str, list[tuple[float, float]]]] = {}
    are: dict[str, dict[str, float]] = {}
    algorithm_name = ""
    for name in datasets:
        estimator = algorithm_of(name)
        algorithm_name = estimator.name
        truth = bench.truth(name, tile_size)
        estimated = estimate_tiling(estimator, bench.grid, tile_size)
        errors = tiling_errors(truth, estimated)
        points[name] = {
            rel: scatter_points(getattr(truth, rel), getattr(estimated, rel))
            for rel in relations
        }
        are[name] = {rel: errors[rel] for rel in relations}
    return ScatterResult(
        figure=figure,
        algorithm=algorithm_name,
        tile_size=tile_size,
        points=points,
        are=are,
    )


def _error_curves(
    bench: Workbench,
    figure: str,
    labelled_estimators,
    relations: tuple[str, ...],
    tile_sizes: tuple[int, ...],
) -> ErrorCurves:
    curves: dict[str, dict[str, dict[int, float]]] = {}
    algorithm_name = ""
    for label, dataset_name, estimator in labelled_estimators:
        algorithm_name = estimator.name
        per_relation: dict[str, dict[int, float]] = {rel: {} for rel in relations}
        for n in tile_sizes:
            truth = bench.truth(dataset_name, n)
            estimated = estimate_tiling(estimator, bench.grid, n)
            errors = tiling_errors(truth, estimated)
            for rel in relations:
                per_relation[rel][n] = errors[rel]
        curves[label] = per_relation
    return ErrorCurves(
        figure=figure, algorithm=algorithm_name, tile_sizes=tuple(tile_sizes), curves=curves
    )


def fig12_dataset_profiles(bench: Workbench) -> dict[str, dict[str, object]]:
    """Figure 12: the dataset-shape figures.

    (a) sp_skew object-center distribution -- summarised as occupancy
    concentration over 10x10-degree blocks (the scatter plot's visual
    content: a few dense clusters, large empty areas);
    (b) sz_skew object-width distribution -- the Zipf histogram over
    doubling width bins.

    The other datasets' profiles are included for the record.
    """
    profiles: dict[str, dict[str, object]] = {}
    for name in ALL_DATASETS:
        data = bench.dataset(name)
        cx = np.clip(((data.x_lo + data.x_hi) / 2.0 / 10.0).astype(int), 0, 35)
        cy = np.clip(((data.y_lo + data.y_hi) / 2.0 / 10.0).astype(int), 0, 17)
        occupancy = np.bincount(cx * 18 + cy, minlength=36 * 18).astype(float)
        occupancy.sort()
        top_share = float(occupancy[-6:].sum() / max(occupancy.sum(), 1.0))
        empty = float(np.mean(occupancy == 0))

        widths = data.widths
        bins = [0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 360.0]
        hist, _ = np.histogram(widths, bins=bins)
        profiles[name] = {
            "count": len(data),
            "top1pct_block_share": top_share,
            "empty_block_fraction": empty,
            "width_bins": bins,
            "width_hist": hist.tolist(),
            "width_mean": float(widths.mean()) if len(data) else 0.0,
        }
    return profiles


def fig13_s_euler_scatter(bench: Workbench, *, tile_size: int = 10) -> ScatterResult:
    """Figure 13: S-EulerApprox estimated-vs-exact ``N_o`` and ``N_cs``
    scatter on the ``Q_10`` query set, all four datasets."""
    return _scatter(
        bench, "Figure 13", bench.s_euler, ALL_DATASETS, ("n_o", "n_cs"), tile_size
    )


def fig14_s_euler_errors(bench: Workbench) -> ErrorCurves:
    """Figure 14: S-EulerApprox ARE of ``N_o`` (a) and ``N_cs`` (b) for
    every query set ``Q_2 .. Q_20``, all four datasets."""
    estimators = [(name, name, bench.s_euler(name)) for name in ALL_DATASETS]
    return _error_curves(
        bench, "Figure 14", estimators, ("n_o", "n_cs"), bench.config.query_sizes
    )


def fig15_euler_scatter(bench: Workbench, *, tile_size: int = 10) -> ScatterResult:
    """Figure 15: EulerApprox ``N_cd`` and ``N_cs`` scatter on ``Q_10``
    for the large-object datasets (adl, sz_skew)."""
    return _scatter(
        bench, "Figure 15", bench.euler, LARGE_OBJECT_DATASETS, ("n_cd", "n_cs"), tile_size
    )


def fig16_euler_errors(bench: Workbench) -> ErrorCurves:
    """Figure 16: EulerApprox ARE of ``N_cs`` and ``N_cd`` per query set,
    adl and sz_skew."""
    estimators = [(name, name, bench.euler(name)) for name in LARGE_OBJECT_DATASETS]
    return _error_curves(
        bench, "Figure 16", estimators, ("n_cs", "n_cd"), bench.config.query_sizes
    )


def fig17_multi2_errors(bench: Workbench) -> ErrorCurves:
    """Figure 17: M-EulerApprox with 2 histograms
    (``area(H_0)=1x1, area(H_1)=10x10``), adl and sz_skew."""
    estimators = [
        (name, name, bench.multi_euler(name, 2)) for name in LARGE_OBJECT_DATASETS
    ]
    return _error_curves(
        bench, "Figure 17", estimators, ("n_cs", "n_cd"), bench.config.query_sizes
    )


def fig18_multi_m_errors(bench: Workbench, *, dataset: str = "sz_skew") -> ErrorCurves:
    """Figure 18: M-EulerApprox with 3/4/5 histograms on sz_skew, the
    paper's threshold schedules."""
    estimators = [
        (f"m={m}", dataset, bench.multi_euler(dataset, m)) for m in (3, 4, 5)
    ]
    return _error_curves(
        bench, "Figure 18", estimators, ("n_cs", "n_cd"), bench.config.query_sizes
    )


def fig19_query_times(
    bench: Workbench,
    *,
    dataset: str = "adl",
    multi_histogram_counts: tuple[int, ...] = (2, 3, 4, 5),
    repeats: int = 3,
) -> TimingResult:
    """Figure 19: wall-clock time per complete query set.

    (a) S-EulerApprox vs EulerApprox vs M-EulerApprox(2);
    (b) M-EulerApprox for m = 2..5 -- the paper's observation is that all
    curves essentially coincide (index computation dominates).
    """
    estimators = {
        "S-EulerApprox": bench.s_euler(dataset),
        "EulerApprox": bench.euler(dataset),
    }
    for m in multi_histogram_counts:
        if m in MULTI_THRESHOLD_SCHEDULES:
            estimators[f"M-EulerApprox(m={m})"] = bench.multi_euler(dataset, m)

    seconds: dict[str, dict[int, float]] = {label: {} for label in estimators}
    num_queries: dict[int, int] = {}
    for n in bench.config.query_sizes:
        queries = query_set(bench.grid, n)
        num_queries[n] = len(queries)
        for label, estimator in estimators.items():
            seconds[label][n] = time_query_batch(
                estimator.estimate, queries, repeats=repeats
            )
    return TimingResult(figure="Figure 19", seconds=seconds, num_queries=num_queries)


def storage_bound_table(
    grids: tuple[tuple[int, int], ...] = ((10, 10), (36, 18), (90, 45), (180, 90), (360, 180)),
    *,
    bytes_per_bucket: int = 4,
) -> list[dict[str, float]]:
    """The Theorem 3.1 storage table: exact-contains lower bound vs Euler
    histogram size across grid resolutions, ending at the paper's ~4 GB
    360x180 example."""
    return [storage_comparison_row(dims, bytes_per_bucket=bytes_per_bucket) for dims in grids]
