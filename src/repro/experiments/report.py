"""Text rendering of experiment results.

The paper's figures are plots; the reproduction reports the same series as
aligned text tables (per-query-set ARE columns, scatter summaries, timing
rows) so results are diffable and greppable in CI logs and EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.figures import ErrorCurves, ScatterResult, TimingResult

__all__ = [
    "format_table",
    "render_error_curves",
    "render_scatter",
    "render_timing",
    "render_storage_table",
]

#: Display names of the relation fields.
_RELATION_LABELS = {"n_d": "N_d", "n_cs": "N_cs", "n_cd": "N_cd", "n_o": "N_o"}


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned, pipe-separated text table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for idx, row in enumerate(cells):
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
        if idx == 0:
            lines.append("-+-".join("-" * w for w in widths))
    return "\n".join(lines)


def _pct(value: float) -> str:
    # Zero-truth query sets legitimately produce an infinite ARE (see
    # average_relative_error); render it as "inf" rather than crashing or
    # printing "inf%".  NaN should not reach here (the metrics validate
    # their inputs) but must never silently masquerade as a percentage.
    if value != value:
        return "nan"
    if value == float("inf") or value == float("-inf"):
        return "inf" if value > 0 else "-inf"
    return f"{100.0 * value:.2f}%"


def render_error_curves(result: ErrorCurves) -> str:
    """One table per relation: rows = query sizes, columns = curves."""
    blocks = [f"{result.figure}: {result.algorithm} average relative error"]
    labels = list(result.curves)
    relations = list(next(iter(result.curves.values())))
    for rel in relations:
        headers = ["Q_n"] + labels
        rows = []
        for n in result.tile_sizes:
            rows.append([f"Q_{n}"] + [_pct(result.curves[lab][rel][n]) for lab in labels])
        blocks.append(f"\n[{_RELATION_LABELS.get(rel, rel)}]")
        blocks.append(format_table(headers, rows))
    return "\n".join(blocks)


def render_scatter(result: ScatterResult, *, max_points: int = 8) -> str:
    """Scatter summary: ARE per dataset/relation plus sample points."""
    blocks = [
        f"{result.figure}: {result.algorithm} estimated vs exact on Q_{result.tile_size}"
    ]
    headers = ["dataset", "relation", "ARE", "points (exact -> est, sample)"]
    rows = []
    for dataset, rels in result.points.items():
        for rel, points in rels.items():
            interesting = sorted(points, key=lambda p: -abs(p[0] - p[1]))[:max_points]
            sample = ", ".join(f"{r:.0f}->{e:.0f}" for r, e in interesting)
            rows.append(
                [dataset, _RELATION_LABELS.get(rel, rel), _pct(result.are[dataset][rel]), sample]
            )
    blocks.append(format_table(headers, rows))
    return "\n".join(blocks)


def render_timing(result: TimingResult) -> str:
    """Timing table: per-query-set wall-clock milliseconds per algorithm."""
    blocks = [f"{result.figure}: wall-clock per complete query set (ms)"]
    labels = list(result.seconds)
    sizes = sorted(result.num_queries, reverse=True)
    headers = ["Q_n", "#queries"] + labels + ["us/query (first alg)"]
    rows = []
    for n in sizes:
        per_query_us = 1e6 * result.seconds[labels[0]][n] / result.num_queries[n]
        rows.append(
            [f"Q_{n}", result.num_queries[n]]
            + [f"{1e3 * result.seconds[lab][n]:.2f}" for lab in labels]
            + [f"{per_query_us:.1f}"]
        )
    blocks.append(format_table(headers, rows))
    return "\n".join(blocks)


def render_dataset_profiles(profiles: dict) -> str:
    """Figure 12-style dataset profile table: spatial concentration and
    the object-width histogram per dataset."""
    headers = ["dataset", "count", "top-6-block share", "empty blocks", "width histogram (doubling bins from 0.5)"]
    rows = []
    for name, p in profiles.items():
        hist = " ".join(str(v) for v in p["width_hist"])
        rows.append(
            [
                name,
                f"{p['count']:,}",
                f"{100 * p['top1pct_block_share']:.1f}%",
                f"{100 * p['empty_block_fraction']:.1f}%",
                hist,
            ]
        )
    return "Figure 12: dataset profiles (10x10-degree occupancy, widths)\n" + format_table(
        headers, rows
    )


def render_storage_table(rows: Sequence[dict[str, float]]) -> str:
    """The Theorem 3.1 storage-bound table."""
    headers = ["grid", "exact buckets", "exact bytes", "euler buckets", "euler bytes", "ratio"]
    body = [
        [
            row["grid"],
            f"{int(row['exact_buckets']):,}",
            _human_bytes(row["exact_bytes"]),
            f"{int(row['euler_buckets']):,}",
            _human_bytes(row["euler_bytes"]),
            f"{row['ratio']:.0f}x",
        ]
        for row in rows
    ]
    return "Theorem 3.1 storage bound vs Euler histogram\n" + format_table(headers, body)


def _human_bytes(n: float) -> str:
    value = float(n)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if value < 1024.0 or unit == "TB":
            return f"{value:.1f}{unit}"
        value /= 1024.0
    raise AssertionError("unreachable")
