"""Run the complete Section 6 evaluation and print every figure.

Usage::

    python -m repro.experiments                 # default scale (0.1)
    REPRO_SCALE=1 python -m repro.experiments   # the paper's full sizes
    python -m repro.experiments --figures 14 18 # a subset
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.config import Workbench
from repro.experiments.figures import (
    fig12_dataset_profiles,
    fig13_s_euler_scatter,
    fig14_s_euler_errors,
    fig15_euler_scatter,
    fig16_euler_errors,
    fig17_multi2_errors,
    fig18_multi_m_errors,
    fig19_query_times,
    storage_bound_table,
)
from repro.experiments.report import (
    render_dataset_profiles,
    render_error_curves,
    render_scatter,
    render_storage_table,
    render_timing,
)

_RUNNERS = {
    "storage": lambda bench: render_storage_table(storage_bound_table()),
    "12": lambda bench: render_dataset_profiles(fig12_dataset_profiles(bench)),
    "13": lambda bench: render_scatter(fig13_s_euler_scatter(bench)),
    "14": lambda bench: render_error_curves(fig14_s_euler_errors(bench)),
    "15": lambda bench: render_scatter(fig15_euler_scatter(bench)),
    "16": lambda bench: render_error_curves(fig16_euler_errors(bench)),
    "17": lambda bench: render_error_curves(fig17_multi2_errors(bench)),
    "18": lambda bench: render_error_curves(fig18_multi_m_errors(bench)),
    "19": lambda bench: render_timing(fig19_query_times(bench)),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--figures",
        nargs="*",
        default=list(_RUNNERS),
        choices=list(_RUNNERS),
        help="which figures to run (default: all)",
    )
    args = parser.parse_args(argv)

    bench = Workbench()
    print(
        f"repro evaluation | scale={bench.config.scale} seed={bench.config.seed} "
        f"grid={bench.grid.n1}x{bench.grid.n2}",
        flush=True,
    )
    for key in args.figures:
        start = time.perf_counter()
        output = _RUNNERS[key](bench)
        elapsed = time.perf_counter() - start
        print(f"\n{'=' * 72}\n{output}\n({elapsed:.1f}s)", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
