"""Experiment configuration and the lazily-built workbench.

:class:`ExperimentConfig` pins the knobs of Section 6.1 (grid, dataset
sizes, query sets, M-Euler threshold schedules); :class:`Workbench`
materialises datasets, histograms, estimators and ground truth on demand
and memoises them, so the figure functions and benchmarks share work.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.datasets import by_name
from repro.datasets.base import RectDataset
from repro.euler.full import EulerApprox, QueryEdge
from repro.euler.histogram import EulerHistogram
from repro.euler.multi import MEulerApprox
from repro.euler.simple import SEulerApprox
from repro.exact.tiling import TilingCounts, exact_tiling_counts
from repro.grid.grid import Grid
from repro.workloads.tiles import PAPER_QUERY_SET_SIZES

__all__ = ["ExperimentConfig", "Workbench", "PAPER_DATASET_SIZES"]

#: The paper's dataset cardinalities (Section 6.1.1).
PAPER_DATASET_SIZES: dict[str, int] = {
    "sp_skew": 1_000_000,
    "sz_skew": 1_000_000,
    "adl": 2_335_840,
    "ca_road": 2_665_088,
}

#: Figure 18's M-EulerApprox threshold schedules, in unit-cell areas
#: (the paper writes them as side lengths: 1x1, 3x3, 5x5, 10x10, 15x15).
MULTI_THRESHOLD_SCHEDULES: dict[int, tuple[float, ...]] = {
    2: (1.0, 100.0),
    3: (1.0, 9.0, 100.0),
    4: (1.0, 9.0, 25.0, 100.0),
    5: (1.0, 9.0, 25.0, 100.0, 225.0),
}


def _env_scale(default: float = 0.1) -> float:
    raw = os.environ.get("REPRO_SCALE")
    if raw is None:
        return default
    try:
        scale = float(raw)
    except ValueError:
        raise ValueError(f"REPRO_SCALE must be a number, got {raw!r}") from None
    if scale <= 0:
        raise ValueError(f"REPRO_SCALE must be positive, got {scale}")
    return scale


@dataclass(frozen=True)
class ExperimentConfig:
    """All Section 6 experiment knobs."""

    scale: float = field(default_factory=_env_scale)
    seed: int = 42
    query_sizes: tuple[int, ...] = PAPER_QUERY_SET_SIZES

    def grid(self) -> Grid:
        """The evaluation grid (the paper's 360x180 at 1 degree)."""
        return Grid.world_1deg()

    def dataset_size(self, name: str) -> int:
        """Scaled object count for one dataset (floor 1000)."""
        return max(int(PAPER_DATASET_SIZES[name] * self.scale), 1000)


class Workbench:
    """Memoised factory for datasets, estimators and ground truth."""

    def __init__(self, config: ExperimentConfig | None = None) -> None:
        self.config = config or ExperimentConfig()
        self.grid = self.config.grid()
        self._datasets: dict[str, RectDataset] = {}
        self._histograms: dict[str, EulerHistogram] = {}
        self._multi: dict[tuple[str, tuple[float, ...]], MEulerApprox] = {}
        self._truth: dict[tuple[str, int], TilingCounts] = {}

    def dataset(self, name: str) -> RectDataset:
        """The named dataset at the configured scale (memoised)."""
        if name not in self._datasets:
            self._datasets[name] = by_name(
                name, self.config.dataset_size(name), seed=self.config.seed
            )
        return self._datasets[name]

    def histogram(self, name: str) -> EulerHistogram:
        """The dataset's Euler histogram (memoised)."""
        if name not in self._histograms:
            self._histograms[name] = EulerHistogram.from_dataset(self.dataset(name), self.grid)
        return self._histograms[name]

    def s_euler(self, name: str) -> SEulerApprox:
        """S-EulerApprox over the shared histogram."""
        return SEulerApprox(self.histogram(name))

    def euler(self, name: str, edge: QueryEdge = QueryEdge.LEFT) -> EulerApprox:
        """EulerApprox over the shared histogram."""
        return EulerApprox(self.histogram(name), edge)

    def multi_euler(self, name: str, num_histograms: int) -> MEulerApprox:
        """M-EulerApprox with the paper's schedule for m histograms."""
        thresholds = MULTI_THRESHOLD_SCHEDULES[num_histograms]
        return self.multi_euler_with(name, thresholds)

    def multi_euler_with(self, name: str, thresholds: tuple[float, ...]) -> MEulerApprox:
        """M-EulerApprox with an explicit threshold schedule (memoised)."""
        key = (name, tuple(thresholds))
        if key not in self._multi:
            self._multi[key] = MEulerApprox(self.dataset(name), self.grid, thresholds)
        return self._multi[key]

    def truth(self, name: str, tile_size: int) -> TilingCounts:
        """Exact Level-2 counts for the complete ``Q_n`` tiling."""
        key = (name, tile_size)
        if key not in self._truth:
            self._truth[key] = exact_tiling_counts(
                self.dataset(name), self.grid, tile_size, tile_size
            )
        return self._truth[key]
