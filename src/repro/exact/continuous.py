"""Exact Level-2 counts for arbitrary (unaligned) world queries.

The histogram algorithms are defined for grid-aligned queries; real
browsing clients also drag out arbitrary boxes.  This module provides the
*continuous-semantics* ground truth for those: objects as open
rectangles, the query as a closed one, no snapping anywhere.  For aligned
queries it coincides with :class:`repro.exact.evaluator.ExactEvaluator`
except on the measure-zero degenerate-object-on-grid-line cases resolved
by the snapping convention.

Used as the oracle for :mod:`repro.euler.unaligned` and available as a
public exact path for applications that hold the data.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import RectDataset
from repro.euler.estimates import Level2Counts
from repro.geometry.rect import Rect

__all__ = ["ContinuousExactEvaluator"]


class ContinuousExactEvaluator:
    """Vectorised exact classification against arbitrary query rectangles."""

    def __init__(self, dataset: RectDataset) -> None:
        self._x_lo = dataset.x_lo
        self._x_hi = dataset.x_hi
        self._y_lo = dataset.y_lo
        self._y_hi = dataset.y_hi
        self._degenerate_x = dataset.x_lo == dataset.x_hi
        self._degenerate_y = dataset.y_lo == dataset.y_hi
        self._num_objects = len(dataset)

    @property
    def name(self) -> str:
        return "ContinuousExact"

    @property
    def num_objects(self) -> int:
        return self._num_objects

    def masks(self, query: Rect) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Boolean masks ``(intersects, within, covers)`` under the
        open-object/closed-query convention (degenerate axes use the
        closed-query point test of
        :func:`repro.geometry.intervals.interval_interiors_intersect`)."""
        x_int = np.where(
            self._degenerate_x,
            (self._x_lo >= query.x_lo) & (self._x_lo <= query.x_hi),
            (self._x_lo < query.x_hi) & (self._x_hi > query.x_lo),
        )
        y_int = np.where(
            self._degenerate_y,
            (self._y_lo >= query.y_lo) & (self._y_lo <= query.y_hi),
            (self._y_lo < query.y_hi) & (self._y_hi > query.y_lo),
        )
        intersects = x_int & y_int
        within = (
            intersects
            & (self._x_lo >= query.x_lo)
            & (self._x_hi <= query.x_hi)
            & (self._y_lo >= query.y_lo)
            & (self._y_hi <= query.y_hi)
        )
        covers = (
            (self._x_lo < query.x_lo)
            & (self._x_hi > query.x_hi)
            & (self._y_lo < query.y_lo)
            & (self._y_hi > query.y_hi)
        )
        return intersects, within, covers

    def estimate(self, query: Rect) -> Level2Counts:
        """Exact counts for one arbitrary query rectangle."""
        if query.is_degenerate:
            raise ValueError("query rectangles must have positive area")
        intersects, within, covers = self.masks(query)
        n_int = int(np.count_nonzero(intersects))
        n_cs = int(np.count_nonzero(within))
        n_cd = int(np.count_nonzero(covers))
        return Level2Counts(
            n_d=float(self._num_objects - n_int),
            n_cs=float(n_cs),
            n_cd=float(n_cd),
            n_o=float(n_int - n_cs - n_cd),
        )
