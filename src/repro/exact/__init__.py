"""Exact Level-2 evaluation and the Theorem 3.1 storage results.

Ground truth in this library is "exact at resolution c" (Section 3): the
Level-2 relation of an object/query pair as determined by the object's
snapped lattice footprint, which for grid-aligned queries coincides with
the continuous open-object/closed-query semantics.

Two independent implementations are provided and cross-tested: the
vectorised per-query :class:`ExactEvaluator` and the O(M) whole-tiling
:func:`exact_tiling_counts` used by the experiment harness.
"""

from repro.exact.continuous import ContinuousExactEvaluator
from repro.exact.evaluator import ExactEvaluator
from repro.exact.evaluator_nd import ExactEvaluatorND
from repro.exact.reconstruction import reconstruct_1d, reconstruct_2d
from repro.exact.storage import exact_contains_bucket_count, exact_contains_storage_bytes
from repro.exact.store import ExactContainsStore1D, ExactLevel2Store2D
from repro.exact.tiling import TilingCounts, exact_tiling_counts

__all__ = [
    "ExactEvaluator",
    "ExactEvaluatorND",
    "ContinuousExactEvaluator",
    "TilingCounts",
    "exact_tiling_counts",
    "ExactContainsStore1D",
    "ExactLevel2Store2D",
    "exact_contains_bucket_count",
    "exact_contains_storage_bytes",
    "reconstruct_1d",
    "reconstruct_2d",
]
