"""Exact Level-2 counts for a whole tiling in O(M + tiles) time.

The experiment harness needs ground truth for every tile of every query set
(up to 16,200 tiles of ``Q_2`` against millions of objects); per-query
evaluation would be quadratic-ish.  For a *complete, disjoint tiling* the
relations have closed forms over tile indices:

- an object **intersects** exactly the contiguous block of tiles its cell
  span maps to -- accumulate with a 2-d difference array;
- an object is **within** some tile iff its whole cell span falls in one
  tile on both axes -- a single ``bincount`` scatter;
- an object **covers** the contiguous (possibly empty) block of tiles whose
  boundary lines its footprint covers on both axes -- difference array
  again.

``overlap = intersect - within - covers`` and
``disjoint = |S| - intersect`` tile-wise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cube.difference import DifferenceArray2D
from repro.datasets.base import RectDataset
from repro.euler.estimates import Level2Counts
from repro.geometry.snapping import snap_rects
from repro.grid.grid import Grid
from repro.grid.tiles_math import TileQuery

__all__ = ["TilingCounts", "exact_tiling_counts"]


@dataclass(frozen=True)
class TilingCounts:
    """Exact per-tile Level-2 counts over a complete tiling.

    Arrays are indexed ``[tile_x, tile_y]`` with shape
    ``(n1 // tile_w, n2 // tile_h)``.
    """

    tile_w: int
    tile_h: int
    n_d: np.ndarray
    n_cs: np.ndarray
    n_cd: np.ndarray
    n_o: np.ndarray

    @property
    def shape(self) -> tuple[int, int]:
        return self.n_d.shape

    @property
    def num_tiles(self) -> int:
        return int(self.n_d.size)

    def counts_at(self, tile_x: int, tile_y: int) -> Level2Counts:
        """Counts of one tile as a :class:`Level2Counts`."""
        return Level2Counts(
            n_d=float(self.n_d[tile_x, tile_y]),
            n_cs=float(self.n_cs[tile_x, tile_y]),
            n_cd=float(self.n_cd[tile_x, tile_y]),
            n_o=float(self.n_o[tile_x, tile_y]),
        )

    def query_at(self, tile_x: int, tile_y: int) -> TileQuery:
        """The tile's cell-span query."""
        return TileQuery(
            tile_x * self.tile_w,
            (tile_x + 1) * self.tile_w,
            tile_y * self.tile_h,
            (tile_y + 1) * self.tile_h,
        )


def _covered_tile_range(
    cell_lo: np.ndarray, cell_hi: np.ndarray, tile: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per object, the inclusive tile-index range the object *covers* on
    one axis: tiles ``T`` with ``T*tile > cell_lo`` and
    ``(T+1)*tile <= cell_hi + 1`` -- i.e. the object's footprint covers
    both boundary lines of the tile.  Ranges may be empty (lo > hi)."""
    t_lo = (cell_lo + tile) // tile          # ceil((cell_lo + 1) / tile)
    t_hi = cell_hi // tile - 1               # floor(cell_hi / tile) - 1
    return t_lo, t_hi


def exact_tiling_counts(dataset: RectDataset, grid: Grid, tile_w: int, tile_h: int) -> TilingCounts:
    """Exact counts for the complete ``tile_w x tile_h`` tiling of ``grid``.

    Tile sizes must divide the grid (the paper's ``Q_n`` sets satisfy this:
    every n in {20,18,15,12,10,9,6,5,4,3,2} divides both 360 and 180).
    """
    if tile_w < 1 or tile_h < 1:
        raise ValueError("tile dimensions must be positive")
    if grid.n1 % tile_w or grid.n2 % tile_h:
        raise ValueError(
            f"tiling {tile_w}x{tile_h} does not divide the {grid.n1}x{grid.n2} grid"
        )
    tiles_x, tiles_y = grid.n1 // tile_w, grid.n2 // tile_h
    shape = (tiles_x, tiles_y)

    a_lo, a_hi, b_lo, b_hi = snap_rects(
        grid.to_cell_units_x(dataset.x_lo),
        grid.to_cell_units_x(dataset.x_hi),
        grid.to_cell_units_y(dataset.y_lo),
        grid.to_cell_units_y(dataset.y_hi),
        grid.n1,
        grid.n2,
    )
    cell_lo_x, cell_hi_x = a_lo // 2, a_hi // 2
    cell_lo_y, cell_hi_y = b_lo // 2, b_hi // 2

    # intersect: the object's cell block, mapped to tiles.
    intersect_acc = DifferenceArray2D(shape)
    intersect_acc.add_boxes(
        cell_lo_x // tile_w, cell_hi_x // tile_w, cell_lo_y // tile_h, cell_hi_y // tile_h
    )
    n_intersect = intersect_acc.materialize()

    # within: objects whose block is a single tile on both axes.
    tx_lo, tx_hi = cell_lo_x // tile_w, cell_hi_x // tile_w
    ty_lo, ty_hi = cell_lo_y // tile_h, cell_hi_y // tile_h
    one_tile = (tx_lo == tx_hi) & (ty_lo == ty_hi)
    n_cs = np.bincount(
        tx_lo[one_tile] * tiles_y + ty_lo[one_tile], minlength=tiles_x * tiles_y
    ).reshape(shape)

    # covers: the contiguous tile block whose boundaries the object covers.
    cx_lo, cx_hi = _covered_tile_range(cell_lo_x, cell_hi_x, tile_w)
    cy_lo, cy_hi = _covered_tile_range(cell_lo_y, cell_hi_y, tile_h)
    covering = (cx_lo <= cx_hi) & (cy_lo <= cy_hi)
    n_cd_acc = DifferenceArray2D(shape)
    if np.any(covering):
        n_cd_acc.add_boxes(cx_lo[covering], cx_hi[covering], cy_lo[covering], cy_hi[covering])
    n_cd = n_cd_acc.materialize()

    n_o = n_intersect - n_cs - n_cd
    n_d = len(dataset) - n_intersect
    return TilingCounts(tile_w=tile_w, tile_h=tile_h, n_d=n_d, n_cs=n_cs, n_cd=n_cd, n_o=n_o)
