"""Vectorised exact Level-2 evaluation, one query at a time.

Classifies every object against an aligned query with four lattice-span
comparisons per axis and counts each relation.  This is the ground truth
every approximation is scored against, and (run over a whole tile set) the
reference the O(M) tiling evaluator is cross-tested with.

Lattice-span predicates (see :mod:`repro.geometry.snapping` for why these
are exactly the open-object/closed-query semantics):

- interiors intersect:  ``a_lo <= 2*qx_hi - 2  and  a_hi >= 2*qx_lo`` (+ y)
- object within query:  ``a_lo >= 2*qx_lo  and  a_hi <= 2*qx_hi - 2`` (+ y)
- object covers query:  ``a_lo <= 2*qx_lo - 1  and  a_hi >= 2*qx_hi - 1``
  (+ y), i.e. the object's footprint covers the query's boundary lines.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.datasets.base import RectDataset
from repro.euler.estimates import Level2Counts, Level2CountsBatch
from repro.geometry.snapping import snap_rects
from repro.grid.grid import Grid
from repro.grid.tiles_math import TileQuery, TileQueryBatch

__all__ = ["ExactEvaluator"]

#: Upper bound on the object x query comparison matrix held at once by
#: :meth:`ExactEvaluator.estimate_batch` (elements, not bytes).
_BATCH_CHUNK_ELEMENTS = 16_000_000


class ExactEvaluator:
    """Exact Level-2 counts at grid resolution.

    The constructor snaps the whole dataset once; each query is then a
    handful of vectorised comparisons over the snapped columns (O(M) per
    query -- exactness at the price Theorem 3.1 says cannot be avoided in
    sub-quadratic space with constant query time).
    """

    def __init__(self, dataset: RectDataset, grid: Grid) -> None:
        self._grid = grid
        self._num_objects = len(dataset)
        self._a_lo, self._a_hi, self._b_lo, self._b_hi = snap_rects(
            grid.to_cell_units_x(dataset.x_lo),
            grid.to_cell_units_x(dataset.x_hi),
            grid.to_cell_units_y(dataset.y_lo),
            grid.to_cell_units_y(dataset.y_hi),
            grid.n1,
            grid.n2,
        )

    @classmethod
    def from_snapped(
        cls,
        grid: Grid,
        a_lo: np.ndarray,
        a_hi: np.ndarray,
        b_lo: np.ndarray,
        b_hi: np.ndarray,
        num_objects: int,
    ) -> "ExactEvaluator":
        """An evaluator over already-snapped lattice-span columns.

        The dataset-free constructor: the four columns must be exactly
        what the primary constructor's ``snap_rects`` pass produces, one
        entry per object.  Adopted without copying, which lets
        process-pool workers evaluate over shared-memory mappings of the
        columns (:mod:`repro.parallel.spec`).
        """
        columns = (a_lo, a_hi, b_lo, b_hi)
        lengths = {np.asarray(c).shape for c in columns}
        if len(lengths) != 1 or np.asarray(a_lo).ndim != 1:
            raise ValueError(
                f"snapped columns must be 1-d and equal-length, got shapes "
                f"{[np.asarray(c).shape for c in columns]}"
            )
        if num_objects != len(np.asarray(a_lo)):
            raise ValueError(
                f"num_objects {num_objects} does not match column length "
                f"{len(np.asarray(a_lo))}"
            )
        self = cls.__new__(cls)
        self._grid = grid
        self._num_objects = int(num_objects)
        self._a_lo, self._a_hi, self._b_lo, self._b_hi = (
            np.asarray(c) for c in columns
        )
        return self

    @property
    def name(self) -> str:
        return "Exact"

    @property
    def snapped_columns(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The snapped lattice-span columns ``(a_lo, a_hi, b_lo, b_hi)``
        (the shared-memory export payload -- treat as read-only)."""
        return self._a_lo, self._a_hi, self._b_lo, self._b_hi

    @property
    def grid(self) -> Grid:
        return self._grid

    @property
    def num_objects(self) -> int:
        return self._num_objects

    def masks(self, query: TileQuery) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Boolean object masks ``(intersects, within, covers)`` for one
        query -- the building blocks of :meth:`estimate`, exposed for tests
        and for drill-down use (e.g. listing the objects behind a tile)."""
        query.validate_against(self._grid)
        ax_lo, ax_hi = 2 * query.qx_lo, 2 * query.qx_hi - 2
        bx_lo, bx_hi = 2 * query.qy_lo, 2 * query.qy_hi - 2

        intersects = (
            (self._a_lo <= ax_hi)
            & (self._a_hi >= ax_lo)
            & (self._b_lo <= bx_hi)
            & (self._b_hi >= bx_lo)
        )
        within = (
            (self._a_lo >= ax_lo)
            & (self._a_hi <= ax_hi)
            & (self._b_lo >= bx_lo)
            & (self._b_hi <= bx_hi)
        )
        covers = (
            (self._a_lo <= 2 * query.qx_lo - 1)
            & (self._a_hi >= 2 * query.qx_hi - 1)
            & (self._b_lo <= 2 * query.qy_lo - 1)
            & (self._b_hi >= 2 * query.qy_hi - 1)
        )
        return intersects, within, covers

    def estimate(self, query: TileQuery) -> Level2Counts:
        """Exact counts (the estimator protocol's method name is kept so
        the exact evaluator can stand in anywhere an estimator is used)."""
        intersects, within, covers = self.masks(query)
        n_int = int(np.count_nonzero(intersects))
        n_cs = int(np.count_nonzero(within))
        n_cd = int(np.count_nonzero(covers))
        return Level2Counts(
            n_d=float(self._num_objects - n_int),
            n_cs=float(n_cs),
            n_cd=float(n_cd),
            n_o=float(n_int - n_cs - n_cd),
        )

    def estimate_batch(self, queries: TileQueryBatch) -> Level2CountsBatch:
        """Exact counts for a whole query batch.

        Broadcasts the snapped object columns against chunks of the query
        corner arrays (chunk size bounded so the intermediate boolean
        matrix stays small) and reduces each relation along the object
        axis.  Still O(M) work per query -- exactness has no free lunch
        (Theorem 3.1) -- but the per-query Python interpreter cost of the
        scalar loop is gone, which is most of the wall clock at browsing
        batch sizes.
        """
        queries.validate_against(self._grid)
        n = len(queries)
        m = max(self._num_objects, 1)
        chunk = max(_BATCH_CHUNK_ELEMENTS // m, 1)

        n_int = np.empty(n, dtype=np.int64)
        n_cs = np.empty(n, dtype=np.int64)
        n_cd = np.empty(n, dtype=np.int64)
        a_lo = self._a_lo[:, None]
        a_hi = self._a_hi[:, None]
        b_lo = self._b_lo[:, None]
        b_hi = self._b_hi[:, None]
        for start in range(0, n, chunk):
            sl = slice(start, min(start + chunk, n))
            ax_lo = 2 * queries.qx_lo[None, sl]
            ax_hi = 2 * queries.qx_hi[None, sl] - 2
            bx_lo = 2 * queries.qy_lo[None, sl]
            bx_hi = 2 * queries.qy_hi[None, sl] - 2

            intersects = (
                (a_lo <= ax_hi) & (a_hi >= ax_lo) & (b_lo <= bx_hi) & (b_hi >= bx_lo)
            )
            within = (
                (a_lo >= ax_lo) & (a_hi <= ax_hi) & (b_lo >= bx_lo) & (b_hi <= bx_hi)
            )
            covers = (
                (a_lo <= ax_lo - 1)
                & (a_hi >= ax_hi + 1)
                & (b_lo <= bx_lo - 1)
                & (b_hi >= bx_hi + 1)
            )
            n_int[sl] = np.count_nonzero(intersects, axis=0)
            n_cs[sl] = np.count_nonzero(within, axis=0)
            n_cd[sl] = np.count_nonzero(covers, axis=0)

        n_o = n_int - n_cs - n_cd
        return Level2CountsBatch(
            n_d=(self._num_objects - n_int).astype(np.float64),
            n_cs=n_cs.astype(np.float64),
            n_cd=n_cd.astype(np.float64),
            n_o=n_o.astype(np.float64),
        )

    def intersection_counts(self, queries: TileQueryBatch) -> np.ndarray:
        """Per-query intersecting-object counts, intersect predicate only.

        The single-dataset row of :meth:`region_intersections_batch`;
        equal to ``estimate_batch(queries).n_intersect`` but int64 and
        roughly 3x cheaper (the within/covers predicates are skipped).
        """
        return self.region_intersections_batch([self], queries)[0]

    @staticmethod
    def region_intersections_batch(
        evaluators: "Sequence[ExactEvaluator]", queries: TileQueryBatch
    ) -> np.ndarray:
        """Intersecting-object counts for every (dataset, query) pair.

        The ground-truth kernel of join-search accuracy evaluation:
        given ``D`` evaluators sharing one grid and ``Q`` aligned
        queries, returns a ``(D, Q)`` int64 matrix whose ``(d, q)``
        entry is the number of objects of dataset ``d`` whose interior
        intersects query ``q`` -- exactly
        ``count_nonzero(evaluators[d].masks(queries[q])[0])``, the
        scalar path the parity tests pin this to.

        All datasets' snapped columns are concatenated once and the
        intersect predicate is evaluated over (object x query) chunks
        bounded like :meth:`estimate_batch`'s, then segment-reduced per
        dataset -- one pass instead of ``D`` scalar loops, which keeps
        truth evaluation out of the benchmark's hot-path timings.
        """
        evaluators = list(evaluators)
        if not evaluators:
            return np.zeros((0, len(queries)), dtype=np.int64)
        grid = evaluators[0]._grid
        for ev in evaluators[1:]:
            if ev._grid != grid:
                raise ValueError(
                    "all evaluators must share one grid, got "
                    f"{ev._grid.n1}x{ev._grid.n2} alongside {grid.n1}x{grid.n2}"
                )
        queries.validate_against(grid)

        sizes = np.array([ev._num_objects for ev in evaluators], dtype=np.intp)
        offsets = np.zeros(len(evaluators), dtype=np.intp)
        np.cumsum(sizes[:-1], out=offsets[1:])
        a_lo = np.concatenate([ev._a_lo for ev in evaluators])[:, None]
        a_hi = np.concatenate([ev._a_hi for ev in evaluators])[:, None]
        b_lo = np.concatenate([ev._b_lo for ev in evaluators])[:, None]
        b_hi = np.concatenate([ev._b_hi for ev in evaluators])[:, None]

        n = len(queries)
        total = max(int(sizes.sum()), 1)
        chunk = max(_BATCH_CHUNK_ELEMENTS // total, 1)
        counts = np.zeros((len(evaluators), n), dtype=np.int64)
        nonempty = sizes > 0
        for start in range(0, n, chunk):
            sl = slice(start, min(start + chunk, n))
            ax_lo = 2 * queries.qx_lo[None, sl]
            ax_hi = 2 * queries.qx_hi[None, sl] - 2
            bx_lo = 2 * queries.qy_lo[None, sl]
            bx_hi = 2 * queries.qy_hi[None, sl] - 2
            intersects = (
                (a_lo <= ax_hi) & (a_hi >= ax_lo) & (b_lo <= bx_hi) & (b_hi >= bx_lo)
            )
            # reduceat over bool would OR, and an empty dataset's segment
            # would echo its neighbour's first row -- cast and mask out.
            segments = np.add.reduceat(
                intersects.astype(np.int64), offsets[nonempty], axis=0
            )
            counts[nonempty, sl] = segments
        return counts
