"""Vectorised exact Level-2 evaluation in d dimensions.

The d-dimensional sibling of :class:`repro.exact.evaluator.ExactEvaluator`
-- the ground truth for :class:`repro.euler.histogram_nd.EulerHistogramND`
and the exact comparator for spatio-temporal workloads.
"""

from __future__ import annotations

import numpy as np

from repro.euler.estimates import Level2Counts
from repro.geometry.snapping import snap_axis_arrays
from repro.grid.grid_nd import BoxQuery, GridND

__all__ = ["ExactEvaluatorND"]


class ExactEvaluatorND:
    """Exact Level-2 counts at grid resolution, any dimension."""

    def __init__(self, grid: GridND, lows: np.ndarray, highs: np.ndarray) -> None:
        lows = np.asarray(lows, dtype=np.float64)
        highs = np.asarray(highs, dtype=np.float64)
        if lows.ndim != 2 or lows.shape[1] != grid.ndim or lows.shape != highs.shape:
            raise ValueError(
                f"expected (M, {grid.ndim}) corner arrays, got {lows.shape} / {highs.shape}"
            )
        self._grid = grid
        self._num_objects = lows.shape[0]
        self._lat_lo = np.empty(lows.shape, dtype=np.int64)
        self._lat_hi = np.empty(lows.shape, dtype=np.int64)
        for axis in range(grid.ndim):
            self._lat_lo[:, axis], self._lat_hi[:, axis] = snap_axis_arrays(
                grid.to_cell_units(axis, lows[:, axis]),
                grid.to_cell_units(axis, highs[:, axis]),
                grid.cells[axis],
            )

    @property
    def name(self) -> str:
        return f"Exact{self._grid.ndim}D"

    @property
    def num_objects(self) -> int:
        return self._num_objects

    def estimate(self, query: BoxQuery) -> Level2Counts:
        """Exact counts for one aligned d-dimensional box query."""
        query.validate_against(self._grid)
        q_lo = np.asarray(query.lo, dtype=np.int64)
        q_hi = np.asarray(query.hi, dtype=np.int64)

        intersects = np.all(
            (self._lat_lo <= 2 * q_hi - 2) & (self._lat_hi >= 2 * q_lo), axis=1
        )
        within = np.all(
            (self._lat_lo >= 2 * q_lo) & (self._lat_hi <= 2 * q_hi - 2), axis=1
        )
        covers = np.all(
            (self._lat_lo <= 2 * q_lo - 1) & (self._lat_hi >= 2 * q_hi - 1), axis=1
        )
        n_int = int(np.count_nonzero(intersects))
        n_cs = int(np.count_nonzero(within))
        n_cd = int(np.count_nonzero(covers))
        return Level2Counts(
            n_d=float(self._num_objects - n_int),
            n_cs=float(n_cs),
            n_cd=float(n_cd),
            n_o=float(n_int - n_cs - n_cd),
        )
