"""The Equation 3 reconstruction: the computational heart of Theorem 3.1.

The lower-bound proof (Section 3) hinges on one identity: if an algorithm
can answer ``contains(i, j)`` exactly for *every* grid range, then the
complete per-type histogram ``H`` -- all ``n(n+1)/2`` independent values --
is recoverable from those answers, so the algorithm must have stored at
least that much information.  The paper writes the recovery as Equation 3;
in closed inclusion-exclusion form the count of objects of exactly type
``(i, j)`` is::

    H(i, j) = contains(i, j) - contains(i+1, j) - contains(i, j-1)
              + contains(i+1, j-1)

(terms with an empty range read as 0), and the d-dimensional version
applies the same difference per axis.

This module *implements* the reconstruction against any contains-oracle,
turning the proof's key step into runnable, tested code:

- :func:`reconstruct_1d` recovers the full 1-d type histogram;
- :func:`reconstruct_2d` recovers the full 2-d footprint histogram
  (``[n1(n1+1)/2] * [n2(n2+1)/2]`` values) -- demonstrating that a
  contains-exact summary of a 360x180 grid necessarily encodes ~10^9
  numbers, i.e. the ~4 GB of Section 3.

The same recovery applied to the *intersect* oracle is impossible (the
analogous alternating sums do not isolate a single type), which is why
intersect-only summaries escape the bound -- see
``tests/exact/test_reconstruction.py`` for the demonstration.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["reconstruct_1d", "reconstruct_2d"]

#: 1-d contains oracle: (q_lo, q_hi) -> number of objects within [q_lo, q_hi].
Contains1D = Callable[[int, int], int]
#: 2-d contains oracle over cell spans (qx_lo, qx_hi, qy_lo, qy_hi).
Contains2D = Callable[[int, int, int, int], int]


def reconstruct_1d(contains: Contains1D, n: int) -> np.ndarray:
    """Recover the per-type histogram from a 1-d contains oracle.

    Returns an ``(n, n)`` array indexed ``[i, j-1]`` whose entry is the
    number of objects of type ``(i, j)`` (touching exactly cells
    ``i .. j-1``); entries with ``j <= i`` are zero.
    """
    if n < 1:
        raise ValueError("n must be positive")

    def c(q_lo: int, q_hi: int) -> int:
        if q_lo >= q_hi:
            return 0
        return int(contains(q_lo, q_hi))

    histogram = np.zeros((n, n), dtype=np.int64)
    for i in range(n):
        for j in range(i + 1, n + 1):
            histogram[i, j - 1] = c(i, j) - c(i + 1, j) - c(i, j - 1) + c(i + 1, j - 1)
    return histogram


def reconstruct_2d(contains: Contains2D, n1: int, n2: int) -> np.ndarray:
    """Recover the full footprint histogram from a 2-d contains oracle.

    Returns an ``(n1, n1, n2, n2)`` array indexed
    ``[i1, j1-1, i2, j2-1]`` counting objects whose snapped footprint is
    exactly cells ``[i1, j1) x [i2, j2)``.  The recovery is the per-axis
    difference of Equation 3 applied on both axes -- 16 oracle calls per
    type (memoised internally to 1 call per distinct range).
    """
    if n1 < 1 or n2 < 1:
        raise ValueError("grid dimensions must be positive")

    cache: dict[tuple[int, int, int, int], int] = {}

    def c(qx_lo: int, qx_hi: int, qy_lo: int, qy_hi: int) -> int:
        if qx_lo >= qx_hi or qy_lo >= qy_hi:
            return 0
        key = (qx_lo, qx_hi, qy_lo, qy_hi)
        if key not in cache:
            cache[key] = int(contains(qx_lo, qx_hi, qy_lo, qy_hi))
        return cache[key]

    histogram = np.zeros((n1, n1, n2, n2), dtype=np.int64)
    for i1 in range(n1):
        for j1 in range(i1 + 1, n1 + 1):
            for i2 in range(n2):
                for j2 in range(i2 + 1, n2 + 1):
                    value = 0
                    for dx, sx in ((0, 1), (1, -1)):
                        for dx2, sx2 in ((0, 1), (1, -1)):
                            for dy, sy in ((0, 1), (1, -1)):
                                for dy2, sy2 in ((0, 1), (1, -1)):
                                    value += (
                                        sx
                                        * sx2
                                        * sy
                                        * sy2
                                        * c(i1 + dx, j1 - dx2, i2 + dy, j2 - dy2)
                                    )
                    histogram[i1, j1 - 1, i2, j2 - 1] = value
    return histogram
