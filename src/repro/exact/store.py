"""The exact Level-2 stores behind Theorem 3.1.

Section 3 constructs, for 1-d range data on an ``n``-segment grid, the
2-dimensional histogram ``H`` with one bucket per object type ``(i, j)``
(objects starting after grid point ``i`` and ending before ``j``),
``0 <= i < j <= n`` -- ``n(n+1)/2`` buckets -- and proves no exact
``contains`` algorithm can store less.  These classes *are* that
construction (plus its 2-d product form), with prefix sums bolted on so
all Level-2 counts come out in constant time:

- :class:`ExactContainsStore1D` -- the paper's ``H`` verbatim, answering
  1-d ``contains``/``contained``/``intersect`` exactly.
- :class:`ExactLevel2Store2D` -- the d=2 product: one bucket per snapped
  footprint ``(i1, j1) x (i2, j2)``, ``[n1(n1+1)/2] * [n2(n2+1)/2]``
  buckets, exactly the Theorem 3.1 lower bound, stored as a 4-d cube.

They exist to (a) make the lower bound concrete -- the storage accounting
property-tested against :func:`repro.exact.storage.exact_contains_bucket_count`
-- and (b) serve as an independent exact oracle for small grids in the test
suite.  They are intentionally *not* used by the estimators: their storage
is what the paper shows to be infeasible at real resolutions.
"""

from __future__ import annotations

import numpy as np

from repro.cube.prefix_sum import PrefixSumCube
from repro.datasets.base import RectDataset
from repro.euler.estimates import Level2Counts
from repro.geometry.snapping import snap_axis_arrays, snap_rects
from repro.grid.grid import Grid
from repro.grid.tiles_math import TileQuery

__all__ = ["ExactContainsStore1D", "ExactLevel2Store2D"]


class ExactContainsStore1D:
    """The paper's histogram ``H`` for 1-d range objects (Figure 4).

    Bucket ``(i, j)`` with ``0 <= i < j <= n`` counts objects of type
    ``(i, j)``: in snapped cell terms, objects touching cells
    ``i .. j - 1``.  Stored as an ``(n, n)`` array indexed
    ``[i, j - 1]`` (the upper-left triangle is unused), which makes the
    *effective* bucket count ``n(n+1)/2`` as in the theorem.
    """

    def __init__(self, lo: np.ndarray, hi: np.ndarray, n: int) -> None:
        """``lo``/``hi`` are open object intervals in cell units on an
        ``n``-cell axis."""
        self._n = n
        a_lo, a_hi = snap_axis_arrays(np.asarray(lo), np.asarray(hi), n)
        i = a_lo // 2
        j = a_hi // 2 + 1
        counts = np.zeros((n, n), dtype=np.int64)
        np.add.at(counts, (i, j - 1), 1)
        self._cube = PrefixSumCube(counts)
        self._num_objects = int(len(i))

    @property
    def n(self) -> int:
        return self._n

    @property
    def num_objects(self) -> int:
        return self._num_objects

    @property
    def effective_bucket_count(self) -> int:
        """``n(n+1)/2``: the buckets with ``i < j`` that can be non-zero."""
        return self._n * (self._n + 1) // 2

    def contains(self, q_lo: int, q_hi: int) -> int:
        """Objects contained in the closed range ``[q_lo, q_hi]`` (grid
        points): types with ``i >= q_lo`` and ``j <= q_hi``."""
        self._check_query(q_lo, q_hi)
        return int(self._cube.range_sum((q_lo, q_lo), (self._n - 1, q_hi - 1)))

    def contained(self, q_lo: int, q_hi: int) -> int:
        """Objects containing ``[q_lo, q_hi]``: types with ``i < q_lo`` and
        ``j > q_hi``; zero when the query touches the axis boundary."""
        self._check_query(q_lo, q_hi)
        if q_lo == 0 or q_hi == self._n:
            return 0
        return int(self._cube.range_sum((0, q_hi), (q_lo - 1, self._n - 1)))

    def intersect(self, q_lo: int, q_hi: int) -> int:
        """Objects whose interiors meet the open ``(q_lo, q_hi)``: types
        with ``i < q_hi`` and ``j > q_lo``."""
        self._check_query(q_lo, q_hi)
        return int(self._cube.range_sum((0, q_lo), (q_hi - 1, self._n - 1)))

    def _check_query(self, q_lo: int, q_hi: int) -> None:
        if not (0 <= q_lo < q_hi <= self._n):
            raise ValueError(f"query [{q_lo}, {q_hi}] invalid on an {self._n}-cell axis")


class ExactLevel2Store2D:
    """The 2-d exact store: the Theorem 3.1 construction for rectangles.

    One bucket per snapped footprint ``(i1, j1, i2, j2)``; 4-d prefix sums
    answer every Level-2 count in constant time.  Storage grows as
    ``O((n1 * n2)^2)`` -- build only on small grids (the constructor
    refuses grids needing more than ``max_buckets`` buckets to protect
    callers from the very explosion the theorem is about).
    """

    def __init__(self, dataset: RectDataset, grid: Grid, *, max_buckets: int = 50_000_000) -> None:
        n1, n2 = grid.n1, grid.n2
        buckets = n1 * n1 * n2 * n2
        if buckets > max_buckets:
            raise ValueError(
                f"exact store for a {n1}x{n2} grid needs {buckets} buckets "
                f"(> {max_buckets}); this is exactly the Theorem 3.1 blow-up"
            )
        self._grid = grid
        a_lo, a_hi, b_lo, b_hi = snap_rects(
            grid.to_cell_units_x(dataset.x_lo),
            grid.to_cell_units_x(dataset.x_hi),
            grid.to_cell_units_y(dataset.y_lo),
            grid.to_cell_units_y(dataset.y_hi),
            n1,
            n2,
        )
        i1, j1 = a_lo // 2, a_hi // 2 + 1
        i2, j2 = b_lo // 2, b_hi // 2 + 1
        counts = np.zeros((n1, n1, n2, n2), dtype=np.int64)
        np.add.at(counts, (i1, j1 - 1, i2, j2 - 1), 1)
        self._cube = PrefixSumCube(counts)
        self._num_objects = len(dataset)

    @property
    def num_objects(self) -> int:
        return self._num_objects

    @property
    def effective_bucket_count(self) -> int:
        """``[n1(n1+1)/2] * [n2(n2+1)/2]``: Theorem 3.1's lower bound."""
        n1, n2 = self._grid.n1, self._grid.n2
        return (n1 * (n1 + 1) // 2) * (n2 * (n2 + 1) // 2)

    def _counts(self, query: TileQuery) -> tuple[int, int, int]:
        query.validate_against(self._grid)
        n1, n2 = self._grid.n1, self._grid.n2
        qx_lo, qx_hi, qy_lo, qy_hi = query.qx_lo, query.qx_hi, query.qy_lo, query.qy_hi

        n_cs = int(
            self._cube.range_sum(
                (qx_lo, qx_lo, qy_lo, qy_lo), (n1 - 1, qx_hi - 1, n2 - 1, qy_hi - 1)
            )
        )
        if qx_lo == 0 or qy_lo == 0 or qx_hi == n1 or qy_hi == n2:
            n_cd = 0
        else:
            n_cd = int(
                self._cube.range_sum(
                    (0, qx_hi, 0, qy_hi), (qx_lo - 1, n1 - 1, qy_lo - 1, n2 - 1)
                )
            )
        n_int = int(
            self._cube.range_sum((0, qx_lo, 0, qy_lo), (qx_hi - 1, n1 - 1, qy_hi - 1, n2 - 1))
        )
        return n_int, n_cs, n_cd

    def estimate(self, query: TileQuery) -> Level2Counts:
        """Exact counts (named ``estimate`` to satisfy the estimator
        protocol)."""
        n_int, n_cs, n_cd = self._counts(query)
        return Level2Counts(
            n_d=float(self._num_objects - n_int),
            n_cs=float(n_cs),
            n_cd=float(n_cd),
            n_o=float(n_int - n_cs - n_cd),
        )
