"""Theorem 3.1 storage accounting.

    *Given an* ``n_1 x n_2 x ... x n_d`` *grid, an algorithm that can
    return exact results for the contains spatial relation requires at
    least* ``prod_i n_i (n_i + 1) / 2 = O(N^2)`` *storage.*

These helpers turn the bound into numbers: bucket counts, byte estimates,
and the paper's headline example (a 360x180 world grid at 1-degree
resolution needs ~4 GB, Section 3), reproduced by
``benchmarks/bench_storage_bound.py`` and the ``storage_lower_bound``
example.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = [
    "exact_contains_bucket_count",
    "exact_contains_storage_bytes",
    "euler_histogram_bucket_count",
    "storage_comparison_row",
]


def exact_contains_bucket_count(dims: Sequence[int], *, corner_types: bool = False) -> int:
    """Theorem 3.1's minimum bucket count for an exact contains algorithm.

    ``dims`` is the per-axis cell count ``(n_1, ..., n_d)``.  With
    ``corner_types=True`` the count includes the paper's extension to the
    four 1-d boundary types ``(i,j) / [i,j) / (i,j] / [i,j]`` -- "a
    constant factor of 4" per axis.
    """
    if not dims:
        raise ValueError("at least one dimension is required")
    if any(n < 1 for n in dims):
        raise ValueError(f"cell counts must be positive, got {tuple(dims)}")
    count = math.prod(n * (n + 1) // 2 for n in dims)
    if corner_types:
        count *= 4 ** len(dims)
    return count


def exact_contains_storage_bytes(
    dims: Sequence[int], *, bytes_per_bucket: int = 4, corner_types: bool = False
) -> int:
    """Byte estimate of the exact store.

    The paper's "~4 GB" figure for the 360x180 1-degree grid corresponds
    to ``4 * (360*361)/2 * (180*181)/2`` -- i.e. 4 bytes per bucket over
    the base (single-type) bucket count.
    """
    if bytes_per_bucket < 1:
        raise ValueError("bytes_per_bucket must be positive")
    return bytes_per_bucket * exact_contains_bucket_count(dims, corner_types=corner_types)


def euler_histogram_bucket_count(dims: Sequence[int]) -> int:
    """Bucket count of the Euler histogram on the same grid:
    ``prod_i (2 n_i - 1) = O(N)`` -- the contrast Theorem 3.1 draws with
    the intersect-only lower bound."""
    if not dims:
        raise ValueError("at least one dimension is required")
    if any(n < 1 for n in dims):
        raise ValueError(f"cell counts must be positive, got {tuple(dims)}")
    return math.prod(2 * n - 1 for n in dims)


def storage_comparison_row(dims: Sequence[int], *, bytes_per_bucket: int = 4) -> dict[str, float]:
    """One row of the storage-bound table: exact-store vs Euler-histogram
    footprint for a grid, plus their ratio."""
    exact_buckets = exact_contains_bucket_count(dims)
    euler_buckets = euler_histogram_bucket_count(dims)
    return {
        "grid": "x".join(str(n) for n in dims),
        "exact_buckets": exact_buckets,
        "exact_bytes": exact_buckets * bytes_per_bucket,
        "euler_buckets": euler_buckets,
        "euler_bytes": euler_buckets * bytes_per_bucket,
        "ratio": exact_buckets / euler_buckets,
    }
