"""Integrity-checked ``.npz`` persistence shared by the summary types.

:meth:`repro.euler.histogram.EulerHistogram.save` and
:meth:`repro.datasets.base.RectDataset.save` both persist a dict of numpy
arrays.  This module gives them one wire discipline:

- **save** stamps the payload with a ``format_version`` and a CRC-32
  ``checksum`` over every payload array's name, dtype, shape and bytes;
- **load** funnels every way a file can be bad -- unreadable zip,
  truncated member, missing key, flipped bit -- into a single
  :class:`~repro.errors.SummaryCorruptError` with a message naming the
  file and the problem, instead of the raw ``KeyError``/``ValueError``/
  ``BadZipFile`` soup numpy raises.

Files written before checksumming existed (no ``checksum`` key) still
load: they get the structural validation but skip CRC verification, so
old shipped summaries keep working while every newly saved file is
tamper-evident.

Every save/load outcome is recorded into the observability layer's
default registry when one is installed
(:func:`repro.obs.set_default_registry`) as
``repro_persistence_ops_total{kind, op, outcome}``; with no default
registry the hooks are no-ops.
"""

from __future__ import annotations

import os
import zipfile
import zlib

import numpy as np

from repro.errors import SummaryCorruptError
from repro.obs.instruments import record_persistence_event

__all__ = ["FORMAT_VERSION", "payload_checksum", "save_verified_npz", "load_verified_npz"]

#: Version stamp written into every checksummed payload.
FORMAT_VERSION = 2

#: Keys added by the wire discipline, excluded from the checksum itself.
_ENVELOPE_KEYS = frozenset({"checksum", "format_version"})


def payload_checksum(arrays: dict[str, np.ndarray]) -> int:
    """CRC-32 over the payload arrays in sorted key order.

    Each array contributes its name, dtype, shape and raw bytes, so a
    renamed key, a silently cast column or a single flipped bit all
    change the digest.  Envelope keys are skipped.
    """
    crc = 0
    for key in sorted(arrays):
        if key in _ENVELOPE_KEYS:
            continue
        arr = np.ascontiguousarray(arrays[key])
        crc = zlib.crc32(key.encode("utf-8"), crc)
        crc = zlib.crc32(str(arr.dtype).encode("utf-8"), crc)
        crc = zlib.crc32(str(arr.shape).encode("utf-8"), crc)
        crc = zlib.crc32(arr.tobytes(), crc)
    return crc


def save_verified_npz(
    path: str | os.PathLike, arrays: dict[str, np.ndarray], *, kind: str = "summary"
) -> None:
    """Persist ``arrays`` to compressed ``.npz`` with checksum envelope."""
    if _ENVELOPE_KEYS & arrays.keys():
        raise ValueError(f"payload keys may not shadow the envelope: {sorted(_ENVELOPE_KEYS)}")
    np.savez_compressed(
        path,
        checksum=np.uint32(payload_checksum(arrays)),
        format_version=np.int64(FORMAT_VERSION),
        **arrays,
    )
    record_persistence_event(kind, "save", "ok")


def load_verified_npz(
    path: str | os.PathLike, *, kind: str, required: tuple[str, ...]
) -> dict[str, np.ndarray]:
    """Load and integrity-check an ``.npz`` payload.

    Returns the payload arrays (envelope keys stripped).  Raises
    :class:`SummaryCorruptError` for an unreadable or truncated file, a
    missing required key, or a checksum mismatch.  ``kind`` names the
    summary type in error messages (e.g. ``"Euler histogram"``).
    """
    try:
        with np.load(path, allow_pickle=False) as data:
            payload = {key: data[key] for key in data.files}
    except (OSError, ValueError, KeyError, EOFError, zipfile.BadZipFile, zlib.error) as exc:
        record_persistence_event(kind, "load", "unreadable")
        raise SummaryCorruptError(f"{kind} file {path!s} is unreadable: {exc}") from exc
    missing = [key for key in required if key not in payload]
    if missing:
        record_persistence_event(kind, "load", "missing_key")
        raise SummaryCorruptError(
            f"{kind} file {path!s} is missing required key(s) {missing}; "
            f"found {sorted(payload)}"
        )
    if "checksum" in payload:
        stored = int(payload["checksum"])
        actual = payload_checksum(payload)
        if stored != actual:
            record_persistence_event(kind, "load", "checksum_mismatch")
            raise SummaryCorruptError(
                f"{kind} file {path!s} failed checksum verification "
                f"(stored {stored:#010x}, computed {actual:#010x}); "
                f"the file is corrupt or was modified after saving"
            )
    record_persistence_event(kind, "load", "ok")
    return {key: value for key, value in payload.items() if key not in _ENVELOPE_KEYS}
