"""Space-filling-curve zoning of the grid (Gray/Szalay zones design).

Out-of-core construction partitions the object stream into *zones* so
that each zone's accumulator touches a compact region of the lattice and
per-zone partial summaries stay small when spilled.  Following "There
Goes the Neighborhood" (Gray, Szalay et al.), zones are contiguous runs
of a space-filling curve over the grid cells: objects whose centers are
near each other on the curve land in the same zone, and a zone's cells
form an approximately square block of the grid.

Two curves are provided:

- **morton** (Z-order): bit-interleave of the cell coordinates.  Cheap
  to evaluate (a handful of mask/shift ops per coordinate batch) and
  locality-preserving except at power-of-two seams.
- **hilbert**: the Hilbert curve, strictly better locality (no seams)
  at ~5x the key-computation cost.  Worth it when zone compactness
  dominates, e.g. very tight spill budgets.

A :class:`ZoneMap` fixes the curve, the zone count and the zone
boundaries (equal *cell-count* quantiles of the sorted curve keys, so
zones tile the grid evenly regardless of its aspect ratio).  It is a
small frozen value object -- picklable, so the parent process computes
it once and ships it to every build worker, guaranteeing all
participants agree on object placement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.grid.grid import Grid

__all__ = ["CURVES", "ZoneMap", "hilbert_keys", "morton_keys"]

#: Supported space-filling curves.
CURVES = ("morton", "hilbert")


def _spread_bits(v: np.ndarray) -> np.ndarray:
    """Spread the low 32 bits of each uint64 so bit i lands at bit 2i."""
    v = v & np.uint64(0xFFFFFFFF)
    v = (v | (v << np.uint64(16))) & np.uint64(0x0000FFFF0000FFFF)
    v = (v | (v << np.uint64(8))) & np.uint64(0x00FF00FF00FF00FF)
    v = (v | (v << np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
    v = (v | (v << np.uint64(2))) & np.uint64(0x3333333333333333)
    v = (v | (v << np.uint64(1))) & np.uint64(0x5555555555555555)
    return v


def morton_keys(cx: np.ndarray, cy: np.ndarray) -> np.ndarray:
    """Z-order keys of cell coordinate arrays (uint64, vectorised).

    Interleaves up to 32 bits per axis: x occupies the even bit
    positions, y the odd ones, so lexicographic key order is the classic
    Z traversal of the cell grid.
    """
    cx = np.asarray(cx, dtype=np.uint64)
    cy = np.asarray(cy, dtype=np.uint64)
    return _spread_bits(cx) | (_spread_bits(cy) << np.uint64(1))


def hilbert_keys(cx: np.ndarray, cy: np.ndarray, order: int) -> np.ndarray:
    """Hilbert-curve keys of cell coordinates on a ``2**order`` square.

    The standard xy->d conversion (rotate-and-accumulate, one iteration
    per bit) vectorised over coordinate arrays.  ``order`` must cover
    the largest coordinate; keys are uint64, so ``order <= 31``.
    """
    if not 0 < order <= 31:
        raise ValueError(f"hilbert order must be in [1, 31], got {order}")
    x = np.asarray(cx, dtype=np.int64).copy()
    y = np.asarray(cy, dtype=np.int64).copy()
    if x.size and (int(x.max()) >= (1 << order) or int(y.max()) >= (1 << order)):
        raise ValueError(f"cell coordinates exceed the 2**{order} hilbert square")
    d = np.zeros(x.shape, dtype=np.uint64)
    s = 1 << (order - 1)
    while s > 0:
        rx = ((x & s) > 0).astype(np.int64)
        ry = ((y & s) > 0).astype(np.int64)
        d += np.uint64(s) * np.uint64(s) * ((3 * rx) ^ ry).astype(np.uint64)
        # Rotate the quadrant: only where ry == 0.
        flip = (ry == 0) & (rx == 1)
        x_f = np.where(flip, s - 1 - x, x)
        y_f = np.where(flip, s - 1 - y, y)
        x, y = np.where(ry == 0, y_f, x_f), np.where(ry == 0, x_f, y_f)
        s >>= 1
    return d


@dataclass(frozen=True)
class ZoneMap:
    """A fixed partition of the grid cells into curve-contiguous zones.

    Build with :meth:`for_grid`; the constructor fields are the exact
    wire state shipped to build workers (everything numpy/immutable, so
    a pickled map places objects identically in every process).

    Attributes
    ----------
    grid:
        The construction grid; zone keys are computed over its cells.
    curve:
        ``"morton"`` or ``"hilbert"``.
    order:
        Curve order: keys live on a ``2**order`` square covering the grid.
    boundaries:
        Sorted uint64 array, one entry per zone: ``boundaries[z]`` is the
        smallest curve key belonging to zone ``z`` (``boundaries[0] = 0``).
    """

    grid: Grid
    curve: str
    order: int
    boundaries: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        if self.curve not in CURVES:
            raise ValueError(f"curve must be one of {CURVES}, got {self.curve!r}")
        boundaries = np.ascontiguousarray(self.boundaries, dtype=np.uint64)
        if boundaries.ndim != 1 or boundaries.size < 1:
            raise ValueError("boundaries must be a non-empty 1-d array")
        if boundaries.size > 1 and not (boundaries[1:] > boundaries[:-1]).all():
            raise ValueError("zone boundaries must be strictly increasing")
        boundaries.setflags(write=False)
        object.__setattr__(self, "boundaries", boundaries)

    @classmethod
    def for_grid(cls, grid: Grid, num_zones: int, curve: str = "morton") -> "ZoneMap":
        """Partition ``grid`` into ``num_zones`` equal-cell-count zones.

        Every cell's curve key is computed once, sorted, and split into
        ``num_zones`` equal-size runs; the run starts become the zone
        boundaries.  A zone count above the cell count is clamped (one
        cell per zone is the finest meaningful zoning).
        """
        if num_zones < 1:
            raise ValueError(f"num_zones must be positive, got {num_zones}")
        if curve not in CURVES:
            raise ValueError(f"curve must be one of {CURVES}, got {curve!r}")
        num_zones = min(num_zones, grid.num_cells)
        order = max(int(np.ceil(np.log2(max(grid.n1, grid.n2)))), 1)
        cx, cy = np.meshgrid(
            np.arange(grid.n1, dtype=np.int64),
            np.arange(grid.n2, dtype=np.int64),
            indexing="ij",
        )
        keys = cls._keys_for(curve, order, cx.reshape(-1), cy.reshape(-1))
        keys.sort()
        starts = (np.arange(num_zones, dtype=np.int64) * grid.num_cells) // num_zones
        boundaries = keys[starts].copy()
        boundaries[0] = 0
        return cls(grid=grid, curve=curve, order=order, boundaries=boundaries)

    @staticmethod
    def _keys_for(curve: str, order: int, cx: np.ndarray, cy: np.ndarray) -> np.ndarray:
        if curve == "hilbert":
            return hilbert_keys(cx, cy, order)
        return morton_keys(cx, cy)

    @property
    def num_zones(self) -> int:
        return int(self.boundaries.size)

    def zone_of_cells(self, cx: np.ndarray, cy: np.ndarray) -> np.ndarray:
        """Zone index of each cell coordinate pair (int64, vectorised)."""
        keys = self._keys_for(self.curve, self.order, cx, cy)
        return np.searchsorted(self.boundaries, keys, side="right").astype(np.int64) - 1

    def zone_of_spans(
        self, a_lo: np.ndarray, a_hi: np.ndarray, b_lo: np.ndarray, b_hi: np.ndarray
    ) -> np.ndarray:
        """Zone index of each snapped lattice span.

        An object is placed by the *center cell* of its span -- a pure
        function of the span, so every process (and every replay of a
        crashed worker's chunks) routes identically.  Objects larger
        than a zone still belong to exactly one zone; zone accumulators
        cover the full lattice, so placement affects locality and spill
        granularity, never correctness.
        """
        cx = (np.asarray(a_lo, dtype=np.int64) // 2 + np.asarray(a_hi, dtype=np.int64) // 2) // 2
        cy = (np.asarray(b_lo, dtype=np.int64) // 2 + np.asarray(b_hi, dtype=np.int64) // 2) // 2
        return self.zone_of_cells(cx, cy)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ZoneMap(curve={self.curve!r}, zones={self.num_zones}, "
            f"grid={self.grid.n1}x{self.grid.n2})"
        )
