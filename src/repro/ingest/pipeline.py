"""The zoned out-of-core construction pipeline.

:func:`build_zoned` streams a chunk source through bounded memory into
an :class:`~repro.euler.histogram.EulerHistogram` that is bit-identical
to a direct ``add_dataset`` build of the same stream:

1. chunks are dealt round-robin to a :class:`~repro.ingest.pool.ZoneBuildPool`
   of worker processes (or accumulated inline when ``workers <= 1`` or
   no worker comes up);
2. each participant snaps its chunks to lattice spans, routes every span
   to a zone of the shared :class:`~repro.ingest.zones.ZoneMap` and
   scatters it into a budgeted
   :class:`~repro.ingest.accumulator.ZoneAccumulator`, spilling cold
   zones to checksummed disk partials under memory pressure;
3. chunks lost to worker crashes are re-read from the (replayable)
   source and accumulated inline -- the build completes bit-identically
   no matter how many workers died;
4. a merge pass folds every partial -- in-memory and spilled -- into one
   global builder (and optionally into per-zone builders first, when
   zone summaries are requested for scatter-gather serving).

Bit-parity is structural, not statistical: snapping is deterministic,
difference-domain accumulation is int64-exact and order-independent, and
zone routing only decides *which* accumulator a span lands in, so any
partitioning of the stream across zones, workers and spills merges to
the same histogram.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from dataclasses import dataclass, field

from repro.euler.histogram import EulerHistogram, EulerHistogramBuilder
from repro.grid.grid import Grid
from repro.ingest.accumulator import ZoneAccumulator, ZonePartial, load_zone_partial
from repro.ingest.chunks import ChunkSource
from repro.ingest.pool import ZoneBuildPool
from repro.ingest.worker import snap_columns
from repro.ingest.zones import ZoneMap
from repro.obs.instruments import IngestInstrumentation

__all__ = ["IngestReport", "ZonedBuildResult", "build_zoned"]

#: Default chunk size: large enough to amortise per-chunk overhead,
#: small enough that a chunk's columns stay a few MB.
DEFAULT_CHUNK_SIZE = 250_000


@dataclass(frozen=True)
class IngestReport:
    """What one zoned build did, for metrics, benchmarks and the CLI."""

    source: str
    objects: int
    chunks: int
    chunks_pool: int
    chunks_inline: int
    chunks_replayed: int
    zones: int
    curve: str
    chunk_size: int
    workers: int
    crashes: int
    spills: int
    peak_accumulator_bytes: int
    budget_bytes: int
    elapsed_seconds: float
    objects_per_second: float

    def to_dict(self) -> dict[str, object]:
        """JSON-ready view (benchmark documents embed this)."""
        return {
            "source": self.source,
            "objects": self.objects,
            "chunks": self.chunks,
            "chunks_pool": self.chunks_pool,
            "chunks_inline": self.chunks_inline,
            "chunks_replayed": self.chunks_replayed,
            "zones": self.zones,
            "curve": self.curve,
            "chunk_size": self.chunk_size,
            "workers": self.workers,
            "crashes": self.crashes,
            "spills": self.spills,
            "peak_accumulator_bytes": self.peak_accumulator_bytes,
            "budget_bytes": self.budget_bytes,
            "elapsed_seconds": self.elapsed_seconds,
            "objects_per_second": self.objects_per_second,
        }


@dataclass
class ZonedBuildResult:
    """A zoned build's outputs.

    ``zone_histograms`` is populated only when the build was asked to
    keep per-zone summaries (the scatter-gather serving path); it maps
    zone index to that zone's own :class:`EulerHistogram` (zones that
    received no objects are omitted).
    """

    histogram: EulerHistogram
    zone_map: ZoneMap
    report: IngestReport
    zone_histograms: dict[int, EulerHistogram] | None = field(default=None)


def _accumulate_inline(
    accumulator: ZoneAccumulator, zone_map: ZoneMap, chunk
) -> None:
    a_lo, a_hi, b_lo, b_hi = snap_columns(
        zone_map.grid, chunk.x_lo, chunk.x_hi, chunk.y_lo, chunk.y_hi
    )
    zones = zone_map.zone_of_spans(a_lo, a_hi, b_lo, b_hi)
    accumulator.add_spans(zones, a_lo, a_hi, b_lo, b_hi)


def build_zoned(
    source: ChunkSource,
    grid: Grid,
    *,
    zones: int = 64,
    curve: str = "morton",
    memory_mb: int = 256,
    workers: int = 0,
    start_method: str = "spawn",
    spill_dir: str | os.PathLike | None = None,
    keep_zone_summaries: bool = False,
    dispatch_timeout: float = 60.0,
    instruments: IngestInstrumentation | None = None,
) -> ZonedBuildResult:
    """Stream ``source`` into an Euler histogram over ``grid`` through
    bounded memory (see module docstring).

    Parameters
    ----------
    source:
        A replayable chunk source; its ``chunk_size`` sets the streaming
        granularity.  Replayability (``reread``) is exercised only when
        a worker crashes.
    zones, curve:
        Zone count and space-filling curve of the :class:`ZoneMap`.
    memory_mb:
        Global accumulator budget.  With workers it is divided evenly
        among them; the worker count is clamped so every worker can
        afford at least one zone builder.
    workers:
        Worker processes; ``0`` or ``1`` builds inline in this process.
    spill_dir:
        Where zone partials spill.  Defaults to a temporary directory
        removed when the build finishes; a caller-provided directory is
        left in place (only the build's own files are deleted).
    keep_zone_summaries:
        Also build one histogram per non-empty zone, for scatter-gather
        serving (:class:`repro.browse.catalog.ZoneScatterGatherSummary`).
    instruments:
        Optional :class:`~repro.obs.instruments.IngestInstrumentation`
        to record the ``repro_ingest_*`` families into.
    """
    if memory_mb < 1:
        raise ValueError(f"memory_mb must be positive, got {memory_mb}")
    budget_bytes = int(memory_mb) * (1 << 20)
    zone_map = ZoneMap.for_grid(grid, zones, curve)
    shape = grid.lattice_shape
    builder_nbytes = (shape[0] + 1) * (shape[1] + 1) * 8
    if budget_bytes < builder_nbytes:
        raise ValueError(
            f"--memory-mb {memory_mb} cannot hold even one zone accumulator "
            f"({builder_nbytes} B for a {shape[0]}x{shape[1]} lattice)"
        )

    own_spill_dir = spill_dir is None
    spill_root = (
        tempfile.mkdtemp(prefix="repro-ingest-") if own_spill_dir else os.fspath(spill_dir)
    )
    started = time.monotonic()
    chunks_pool = chunks_inline = chunks_replayed = 0
    crashes = spills = 0
    peak_bytes = 0
    spill_paths: list[str] = []
    partials: list[ZonePartial] = []
    inline_acc: ZoneAccumulator | None = None

    def inline_accumulator() -> ZoneAccumulator:
        nonlocal inline_acc
        if inline_acc is None:
            inline_acc = ZoneAccumulator(
                grid, budget_bytes, spill_root, label=f"{source.name}-inline"
            )
        return inline_acc

    try:
        # Every worker must afford at least one builder out of its share
        # of the budget; clamp the fan-out rather than failing.
        num_workers = min(int(workers), budget_bytes // builder_nbytes)
        pool: ZoneBuildPool | None = None
        if num_workers > 1:
            pool = ZoneBuildPool(
                zone_map,
                workers=num_workers,
                budget_bytes=budget_bytes // num_workers,
                spill_dir=spill_root,
                start_method=start_method,
                dispatch_timeout=dispatch_timeout,
                label=source.name,
            )
            if pool.ensure_ready() == 0:
                # No worker came up: degrade to inline construction.
                pool.close()
                pool = None

        if pool is not None:
            try:
                for index, chunk in source:
                    if len(chunk) == 0:
                        continue
                    if pool.dispatch(index, chunk):
                        chunks_pool += 1
                    else:
                        _accumulate_inline(inline_accumulator(), zone_map, chunk)
                        chunks_inline += 1
                result = pool.drain()
            finally:
                pool.close()
            partials.extend(result.partials)
            spill_paths.extend(result.spill_paths)
            crashes = result.crashes
            spills += result.spills
            peak_bytes += result.peak_bytes
            # A lost chunk was dispatched, but its pool-side work died
            # with the worker -- count it once, under replay.
            lost = sorted(set(result.lost_chunks))
            chunks_pool -= len(lost)
            for index in lost:
                _accumulate_inline(inline_accumulator(), zone_map, source.reread(index))
                chunks_replayed += 1
        else:
            for index, chunk in source:
                if len(chunk) == 0:
                    continue
                _accumulate_inline(inline_accumulator(), zone_map, chunk)
                chunks_inline += 1

        if inline_acc is not None:
            partials.extend(inline_acc.finish())
            spill_paths.extend(inline_acc.spill_paths)
            spills += inline_acc.spills
            peak_bytes += inline_acc.peak_bytes

        # ---- merge pass: fold every partial into the global builder ---- #
        by_zone: dict[int, list[ZonePartial]] = {}
        for partial in partials:
            by_zone.setdefault(partial.zone, []).append(partial)
        for path in spill_paths:
            partial = load_zone_partial(path, grid)
            by_zone.setdefault(partial.zone, []).append(partial)

        global_builder = EulerHistogramBuilder(grid)
        zone_histograms: dict[int, EulerHistogram] | None = (
            {} if keep_zone_summaries else None
        )
        for zone in sorted(by_zone):
            if zone_histograms is not None:
                zone_builder = EulerHistogramBuilder(grid)
                for partial in by_zone[zone]:
                    zone_builder.add_partial(
                        partial.a_lo, partial.b_lo, partial.patch, partial.num_objects
                    )
                zone_histograms[zone] = zone_builder.build()
                global_builder.merge(zone_builder)
            else:
                for partial in by_zone[zone]:
                    global_builder.add_partial(
                        partial.a_lo, partial.b_lo, partial.patch, partial.num_objects
                    )
        histogram = global_builder.build()
    finally:
        if own_spill_dir:
            shutil.rmtree(spill_root, ignore_errors=True)
        else:
            for path in spill_paths:
                try:
                    os.unlink(path)
                except OSError:
                    pass

    elapsed = time.monotonic() - started
    report = IngestReport(
        source=source.name,
        objects=histogram.num_objects,
        chunks=chunks_pool + chunks_inline + chunks_replayed,
        chunks_pool=chunks_pool,
        chunks_inline=chunks_inline,
        chunks_replayed=chunks_replayed,
        zones=zone_map.num_zones,
        curve=zone_map.curve,
        chunk_size=source.chunk_size,
        workers=num_workers if num_workers > 1 else 0,
        crashes=crashes,
        spills=spills,
        peak_accumulator_bytes=peak_bytes,
        budget_bytes=budget_bytes,
        elapsed_seconds=elapsed,
        objects_per_second=histogram.num_objects / elapsed if elapsed > 0 else 0.0,
    )
    if instruments is not None:
        obs = instruments
        obs.objects.labels(source=report.source).inc(report.objects)
        obs.chunks.labels(source=report.source, path="pool").inc(report.chunks_pool)
        obs.chunks.labels(source=report.source, path="inline").inc(report.chunks_inline)
        obs.chunks.labels(source=report.source, path="replay").inc(report.chunks_replayed)
        obs.spills.labels(source=report.source).inc(report.spills)
        obs.worker_crashes.labels(source=report.source).inc(report.crashes)
        obs.peak_accumulator_bytes.labels(source=report.source).set(
            report.peak_accumulator_bytes
        )
        obs.objects_per_second.labels(source=report.source).set(report.objects_per_second)
        obs.build_seconds.labels(source=report.source).observe(report.elapsed_seconds)
    return ZonedBuildResult(
        histogram=histogram, zone_map=zone_map, report=report, zone_histograms=zone_histograms
    )
