"""The zone-build worker loop: snap, route, accumulate, hand back partials.

A build worker's whole life:

1. construct a :class:`~repro.ingest.accumulator.ZoneAccumulator` over
   the shipped :class:`~repro.ingest.zones.ZoneMap`'s grid, send
   ``("ready", index, pid)``;
2. loop on the pipe:

   - ``("chunk", chunk_index, x_lo, x_hi, y_lo, y_hi)`` -- snap the raw
     world-coordinate columns to lattice spans, route them to zones and
     scatter into the accumulator; reply ``("done", chunk_index, n)``.
     Any failure replies ``("error", chunk_index, repr)`` -- a data or
     accumulator error is a build-aborting bug, not a crash to mask.
   - ``("finish",)`` -- export the live zones as in-memory partials and
     reply ``("result", index, partials, spill_paths, stats)``.
   - ``("stop",)`` -- exit.

Each worker owns builders for **every** zone it happens to see: the
parent round-robins raw chunks instead of routing by zone, which keeps
the parent's per-chunk work at one pipe send and parallelises the
dominant snap+scatter cost.  Difference-domain accumulation is exact and
order-independent, so per-zone partials from different workers merge
bit-identically to a single-builder build no matter how chunks were
dealt.

This module must stay importable with no side effects: ``spawn`` workers
re-import it by qualified name.
"""

from __future__ import annotations

import os
from multiprocessing.connection import Connection

import numpy as np

from repro.geometry.snapping import snap_rects
from repro.grid.grid import Grid
from repro.ingest.accumulator import ZoneAccumulator
from repro.ingest.zones import ZoneMap

__all__ = ["build_worker_main", "snap_columns"]


def snap_columns(
    grid: Grid,
    x_lo: np.ndarray,
    x_hi: np.ndarray,
    y_lo: np.ndarray,
    y_hi: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Snap raw world-coordinate MBR columns to lattice spans on ``grid``
    (the column counterpart of what ``add_dataset`` does internally)."""
    return snap_rects(
        grid.to_cell_units_x(np.asarray(x_lo, dtype=np.float64)),
        grid.to_cell_units_x(np.asarray(x_hi, dtype=np.float64)),
        grid.to_cell_units_y(np.asarray(y_lo, dtype=np.float64)),
        grid.to_cell_units_y(np.asarray(y_hi, dtype=np.float64)),
        grid.n1,
        grid.n2,
    )


def build_worker_main(
    worker_index: int,
    conn: Connection,
    zone_map: ZoneMap,
    budget_bytes: int,
    spill_dir: str,
    label: str,
) -> None:
    """Entry point of one zone-build worker process (see module docstring)."""
    try:
        try:
            accumulator = ZoneAccumulator(
                zone_map.grid, budget_bytes, spill_dir, label=label
            )
        except BaseException as exc:
            conn.send(("init_error", worker_index, repr(exc)))
            return
        conn.send(("ready", worker_index, os.getpid()))

        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                # Parent vanished; exit quietly.
                return
            kind = message[0]
            if kind == "stop":
                return
            if kind == "chunk":
                _, chunk_index, x_lo, x_hi, y_lo, y_hi = message
                try:
                    a_lo, a_hi, b_lo, b_hi = snap_columns(
                        zone_map.grid, x_lo, x_hi, y_lo, y_hi
                    )
                    zones = zone_map.zone_of_spans(a_lo, a_hi, b_lo, b_hi)
                    accumulator.add_spans(zones, a_lo, a_hi, b_lo, b_hi)
                except BaseException as exc:
                    try:
                        conn.send(("error", chunk_index, repr(exc)))
                    except (BrokenPipeError, OSError):  # pragma: no cover
                        return
                    continue
                conn.send(("done", chunk_index, int(np.asarray(x_lo).size)))
            elif kind == "finish":
                try:
                    partials = accumulator.finish()
                    stats = {
                        "objects": accumulator.objects,
                        "spills": accumulator.spills,
                        "peak_bytes": accumulator.peak_bytes,
                    }
                    conn.send(
                        ("result", worker_index, partials, list(accumulator.spill_paths), stats)
                    )
                except BaseException as exc:
                    try:
                        conn.send(("error", None, repr(exc)))
                    except (BrokenPipeError, OSError):  # pragma: no cover
                        return
            else:  # pragma: no cover - protocol guard
                conn.send(("error", None, f"unknown message {kind!r}"))
    finally:
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass
