"""Budgeted per-zone accumulation with checksummed disk spills.

The heart of bounded-memory construction: a :class:`ZoneAccumulator`
owns one :class:`~repro.euler.histogram.EulerHistogramBuilder` per zone
it has seen spans for, charges their difference-array footprints against
a byte budget, and when the budget is exceeded spills the
least-recently-touched zones to disk as :class:`ZonePartial` files.

A spilled partial is the builder's scratch clipped to the bounding box
of the spans it actually received (plus the difference array's
past-the-end row/column), wrapped in the repo's CRC-32 ``.npz`` envelope
(:mod:`repro.persistence`) with the grid identity embedded -- so a
corrupt or mismatched spill fails loudly at merge time instead of
silently skewing counts.  Difference-domain addition is linear and
int64-exact, so pasting every partial of a zone back into a fresh
builder reproduces the zone's state bit-for-bit no matter how many times
it was spilled.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.errors import SummaryCorruptError
from repro.euler.histogram import EulerHistogramBuilder
from repro.grid.grid import Grid
from repro.persistence import load_verified_npz, save_verified_npz

__all__ = ["ZoneAccumulator", "ZonePartial", "load_zone_partial"]

#: ``kind`` stamped into spill files' persistence envelope.
SPILL_KIND = "zone partial"


@dataclass(frozen=True)
class ZonePartial:
    """One zone's accumulated state, clipped to its span bounding box.

    ``patch`` is a difference-domain scratch patch (see
    :meth:`repro.cube.difference.DifferenceArray2D.patch`); pasting it at
    lattice offset ``(a_lo, b_lo)`` via
    :meth:`EulerHistogramBuilder.add_partial` replays the zone's updates
    exactly.  Partials are additive: any number of them, from any mix of
    workers and spill generations, sum to the zone's true state.
    """

    zone: int
    a_lo: int
    b_lo: int
    patch: np.ndarray
    num_objects: int

    @property
    def nbytes(self) -> int:
        return int(self.patch.nbytes)

    def save(self, path: str | os.PathLike, grid: Grid) -> None:
        """Persist with the CRC-32 envelope plus the grid identity, so a
        merge against the wrong grid is caught at load."""
        save_verified_npz(
            path,
            {
                "zone": np.int64(self.zone),
                "offset": np.array([self.a_lo, self.b_lo], dtype=np.int64),
                "patch": self.patch,
                "num_objects": np.int64(self.num_objects),
                "cells": np.array([grid.n1, grid.n2], dtype=np.int64),
                "extent": np.array(grid.extent.as_tuple(), dtype=np.float64),
            },
            kind=SPILL_KIND,
        )


def load_zone_partial(path: str | os.PathLike, grid: Grid) -> ZonePartial:
    """Load a spilled partial, verifying checksum and grid identity."""
    payload = load_verified_npz(
        path,
        kind=SPILL_KIND,
        required=("zone", "offset", "patch", "num_objects", "cells", "extent"),
    )
    cells = np.asarray(payload["cells"], dtype=np.int64).reshape(-1)
    extent = np.asarray(payload["extent"], dtype=np.float64).reshape(-1)
    if (
        cells.shape != (2,)
        or extent.shape != (4,)
        or (int(cells[0]), int(cells[1])) != (grid.n1, grid.n2)
        or tuple(float(v) for v in extent) != grid.extent.as_tuple()
    ):
        raise SummaryCorruptError(
            f"zone partial {path!s} was built for a different grid "
            f"(cells {cells.tolist()}, extent {extent.tolist()}); refusing to merge"
        )
    offset = np.asarray(payload["offset"], dtype=np.int64).reshape(-1)
    num_objects = int(payload["num_objects"])
    if offset.shape != (2,) or offset.min() < 0 or num_objects < 0:
        raise SummaryCorruptError(f"zone partial {path!s} holds a malformed offset or count")
    patch = np.asarray(payload["patch"])
    if patch.ndim != 2 or not np.issubdtype(patch.dtype, np.integer):
        raise SummaryCorruptError(f"zone partial {path!s} holds a malformed patch")
    return ZonePartial(
        zone=int(payload["zone"]),
        a_lo=int(offset[0]),
        b_lo=int(offset[1]),
        patch=patch,
        num_objects=num_objects,
    )


class ZoneAccumulator:
    """Routes snapped spans to per-zone builders under a byte budget.

    ``budget_bytes`` bounds the *sum* of live builders' accumulator
    footprints -- an invariant, not a soft target: builders over the
    whole lattice cost a fixed ``builder_nbytes`` each, and before a new
    zone's builder is allocated, least-recently-touched zones are
    spilled (and their builders freed) until the newcomer fits.  The
    budget must admit at least one builder.

    The accumulator tracks the bounding box of every zone's spans so
    spills clip to the smallest patch that carries the zone's state.
    """

    def __init__(
        self,
        grid: Grid,
        budget_bytes: int,
        spill_dir: str | os.PathLike,
        *,
        label: str = "ingest",
    ) -> None:
        self._grid = grid
        shape = grid.lattice_shape
        self.builder_nbytes = (shape[0] + 1) * (shape[1] + 1) * np.dtype(np.int64).itemsize
        if budget_bytes < self.builder_nbytes:
            raise ValueError(
                f"memory budget {budget_bytes} B cannot hold even one zone "
                f"accumulator ({self.builder_nbytes} B for a "
                f"{shape[0]}x{shape[1]} lattice); raise --memory-mb"
            )
        self._budget_bytes = int(budget_bytes)
        self._spill_dir = os.fspath(spill_dir)
        self._label = label
        self._builders: dict[int, EulerHistogramBuilder] = {}
        self._bboxes: dict[int, list[int]] = {}
        self._lru: dict[int, int] = {}
        self._clock = 0
        self._spill_seq = 0
        self.spill_paths: list[str] = []
        self.objects = 0
        self.spills = 0
        self.peak_bytes = 0

    @property
    def live_bytes(self) -> int:
        return len(self._builders) * self.builder_nbytes

    @property
    def live_zones(self) -> int:
        return len(self._builders)

    def add_spans(
        self,
        zones: np.ndarray,
        a_lo: np.ndarray,
        a_hi: np.ndarray,
        b_lo: np.ndarray,
        b_hi: np.ndarray,
    ) -> None:
        """Scatter a batch of snapped spans into their zones' builders.

        Rows are grouped by zone (one stable sort), each group lands in
        its zone's builder via one vectorised ``add_spans`` call, and
        the budget is enforced after the batch.
        """
        zones = np.asarray(zones, dtype=np.int64)
        if zones.size == 0:
            return
        order = np.argsort(zones, kind="stable")
        sorted_zones = zones[order]
        group_starts = np.concatenate(
            [[0], np.flatnonzero(np.diff(sorted_zones)) + 1, [sorted_zones.size]]
        )
        for start, end in zip(group_starts[:-1], group_starts[1:]):
            zone = int(sorted_zones[start])
            rows = order[start:end]
            za_lo, za_hi = a_lo[rows], a_hi[rows]
            zb_lo, zb_hi = b_lo[rows], b_hi[rows]
            builder = self._builders.get(zone)
            if builder is None:
                self._make_room()
                builder = EulerHistogramBuilder(self._grid)
                self._builders[zone] = builder
                shape = self._grid.lattice_shape
                self._bboxes.setdefault(zone, [shape[0], -1, shape[1], -1])
            builder.add_spans(za_lo, za_hi, zb_lo, zb_hi, np.ones(rows.size, dtype=np.int64))
            bbox = self._bboxes[zone]
            bbox[0] = min(bbox[0], int(za_lo.min()))
            bbox[1] = max(bbox[1], int(za_hi.max()))
            bbox[2] = min(bbox[2], int(zb_lo.min()))
            bbox[3] = max(bbox[3], int(zb_hi.max()))
            self._clock += 1
            self._lru[zone] = self._clock
            self.objects += int(rows.size)
            self.peak_bytes = max(self.peak_bytes, self.live_bytes)

    def _make_room(self) -> None:
        """Spill least-recently-touched zones until one more builder fits
        inside the budget (the budget-as-invariant step)."""
        while (
            self.live_bytes + self.builder_nbytes > self._budget_bytes and self._builders
        ):
            victim = min(self._builders, key=self._lru.__getitem__)
            self._spill(victim)

    def _spill(self, zone: int) -> None:
        builder = self._builders.pop(zone)
        self._lru.pop(zone, None)
        bbox = self._bboxes.pop(zone)
        patch, num_objects = builder.export_partial(*bbox)
        partial = ZonePartial(
            zone=zone, a_lo=bbox[0], b_lo=bbox[2], patch=patch, num_objects=num_objects
        )
        path = os.path.join(
            self._spill_dir, f"{self._label}-zone{zone:06d}-{self._spill_seq:05d}.npz"
        )
        self._spill_seq += 1
        partial.save(path, self._grid)
        self.spill_paths.append(path)
        self.spills += 1

    def finish(self) -> list[ZonePartial]:
        """Export every still-live zone as an in-memory partial and
        release the builders.  Spilled files stay on disk
        (:attr:`spill_paths`); the merge pass consumes both."""
        partials = []
        for zone in sorted(self._builders):
            builder = self._builders[zone]
            bbox = self._bboxes[zone]
            patch, num_objects = builder.export_partial(*bbox)
            partials.append(
                ZonePartial(
                    zone=zone, a_lo=bbox[0], b_lo=bbox[2], patch=patch, num_objects=num_objects
                )
            )
        self._builders.clear()
        self._bboxes.clear()
        self._lru.clear()
        return partials
