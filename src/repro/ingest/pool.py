"""Crash-tolerant process pool for zone-build workers.

:class:`ZoneBuildPool` deals raw coordinate chunks round-robin to
:func:`~repro.ingest.worker.build_worker_main` workers with bounded
in-flight depth, then drains per-worker zone partials in a finish pass.
The failure model mirrors :class:`repro.parallel.pool.ProcessShardPool`,
adapted to *stateful* workers:

- **crash** -- a worker accumulates state across every chunk it was
  dealt, so losing it loses all of that state, including spill files of
  unknown completeness.  The pool therefore records every chunk index
  ever assigned to the worker as *lost*, deletes the dead worker's spill
  files (its label names them), and respawns a fresh worker for future
  chunks.  The pipeline replays lost chunks inline from the replayable
  source -- the build always completes, bit-identical.
- **stall** -- a dispatch or drain that sees no progress within the
  timeout treats the busy workers as crashed (terminate, lose, replay):
  a hung worker must never hang the build.
- **worker error** -- an ``error`` reply is a data or accumulator bug
  that would equally fail inline, so it aborts the build as
  :class:`IngestWorkerError` rather than triggering replay.

Workers report ``("result", ...)`` exactly once, on ``finish``; partials
ride the pipe (they are bbox-clipped, so small for local data), while
spilled partials stay on disk and are named by path.
"""

from __future__ import annotations

import glob
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from multiprocessing.connection import Connection, wait as connection_wait

from repro.datasets.base import RectDataset
from repro.ingest.accumulator import ZonePartial
from repro.ingest.worker import build_worker_main
from repro.ingest.zones import ZoneMap

__all__ = ["IngestWorkerError", "ZoneBuildPool", "ZonePoolResult"]

#: How long ``close`` waits for a worker to exit after ``stop``.
_JOIN_TIMEOUT = 2.0

#: Chunks a single worker may have queued before dispatch blocks.
MAX_INFLIGHT = 4


class IngestWorkerError(RuntimeError):
    """A worker's snap/accumulate step raised; carries the worker-side
    repr.  This is a data or accumulator bug surfacing -- the inline
    path would hit the same bug -- so it aborts the build."""


@dataclass
class ZonePoolResult:
    """Everything the merge pass needs from a drained pool."""

    partials: list[ZonePartial] = field(default_factory=list)
    spill_paths: list[str] = field(default_factory=list)
    lost_chunks: list[int] = field(default_factory=list)
    crashes: int = 0
    spills: int = 0
    peak_bytes: int = 0
    objects: int = 0


class _BuildWorker:
    """Parent-side record of one build worker process."""

    __slots__ = ("slot", "process", "conn", "ready", "pid", "label", "assigned", "inflight")

    def __init__(self, slot: int, process, conn: Connection, label: str) -> None:
        self.slot = slot
        self.process = process
        self.conn = conn
        self.ready = False
        self.pid: int | None = None
        self.label = label
        self.assigned: list[int] = []
        self.inflight = 0


class ZoneBuildPool:
    """Deal chunks to zone-build workers; collect partials at the end.

    ``budget_bytes`` is the **per-worker** accumulator budget (the
    pipeline divides the global ``--memory-mb`` budget by the worker
    count).  ``spill_dir`` must exist and outlive the pool; spill files
    are namespaced per worker incarnation so a crashed worker's files
    can be discarded without touching survivors'.
    """

    def __init__(
        self,
        zone_map: ZoneMap,
        *,
        workers: int,
        budget_bytes: int,
        spill_dir: str | os.PathLike,
        start_method: str = "spawn",
        dispatch_timeout: float = 60.0,
        label: str = "ingest",
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self._zone_map = zone_map
        self._budget_bytes = int(budget_bytes)
        self._spill_dir = os.fspath(spill_dir)
        self._dispatch_timeout = float(dispatch_timeout)
        self._label = label
        self._ctx = multiprocessing.get_context(start_method)
        self._incarnation = 0
        self._closed = False
        self.result = ZonePoolResult()
        self._workers: list[_BuildWorker] = [self._spawn_worker(i) for i in range(workers)]

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def _spawn_worker(self, slot: int) -> _BuildWorker:
        self._incarnation += 1
        label = f"{self._label}-w{slot}i{self._incarnation}"
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=build_worker_main,
            args=(slot, child_conn, self._zone_map, self._budget_bytes, self._spill_dir, label),
            name=f"repro-{label}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _BuildWorker(slot, process, parent_conn, label)

    def _crash(self, worker: _BuildWorker, *, respawn: bool = True) -> None:
        """A worker is dead or condemned: all chunks it ever saw are
        lost, its spill files are garbage, and (optionally) a fresh
        worker takes over its slot for future chunks."""
        self.result.crashes += 1
        self.result.lost_chunks.extend(worker.assigned)
        worker.assigned.clear()
        worker.inflight = 0
        worker.ready = False
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover
            pass
        if worker.process.is_alive():
            worker.process.terminate()
        worker.process.join(_JOIN_TIMEOUT)
        for path in glob.glob(os.path.join(self._spill_dir, f"{worker.label}-*.npz")):
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover
                pass
        if respawn and not self._closed:
            self._workers[worker.slot] = self._spawn_worker(worker.slot)

    def ensure_ready(self, timeout: float = 10.0) -> int:
        """Wait up to ``timeout`` for workers to report ready; returns
        the number ready.  Init failures count as crashes and respawn
        once; persistently failing slots stay not-ready (the pipeline
        falls back to inline construction when none come up)."""
        deadline = time.monotonic() + timeout
        while True:
            starting = [w for w in self._workers if not w.ready and not w.conn.closed]
            if not starting:
                break
            remaining = max(deadline - time.monotonic(), 0.0)
            ready_objs = connection_wait([w.conn for w in starting], timeout=remaining)
            if not ready_objs:
                break
            for w in starting:
                if w.conn not in ready_objs:
                    continue
                try:
                    message = w.conn.recv()
                except (EOFError, OSError):
                    self._crash(w)
                    continue
                if message[0] == "ready":
                    w.ready = True
                    w.pid = message[2]
                elif message[0] == "init_error":
                    self._crash(w)
        return sum(1 for w in self._workers if w.ready)

    def worker_pids(self) -> list[int]:
        """PIDs of the ready workers (fault-injection tests kill these)."""
        return [w.pid for w in self._workers if w.ready and w.pid is not None]

    def close(self) -> None:
        """Stop every worker and delete any spill files not handed over
        in a ``result`` (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for w in self._workers:
            try:
                w.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        handed_over = set(self.result.spill_paths)
        for w in self._workers:
            w.process.join(_JOIN_TIMEOUT)
            if w.process.is_alive():  # pragma: no cover - stuck worker
                w.process.terminate()
                w.process.join(_JOIN_TIMEOUT)
            try:
                w.conn.close()
            except OSError:  # pragma: no cover
                pass
            for path in glob.glob(os.path.join(self._spill_dir, f"{w.label}-*.npz")):
                if path not in handed_over:
                    try:
                        os.unlink(path)
                    except OSError:  # pragma: no cover
                        pass

    def __enter__(self) -> "ZoneBuildPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #

    def _handle_message(self, worker: _BuildWorker, message: tuple) -> None:
        kind = message[0]
        if kind == "ready":
            worker.ready = True
            worker.pid = message[2]
        elif kind == "done":
            worker.inflight = max(worker.inflight - 1, 0)
            self.result.objects += int(message[2])
        elif kind == "error":
            raise IngestWorkerError(
                f"worker {worker.slot} failed on chunk {message[1]}: {message[2]}"
            )
        # "result" is consumed by drain(); anything else is ignored.

    def _poll(self, timeout: float) -> bool:
        """Wait for any pipe or sentinel event and process it.  Returns
        ``False`` when nothing happened within ``timeout``."""
        conns = {w.conn: w for w in self._workers if not w.conn.closed}
        sentinels = {w.process.sentinel: w for w in self._workers if w.process.is_alive()}
        if not conns and not sentinels:
            return False
        ready_objs = connection_wait(list(conns) + list(sentinels), timeout=timeout)
        if not ready_objs:
            return False
        for obj in ready_objs:
            worker = conns.get(obj) or sentinels.get(obj)
            if worker is None or worker.conn.closed:
                continue
            if obj is not worker.conn:
                # Sentinel fired: only a crash if the pipe has nothing
                # left to say (a worker that exited after its "result"
                # is fine -- drain consumes the message first).
                if not worker.conn.poll():
                    self._crash(worker)
                continue
            try:
                message = worker.conn.recv()
            except (EOFError, OSError):
                self._crash(worker)
                continue
            self._handle_message(worker, message)
        return True

    def dispatch(self, chunk_index: int, chunk: RectDataset) -> bool:
        """Deal one raw chunk to the least-loaded ready worker, blocking
        while every worker is at full in-flight depth.  Returns ``False``
        when no worker could take the chunk before the timeout (the
        caller accumulates it inline instead)."""
        deadline = time.monotonic() + self._dispatch_timeout
        while True:
            candidates = [
                w
                for w in self._workers
                if w.ready and w.process.is_alive() and w.inflight < MAX_INFLIGHT
            ]
            if candidates:
                worker = min(candidates, key=lambda w: (w.inflight, w.slot))
                try:
                    worker.conn.send(
                        ("chunk", chunk_index, chunk.x_lo, chunk.x_hi, chunk.y_lo, chunk.y_hi)
                    )
                except (BrokenPipeError, OSError):
                    self._crash(worker)
                    continue
                worker.assigned.append(chunk_index)
                worker.inflight += 1
                return True
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                # Stalled: condemn the busy workers (their chunks replay
                # inline) rather than hanging the build.
                for w in self._workers:
                    if w.inflight:
                        self._crash(w)
                return False
            self._poll(min(remaining, 1.0))

    def drain(self, timeout: float = 120.0) -> ZonePoolResult:
        """Wait out the in-flight chunks, ask every worker to finish and
        collect the ``result`` replies.  Workers that crash or stall
        forfeit their chunks to :attr:`ZonePoolResult.lost_chunks`."""
        deadline = time.monotonic() + timeout
        while any(w.inflight for w in self._workers):
            if not self._poll(max(min(deadline - time.monotonic(), 1.0), 0.0)):
                if time.monotonic() >= deadline:
                    for w in self._workers:
                        if w.inflight:
                            self._crash(w, respawn=False)
                    break

        finishing: list[_BuildWorker] = []
        for w in self._workers:
            if not (w.ready and w.process.is_alive()):
                continue
            try:
                w.conn.send(("finish",))
                finishing.append(w)
            except (BrokenPipeError, OSError):
                self._crash(w, respawn=False)

        pending = set(finishing)
        while pending:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                for w in list(pending):
                    self._crash(w, respawn=False)
                break
            conns = {w.conn: w for w in pending}
            sentinels = {w.process.sentinel: w for w in pending if w.process.is_alive()}
            ready_objs = connection_wait(list(conns) + list(sentinels), timeout=remaining)
            for obj in ready_objs:
                worker = conns.get(obj, sentinels.get(obj))
                if worker is None or worker not in pending:
                    continue
                if obj is not worker.conn and not worker.conn.poll():
                    pending.discard(worker)
                    self._crash(worker, respawn=False)
                    continue
                try:
                    message = worker.conn.recv()
                except (EOFError, OSError):
                    pending.discard(worker)
                    self._crash(worker, respawn=False)
                    continue
                if message[0] == "result":
                    pending.discard(worker)
                    _, _, partials, spill_paths, stats = message
                    self.result.partials.extend(partials)
                    self.result.spill_paths.extend(spill_paths)
                    self.result.spills += int(stats["spills"])
                    self.result.peak_bytes += int(stats["peak_bytes"])
                    worker.assigned.clear()
                else:
                    self._handle_message(worker, message)
        return self.result
