"""``repro.ingest``: zoned out-of-core histogram construction.

Streams arbitrarily large object sets through bounded memory into Euler
histograms bit-identical to an in-memory build: replayable chunk sources
(:mod:`~repro.ingest.chunks`), space-filling-curve zoning
(:mod:`~repro.ingest.zones`), budgeted spill-to-disk accumulation
(:mod:`~repro.ingest.accumulator`), a crash-tolerant worker pool
(:mod:`~repro.ingest.pool`) and the orchestrating
:func:`~repro.ingest.pipeline.build_zoned`.  See DESIGN.md section 17.
"""

from repro.ingest.accumulator import ZoneAccumulator, ZonePartial, load_zone_partial
from repro.ingest.chunks import (
    ChunkSource,
    DatasetChunkSource,
    NdjsonChunkSource,
    NpyChunkSource,
    SyntheticChunkSource,
    open_chunk_source,
)
from repro.ingest.pipeline import IngestReport, ZonedBuildResult, build_zoned
from repro.ingest.pool import IngestWorkerError, ZoneBuildPool, ZonePoolResult
from repro.ingest.zones import CURVES, ZoneMap, hilbert_keys, morton_keys

__all__ = [
    "CURVES",
    "ChunkSource",
    "DatasetChunkSource",
    "IngestReport",
    "IngestWorkerError",
    "NdjsonChunkSource",
    "NpyChunkSource",
    "SyntheticChunkSource",
    "ZoneAccumulator",
    "ZoneBuildPool",
    "ZoneMap",
    "ZonePartial",
    "ZonePoolResult",
    "ZonedBuildResult",
    "build_zoned",
    "hilbert_keys",
    "load_zone_partial",
    "morton_keys",
    "open_chunk_source",
]
